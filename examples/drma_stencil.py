#!/usr/bin/env python3
"""Example — Oxford-BSP-style one-sided access for a static stencil code.

Section 1.3 of the paper contrasts two BSP library styles: the Oxford
library's direct remote memory access, "well suited for many static
computations that arise in scientific computing", versus Green BSP's
message passing, better for dynamic applications.  repro ships both: the
DRMA layer (`repro.Drma`) is ~150 lines over send/sync.

Here a 1-D Jacobi heat-diffusion solver keeps each processor's halo cells
up to date with one-sided *puts* — no explicit receive code at all, the
Oxford idiom — and converges to the analytic linear steady state.

Run:  python examples/drma_stencil.py
"""

import numpy as np

from repro import Drma, bsp_run
from repro.collectives import allreduce


def jacobi_program(bsp, n_global, iterations):
    """1-D heat equation with fixed ends: u[0]=0, u[n+1]=1.

    Each processor owns a contiguous chunk plus two halo cells; after a
    Jacobi sweep it *puts* its edge values into its neighbours' halos.
    """
    me, p = bsp.pid, bsp.nprocs
    lo = n_global * me // p
    hi = n_global * (me + 1) // p
    k = hi - lo
    # Local array: [halo_left, owned..., halo_right].
    u = np.zeros(k + 2)
    drma = Drma(bsp)
    handle = drma.register(u)

    if me == p - 1:
        u[k + 1] = 1.0  # right boundary condition

    for _ in range(iterations):
        new = 0.5 * (u[:-2] + u[2:])
        u[1:-1] = new
        # One-sided halo refresh: write into the neighbour's array.
        if me > 0:
            drma.put(me - 1, handle, [u[1]], offset=k_of(n_global, p, me - 1) + 1)
        if me < p - 1:
            drma.put(me + 1, handle, [u[k]], offset=0)
        drma.sync()

    # Residual vs the analytic steady state u(x) = x/(n+1).
    xs = np.arange(lo + 1, hi + 1)
    exact = xs / (n_global + 1)
    err = float(np.abs(u[1:-1] - exact).max()) if k else 0.0
    return allreduce(bsp, err, max)


def k_of(n_global, p, pid):
    return n_global * (pid + 1) // p - n_global * pid // p


def main():
    # Jacobi contracts by ~cos(π/(n+2)) per sweep: n=32 needs a few
    # thousand sweeps to reach 1e-3 of the steady state.
    n, iters, p = 32, 6000, 4
    run = bsp_run(jacobi_program, p, args=(n, iters))
    err = run.results[0]
    print(f"1-D Jacobi, n={n}, {iters} iterations on {p} processors")
    print(f"max deviation from analytic steady state: {err:.2e}")
    assert err < 1e-3
    stats = run.stats
    print(f"stats: {stats.summary()}")
    print(f"supersteps per iteration: {(stats.S - 1) / iters:.0f} "
          "(a DRMA sync costs two barriers on a message-passing substrate "
          "— the overhead the Oxford library avoids on shared memory)")


if __name__ == "__main__":
    main()
