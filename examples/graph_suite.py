#!/usr/bin/env python3
"""Example — the paper's graph workloads on one G(δ) input.

Builds the Section 3.3 input class (random points on the unit square,
edges within the minimal connectivity radius δ), partitions it spatially,
and runs all three graph applications — MST, single-source shortest
paths, and 25 simultaneous shortest paths — verifying each against its
sequential baseline and comparing their BSP shapes.

Run:  python examples/graph_suite.py [nnodes]
"""

import sys

import numpy as np

from repro.apps.msp import default_sources
from repro.apps.mst import bsp_mst, kruskal
from repro.apps.sssp import bsp_msp, bsp_sssp, dijkstra, dijkstra_many
from repro.graphs import geometric_graph, imbalance, spatial_partition


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    p = 8
    gg = geometric_graph(n, seed=3)
    graph = gg.graph
    print(f"G(δ): {n} nodes, {graph.nedges} edges, δ = {gg.delta:.4f}")

    owner = spatial_partition(gg.points, p)
    print(f"spatial partition over {p} processors, "
          f"imbalance {imbalance(owner, p):.1%} "
          f"(paper: 'within about 10%')")

    print("\n--- minimum spanning tree (Section 3.3) ---")
    mst_par = bsp_mst(graph, owner, p)
    mst_seq = kruskal(graph)
    assert np.isclose(mst_par.weight, mst_seq.weight)
    print(f"weight {mst_par.weight:.4f} == Kruskal {mst_seq.weight:.4f}")
    print(f"BSP shape: {mst_par.stats.summary()}")

    print("\n--- single-source shortest paths (Section 3.4) ---")
    sp_par = bsp_sssp(graph, owner, p, source=0)
    sp_seq = dijkstra(graph, 0)
    assert np.allclose(sp_par.dist, sp_seq)
    print(f"distances match Dijkstra; max distance "
          f"{sp_par.dist[np.isfinite(sp_par.dist)].max():.4f}")
    print(f"BSP shape: {sp_par.stats.summary()}")

    print("\n--- 25 simultaneous shortest paths (Section 3.5) ---")
    sources = default_sources(n)
    msp_par = bsp_msp(graph, owner, p, sources)
    assert np.allclose(msp_par.dist, dijkstra_many(graph, sources))
    print(f"all {len(sources)} computations match sequential Dijkstra")
    print(f"BSP shape: {msp_par.stats.summary()}")

    s_sp, s_msp = sp_par.stats.S, msp_par.stats.S
    print(f"\nlatency amortization: 25 computations in {s_msp} supersteps "
          f"vs {s_sp} for one ({25 * s_sp} if run separately) — the effect")
    print("behind MSP's strong PC-LAN numbers in the paper's Figure C.6.")


if __name__ == "__main__":
    main()
