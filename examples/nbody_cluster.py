#!/usr/bin/env python3
"""Example — Barnes–Hut N-body simulation of a Plummer star cluster.

The paper's Section 3.2 workload end-to-end: sample a Plummer sphere,
evolve it with the BSP Barnes–Hut program (ORB partitioning,
essential-tree exchange, six supersteps per step), verify the forces
against the exact O(N²) sum, and price the run on the paper's machines.

Run:  python examples/nbody_cluster.py [nbodies] [steps]
"""

import sys

import numpy as np

from repro import CENJU, PC_LAN, SGI, predict_comm_seconds
from repro.apps.nbody import (
    bsp_nbody,
    direct_accelerations,
    plummer,
    simulate,
    total_energy,
)


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    nprocs = 8
    theta = 0.8

    print(f"Plummer cluster: {n} bodies, {steps} steps, theta={theta}, "
          f"p={nprocs}")
    bodies = plummer(n, seed=42)
    e0 = total_energy(bodies)
    print(f"initial total energy: {e0:+.4f}  (Hénon units; ≈ -0.25)")

    # Accuracy of the opening criterion vs the exact pairwise sum.
    from repro.apps.nbody import accelerations

    acc_bh, inter = accelerations(bodies.pos, bodies.mass, theta=theta)
    acc_exact = direct_accelerations(bodies.pos, bodies.mass)
    rel = np.linalg.norm(acc_bh - acc_exact, axis=1)
    rel /= np.linalg.norm(acc_exact, axis=1) + 1e-12
    print(f"BH force error vs direct sum: mean {rel.mean():.2%}, "
          f"max {rel.max():.2%}; interactions/body "
          f"{inter.mean():.0f} of {n - 1}")

    # Parallel evolution, checked against the sequential program.
    run = bsp_nbody(bodies, nprocs, steps=steps, theta=theta, dt=0.01)
    seq = simulate(bodies, steps=steps, theta=theta, dt=0.01)
    drift = np.abs(run.bodies.pos - seq.bodies.pos).max()
    e1 = total_energy(run.bodies)
    print(f"parallel vs sequential position drift: {drift:.2e}")
    print(f"energy after {steps} steps: {e1:+.4f} "
          f"(drift {abs(e1 - e0) / abs(e0):.2%})")

    stats = run.stats
    print(f"\nBSP shape: {stats.summary()}")
    print(f"supersteps/step: {(stats.S - 1) // steps} (paper: 6)")
    print("\ncommunication+sync cost (gH + LS) on the paper's machines:")
    for machine in (SGI, CENJU, PC_LAN):
        if machine.supports(nprocs):
            comm = predict_comm_seconds(stats, machine)
            print(f"  {machine.name:>7}: {comm * 1e3:8.2f} ms")
    print("\nThe six-superstep iteration is why this app speeds up even on")
    print("the PC-LAN, where ocean (hundreds of supersteps) collapses.")


if __name__ == "__main__":
    main()
