#!/usr/bin/env python3
"""Example — the Fast Multipole Method the paper planned to add (§5).

Evaluates the 2-D potential of thousands of charges three ways — exact
O(N²) sum, sequential FMM, and the BSP FMM (two supersteps, total) — and
shows the accuracy dial: each extra expansion term buys a fixed factor of
precision for a linear increase in bandwidth.

Run:  python examples/fmm_accuracy.py [npoints]
"""

import sys
import time

import numpy as np

from repro import PC_LAN
from repro.apps.fmm import bsp_fmm, direct_evaluate, fmm_evaluate


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    p = 8
    rng = np.random.default_rng(42)
    pts = rng.random((n, 2))
    q = rng.standard_normal(n)

    t0 = time.perf_counter()
    exact = direct_evaluate(pts, q)
    t_direct = time.perf_counter() - t0
    print(f"{n} charges; direct O(N²) sum: {t_direct:.2f}s")

    t0 = time.perf_counter()
    fmm = fmm_evaluate(pts, q, terms=16)
    t_fmm = time.perf_counter() - t0
    err = np.abs(fmm.potential - exact.potential).max()
    err /= np.abs(exact.potential).max()
    print(f"sequential FMM (P=16, depth {fmm.depth}): {t_fmm:.2f}s, "
          f"rel err {err:.1e}")

    print("\naccuracy dial (BSP FMM on 8 processors):")
    print(f"{'terms':>6} {'rel err':>10} {'H (packets)':>12} "
          f"{'S':>3} {'PC-LAN comm':>12}")
    for terms in (6, 10, 16, 22):
        run = bsp_fmm(pts, q, p, terms=terms)
        err = np.abs(run.potential - exact.potential).max()
        err /= np.abs(exact.potential).max()
        comm = PC_LAN.g(p) * run.stats.H + PC_LAN.L(p) * run.stats.S
        print(f"{terms:>6} {err:>10.1e} {run.stats.H:>12} "
              f"{run.stats.S:>3} {comm * 1e3:>10.1f}ms")

    print("\nTwo supersteps regardless of machine size or accuracy — the")
    print("most latency-tolerant program in the suite, which is why the")
    print("paper wanted it next.")


if __name__ == "__main__":
    main()
