#!/usr/bin/env python3
"""Example — wind-driven double-gyre ocean simulation.

The paper's Section 3.1 workload: spin up the barotropic double gyre on
an (size)² grid with the distributed multigrid solver, show that every
processor count reproduces the sequential fields bit for bit, render the
stream function as ASCII art, and show the Figure 1.1 effect — where the
cost model says each machine stops scaling.

Run:  python examples/ocean_gyre.py [size] [steps]
"""

import sys

import numpy as np

from repro import CENJU, PC_LAN, SGI
from repro.apps.ocean import bsp_ocean, ocean_sequential


def ascii_field(field, width=48):
    """Coarse ASCII contour of a 2-D field (rows = x, columns = y)."""
    glyphs = " .:-=+*#%@"
    interior = field[1:-1, 1:-1]
    step = max(1, interior.shape[0] // 24)
    sampled = interior[::step, ::step]
    lim = np.abs(sampled).max() or 1.0
    lines = []
    for row in sampled:
        chars = []
        for value in row[: width]:
            idx = int((value + lim) / (2 * lim) * (len(glyphs) - 1))
            chars.append(glyphs[idx])
        lines.append("".join(chars))
    return "\n".join(lines)


def main():
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 66
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    print(f"double gyre: {size}x{size} grid, {steps} steps")
    seq = ocean_sequential(size, steps)
    print(f"multigrid V-cycles per step: {seq.cycles}")

    print("\nstream function ψ (two counter-rotating gyres):")
    print(ascii_field(seq.psi))

    print("\ndistributed run equals sequential, bit for bit:")
    for p in (2, 4, 8):
        run = bsp_ocean(size, steps, p)
        exact = np.array_equal(
            run.state.psi[1:-1, 1:-1], seq.psi[1:-1, 1:-1]
        )
        stats = run.stats
        print(f"  p={p}: identical={exact}  S={stats.S}  H={stats.H}")

    print("\nwhere does each machine stop scaling? (comm share of T)")
    run4 = bsp_ocean(size, steps, 4).stats
    run8 = bsp_ocean(size, steps, 8).stats
    for machine in (SGI, CENJU, PC_LAN):
        for label, stats in (("p=4", run4), ("p=8", run8)):
            g, latency = machine.g(stats.nprocs), machine.L(stats.nprocs)
            comm = g * stats.H + latency * stats.S
            print(f"  {machine.name:>7} {label}: gH+LS = {comm:7.3f} s "
                  f"({stats.S} supersteps x L={latency * 1e6:.0f}us ...)")
    print("\nHigh-latency machines pay L on every one of the hundreds of")
    print("relaxation supersteps — the paper's Figure 1.1 in one loop.")


if __name__ == "__main__":
    main()
