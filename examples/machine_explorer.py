#!/usr/bin/env python3
"""Example — BSP as a *bridging model*: what-if machine exploration.

Valiant's pitch is that (g, L) is a sufficient interface between
algorithms and machines.  This example takes the measured (W, H, S) of
two real programs with opposite shapes — matmult (few huge h-relations)
and shortest paths (many tiny supersteps) — and sweeps the (g, L) plane
to map which machines favour which program structure, locating the
paper's three machines on that map.

Run:  python examples/machine_explorer.py
"""

import numpy as np

from repro import MachineProfile, PAPER_MACHINES, predict_seconds
from repro.apps.matmul import cannon_matmul
from repro.apps.sssp import bsp_sssp
from repro.graphs import geometric_graph, spatial_partition

P = 16


def measure():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((144, 144))
    mat = cannon_matmul(a, a, P).stats.scaled(50.0)

    gg = geometric_graph(2500, seed=0)
    owner = spatial_partition(gg.points, P)
    sp = bsp_sssp(gg.graph, owner, P, source=0).stats.scaled(2.0)
    return {"matmult(144)": mat, "sp(2.5k)": sp}


def main():
    programs = measure()
    for name, stats in programs.items():
        print(f"{name}: W={stats.W:.3f}s  H={stats.H}  S={stats.S}")

    g_values = [0.5, 1.0, 2.0, 5.0, 10.0]       # us / 16-byte packet
    l_values = [10, 100, 1000, 5000, 20000]     # us / superstep

    for name, stats in programs.items():
        print(f"\npredicted slowdown vs the best cell — {name}")
        grid = np.array([
            [
                predict_seconds(
                    stats,
                    MachineProfile(
                        "what-if", g_us={P: g}, L_us={P: latency}
                    ),
                    work_scale=1.0,
                )
                for latency in l_values
            ]
            for g in g_values
        ])
        best = grid.min()
        header = "g\\L(us)".rjust(8) + "".join(
            f"{latency:>9}" for latency in l_values
        )
        print(header)
        for g, row in zip(g_values, grid):
            print(f"{g:8.1f}" + "".join(f"{t / best:9.2f}" for t in row))

    print("\nthe paper's machines at p=16 (PC-LAN: p=8):")
    for machine in PAPER_MACHINES.values():
        p = min(P, machine.max_procs)
        print(f"  {machine.name:>7}: g={machine.g(p) * 1e6:5.2f}us  "
              f"L={machine.L(p) * 1e6:7.0f}us")
    print("\nsp's time explodes along the L axis (S=dozens of supersteps);")
    print("matmult's along the g axis (H=thousands of packets) — choose")
    print("your algorithm variant from exactly these two numbers.")


if __name__ == "__main__":
    main()
