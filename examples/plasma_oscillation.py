#!/usr/bin/env python3
"""Example — Langmuir oscillations in a BSP particle-in-cell plasma.

The workload of the paper's related work [28] (plasma simulation under
BSP on networks of workstations), validated by first principles: a cold
electron slab displaced sinusoidally oscillates at the plasma frequency
ω_p = sqrt(ρ₀).  The run uses the distributed PIC cycle — whose field
solver is literally the ocean application's multigrid — and checks the
measured period against theory, then prints an ASCII trace of the field
energy.

Run:  python examples/plasma_oscillation.py
"""

import math

from repro.apps.plasma import (
    bsp_pic,
    oscillation_period,
    perturbed_lattice,
    plasma_frequency,
)


def sparkline(values, width=72):
    glyphs = " .:-=+*#%@"
    step = max(1, len(values) // width)
    sampled = values[::step]
    top = max(sampled) or 1.0
    return "".join(
        glyphs[min(int(v / top * (len(glyphs) - 1)), len(glyphs) - 1)]
        for v in sampled
    )


def main():
    nside, grid, steps, dt, p = 48, 32, 160, 0.05, 4
    print(f"cold electron lattice {nside}², grid {grid}², dt={dt}, "
          f"{steps} steps on {p} BSP processors")
    particles = perturbed_lattice(nside, amplitude=0.02, rho0=1.0)
    run = bsp_pic(particles, grid, p, steps, dt=dt, rho0=1.0)

    period = oscillation_period(run.history.field_energy, dt)
    expected = 2 * math.pi / plasma_frequency(1.0)
    print(f"\nfield energy (time →):\n{sparkline(run.history.field_energy)}")
    print(f"\nmeasured oscillation period: {period:.3f}")
    print(f"theory (2π/ω_p):             {expected:.3f}")
    print(f"deviation: {abs(period - expected) / expected:.1%}")
    print(f"\nmultigrid V-cycles per solve (warm-started): "
          f"{run.history.cycles[:8]} ...")
    print(f"BSP shape: {run.stats.summary()}")
    print("\nThe field solve is the ocean application's distributed")
    print("multigrid, verbatim — one substrate, two sciences.")


if __name__ == "__main__":
    main()
