#!/usr/bin/env python3
"""Example — the paper's exact 16-byte-packet wire discipline.

"All results in this paper were obtained with a fixed packet size of 16
bytes ... The data in the packet can be in any format, and it is up to
the programmer to provide sufficient labeling information."  This example
programs at that level: application messages are fragmented into 16-byte
wire packets with a PacketCodec, shipped as individual BSP packets, and
reassembled from the arbitrary arrival order — a token-ring broadcast of
variable-length strings.

Run:  python examples/fixed_packets.py
"""

from repro import PACKET_BYTES, PacketCodec, bsp_run


def ring_gossip(bsp, messages):
    """Each processor forwards its (fragmented) message around the ring.

    After p−1 supersteps every processor has reassembled every message;
    every wire packet is exactly 16 bytes, so the h-relation per
    superstep IS the packet count, as in the paper's tables.
    """
    me, p = bsp.pid, bsp.nprocs
    right = (me + 1) % p
    codec_out = PacketCodec()
    codec_in = PacketCodec()
    collected = {me: messages[me]}

    # Outbox of wire fragments to forward this superstep.
    to_forward = codec_out.encode(messages[me].encode("utf-8"))
    for _ in range(p - 1):
        for frag in to_forward:
            bsp.send(right, frag)  # 16 bytes -> h=1 each, automatically
        bsp.sync()
        to_forward = []
        for pkt in bsp.packets():
            assert len(pkt.payload) == PACKET_BYTES
            assert pkt.h == 1
            to_forward.append(pkt.payload)  # forward verbatim next round
            for message in codec_in.feed(pkt.payload):
                text = message.decode("utf-8")
                sender = int(text.split(":", 1)[0])
                collected[sender] = text
    return collected


def main():
    p = 5
    messages = [
        f"{pid}: " + "bulk-synchronous " * (pid + 1) + f"from {pid}"
        for pid in range(p)
    ]
    run = bsp_run(ring_gossip, p, args=(messages,))
    for pid, got in enumerate(run.results):
        assert len(got) == p, f"pid {pid} missed messages"
        assert set(got.values()) == set(messages)
    print(f"{p} processors gossiped {p} variable-length messages as "
          f"16-byte packets")
    print(f"stats: {run.stats.summary()}")
    per_step = [s.h for s in run.stats.supersteps]
    print(f"h-relation per superstep (= wire packets): {per_step}")
    print("\nEvery h in the paper's Figures C.1-C.6 counts exactly these")
    print("16-byte units; repro charges them automatically from payload")
    print("sizes, or you can program the wire format yourself, as here.")


if __name__ == "__main__":
    main()
