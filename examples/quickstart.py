#!/usr/bin/env python3
"""Quickstart — the Green BSP library in five minutes.

Covers the paper's whole programming model: writing a BSP program against
the three core calls (send / get packets / sync), running it on the three
backends, reading the (W, H, S) accounting, and pricing the run on the
paper's machines with the cost function T = W + gH + LS.

Run:  python examples/quickstart.py
"""

from repro import CENJU, PC_LAN, SGI, breakdown, bsp_run
from repro.collectives import allreduce


def histogram_program(bsp, data, nbuckets):
    """Distributed histogram: a one-superstep exchange plus a reduction.

    Each processor takes its slice of the input, buckets it locally,
    sends each bucket's count to the bucket's owner (bucket b lives on
    processor b % p), and finally all-reduces the grand total as a
    checksum.  Three supersteps, conservative traffic.
    """
    me, p = bsp.pid, bsp.nprocs
    lo = len(data) * me // p
    hi = len(data) * (me + 1) // p
    local = [0] * nbuckets
    for x in data[lo:hi]:
        local[int(x * nbuckets)] += 1

    # Superstep 1: route per-bucket counts to their owners.
    for bucket, count in enumerate(local):
        if count:
            bsp.send(bucket % p, (bucket, count))
    bsp.sync()
    mine = {}
    for pkt in bsp.packets():
        bucket, count = pkt.payload
        mine[bucket] = mine.get(bucket, 0) + count

    # Supersteps 2: checksum via a collective built on the same primitives.
    total = allreduce(bsp, sum(mine.values()), lambda a, b: a + b)
    return mine, total


def main():
    import random

    random.seed(7)
    data = [random.random() for _ in range(100_000)]
    nbuckets = 16

    print("=== running on all three backends ===")
    for backend in ("simulator", "threads", "processes"):
        run = bsp_run(
            histogram_program, 4, backend=backend, args=(data, nbuckets)
        )
        merged = {}
        for mine, total in run.results:
            assert total == len(data)
            merged.update(mine)
        assert sum(merged.values()) == len(data)
        print(f"{backend:>10}: {run.stats.summary()}")

    print()
    print("=== pricing the run with the paper's machines (Figure 2.1) ===")
    run = bsp_run(histogram_program, 4, args=(data, nbuckets))
    for machine in (SGI, CENJU, PC_LAN):
        parts = breakdown(run.stats, machine, work_scale=1.0)
        print(
            f"{machine.name:>7}: T = {parts.total * 1e3:7.2f} ms "
            f"(work {parts.work * 1e3:.2f} + bandwidth "
            f"{parts.bandwidth * 1e3:.2f} + latency {parts.latency * 1e3:.2f})"
        )
    print()
    print("The three terms are the whole BSP design space: minimize work")
    print("depth, h-relations, and supersteps — trading them off by the")
    print("target machine's g and L.")


if __name__ == "__main__":
    main()
