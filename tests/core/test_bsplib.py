"""Tests for the BSPlib-flavoured adapter."""

import numpy as np
import pytest

from repro import BspError
from repro.bsplib import bsp_begin

BACKENDS = ["simulator", "threads", "processes"]


class TestInquiry:
    def test_pid_nprocs(self):
        run = bsp_begin(lambda ctx: (ctx.pid, ctx.nprocs), 3)
        assert run.results == [(0, 3), (1, 3), (2, 3)]

    def test_time_monotone(self):
        def program(ctx):
            t0 = ctx.time()
            ctx.sync()
            return ctx.time() >= t0

        assert all(bsp_begin(program, 2).results)


class TestBsmp:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_send_move_roundtrip(self, backend):
        def program(ctx):
            right = (ctx.pid + 1) % ctx.nprocs
            ctx.bsp_send(right, tag="greet", payload=f"from {ctx.pid}")
            ctx.sync()
            assert ctx.qsize() == 1
            assert ctx.get_tag() == "greet"
            msg = ctx.move()
            assert ctx.qsize() == 0
            assert ctx.move() is None
            return msg

        run = bsp_begin(program, 3, backend=backend)
        assert run.results == ["from 2", "from 0", "from 1"]

    def test_tags_distinguish_streams(self):
        def program(ctx):
            ctx.bsp_send(0, tag="a", payload=ctx.pid)
            ctx.bsp_send(0, tag="b", payload=ctx.pid * 10)
            ctx.sync()
            if ctx.pid == 0:
                by_tag = {}
                for tag, payload in ctx.messages():
                    by_tag.setdefault(tag, []).append(payload)
                return by_tag
            return None

        result = bsp_begin(program, 2).results[0]
        assert result == {"a": [0, 1], "b": [0, 10]}

    def test_empty_queue_semantics(self):
        def program(ctx):
            ctx.sync()
            return ctx.get_tag(), ctx.move(), ctx.qsize()

        assert bsp_begin(program, 2).results == [(None, None, 0)] * 2


class TestDrmaViaBsplib:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_put_into_neighbor(self, backend):
        def program(ctx):
            mine = np.zeros(3)
            h = ctx.push_reg(mine)
            right = (ctx.pid + 1) % ctx.nprocs
            ctx.put(right, h, [float(ctx.pid)], offset=1)
            ctx.sync()
            return mine.tolist()

        run = bsp_begin(program, 3, backend=backend)
        for pid, got in enumerate(run.results):
            assert got == [0.0, float((pid - 1) % 3), 0.0]

    def test_get_from_neighbor(self):
        def program(ctx):
            mine = np.arange(4, dtype=float) + 10 * ctx.pid
            h = ctx.push_reg(mine)
            left = (ctx.pid - 1) % ctx.nprocs
            fut = ctx.get(left, h, offset=2, length=2)
            ctx.sync()
            return fut.value().tolist()

        run = bsp_begin(program, 4)
        for pid, got in enumerate(run.results):
            left = (pid - 1) % 4
            assert got == [10.0 * left + 2, 10.0 * left + 3]

    def test_hpput_aliases_put(self):
        def program(ctx):
            mine = np.zeros(1)
            h = ctx.push_reg(mine)
            ctx.hpput(ctx.pid, h, [5.0])
            ctx.sync()
            return mine[0]

        assert bsp_begin(program, 2).results == [5.0, 5.0]

    def test_pop_reg_is_noop(self):
        def program(ctx):
            h = ctx.push_reg(np.zeros(1))
            ctx.pop_reg(h)
            ctx.sync()

        bsp_begin(program, 2)  # must not raise


class TestMixedTraffic:
    def test_bsmp_and_drma_same_superstep(self):
        def program(ctx):
            mine = np.zeros(1)
            h = ctx.push_reg(mine)
            peer = (ctx.pid + 1) % ctx.nprocs
            ctx.put(peer, h, [7.0])
            ctx.bsp_send(peer, tag="t", payload="hello")
            ctx.sync()
            return mine[0], ctx.move()

        run = bsp_begin(program, 2)
        assert run.results == [(7.0, "hello")] * 2

    def test_plain_sends_across_sync_rejected(self):
        def program(ctx):
            ctx._bsp.send(ctx.pid, ("rogue", 1))
            ctx.sync()

        with pytest.raises(BspError):
            bsp_begin(program, 1)

    def test_superstep_cost_is_two(self):
        def program(ctx):
            ctx.sync()
            ctx.sync()

        run = bsp_begin(program, 2)
        assert run.stats.S == 5  # 2 bsplib syncs x 2 + final segment
