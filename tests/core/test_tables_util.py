"""Tests for the table-rendering utility."""

from repro.util import format_cell, render_table


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_float_precision_tiers(self):
        assert format_cell(0.1234) == "0.12"
        assert format_cell(12.34) == "12.3"
        assert format_cell(1234.5) == "1234"
        assert format_cell(0.0) == "0"

    def test_ints_and_strings_pass_through(self):
        assert format_cell(42) == "42"
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"],
            [["a", 1], ["bb", 22.5]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert lines[3].endswith("1")
        assert lines[4].endswith("22.5")

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_column_widths_fit_content(self):
        text = render_table(["x"], [["longvalue"]])
        header, sep, row = text.splitlines()
        assert len(header) == len(sep) == len(row)
