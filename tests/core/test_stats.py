"""Tests for superstep accounting (W, H, S merging)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import BspUsageError
from repro.core.stats import ProgramStats, SuperstepSample, VPLedger


def make_ledger(pid, rows):
    """rows: list of (work, h_sent, h_recv) tuples."""
    ledger = VPLedger(pid)
    for work, h_sent, h_recv in rows:
        sample = ledger.begin_superstep()
        sample.work_seconds = work
        sample.h_sent = h_sent
        sample.h_recv = h_recv
        sample.msgs_sent = h_sent
        sample.msgs_recv = h_recv
    return ledger


class TestMerge:
    def test_single_processor(self):
        stats = ProgramStats.from_ledgers([make_ledger(0, [(1.0, 2, 0), (0.5, 0, 2)])])
        assert stats.S == 2
        assert stats.W == pytest.approx(1.5)
        assert stats.H == 4
        assert stats.total_work == pytest.approx(1.5)

    def test_w_is_sum_of_max_work(self):
        l0 = make_ledger(0, [(1.0, 0, 0), (0.1, 0, 0)])
        l1 = make_ledger(1, [(0.2, 0, 0), (0.9, 0, 0)])
        stats = ProgramStats.from_ledgers([l0, l1])
        # w_0 = max(1.0, 0.2), w_1 = max(0.1, 0.9)
        assert stats.W == pytest.approx(1.9)
        assert stats.total_work == pytest.approx(2.2)

    def test_h_is_max_of_sent_or_received(self):
        # Paper: h_i is the largest number of packets sent OR received by
        # any processor.
        l0 = make_ledger(0, [(0, 5, 1)])
        l1 = make_ledger(1, [(0, 1, 8)])
        stats = ProgramStats.from_ledgers([l0, l1])
        assert stats.H == 8
        assert stats.supersteps[0].h_sent_max == 5
        assert stats.supersteps[0].h_recv_max == 8

    def test_mismatched_superstep_counts_raise(self):
        l0 = make_ledger(0, [(0, 0, 0)])
        l1 = make_ledger(1, [(0, 0, 0), (0, 0, 0)])
        with pytest.raises(BspUsageError, match="different superstep counts"):
            ProgramStats.from_ledgers([l0, l1])

    def test_empty_raises(self):
        with pytest.raises(BspUsageError):
            ProgramStats.from_ledgers([])

    def test_scaled(self):
        stats = ProgramStats.from_ledgers([make_ledger(0, [(2.0, 3, 0)])])
        doubled = stats.scaled(2.0)
        assert doubled.W == pytest.approx(4.0)
        assert doubled.H == 3  # traffic does not scale
        assert doubled.S == 1
        assert doubled.total_work == pytest.approx(4.0)

    def test_summary_mentions_key_figures(self):
        stats = ProgramStats.from_ledgers([make_ledger(0, [(1.0, 2, 0)])])
        text = stats.summary()
        assert "S=1" in text and "H=2" in text

    @given(
        rows=st.lists(
            st.lists(
                st.tuples(
                    st.floats(min_value=0, max_value=10),
                    st.integers(min_value=0, max_value=100),
                    st.integers(min_value=0, max_value=100),
                ),
                min_size=1,
                max_size=5,
            ),
            min_size=1,
            max_size=4,
        ).filter(lambda ls: len({len(x) for x in ls}) == 1)
    )
    def test_property_invariants(self, rows):
        ledgers = [make_ledger(pid, r) for pid, r in enumerate(rows)]
        stats = ProgramStats.from_ledgers(ledgers)
        # W is a max-combine, so never exceeds total work but is at least
        # total work / p.
        assert stats.W <= stats.total_work + 1e-9
        assert stats.W * stats.nprocs >= stats.total_work - 1e-9
        # H bounds: at least per-superstep average, at most total traffic.
        assert stats.H >= 0
        assert stats.S == len(rows[0])

    def test_charge_merging(self):
        l0 = VPLedger(0)
        s = l0.begin_superstep()
        s.charged = 10.0
        l1 = VPLedger(1)
        s = l1.begin_superstep()
        s.charged = 4.0
        stats = ProgramStats.from_ledgers([l0, l1])
        assert stats.charged_depth == pytest.approx(10.0)
        assert stats.total_charged == pytest.approx(14.0)


class TestVPLedger:
    def test_totals(self):
        ledger = make_ledger(0, [(1.0, 2, 3), (2.0, 0, 0)])
        assert ledger.total_work_seconds == pytest.approx(3.0)
        assert ledger.nsupersteps == 2

    def test_begin_superstep_returns_live_sample(self):
        ledger = VPLedger(0)
        sample = ledger.begin_superstep()
        sample.work_seconds = 5.0
        assert ledger.samples[0].work_seconds == 5.0
        assert isinstance(ledger.samples[0], SuperstepSample)
