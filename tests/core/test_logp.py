"""Tests for the LogP comparison model."""

import pytest

from repro import CENJU, SGI, bsp_run
from repro.core.errors import CostModelError
from repro.core.logp import (
    LogPProfile,
    barrier_cost,
    from_bsp_machine,
    model_disagreement,
    predict_seconds_logp,
)


def stats_with(nmsgs, payload_packets, steps=3, p=4):
    def program(bsp):
        payload = b"x" * (16 * payload_packets)
        for _ in range(steps):
            for k in range(nmsgs):
                bsp.send((bsp.pid + 1 + k) % bsp.nprocs, payload)
            bsp.sync()
            list(bsp.packets())

    return bsp_run(program, p).stats


class TestProfile:
    def test_negative_params_rejected(self):
        with pytest.raises(CostModelError):
            LogPProfile("bad", latency=-1, overhead=0, gap=0)

    def test_from_bsp_machine(self):
        profile = from_bsp_machine(SGI, 4)
        assert profile.latency == pytest.approx(SGI.L(4) / 4)
        assert profile.gap == pytest.approx(SGI.g(4) * 4)
        assert profile.overhead == pytest.approx(profile.gap / 2)

    def test_barrier_cost_positive(self):
        assert barrier_cost(from_bsp_machine(CENJU, 8)) > 0


class TestPrediction:
    def test_more_messages_cost_more(self):
        profile = from_bsp_machine(SGI, 4)
        # Zero out measured work so only the communication terms compare
        # (their difference is microseconds — smaller than W noise).
        few = predict_seconds_logp(stats_with(1, 1).scaled(0.0), profile)
        many = predict_seconds_logp(stats_with(3, 1).scaled(0.0), profile)
        assert many > few

    def test_payload_size_is_invisible_to_logp(self):
        """LogP's defining blind spot: message bytes don't matter."""
        profile = from_bsp_machine(SGI, 4)
        small = stats_with(2, 1)
        large = stats_with(2, 1000)
        t_small = predict_seconds_logp(small, profile)
        t_large = predict_seconds_logp(large, profile)
        # Only measured work differs; communication terms are identical.
        comm_small = t_small - small.W
        comm_large = t_large - large.W
        assert comm_small == pytest.approx(comm_large)

    def test_too_many_procs_rejected(self):
        profile = from_bsp_machine(SGI, 16)
        small_profile = LogPProfile("tiny", 1e-6, 1e-6, 1e-6, max_procs=2)
        stats = stats_with(1, 1, p=4)
        predict_seconds_logp(stats, profile)  # fine
        with pytest.raises(CostModelError):
            predict_seconds_logp(stats, small_profile)


class TestDisagreement:
    def test_block_traffic_disagrees_more_than_records(self):
        records = stats_with(4, 1)      # 4 tiny messages
        blocks = stats_with(1, 4096)    # 1 huge message
        d_records = model_disagreement(records, SGI, work_scale=1.0)
        d_blocks = model_disagreement(blocks, SGI, work_scale=1.0)
        assert d_blocks > d_records
        assert d_blocks > 2.0
