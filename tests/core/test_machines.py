"""Tests for machine profiles (Figure 2.1) and backend calibration."""

import pytest

from repro.core.errors import CostModelError
from repro.core.machines import (
    CENJU,
    PAPER_MACHINES,
    PC_LAN,
    SGI,
    MachineProfile,
    calibrate_backend,
    get_machine,
)

US = 1e-6


class TestFigure21Values:
    """The profiles must carry the paper's table verbatim."""

    @pytest.mark.parametrize(
        "machine,nprocs,g_us,L_us",
        [
            (SGI, 1, 0.77, 3), (SGI, 2, 0.82, 16), (SGI, 4, 0.88, 29),
            (SGI, 8, 0.97, 52), (SGI, 9, 1.0, 57), (SGI, 16, 0.95, 105),
            (CENJU, 1, 2.2, 130), (CENJU, 2, 2.2, 260), (CENJU, 4, 2.2, 470),
            (CENJU, 8, 2.5, 1470), (CENJU, 9, 2.7, 1680), (CENJU, 16, 3.6, 2880),
            (PC_LAN, 1, 0.92, 2), (PC_LAN, 2, 3.3, 540),
            (PC_LAN, 4, 4.8, 1556), (PC_LAN, 8, 8.6, 3715),
        ],
    )
    def test_table_entry(self, machine, nprocs, g_us, L_us):
        assert machine.g(nprocs) == pytest.approx(g_us * US)
        assert machine.L(nprocs) == pytest.approx(L_us * US)

    def test_max_procs(self):
        assert SGI.max_procs == 16
        assert CENJU.max_procs == 16
        assert PC_LAN.max_procs == 8

    def test_registry(self):
        assert set(PAPER_MACHINES) == {"SGI", "Cenju", "PC-LAN"}
        assert get_machine("sgi") is SGI
        assert get_machine("pc-lan") is PC_LAN
        with pytest.raises(CostModelError):
            get_machine("cray")


class TestInterpolation:
    def test_exact_values_preferred(self):
        assert SGI.g(8) == pytest.approx(0.97 * US)

    def test_between_rows_is_monotone_for_L(self):
        # L grows with p on every paper machine; interpolation must too.
        for machine in (SGI, CENJU):
            l3 = machine.L(3)
            assert machine.L(2) < l3 < machine.L(4)

    def test_beyond_max_raises(self):
        with pytest.raises(CostModelError):
            PC_LAN.g(16)

    def test_nonpositive_nprocs_raises(self):
        with pytest.raises(CostModelError):
            SGI.L(0)


class TestProfileValidation:
    def test_mismatched_tables_raise(self):
        with pytest.raises(CostModelError):
            MachineProfile("bad", g_us={1: 1.0}, L_us={2: 1.0})

    def test_empty_table_raises(self):
        with pytest.raises(CostModelError):
            MachineProfile("bad", g_us={}, L_us={})

    def test_with_work_scale(self):
        fast = SGI.with_work_scale(0.5)
        assert fast.work_scale == 0.5
        assert fast.g(4) == SGI.g(4)


class TestCalibration:
    """Measure g and L of our own backends, the paper's way."""

    @pytest.mark.parametrize("backend", ["threads", "simulator"])
    def test_calibrate_returns_positive_parameters(self, backend):
        cal = calibrate_backend(
            backend, 2, latency_rounds=5, bandwidth_rounds=2, packets_each=50
        )
        assert cal.L_us > 0
        assert cal.g_us >= 0
        assert cal.nprocs == 2

    def test_single_processor_calibration(self):
        cal = calibrate_backend(
            "simulator", 1, latency_rounds=5, bandwidth_rounds=2, packets_each=50
        )
        assert cal.L_us > 0

    def test_as_profile(self):
        cal = calibrate_backend(
            "simulator", 2, latency_rounds=3, bandwidth_rounds=1, packets_each=20
        )
        profile = cal.as_profile("local")
        assert profile.supports(2)
        assert not profile.supports(3)
        assert profile.L(2) == pytest.approx(cal.L_us * US)


class TestExtrapolation:
    """The Section 5 what-if profiles for larger machines."""

    def test_keeps_measured_rows(self):
        from repro.core.machines import extrapolated

        big = extrapolated(SGI, [32, 64])
        for p in (1, 2, 4, 8, 16):
            assert big.g(p) == SGI.g(p)
            assert big.L(p) == SGI.L(p)

    def test_extends_monotonically(self):
        from repro.core.machines import extrapolated

        big = extrapolated(CENJU, [32, 64])
        assert big.supports(64)
        assert big.L(64) > big.L(32) > big.L(16)
        assert big.g(64) >= big.g(16)

    def test_no_new_points_returns_same(self):
        from repro.core.machines import extrapolated

        assert extrapolated(SGI, [8]) is SGI

    def test_name_marks_extrapolation(self):
        from repro.core.machines import extrapolated

        assert extrapolated(PC_LAN, [16]).name == "PC-LAN+"
