"""Checkpoint store and protocol invariants (no multi-process backends).

The store contract that crash recovery stands on:

* shards round-trip byte-for-byte, and ``latest_step`` only ever names a
  step whose every shard validates (property-tested over random shard
  sets and damage schedules);
* retention keeps exactly the newest ``keep`` steps per rank;
* a damaged newest checkpoint *demotes* to the previous complete one —
  truncation and corruption are detected by checksum, never resumed from;
* the ``Bsp.checkpoint()`` protocol enforces its boundary discipline
  (no queued sends at capture, restore only before the first sync);
* ``bsp_run`` rejects a process-local store on multi-process backends.

Backends-level crash/resume identity lives in
``tests/backends/test_recovery.py``.
"""

import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bsp_run
from repro import faults
from repro.checkpoint import (
    CheckpointConfig,
    CheckpointedProgram,
    DiskCheckpointStore,
    MemoryCheckpointStore,
    Snapshot,
    decode_snapshot,
    encode_snapshot,
)
from repro.core.errors import (
    BspConfigError,
    CheckpointError,
    VirtualProcessorError,
)


def _stores(keep=3):
    """Both store implementations, each in a fresh namespace."""
    tmp = tempfile.mkdtemp(prefix="ckpt-store-")
    return [
        (MemoryCheckpointStore(keep=keep), None),
        (DiskCheckpointStore(tmp, keep=keep), tmp),
    ]


def _cleanup(tmp):
    if tmp is not None:
        shutil.rmtree(tmp, ignore_errors=True)


def ring_program(bsp, rounds=4):
    total = 0
    start = 0
    restored = bsp.resume_state()
    if restored is not None:
        start, total = restored
    for r in range(start, rounds):
        bsp.checkpoint(lambda: (r, total))
        bsp.send((bsp.pid + 1) % bsp.nprocs, bsp.pid + r)
        bsp.sync()
        total += sum(pkt.payload for pkt in bsp.packets())
    return total


def eager_send_program(bsp):
    bsp.send((bsp.pid + 1) % bsp.nprocs, bsp.pid)
    bsp.checkpoint(lambda: None)  # must raise: a packet is queued
    bsp.sync()
    return True


class TestStoreRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(shards=st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 2),
                  st.binary(min_size=0, max_size=64)),
        min_size=1, max_size=12))
    def test_round_trip_and_latest_step(self, shards):
        """Whatever lands in the store, ``latest_step`` is the newest step
        with a valid shard for *all* ranks, and those bytes round-trip."""
        nprocs = 3
        for store, tmp in _stores(keep=10):
            try:
                latest = {}  # (step, pid) -> blob, newest write wins
                for step, pid, blob in shards:
                    store.save_shard("rt", step, pid, nprocs, blob)
                    latest[(step, pid)] = blob
                by_step = {}
                for (step, pid), blob in latest.items():
                    by_step.setdefault(step, {})[pid] = blob
                complete = [s for s, pids in by_step.items()
                            if len(pids) == nprocs]
                expected = max(complete) if complete else None
                assert store.latest_step("rt", nprocs) == expected
                if expected is not None:
                    for pid in range(nprocs):
                        got = store.load_shard("rt", expected, pid)
                        assert got == by_step[expected][pid]
            finally:
                _cleanup(tmp)

    @settings(max_examples=25, deadline=None)
    @given(nsteps=st.integers(1, 8), keep=st.integers(1, 4))
    def test_retention_keeps_newest(self, nsteps, keep):
        for store, tmp in _stores(keep=keep):
            try:
                for step in range(nsteps):
                    for pid in range(2):
                        store.save_shard("ret", step, pid, 2, b"x%d" % step)
                kept = store.complete_steps("ret", 2)
                assert kept == list(range(max(0, nsteps - keep), nsteps))
            finally:
                _cleanup(tmp)

    def test_clear_is_per_run_key(self):
        for store, tmp in _stores():
            try:
                store.save_shard("a", 0, 0, 1, b"one")
                store.save_shard("b", 0, 0, 1, b"two")
                store.clear("a")
                assert store.latest_step("a", 1) is None
                assert store.load_shard("b", 0, 0) == b"two"
            finally:
                _cleanup(tmp)

    def test_missing_shard_raises(self):
        for store, tmp in _stores():
            try:
                with pytest.raises(CheckpointError):
                    store.load_shard("none", 0, 0)
            finally:
                _cleanup(tmp)


class TestDamageDetection:
    @pytest.mark.parametrize("kind", sorted(faults.CHECKPOINT_KINDS))
    def test_damaged_newest_demotes_to_previous(self, kind):
        """The fallback ladder: a bad step 2 resolves to step 1."""
        plan = faults.FaultPlan([faults.Fault(kind, pid=1, step=2)])
        for store, tmp in _stores():
            try:
                with faults.injected(plan):
                    for step in (0, 1, 2):
                        for pid in (0, 1):
                            store.save_shard("dmg", step, pid, 2,
                                             b"payload-%d-%d" % (step, pid))
                assert store.latest_step("dmg", 2) == 1
                with pytest.raises(CheckpointError):
                    store.load_shard("dmg", 2, 1)
                # The undamaged sibling shard still validates.
                assert store.load_shard("dmg", 2, 0) == b"payload-2-0"
            finally:
                _cleanup(tmp)

    @settings(max_examples=20, deadline=None)
    @given(damage=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 1),
                  st.sampled_from(sorted(faults.CHECKPOINT_KINDS))),
        min_size=1, max_size=6, unique_by=lambda d: (d[0], d[1])))
    def test_any_damage_schedule_never_resumes_from_garbage(self, damage):
        """No damaged step is ever named by ``latest_step``, and whatever
        step it does name loads cleanly for every rank."""
        plan = faults.FaultPlan(
            [faults.Fault(kind, pid=pid, step=step)
             for step, pid, kind in damage])
        damaged_steps = {step for step, _pid, _kind in damage}
        for store, tmp in _stores():
            try:
                with faults.injected(plan):
                    for step in (0, 1, 2):
                        for pid in (0, 1):
                            store.save_shard("prop", step, pid, 2,
                                             b"p-%d-%d" % (step, pid))
                latest = store.latest_step("prop", 2)
                clean = [s for s in (0, 1, 2) if s not in damaged_steps]
                assert latest == (max(clean) if clean else None)
                if latest is not None:
                    for pid in (0, 1):
                        store.load_shard("prop", latest, pid)
            finally:
                _cleanup(tmp)

    def test_disk_nprocs_mismatch_is_incomplete(self):
        """Shards recorded for a different world size never complete."""
        tmp = tempfile.mkdtemp(prefix="ckpt-nprocs-")
        try:
            store = DiskCheckpointStore(tmp)
            store.save_shard("np", 0, 0, 2, b"a")
            store.save_shard("np", 0, 1, 3, b"b")  # wrong world size
            assert store.latest_step("np", 2) is None
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    def test_disk_orphan_temp_swept_and_ignored(self):
        tmp = tempfile.mkdtemp(prefix="ckpt-tmp-")
        try:
            store = DiskCheckpointStore(tmp)
            store.save_shard("orphan", 0, 0, 1, b"good")
            step_dir = store._step_dir("orphan", 0)
            orphan = f"{step_dir}/.tmp-rank-0001-99999"
            with open(orphan, "wb") as fh:
                fh.write(b"half a shard")
            assert store.latest_step("orphan", 1) == 0
            import os
            assert not os.path.exists(orphan)  # steps() swept it
        finally:
            shutil.rmtree(tmp, ignore_errors=True)


class TestSnapshotCodec:
    def test_round_trip(self):
        snap = Snapshot(step=3, pid=1, nprocs=4, state={"x": 1},
                        inbox=[1, 2], samples=[object.__new__(object)])
        out = decode_snapshot(encode_snapshot(snap))
        assert (out.step, out.pid, out.nprocs, out.state, out.inbox) == \
            (3, 1, 4, {"x": 1}, [1, 2])

    def test_garbage_blob_raises(self):
        with pytest.raises(CheckpointError):
            decode_snapshot(b"\x80\x04 definitely not a pickle")

    def test_wrong_type_raises(self):
        import pickle
        with pytest.raises(CheckpointError, match="not a Snapshot"):
            decode_snapshot(pickle.dumps({"step": 0}))


class TestConfigValidation:
    def test_rejects_non_store(self):
        with pytest.raises(BspConfigError):
            CheckpointConfig(store={})

    @pytest.mark.parametrize("every", [0, -1, 1.5, "2"])
    def test_rejects_bad_every(self, every):
        with pytest.raises(BspConfigError):
            CheckpointConfig(store=MemoryCheckpointStore(), every=every)

    @pytest.mark.parametrize("run_key", ["", "a/b"])
    def test_rejects_bad_run_key(self, run_key):
        with pytest.raises(BspConfigError):
            CheckpointConfig(store=MemoryCheckpointStore(), run_key=run_key)

    @pytest.mark.parametrize("keep", [0, -2, 1.5])
    def test_rejects_bad_keep(self, keep):
        with pytest.raises(BspConfigError):
            MemoryCheckpointStore(keep=keep)

    def test_memory_store_rejected_on_process_backends(self):
        cfg = CheckpointConfig(store=MemoryCheckpointStore())
        with pytest.raises(BspConfigError, match="crosses the fork"):
            bsp_run(ring_program, 2, backend="processes", checkpoint=cfg)

    def test_checkpoint_must_be_config(self):
        with pytest.raises(BspConfigError, match="CheckpointConfig"):
            bsp_run(ring_program, 2, checkpoint=MemoryCheckpointStore())


class TestProtocol:
    def test_checkpoint_with_queued_sends_raises(self):
        cfg = CheckpointConfig(store=MemoryCheckpointStore())
        with pytest.raises(VirtualProcessorError,
                           match="superstep boundary"):
            bsp_run(eager_send_program, 2, checkpoint=cfg)

    def test_checkpoint_noop_without_config(self):
        run = bsp_run(ring_program, 2)
        golden = bsp_run(ring_program, 2)
        assert run.results == golden.results
        assert run.stats.h_series == golden.stats.h_series

    def test_every_k_skips_intermediate_steps(self):
        store = MemoryCheckpointStore(keep=10)
        cfg = CheckpointConfig(store=store, every=2, run_key="k2")
        bsp_run(ring_program, 2, args=(6,), checkpoint=cfg)
        steps = store.complete_steps("k2", 2)
        assert steps == [0, 2, 4]

    def test_fresh_run_clears_stale_key(self):
        store = MemoryCheckpointStore()
        store.save_shard("stale", 7, 0, 2, b"old")
        cfg = CheckpointConfig(store=store, run_key="stale")
        bsp_run(ring_program, 2, args=(2,), checkpoint=cfg)
        assert 7 not in store.steps("stale")

    def test_simulator_resume_identity(self):
        """Stop-and-resume on the simulator: a second process (modelled by
        a fresh ``bsp_run`` with ``resume=True``) reproduces the golden
        results and the (S, H, h-series, m-series) ledger exactly."""
        golden = bsp_run(ring_program, 3, args=(5,))
        store = MemoryCheckpointStore(keep=10)
        cfg = CheckpointConfig(store=store, run_key="sim")
        bsp_run(ring_program, 3, args=(5,), checkpoint=cfg)
        resumed = bsp_run(
            ring_program, 3, args=(5,),
            checkpoint=CheckpointConfig(store=store, run_key="sim",
                                        resume=True))
        assert resumed.results == golden.results
        assert resumed.stats.S == golden.stats.S
        assert resumed.stats.H == golden.stats.H
        assert resumed.stats.h_series == golden.stats.h_series
        assert resumed.stats.m_series == golden.stats.m_series

    def test_resume_shard_identity_mismatch_raises(self):
        store = MemoryCheckpointStore()
        cfg = CheckpointConfig(store=store, run_key="mismatch")
        snap = Snapshot(step=9, pid=0, nprocs=2, state=(0, 0), inbox=[],
                        samples=[])
        store.save_shard("mismatch", 1, 0, 2, encode_snapshot(snap))
        wrapped = CheckpointedProgram(ring_program, cfg, resume_step=1)
        with pytest.raises(VirtualProcessorError,
                           match="checkpoint shard mismatch"):
            bsp_run(wrapped, 2)
