"""Tests for the BSP cost function T = W + gH + LS."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cost import (
    breakdown,
    efficiency,
    modeled_speedup,
    predict_comm_seconds,
    predict_seconds,
    superstep_costs,
    work_speedup,
)
from repro.core.errors import CostModelError
from repro.core.machines import CENJU, PC_LAN, SGI, MachineProfile
from repro.core.stats import ProgramStats, VPLedger


def stats_for(nprocs, rows_per_pid):
    ledgers = []
    for pid in range(nprocs):
        ledger = VPLedger(pid)
        for work, h_sent, h_recv in rows_per_pid[pid]:
            s = ledger.begin_superstep()
            s.work_seconds, s.h_sent, s.h_recv = work, h_sent, h_recv
        ledgers.append(ledger)
    return ProgramStats.from_ledgers(ledgers)


@pytest.fixture
def simple_stats():
    # p=2, two supersteps: W = 1.0 + 0.5, H = 10 + 4, S = 2.
    return stats_for(
        2,
        [
            [(1.0, 10, 2), (0.5, 4, 4)],
            [(0.8, 2, 10), (0.2, 4, 4)],
        ],
    )


class TestEquationOne:
    def test_exact_formula(self, simple_stats):
        machine = MachineProfile("m", g_us={2: 2.0}, L_us={2: 100.0})
        g, L = 2.0e-6, 100.0e-6
        expected = simple_stats.W + g * simple_stats.H + L * simple_stats.S
        assert predict_seconds(simple_stats, machine) == pytest.approx(expected)

    def test_breakdown_sums_to_total(self, simple_stats):
        parts = breakdown(simple_stats, SGI)
        assert parts.total == pytest.approx(
            parts.work + parts.bandwidth + parts.latency
        )
        assert parts.comm == pytest.approx(parts.bandwidth + parts.latency)

    def test_comm_prediction(self, simple_stats):
        parts = breakdown(simple_stats, CENJU)
        assert predict_comm_seconds(simple_stats, CENJU) == pytest.approx(parts.comm)

    def test_superstep_costs_sum_to_prediction(self, simple_stats):
        costs = superstep_costs(simple_stats, SGI)
        assert len(costs) == simple_stats.S
        assert sum(costs) == pytest.approx(predict_seconds(simple_stats, SGI))

    def test_work_scale_applies_only_to_work(self, simple_stats):
        base = breakdown(simple_stats, SGI, work_scale=1.0)
        scaled = breakdown(simple_stats, SGI, work_scale=2.0)
        assert scaled.work == pytest.approx(2 * base.work)
        assert scaled.bandwidth == pytest.approx(base.bandwidth)
        assert scaled.latency == pytest.approx(base.latency)

    def test_machine_default_work_scale_used(self, simple_stats):
        # PC_LAN's default scale is 0.67.
        parts = breakdown(simple_stats, PC_LAN)
        assert parts.work == pytest.approx(simple_stats.W * PC_LAN.work_scale)

    def test_unsupported_nprocs_raises(self, simple_stats):
        tiny = MachineProfile("tiny", g_us={1: 1.0}, L_us={1: 1.0})
        with pytest.raises(CostModelError):
            predict_seconds(simple_stats, tiny)
        with pytest.raises(CostModelError):
            superstep_costs(simple_stats, tiny)

    def test_nonpositive_work_scale_raises(self, simple_stats):
        with pytest.raises(CostModelError):
            breakdown(simple_stats, SGI, work_scale=0.0)


class TestSpeedups:
    def test_modeled_speedup_basic(self):
        seq = stats_for(1, [[(8.0, 0, 0)]])
        par = stats_for(4, [[(2.0, 5, 5)] for _ in range(4)])
        s = modeled_speedup(seq, par, SGI)
        t1 = predict_seconds(seq, SGI)
        tp = predict_seconds(par, SGI)
        assert s == pytest.approx(t1 / tp)
        assert 1.0 < s <= 4.0

    def test_requires_sequential_baseline(self):
        par = stats_for(2, [[(1.0, 0, 0)], [(1.0, 0, 0)]])
        with pytest.raises(CostModelError):
            modeled_speedup(par, par, SGI)

    def test_high_latency_machine_lowers_speedup(self):
        """Same program, higher L => lower modeled speed-up (ocean lesson)."""
        seq = stats_for(1, [[(4.0, 0, 0)] * 50])
        rows = [[(1.0 / 50, 20, 20)] * 50 for _ in range(4)]
        par = stats_for(4, rows)
        # Scale work up so the comparison is about comm terms only.
        par = par.scaled(50.0)
        assert modeled_speedup(seq, par, SGI) > modeled_speedup(seq, par, CENJU)

    def test_work_speedup_never_exceeds_p(self):
        par = stats_for(4, [[(1.0, 0, 0)], [(0.5, 0, 0)], [(0.1, 0, 0)], [(0.9, 0, 0)]])
        ws = work_speedup(par)
        assert 0 < ws <= 4.0
        assert ws == pytest.approx(2.5 / 1.0)

    def test_efficiency(self):
        seq = stats_for(1, [[(8.0, 0, 0)]])
        par = stats_for(4, [[(2.0, 0, 0)] for _ in range(4)])
        assert efficiency(seq, par, SGI) == pytest.approx(
            modeled_speedup(seq, par, SGI) / 4
        )

    @given(
        w=st.floats(min_value=0.001, max_value=100),
        h=st.integers(min_value=0, max_value=10**6),
        reps=st.integers(min_value=1, max_value=20),
    )
    def test_property_cost_is_monotone_in_each_term(self, w, h, reps):
        base = stats_for(1, [[(w, h, 0)] * reps])
        more_work = stats_for(1, [[(w * 2, h, 0)] * reps])
        more_traffic = stats_for(1, [[(w, h + 1, 0)] * reps])
        more_steps = stats_for(1, [[(w, h, 0)] * (reps + 1)])
        t = predict_seconds(base, CENJU)
        assert predict_seconds(more_work, CENJU) > t
        assert predict_seconds(more_traffic, CENJU) > t
        assert predict_seconds(more_steps, CENJU) > t
