"""Tests for ProgramStats extensions: M, trimmed(), per-step charges."""

import pytest

from repro.core.errors import BspUsageError
from repro.core.stats import ProgramStats, VPLedger


def ledger(pid, rows):
    """rows: (work, charged, h_sent, h_recv, msgs_sent, msgs_recv)."""
    led = VPLedger(pid)
    for work, charged, hs, hr, ms, mr in rows:
        s = led.begin_superstep()
        s.work_seconds, s.charged = work, charged
        s.h_sent, s.h_recv = hs, hr
        s.msgs_sent, s.msgs_recv = ms, mr
    return led


@pytest.fixture
def stats():
    l0 = ledger(0, [(1.0, 10, 4, 0, 2, 0), (2.0, 20, 0, 4, 0, 2)])
    l1 = ledger(1, [(0.5, 30, 0, 4, 0, 2), (3.0, 5, 4, 0, 2, 0)])
    return ProgramStats.from_ledgers([l0, l1])


class TestMessageCount:
    def test_m_is_max_messages(self, stats):
        assert stats.supersteps[0].m == 2
        assert stats.M == 4

    def test_m_differs_from_h(self, stats):
        # 4 packets but only 2 messages per superstep.
        assert stats.H == 8
        assert stats.M == 4


class TestTrimmed:
    def test_keeps_tail(self, stats):
        tail = stats.trimmed(1)
        assert tail.S == 1
        assert tail.W == pytest.approx(3.0)
        assert tail.total_work == pytest.approx(5.0)
        assert tail.total_charged == pytest.approx(25.0)
        assert tail.supersteps[0].index == 0  # reindexed

    def test_slice_range(self, stats):
        window = stats.trimmed(0, 1)
        assert window.S == 1
        assert window.H == 4

    def test_empty_trim_rejected(self, stats):
        with pytest.raises(BspUsageError):
            stats.trimmed(2)

    def test_full_trim_is_identity(self, stats):
        same = stats.trimmed(0)
        assert same.S == stats.S
        assert same.W == pytest.approx(stats.W)
        assert same.total_charged == pytest.approx(stats.total_charged)


class TestPerStepCharges:
    def test_total_charged_per_superstep(self, stats):
        assert stats.supersteps[0].total_charged == pytest.approx(40.0)
        assert stats.supersteps[1].total_charged == pytest.approx(25.0)
        assert stats.total_charged == pytest.approx(65.0)

    def test_charged_depth_is_max_combine(self, stats):
        assert stats.charged_depth == pytest.approx(30 + 20)
