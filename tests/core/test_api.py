"""Unit tests for the Bsp context (driven with a loopback channel)."""

import pytest

from repro.core.api import Bsp
from repro.core.errors import BspUsageError
from repro.core.packets import Packet


class LoopbackChannel:
    """Delivers every packet straight back to the single processor."""

    def __init__(self):
        self.exchanges = 0

    def exchange(self, pid, step, outbox):
        self.exchanges += 1
        return [p for p in outbox if p.dst == pid]


def make_bsp():
    return Bsp(0, 1, LoopbackChannel())


class TestIdentity:
    def test_properties(self):
        bsp = Bsp(2, 4, LoopbackChannel())
        assert bsp.pid == 2
        assert bsp.nprocs == 4
        assert bsp.superstep == 0

    def test_bad_pid(self):
        with pytest.raises(BspUsageError):
            Bsp(4, 4, LoopbackChannel())
        with pytest.raises(BspUsageError):
            Bsp(-1, 4, LoopbackChannel())


class TestSendReceive:
    def test_payloads_iterator(self):
        bsp = make_bsp()
        bsp.send(0, "a")
        bsp.send(0, "b")
        bsp.sync()
        assert list(bsp.payloads()) == ["a", "b"]

    def test_get_pkt_returns_packet_objects(self):
        bsp = make_bsp()
        bsp.send(0, 123)
        bsp.sync()
        pkt = bsp.get_pkt()
        assert isinstance(pkt, Packet)
        assert pkt.payload == 123
        assert pkt.src == 0
        assert bsp.get_pkt() is None

    def test_superstep_counter_advances(self):
        bsp = make_bsp()
        assert bsp.superstep == 0
        bsp.sync()
        bsp.sync()
        assert bsp.superstep == 2

    def test_seq_resets_each_superstep(self):
        bsp = make_bsp()
        bsp.send(0, "x")
        bsp.sync()
        bsp.send(0, "y")
        bsp.sync()
        # Both packets were the first of their superstep.
        assert bsp.get_pkt().seq == 0

    def test_broadcast_send(self):
        sent = []

        class Recorder(LoopbackChannel):
            def exchange(self, pid, step, outbox):
                sent.extend(outbox)
                return []

        bsp = Bsp(1, 4, Recorder())
        bsp.broadcast_send("m")
        bsp.sync()
        assert sorted(p.dst for p in sent) == [0, 2, 3]
        sent.clear()
        bsp.broadcast_send("m", include_self=True)
        bsp.sync()
        assert sorted(p.dst for p in sent) == [0, 1, 2, 3]

    def test_send_validates_destination(self):
        bsp = make_bsp()
        with pytest.raises(BspUsageError):
            bsp.send(1, "x")
        with pytest.raises(BspUsageError):
            bsp.send(-1, "x")

    def test_send_pkt_alias(self):
        bsp = make_bsp()
        bsp.send_pkt(0, "via-alias")
        bsp.synch()
        assert [p.payload for p in bsp.packets()] == ["via-alias"]


class TestLifecycle:
    def test_finish_returns_ledger(self):
        bsp = make_bsp()
        bsp.sync()
        ledger = bsp._finish()
        assert ledger.nsupersteps == 2

    def test_finish_twice_rejected(self):
        bsp = make_bsp()
        bsp._finish()
        with pytest.raises(BspUsageError):
            bsp._finish()

    def test_use_after_finish_rejected(self):
        bsp = make_bsp()
        bsp._finish()
        with pytest.raises(BspUsageError):
            bsp.send(0, "late")
        with pytest.raises(BspUsageError):
            bsp.sync()
        with pytest.raises(BspUsageError):
            bsp.get_pkt()

    def test_pending_sends_at_finish_rejected(self):
        bsp = make_bsp()
        bsp.send(0, "never synced")
        with pytest.raises(BspUsageError, match="unsent"):
            bsp._finish()


class TestAccountingHooks:
    def test_h_accumulates_per_superstep(self):
        bsp = make_bsp()
        bsp.send(0, b"x" * 32)  # 2 packets
        bsp.send(0, b"x" * 16)  # 1 packet
        bsp.sync()
        ledger = bsp._finish()
        assert ledger.samples[0].h_sent == 3
        assert ledger.samples[0].h_recv == 3
        assert ledger.samples[0].msgs_sent == 2

    def test_charge_accumulates(self):
        bsp = make_bsp()
        bsp.charge(5)
        bsp.charge(2.5)
        bsp.sync()
        bsp.charge(1)
        ledger = bsp._finish()
        assert ledger.samples[0].charged == 7.5
        assert ledger.samples[1].charged == 1
        assert ledger.total_charged == 8.5

    def test_off_clock_excludes_block(self):
        import time

        bsp = make_bsp()
        with bsp.off_clock():
            time.sleep(0.03)
        ledger = bsp._finish()
        assert ledger.total_work_seconds < 0.03

    def test_work_attributed_to_correct_superstep(self):
        import time

        bsp = make_bsp()
        time.sleep(0.012)
        bsp.sync()
        ledger = bsp._finish()
        assert ledger.samples[0].work_seconds >= 0.01
        assert ledger.samples[1].work_seconds < 0.01
