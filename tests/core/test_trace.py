"""Tests for the superstep tracing/inspection helpers."""

from repro import CENJU, SGI, bsp_run
from repro.util import (
    compare_machines,
    hotspots,
    superstep_table,
    to_csv,
    w_profile_table,
)


def make_stats():
    def program(bsp):
        bsp.charge(10)
        bsp.send((bsp.pid + 1) % bsp.nprocs, b"x" * 160)  # h=10
        bsp.sync()
        list(bsp.packets())
        bsp.sync()

    return bsp_run(program, 4).stats


class TestSuperstepTable:
    def test_contains_rows_and_summary(self):
        stats = make_stats()
        text = superstep_table(stats)
        assert "per-superstep profile" in text
        assert "p=4" in text
        assert text.count("\n") >= stats.S + 2

    def test_limit_elides(self):
        def program(bsp):
            for _ in range(30):
                bsp.sync()

        stats = bsp_run(program, 2).stats
        text = superstep_table(stats, limit=5)
        assert "more supersteps" in text


class TestCsv:
    def test_round_trippable_floats(self):
        stats = make_stats()
        text = to_csv(stats)
        lines = text.strip().splitlines()
        assert len(lines) == stats.S + 1
        header = lines[0].split(",")
        first = lines[1].split(",")
        assert len(first) == len(header)
        row = dict(zip(header, first))
        assert int(row["h"]) == 10
        assert float(row["charged"]) == 10.0


class TestHotspots:
    def test_orders_by_cost_and_names_dominant_term(self):
        stats = make_stats()
        spots = hotspots(stats, CENJU, top=3)
        assert len(spots) == 3
        costs = [cost for _, cost, _ in spots]
        assert costs == sorted(costs, reverse=True)
        # On the Cenju, L = 2.9ms at p=4... dominant should be latency
        # for the empty supersteps.
        assert any(term == "latency" for _, _, term in spots)


class TestWProfileTable:
    def test_measured_beside_predicted(self):
        stats = make_stats()
        text = w_profile_table(stats, host_to_sgi=2.0, use_charged=True)
        assert "measured w (ms)" in text
        assert "pred W (ms)" in text
        # Superstep 0 charged 10 units; at scale 2.0 the predicted W is
        # 20 s = 20000 ms, rendered without decimals at that magnitude.
        assert "20000" in text
        assert "total" in text

    def test_measured_work_model(self):
        stats = make_stats()
        text = w_profile_table(stats, host_to_sgi=1.0, use_charged=False)
        # Under the measured model pred W mirrors the w column (same
        # scale 1.0), so the total row predicts stats.W.
        last = text.strip().splitlines()[-1].split()
        assert last[0] == "total"
        assert float(last[1]) == float(last[3])

    def test_limit_elides_but_total_covers_all(self):
        def program(bsp):
            for _ in range(30):
                bsp.charge(1)
                bsp.sync()

        stats = bsp_run(program, 2).stats
        text = w_profile_table(stats, limit=5)
        assert "more supersteps" in text
        assert "total" in text


class TestCompareMachines:
    def test_includes_all_machines(self):
        stats = make_stats()
        text = compare_machines(stats, [SGI, CENJU])
        assert "SGI" in text and "Cenju" in text
        assert "dominant" in text

    def test_unsupported_machine_dashes(self):
        from repro import PC_LAN

        def program(bsp):
            bsp.sync()

        stats = bsp_run(program, 16).stats
        text = compare_machines(stats, [PC_LAN])
        assert "-" in text
