"""Unit and property tests for packet encoding and h-unit accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import PacketError
from repro.core.packets import (
    PACKET_BYTES,
    Packet,
    PacketCodec,
    delivery_order,
    h_units,
)


class TestHUnits:
    def test_minimum_is_one_packet(self):
        assert h_units(b"") == 1
        assert h_units(None) == 1
        assert h_units(0) == 1

    def test_bytes_rounding(self):
        assert h_units(b"x" * 16) == 1
        assert h_units(b"x" * 17) == 2
        assert h_units(b"x" * 32) == 2
        assert h_units(b"x" * 33) == 3

    def test_numpy_array_uses_nbytes(self):
        arr = np.zeros(4, dtype=np.float64)  # 32 bytes
        assert h_units(arr) == 2

    def test_numpy_scalar(self):
        assert h_units(np.float64(1.5)) == 1

    def test_scalars_are_one_word(self):
        for value in (True, 7, 3.14, 1 + 2j):
            assert h_units(value) == 1

    def test_str_utf8(self):
        assert h_units("a" * 16) == 1
        assert h_units("a" * 17) == 2
        # Multi-byte characters count their encoded size.
        assert h_units("é" * 9) == 2  # 18 UTF-8 bytes

    def test_containers_sum_elements(self):
        # 4 ints -> 32 bytes -> 2 packets.
        assert h_units((1, 2, 3, 4)) == 2
        assert h_units([1, 2, 3, 4]) == 2

    def test_dict_counts_keys_and_values(self):
        assert h_units({1: 2}) == 1        # 16 bytes
        assert h_units({1: 2, 3: 4}) == 2  # 32 bytes

    def test_unknown_object_is_one_packet(self):
        class Thing:
            pass

        assert h_units(Thing()) == 1

    @given(st.binary(min_size=0, max_size=4096))
    def test_bytes_formula(self, data):
        expected = max(1, -(-len(data) // PACKET_BYTES))
        assert h_units(data) == expected


class TestPacket:
    def test_rejects_nonpositive_h(self):
        with pytest.raises(PacketError):
            Packet(src=0, dst=1, payload=b"", h=0)

    def test_delivery_order_by_src_then_seq(self):
        pkts = [
            Packet(src=1, dst=0, payload="b", h=1, seq=0),
            Packet(src=0, dst=0, payload="a2", h=1, seq=1),
            Packet(src=0, dst=0, payload="a1", h=1, seq=0),
        ]
        ordered = delivery_order(pkts)
        assert [p.payload for p in ordered] == ["a1", "a2", "b"]


class TestPacketCodec:
    def test_roundtrip_simple(self):
        codec = PacketCodec()
        frags = codec.encode(b"hello bsp world!")
        out = PacketCodec()
        msgs = [m for f in frags for m in out.feed(f)]
        assert msgs == [b"hello bsp world!"]

    def test_empty_message_roundtrip(self):
        frags = PacketCodec().encode(b"")
        assert len(frags) == 1
        out = PacketCodec()
        assert [m for f in frags for m in out.feed(f)] == [b""]

    def test_all_fragments_are_16_bytes(self):
        frags = PacketCodec().encode(b"z" * 100)
        assert all(len(f) == PACKET_BYTES for f in frags)

    def test_out_of_order_reassembly(self):
        data = bytes(range(200)) * 3
        frags = PacketCodec().encode(data)
        out = PacketCodec()
        msgs = [m for f in reversed(frags) for m in out.feed(f)]
        assert msgs == [data]
        assert out.pending == 0

    def test_interleaved_messages(self):
        codec = PacketCodec()
        f1 = codec.encode(b"a" * 40)
        f2 = codec.encode(b"b" * 40)
        out = PacketCodec()
        msgs = []
        for pair in zip(f1, f2):
            for frag in pair:
                msgs.extend(out.feed(frag))
        assert sorted(msgs) == [b"a" * 40, b"b" * 40]

    def test_rejects_wrong_size(self):
        with pytest.raises(PacketError):
            list(PacketCodec().feed(b"short"))

    def test_rejects_duplicate_fragment(self):
        frags = PacketCodec().encode(b"x" * 40)
        out = PacketCodec()
        list(out.feed(frags[0]))
        with pytest.raises(PacketError):
            list(out.feed(frags[0]))

    def test_rejects_non_bytes(self):
        with pytest.raises(PacketError):
            PacketCodec().encode("not bytes")  # type: ignore[arg-type]

    def test_rejects_corrupt_header(self):
        with pytest.raises(PacketError):
            list(PacketCodec().feed(b"\x00" * PACKET_BYTES))

    @settings(max_examples=60)
    @given(
        messages=st.lists(st.binary(min_size=0, max_size=300), max_size=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_property_roundtrip_any_permutation(self, messages, seed):
        """Any interleaving of fragments reassembles every message."""
        rng = np.random.default_rng(seed)
        codec = PacketCodec()
        frags = [f for msg in messages for f in codec.encode(msg)]
        order = rng.permutation(len(frags))
        out = PacketCodec()
        got = []
        for idx in order:
            got.extend(out.feed(frags[idx]))
        assert sorted(got) == sorted(messages)
        assert out.pending == 0
