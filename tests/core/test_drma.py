"""Tests for the DRMA (Oxford-style one-sided access) extension layer."""

import numpy as np
import pytest

from repro import BspError, bsp_run
from repro.core.drma import Drma

BACKENDS = ["simulator", "threads", "processes"]


class TestPut:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ring_put(self, backend):
        def program(bsp):
            drma = Drma(bsp)
            mine = np.zeros(4)
            h = drma.register(mine)
            right = (bsp.pid + 1) % bsp.nprocs
            drma.put(right, h, [bsp.pid * 10.0, bsp.pid * 10.0 + 1], offset=1)
            drma.sync()
            return mine.tolist()

        run = bsp_run(program, 3, backend=backend)
        for pid, got in enumerate(run.results):
            left = (pid - 1) % 3
            assert got == [0.0, left * 10.0, left * 10.0 + 1, 0.0]

    def test_put_is_buffered(self):
        """Mutating the source after put() must not change what lands."""

        def program(bsp):
            drma = Drma(bsp)
            mine = np.zeros(2)
            h = drma.register(mine)
            staged = np.array([7.0, 8.0])
            drma.put(bsp.pid, h, staged)
            staged[:] = -1.0
            drma.sync()
            return mine.tolist()

        run = bsp_run(program, 2)
        assert run.results == [[7.0, 8.0]] * 2

    def test_conflicting_puts_resolve_by_sender_order(self):
        def program(bsp):
            drma = Drma(bsp)
            mine = np.zeros(1)
            h = drma.register(mine)
            drma.put(0, h, [float(bsp.pid + 1)])
            drma.sync()
            return mine[0]

        run = bsp_run(program, 3)
        # Deterministic delivery: highest sender pid applied last.
        assert run.results[0] == 3.0

    def test_out_of_bounds_put_raises(self):
        def program(bsp):
            drma = Drma(bsp)
            h = drma.register(np.zeros(2))
            drma.put(bsp.pid, h, [1.0, 2.0, 3.0])
            drma.sync()

        with pytest.raises(BspError):
            bsp_run(program, 1)


class TestGet:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_get_neighbor_slice(self, backend):
        def program(bsp):
            drma = Drma(bsp)
            mine = np.arange(5, dtype=float) + 100 * bsp.pid
            h = drma.register(mine)
            left = (bsp.pid - 1) % bsp.nprocs
            future = drma.get(left, h, offset=2, length=2)
            drma.sync()
            return future.value().tolist()

        run = bsp_run(program, 3, backend=backend)
        for pid, got in enumerate(run.results):
            left = (pid - 1) % 3
            assert got == [100.0 * left + 2, 100.0 * left + 3]

    def test_get_before_sync_raises(self):
        def program(bsp):
            drma = Drma(bsp)
            h = drma.register(np.zeros(1))
            future = drma.get(bsp.pid, h)
            future.value()  # too early

        with pytest.raises(BspError):
            bsp_run(program, 1)

    def test_multiple_gets_same_superstep(self):
        def program(bsp):
            drma = Drma(bsp)
            mine = np.array([float(bsp.pid)])
            h = drma.register(mine)
            futures = [
                drma.get(q, h, 0, 1) for q in range(bsp.nprocs)
            ]
            drma.sync()
            return [f.value()[0] for f in futures]

        run = bsp_run(program, 4)
        assert run.results == [[0.0, 1.0, 2.0, 3.0]] * 4

    def test_put_and_get_same_superstep(self):
        """Gets observe the array as of the superstep's *start* boundary,
        i.e. after this superstep's puts are applied (both land at sync)."""

        def program(bsp):
            drma = Drma(bsp)
            mine = np.zeros(1)
            h = drma.register(mine)
            if bsp.pid == 0:
                drma.put(1, h, [42.0])
            future = drma.get(1, h, 0, 1)
            drma.sync()
            return future.value()[0]

        run = bsp_run(program, 2)
        # Puts are applied at the first barrier, replies served after.
        assert run.results == [42.0, 42.0]

    def test_get_costs_two_supersteps(self):
        def program(bsp):
            drma = Drma(bsp)
            h = drma.register(np.zeros(1))
            drma.get(bsp.pid, h)
            drma.sync()

        run = bsp_run(program, 2)
        assert run.stats.S == 3  # 2 for the DRMA sync + final segment


class TestRegistration:
    def test_handles_are_positional(self):
        def program(bsp):
            drma = Drma(bsp)
            a = np.zeros(1)
            b = np.zeros(1)
            ha = drma.register(a)
            hb = drma.register(b)
            peer = (bsp.pid + 1) % bsp.nprocs
            drma.put(peer, hb, [5.0])
            drma.sync()
            return a[0], b[0]

        run = bsp_run(program, 2)
        assert run.results == [(0.0, 5.0)] * 2

    def test_unknown_handle(self):
        def program(bsp):
            drma = Drma(bsp)
            drma.put(0, 3, [1.0])

        with pytest.raises(BspError):
            bsp_run(program, 1)

    def test_non_1d_rejected(self):
        def program(bsp):
            Drma(bsp).register(np.zeros((2, 2)))

        with pytest.raises(BspError):
            bsp_run(program, 1)


class TestDrmaProperties:
    def test_property_random_put_patterns(self):
        """Random puts across processors land exactly once each."""
        import numpy as np
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=15, deadline=None)
        @given(
            seed=st.integers(0, 500),
            p=st.integers(1, 4),
            nputs=st.integers(0, 10),
        )
        def run(seed, p, nputs):
            rng = np.random.default_rng(seed)
            plan = [
                (int(rng.integers(0, p)),       # issuing pid
                 int(rng.integers(0, p)),       # destination
                 int(rng.integers(0, 8)),       # offset
                 float(rng.standard_normal())) # value
                for _ in range(nputs)
            ]

            def program(bsp):
                drma = Drma(bsp)
                mine = np.zeros(8)
                h = drma.register(mine)
                for src, dst, off, val in plan:
                    if src == bsp.pid:
                        drma.put(dst, h, [val], offset=off)
                drma.sync()
                return mine.tolist()

            results = bsp_run(program, p).results
            expected = [np.zeros(8) for _ in range(p)]
            # Delivery order: by sender pid then issue order.
            for src in range(p):
                for s, dst, off, val in plan:
                    if s == src:
                        expected[dst][off] = val
            for got, want in zip(results, expected):
                assert got == want.tolist()

        run()
