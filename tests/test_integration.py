"""Cross-module integration tests: the paper's claims as executable checks.

These tests exercise whole pipelines (app → stats → cost model → paper
comparison) rather than single modules; each one encodes a sentence from
the paper.
"""

import numpy as np
import pytest

from repro import CENJU, PC_LAN, SGI, bsp_run, predict_seconds
from repro.apps.msp import default_sources
from repro.apps.mst import bsp_mst, kruskal
from repro.apps.nbody import bsp_nbody, plummer, simulate_direct
from repro.apps.ocean import bsp_ocean, ocean_sequential
from repro.apps.sssp import bsp_msp, bsp_sssp, dijkstra
from repro.apps.matmul import cannon_matmul
from repro.graphs import geometric_graph, spatial_partition


class TestCrossBackendAgreement:
    """'Portability': a program's results and its (H, S) accounting are
    identical on all three library implementations."""

    def test_all_apps_one_seed(self):
        gg = geometric_graph(120, seed=9)
        owner = spatial_partition(gg.points, 3)
        rng = np.random.default_rng(9)
        a, b = rng.standard_normal((12, 12)), rng.standard_normal((12, 12))
        bodies = plummer(40, seed=9)

        reference = {}
        for backend in ("simulator", "threads", "processes"):
            results = {
                "mst": round(bsp_mst(gg.graph, owner, 3,
                                     backend=backend).weight, 9),
                "sp": bsp_sssp(gg.graph, owner, 3, source=0,
                               backend=backend).dist.sum().round(9),
                "mm": cannon_matmul(a, b, 4, backend=backend).c.sum()
                .round(9),
                "ocean": bsp_ocean(18, 1, 2, backend=backend)
                .state.psi.sum().round(12),
                "nbody": bsp_nbody(bodies, 2, steps=1, theta=0.0,
                                   dt=0.01, backend=backend)
                .bodies.pos.sum().round(9),
            }
            if not reference:
                reference = results
            else:
                assert results == reference, f"{backend} diverged"

    def test_stats_shape_identical_across_backends(self):
        gg = geometric_graph(100, seed=4)
        owner = spatial_partition(gg.points, 3)
        shapes = set()
        for backend in ("simulator", "threads", "processes"):
            stats = bsp_sssp(gg.graph, owner, 3, source=0,
                             backend=backend).stats
            shapes.add((stats.S, stats.H))
        assert len(shapes) == 1


class TestCostModelClaims:
    """Section 4: 'the cost model [is] very reliable in modeling the
    overall behavior of an application, including the prediction of
    breakpoints'."""

    def test_high_latency_hurts_many_superstep_programs_most(self):
        gg = geometric_graph(600, seed=2)
        owner = spatial_partition(gg.points, 8)
        sp_stats = bsp_sssp(gg.graph, owner, 8, source=0,
                            work_factor=5).stats
        bodies = plummer(256, seed=2)
        nb_stats = bsp_nbody(bodies, 8, steps=1, theta=0.9, dt=0.01).stats
        assert sp_stats.S > 4 * nb_stats.S
        # At equal work depth, moving SGI -> PC-LAN (L x71) hurts the
        # many-superstep program far more (Sections 3.2.1 vs 3.4.1).
        def penalty(stats):
            normalized = stats.scaled(0.1 / stats.W)
            return (
                predict_seconds(normalized, PC_LAN, work_scale=1.0)
                / predict_seconds(normalized, SGI, work_scale=1.0)
            )

        assert penalty(sp_stats) > penalty(nb_stats)

    def test_ocean_superstep_count_drives_latency_cost(self):
        stats = bsp_ocean(34, 1, 8).stats
        latency_share = PC_LAN.L(8) * stats.S
        total = predict_seconds(stats, PC_LAN, work_scale=1.0)
        assert latency_share > 0.5 * total

    def test_msp_amortizes_what_sp_cannot(self):
        gg = geometric_graph(800, seed=5)
        owner = spatial_partition(gg.points, 8)
        sources = default_sources(800, nsources=10, seed=5)
        sp = bsp_sssp(gg.graph, owner, 8, source=sources[0]).stats
        msp = bsp_msp(gg.graph, owner, 8, sources).stats
        # 10 computations cost nowhere near 10x the supersteps.
        assert msp.S < 3 * sp.S


class TestSpeedupDefinitionCaveats:
    """Section 1.2: the parallel program may do *less* total work than
    the sequential one; Figure 3.1's parenthesized numbers."""

    def test_nbody_parallel_total_work_close_to_sequential(self):
        bodies = plummer(200, seed=3)
        par = bsp_nbody(bodies, 4, steps=1, theta=0.8, dt=0.01).stats
        seq = bsp_nbody(bodies, 1, steps=1, theta=0.8, dt=0.01).stats
        # Charged work (interactions) varies across layouts but stays
        # within 2x of sequential in either direction.
        ratio = par.total_charged / seq.total_charged
        assert 0.5 < ratio < 2.0

    def test_work_limited_speedup_bounded_by_p(self):
        from repro.core.cost import work_speedup

        gg = geometric_graph(400, seed=7)
        owner = spatial_partition(gg.points, 4)
        stats = bsp_mst(gg.graph, owner, 4).stats
        assert work_speedup(stats) <= 4.0 + 1e-9


class TestEndToEndVerification:
    """Every app validated at a nontrivial scale in one place."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_graph_pipeline(self, seed):
        gg = geometric_graph(500, seed=seed)
        owner = spatial_partition(gg.points, 5)
        assert np.isclose(
            bsp_mst(gg.graph, owner, 5).weight, kruskal(gg.graph).weight
        )
        src = seed * 7
        assert np.allclose(
            bsp_sssp(gg.graph, owner, 5, source=src).dist,
            dijkstra(gg.graph, src),
        )

    def test_ocean_pipeline(self):
        seq = ocean_sequential(34, 3)
        run = bsp_ocean(34, 3, 8)
        assert np.array_equal(
            run.state.psi[1:-1, 1:-1], seq.psi[1:-1, 1:-1]
        )

    def test_nbody_pipeline(self):
        bodies = plummer(80, seed=11)
        run = bsp_nbody(bodies, 4, steps=2, theta=0.0, dt=0.01)
        direct = simulate_direct(bodies, steps=2, dt=0.01)
        assert np.allclose(run.bodies.pos, direct.bodies.pos, atol=1e-9)

    def test_matmul_pipeline(self):
        rng = np.random.default_rng(13)
        a, b = rng.standard_normal((24, 24)), rng.standard_normal((24, 24))
        assert np.allclose(cannon_matmul(a, b, 9).c, a @ b)


class TestSimulatorIsTheMeasurementInstrument:
    """The simulator's serialized W equals total work; concurrent
    backends' wall clock is what's bounded by W (plus overheads)."""

    def test_simulator_total_work_equals_depth_at_p1(self):
        def program(bsp):
            acc = 0
            for i in range(50000):
                acc += i
            bsp.sync()
            return acc

        run = bsp_run(program, 1)
        assert run.stats.W == pytest.approx(run.stats.total_work)

    def test_simulator_wall_at_least_total_work(self):
        def program(bsp):
            acc = 0
            for i in range(20000):
                acc += i * i
            bsp.sync()

        run = bsp_run(program, 4)
        assert run.stats.wall_seconds >= run.stats.total_work * 0.5
