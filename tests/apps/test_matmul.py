"""Tests for the Cannon matrix-multiplication application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.matmul import (
    blocked_matmul,
    cannon_matmul,
    expected_shape,
    grid_side,
    initial_blocks,
    reference_matmul,
)


def random_pair(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


class TestSequential:
    @pytest.mark.parametrize("n,block", [(1, 1), (7, 3), (16, 4), (33, 8),
                                         (48, 64)])
    def test_blocked_matches_blas(self, n, block):
        a, b = random_pair(n, seed=n)
        assert np.allclose(blocked_matmul(a, b, block=block),
                           reference_matmul(a, b))

    def test_rectangular(self):
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((5, 9)), rng.standard_normal((9, 3))
        assert np.allclose(blocked_matmul(a, b, block=4), a @ b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            blocked_matmul(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_bad_block(self):
        with pytest.raises(ValueError):
            blocked_matmul(np.zeros((2, 2)), np.zeros((2, 2)), block=0)

    def test_non_2d(self):
        with pytest.raises(ValueError):
            blocked_matmul(np.zeros(4), np.zeros((4, 4)))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 20), block=st.integers(1, 8),
           seed=st.integers(0, 100))
    def test_property_blocked_equals_blas(self, n, block, seed):
        a, b = random_pair(n, seed=seed)
        assert np.allclose(blocked_matmul(a, b, block=block), a @ b)


class TestGrid:
    def test_grid_side(self):
        assert grid_side(1) == 1
        assert grid_side(4) == 2
        assert grid_side(16) == 4

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            grid_side(6)

    def test_initial_blocks_skew(self):
        """Processor (x, y) must hold A(x, x+y) and B(x+y, y)."""
        n, q = 8, 2
        a = np.arange(n * n, dtype=float).reshape(n, n)
        b = a + 1000
        bs = n // q
        for pid in range(q * q):
            x, y = divmod(pid, q)
            k = (x + y) % q
            a_blk, b_blk = initial_blocks(a, b, pid, q)
            assert np.array_equal(
                a_blk, a[x * bs:(x + 1) * bs, k * bs:(k + 1) * bs]
            )
            assert np.array_equal(
                b_blk, b[k * bs:(k + 1) * bs, y * bs:(y + 1) * bs]
            )


class TestCannon:
    @pytest.mark.parametrize("n,p", [(4, 1), (4, 4), (8, 4), (12, 9),
                                     (16, 16), (24, 4)])
    def test_matches_blas(self, n, p):
        a, b = random_pair(n, seed=n * p)
        run = cannon_matmul(a, b, p)
        assert np.allclose(run.c, a @ b)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_other_backends(self, backend):
        a, b = random_pair(8, seed=3)
        run = cannon_matmul(a, b, 4, backend=backend)
        assert np.allclose(run.c, a @ b)

    def test_identity(self):
        n = 12
        eye = np.eye(n)
        a, _ = random_pair(n, seed=5)
        assert np.allclose(cannon_matmul(a, eye, 9).c, a)

    def test_bad_divisibility(self):
        a, b = random_pair(6, seed=1)
        with pytest.raises(ValueError):
            cannon_matmul(a, b, 16)  # 6 not divisible by 4

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            cannon_matmul(np.zeros((4, 4)), np.zeros((8, 8)), 4)

    def test_nonsquare_procs(self):
        a, b = random_pair(6, seed=1)
        with pytest.raises(ValueError):
            cannon_matmul(a, b, 6)


class TestBspShape:
    """The run's S and H must match the paper's Figure C.3 formulas."""

    @pytest.mark.parametrize("n,p", [(16, 4), (24, 9), (16, 16)])
    def test_s_and_h_formulas(self, n, p):
        a, b = random_pair(n, seed=7)
        run = cannon_matmul(a, b, p)
        s_expected, h_expected = expected_shape(n, p)
        assert run.stats.S == s_expected
        assert run.stats.H == h_expected

    def test_single_processor_shape(self):
        a, b = random_pair(8, seed=9)
        run = cannon_matmul(a, b, 1)
        assert run.stats.S == 1
        assert run.stats.H == 0

    def test_paper_row_576_16(self):
        """Scaled check of the headline Figure C.3 row: same formulas that
        give S=7, H=124416 at n=576 give the right values at any n."""
        s, h = expected_shape(576, 16)
        assert (s, h) == (7, 124416)
        s, h = expected_shape(576, 9)
        assert (s, h) == (5, 147456)
        s, h = expected_shape(144, 4)
        assert (s, h) == (3, 10368)

    def test_h_per_superstep_uniform(self):
        n, p = 16, 4
        a, b = random_pair(n, seed=11)
        run = cannon_matmul(a, b, p)
        shift_steps = [s for s in run.stats.supersteps if s.h > 0]
        block_elems = (n // 2) ** 2
        assert all(s.h == block_elems for s in shift_steps)
