"""Property-based tests for the FMM quadtree geometry."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fmm import (
    cell_center,
    cell_width,
    cells_at,
    children,
    demorton,
    interaction_list,
    leaf_owner_ranges,
    morton,
    neighbors,
    parent,
)
from repro.apps.fmm.quadtree import morton_of_points, owner_of_cell


class TestMortonProperties:
    @given(st.integers(0, 1023), st.integers(0, 1023))
    def test_property_roundtrip(self, ix, iy):
        assert demorton(morton(ix, iy)) == (ix, iy)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_property_parent_code_is_quarter(self, ix, iy):
        px, py = parent(ix, iy)
        assert morton(px, py) == morton(ix, iy) // 4

    @settings(max_examples=30)
    @given(
        pts=st.lists(
            st.tuples(
                st.floats(0, 0.999999, allow_nan=False),
                st.floats(0, 0.999999, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        ),
        level=st.integers(1, 5),
    )
    def test_property_points_map_to_containing_cell(self, pts, level):
        points = np.array(pts)
        codes = morton_of_points(points, level)
        n = cells_at(level)
        for (x, y), code in zip(pts, codes):
            ix, iy = demorton(int(code))
            w = cell_width(level)
            assert ix * w <= x < (ix + 1) * w or np.isclose(x, ix * w)
            assert 0 <= ix < n and 0 <= iy < n


class TestGeometryProperties:
    @settings(max_examples=40)
    @given(level=st.integers(1, 4), seed=st.integers(0, 10_000))
    def test_property_interaction_list_symmetric(self, level, seed):
        """j in IL(i) ⟺ i in IL(j)."""
        rng = np.random.default_rng(seed)
        n = cells_at(level)
        ix, iy = int(rng.integers(0, n)), int(rng.integers(0, n))
        for jx, jy in interaction_list(level, ix, iy):
            assert (ix, iy) in interaction_list(level, jx, jy)

    @settings(max_examples=40)
    @given(level=st.integers(1, 4), seed=st.integers(0, 10_000))
    def test_property_near_plus_il_plus_coarse_covers(self, level, seed):
        """Any two distinct cells are near, interacting, or separated at
        a coarser level (the FMM completeness invariant)."""
        rng = np.random.default_rng(seed)
        n = cells_at(level)
        ix, iy = int(rng.integers(0, n)), int(rng.integers(0, n))
        jx, jy = int(rng.integers(0, n)), int(rng.integers(0, n))
        if (ix, iy) == (jx, jy):
            return
        near = set(neighbors(level, ix, iy))
        il = set(interaction_list(level, ix, iy))
        if (jx, jy) in near or (jx, jy) in il:
            return
        # Must be handled at some coarser level: walking both up, they
        # eventually land in each other's ILs (or are the same cell).
        ax, ay, bx, by = ix, iy, jx, jy
        for lvl in range(level - 1, -1, -1):
            ax, ay = parent(ax, ay)
            bx, by = parent(bx, by)
            if (ax, ay) == (bx, by):
                break
            if (bx, by) in set(interaction_list(lvl, ax, ay)):
                return
        else:
            raise AssertionError("pair never separated")

    def test_children_partition_parent_area(self):
        for ix, iy in [(0, 0), (2, 3)]:
            kids = children(ix, iy)
            assert len(set(kids)) == 4
            for cx, cy in kids:
                assert parent(cx, cy) == (ix, iy)

    @given(st.integers(1, 4))
    def test_property_cell_centers_inside_unit_square(self, level):
        n = cells_at(level)
        for ix in range(0, n, max(1, n // 3)):
            c = cell_center(level, ix, n - 1)
            assert 0 < c.real < 1 and 0 < c.imag < 1


class TestOwnership:
    @settings(max_examples=30)
    @given(depth=st.integers(2, 4), p=st.integers(1, 9))
    def test_property_every_cell_has_exactly_one_owner(self, depth, p):
        ranges = leaf_owner_ranges(depth, p)
        level = depth - 1
        n = cells_at(level)
        for ix in range(n):
            for iy in range(n):
                owner = owner_of_cell(level, ix, iy, depth, ranges)
                assert 0 <= owner < p
