"""Tests for the particle-in-cell plasma application."""

import math

import numpy as np
import pytest

from repro.apps.plasma import (
    Particles,
    bsp_pic,
    deposit,
    field_energy,
    gather,
    kinetic_energy,
    oscillation_period,
    perturbed_lattice,
    plasma_frequency,
    push,
    simulate_pic,
    solve_field,
    split_particles,
)
from repro.apps.ocean.parallel import RowPartition


class TestParticles:
    def test_create_validates(self):
        with pytest.raises(ValueError):
            Particles.create(np.zeros((3, 3)), np.zeros((3, 3)), 1.0)
        with pytest.raises(ValueError):
            Particles.create(np.zeros((3, 2)), np.zeros((2, 2)), 1.0)
        with pytest.raises(ValueError):
            Particles.create(np.zeros((0, 2)), np.zeros((0, 2)), 1.0)
        with pytest.raises(ValueError):
            Particles.create(np.zeros((2, 2)), np.zeros((2, 2)), -1.0)

    def test_total_charge_is_minus_rho0(self):
        parts = perturbed_lattice(16, rho0=2.0)
        assert parts.weight * len(parts) == pytest.approx(-2.0)

    def test_subset_concat_roundtrip(self):
        parts = perturbed_lattice(8)
        halves = [parts.subset(np.arange(0, 32)),
                  parts.subset(np.arange(32, 64))]
        merged = Particles.concatenate(halves).ordered_by_ident()
        assert np.array_equal(merged.pos, parts.pos)


class TestDepositGather:
    def test_charge_conservation_away_from_walls(self):
        """All CIC fractions land on the grid for interior particles."""
        rng = np.random.default_rng(0)
        pos = 0.25 + 0.5 * rng.random((200, 2))  # comfortably interior
        parts = Particles.create(pos, np.zeros_like(pos), rho0=1.0)
        n = 16
        rho = deposit(parts.pos, parts.weight, n, rho0=0.0)
        total = rho[1:-1, 1:-1].sum() / (n * n)  # density -> charge
        assert total == pytest.approx(parts.weight * len(parts), rel=1e-12)

    def test_uniform_plasma_is_neutral(self):
        parts = perturbed_lattice(32, amplitude=0.0)
        rho = deposit(parts.pos, parts.weight, 16, rho0=1.0)
        assert np.abs(rho[2:-2, 2:-2]).max() < 1e-9

    def test_gather_constant_field(self):
        n = 16
        ex = np.zeros((n + 2, n + 2))
        ey = np.zeros((n + 2, n + 2))
        ex[1:-1, 1:-1] = 3.0
        rng = np.random.default_rng(1)
        pos = 0.2 + 0.6 * rng.random((50, 2))
        e = gather(ex, ey, pos, n)
        assert np.allclose(e[:, 0], 3.0)
        assert np.allclose(e[:, 1], 0.0)

    def test_field_solver_sign(self):
        """Field lines point *into* a negative blob; electrons are
        repelled from it."""
        pos = np.full((100, 2), 0.5)
        parts = Particles.create(pos, np.zeros_like(pos), rho0=1.0)
        rho = deposit(parts.pos, parts.weight, 32, rho0=0.0)
        _, ex, ey, _ = solve_field(rho)
        probe = gather(ex, ey, np.array([[0.75, 0.5]]), 32)
        # E_x < 0 at x=0.75 (toward the blob); electron force −E_x > 0
        # (away from it — like charges repel).
        assert probe[0, 0] < 0


class TestPush:
    def test_free_streaming(self):
        pos = np.array([[0.5, 0.5]])
        vel = np.array([[0.1, -0.05]])
        parts = Particles.create(pos, vel, rho0=1.0)
        push(parts, np.zeros_like(pos), dt=1.0)
        assert np.allclose(parts.pos, [[0.6, 0.45]])

    def test_wall_reflection(self):
        pos = np.array([[0.95, 0.5]])
        vel = np.array([[0.2, 0.0]])
        parts = Particles.create(pos, vel, rho0=1.0)
        push(parts, np.zeros_like(pos), dt=1.0)
        assert parts.pos[0, 0] == pytest.approx(2.0 - 1.15)
        assert parts.vel[0, 0] == -0.2


class TestPhysics:
    def test_langmuir_frequency(self):
        """The headline validation: oscillation at ω_p = sqrt(ρ₀)."""
        parts = perturbed_lattice(48, amplitude=0.02, rho0=1.0)
        dt = 0.05
        res = simulate_pic(parts, 32, 160, dt=dt, rho0=1.0)
        period = oscillation_period(res.history.field_energy, dt)
        expected = 2 * math.pi / plasma_frequency(1.0)
        assert period is not None
        assert abs(period - expected) / expected < 0.08

    def test_frequency_scales_with_density(self):
        """ω_p ∝ sqrt(ρ₀): doubling the density shortens the period."""
        dt = 0.04
        periods = {}
        for rho0 in (1.0, 2.0):
            parts = perturbed_lattice(40, amplitude=0.02, rho0=rho0)
            res = simulate_pic(parts, 32, 140, dt=dt, rho0=rho0)
            periods[rho0] = oscillation_period(
                res.history.field_energy, dt
            )
        ratio = periods[1.0] / periods[2.0]
        assert ratio == pytest.approx(math.sqrt(2.0), rel=0.15)

    def test_cold_uniform_plasma_interior_is_field_free(self):
        """Uniform plasma: the interior field vanishes (wall sheaths —
        image-charge imbalance within half a cell of the walls — are the
        only structure)."""
        parts = perturbed_lattice(32, amplitude=0.0)
        rho = deposit(parts.pos, parts.weight, 16, rho0=1.0)
        _, ex, ey, _ = solve_field(rho)
        interior = slice(4, -4)
        interior_field = max(
            np.abs(ex[interior, interior]).max(),
            np.abs(ey[interior, interior]).max(),
        )
        wall_field = np.abs(ex[1, 1:-1]).max()
        assert interior_field < 1e-4
        assert interior_field < wall_field / 100

    def test_warm_start_reduces_cycles(self):
        parts = perturbed_lattice(32, amplitude=0.05)
        res = simulate_pic(parts, 32, 6, dt=0.05)
        assert res.history.cycles[-1] <= res.history.cycles[0]


class TestBspPic:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_matches_sequential_exactly(self, p):
        parts = perturbed_lattice(24, amplitude=0.05, seed=1)
        n, steps = 16, 4
        run = bsp_pic(parts, n, p, steps, dt=0.05)
        seq = simulate_pic(parts, n, steps, dt=0.05)
        seq_sorted = seq.particles.ordered_by_ident()
        assert np.allclose(run.particles.pos, seq_sorted.pos, atol=1e-12)
        assert np.allclose(run.particles.vel, seq_sorted.vel, atol=1e-12)
        assert np.allclose(
            run.history.field_energy, seq.history.field_energy, rtol=1e-9
        )

    def test_particles_conserved_through_migration(self):
        parts = perturbed_lattice(20, amplitude=0.3, seed=2)
        run = bsp_pic(parts, 16, 4, 8, dt=0.1)
        assert len(run.particles) == len(parts)
        assert np.array_equal(
            np.sort(run.particles.ident), np.arange(len(parts))
        )

    def test_split_particles_covers_all(self):
        parts = perturbed_lattice(16)
        top = RowPartition.block(16, 3)
        split = split_particles(parts, top)
        assert sum(len(s) for s in split) == len(parts)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_concurrent_backends(self, backend):
        parts = perturbed_lattice(16, amplitude=0.05, seed=3)
        run = bsp_pic(parts, 16, 2, 2, dt=0.05, backend=backend)
        seq = simulate_pic(parts, 16, 2, dt=0.05)
        assert np.allclose(
            run.particles.pos,
            seq.particles.ordered_by_ident().pos,
            atol=1e-12,
        )

    def test_solver_dominates_supersteps(self):
        parts = perturbed_lattice(16, amplitude=0.05)
        run = bsp_pic(parts, 16, 4, 3, dt=0.05)
        # 3 particle-phase supersteps per step (deposit, migrate, E
        # ghosts) + diagnostics vs tens from the solver.
        assert run.stats.S > 10 * 3

    def test_energy_diagnostics_match_functions(self):
        parts = perturbed_lattice(24, amplitude=0.05)
        run = bsp_pic(parts, 16, 2, 1, dt=0.05)
        rho = deposit(parts.pos, parts.weight, 16, 1.0)
        _, ex, ey, _ = solve_field(rho)
        assert run.history.field_energy[0] == pytest.approx(
            field_energy(ex, ey, 16), rel=1e-9
        )
        assert run.history.kinetic_energy[0] == pytest.approx(
            kinetic_energy(parts), abs=1e-15
        )
