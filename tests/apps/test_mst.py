"""Tests for the MST application (sequential baselines + BSP parallel)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.mst import bsp_mst, kruskal, prim
from repro.graphs import (
    Graph,
    block_partition,
    geometric_graph,
    grid_graph,
    hash_partition,
    random_connected_graph,
    spatial_partition,
)


class TestSequentialBaselines:
    def test_triangle(self):
        g = Graph.from_edges(
            3, np.array([0, 1, 0]), np.array([1, 2, 2]),
            np.array([1.0, 2.0, 3.0])
        )
        res = kruskal(g)
        assert res.weight == pytest.approx(3.0)
        assert res.nedges == 2
        assert res.ncomponents == 1

    def test_kruskal_equals_prim_weight(self):
        for seed in range(5):
            gg = geometric_graph(120, seed=seed)
            assert kruskal(gg.graph).weight == pytest.approx(
                prim(gg.graph).weight
            )

    def test_distinct_weights_same_edge_set(self):
        g = random_connected_graph(60, extra_edges=100, seed=3)
        k = {(u, v) for u, v, _ in kruskal(g).edges}
        p = {(u, v) for u, v, _ in prim(g).edges}
        assert k == p

    def test_forest_on_disconnected(self):
        g = Graph.from_edges(
            5, np.array([0, 2]), np.array([1, 3]), np.array([1.0, 2.0])
        )
        res = kruskal(g)
        assert res.ncomponents == 3
        assert res.nedges == 2
        assert prim(g).ncomponents == 3

    def test_tree_input_returns_itself(self):
        g = random_connected_graph(30, extra_edges=0, seed=7)
        res = kruskal(g)
        assert res.nedges == 29
        assert res.weight == pytest.approx(g.total_weight())

    def test_single_node(self):
        g = Graph.from_edges(1, np.empty(0, int), np.empty(0, int),
                             np.empty(0))
        assert kruskal(g).weight == 0.0
        assert kruskal(g).nedges == 0


class TestParallelMst:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_matches_kruskal_geometric(self, p):
        gg = geometric_graph(150, seed=p)
        owner = spatial_partition(gg.points, p)
        res = bsp_mst(gg.graph, owner, p)
        assert res.weight == pytest.approx(kruskal(gg.graph).weight)
        assert res.ncomponents == 1
        assert len(res.edges) == gg.graph.n - 1

    @pytest.mark.parametrize("p", [2, 4])
    def test_matches_kruskal_random_graph(self, p):
        g = random_connected_graph(100, extra_edges=300, seed=p)
        owner = block_partition(g.n, p)
        res = bsp_mst(g, owner, p)
        assert res.weight == pytest.approx(kruskal(g).weight)

    def test_hash_partition_still_correct(self):
        """Correctness must not depend on partition locality."""
        gg = geometric_graph(120, seed=9)
        owner = hash_partition(gg.graph.n, 4, seed=1)
        res = bsp_mst(gg.graph, owner, 4)
        assert res.weight == pytest.approx(kruskal(gg.graph).weight)

    def test_grid_graph(self):
        g = grid_graph(10, 12, seed=5)
        owner = block_partition(g.n, 4)
        res = bsp_mst(g, owner, 4)
        assert res.weight == pytest.approx(kruskal(g).weight)

    def test_edges_form_spanning_tree(self):
        gg = geometric_graph(80, seed=11)
        owner = spatial_partition(gg.points, 3)
        res = bsp_mst(gg.graph, owner, 3)
        from repro.graphs import UnionFind

        uf = UnionFind(gg.graph.n)
        for u, v, _ in res.edges:
            assert uf.union(u, v), "parallel MST produced a cycle"
        assert uf.ncomponents == 1

    def test_disconnected_input_gives_forest(self):
        # Two separate cliques.
        rng = np.random.default_rng(0)
        us, vs = [], []
        for base in (0, 10):
            for i in range(10):
                for j in range(i + 1, 10):
                    us.append(base + i)
                    vs.append(base + j)
        g = Graph.from_edges(
            20, np.array(us), np.array(vs), rng.random(len(us)) + 0.01
        )
        owner = block_partition(20, 4)
        res = bsp_mst(g, owner, 4)
        assert res.ncomponents == 2
        assert len(res.edges) == 18
        assert res.weight == pytest.approx(kruskal(g).weight)

    @pytest.mark.parametrize("threshold", [1, 2, 8, 10_000])
    def test_switch_threshold_extremes(self, threshold):
        """Pure Borůvka (1) and pure sequential-finish (huge) both work."""
        gg = geometric_graph(100, seed=13)
        owner = spatial_partition(gg.points, 4)
        res = bsp_mst(gg.graph, owner, 4, switch_threshold=threshold)
        assert res.weight == pytest.approx(kruskal(gg.graph).weight)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_concurrent_backends(self, backend):
        gg = geometric_graph(90, seed=17)
        owner = spatial_partition(gg.points, 3)
        res = bsp_mst(gg.graph, owner, 3, backend=backend)
        assert res.weight == pytest.approx(kruskal(gg.graph).weight)

    def test_equal_weights_handled(self):
        """Lexicographic tie-breaking must not duplicate or cycle."""
        g = grid_graph(6, 6, seed=0)
        g = Graph.from_edges(36, *[arr for arr in g.edge_list()][:2],
                             np.ones(len(g.edge_list()[0])))
        owner = block_partition(36, 4)
        res = bsp_mst(g, owner, 4)
        assert len(res.edges) == 35
        assert res.weight == pytest.approx(35.0)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=80),
        p=st.integers(min_value=1, max_value=5),
        seed=st.integers(0, 500),
    )
    def test_property_weight_matches_kruskal(self, n, p, seed):
        gg = geometric_graph(n, seed=seed)
        owner = spatial_partition(gg.points, p)
        res = bsp_mst(gg.graph, owner, p)
        assert res.weight == pytest.approx(kruskal(gg.graph).weight)


class TestBspShape:
    def test_single_processor_no_traffic(self):
        gg = geometric_graph(100, seed=1)
        res = bsp_mst(gg.graph, np.zeros(100, dtype=np.int64), 1)
        assert res.stats.H == 0

    def test_conservative_label_traffic(self):
        """Superstep-0 traffic is bounded by border-node counts."""
        from repro.graphs import LocalGraph

        gg = geometric_graph(200, seed=3)
        p = 4
        owner = spatial_partition(gg.points, p)
        res = bsp_mst(gg.graph, owner, p)
        locals_ = [LocalGraph.build(gg.graph, owner, q, p) for q in range(p)]
        max_border = max(lg.nborder for lg in locals_)
        max_links = max(len(lg.watcher_pid) for lg in locals_)
        first = res.stats.supersteps[0]
        # Received labels = this processor's border nodes (the paper's
        # conservative bound); sent labels = its watcher links.
        assert first.h_recv_max <= max_border
        assert first.h_sent_max <= max_links

    def test_supersteps_grow_slowly_with_size(self):
        """Paper: S grows quite slowly with problem size (12 -> 62)."""
        owner_s = []
        s_values = []
        for n in (100, 400):
            gg = geometric_graph(n, seed=5)
            owner = spatial_partition(gg.points, 4)
            res = bsp_mst(gg.graph, owner, 4)
            s_values.append(res.stats.S)
        assert s_values[1] <= s_values[0] + 10
