"""Tests for the BSP sample-sort subroutine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sort import bsp_sample_sort


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8, 16])
    def test_sorts_random_input(self, p):
        rng = np.random.default_rng(p)
        data = rng.standard_normal(500)
        run = bsp_sample_sort(data, p)
        assert np.array_equal(run.data, np.sort(data))

    def test_already_sorted(self):
        data = np.arange(100, dtype=float)
        run = bsp_sample_sort(data, 4)
        assert np.array_equal(run.data, data)

    def test_reverse_sorted(self):
        data = np.arange(100, dtype=float)[::-1]
        run = bsp_sample_sort(data, 4)
        assert np.array_equal(run.data, np.arange(100, dtype=float))

    def test_duplicates(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 5, size=200).astype(float)
        run = bsp_sample_sort(data, 4)
        assert np.array_equal(run.data, np.sort(data))

    def test_all_equal(self):
        data = np.full(64, 7.0)
        run = bsp_sample_sort(data, 4)
        assert np.array_equal(run.data, data)

    def test_tiny_inputs(self):
        for n in (0, 1, 2, 3):
            data = np.random.default_rng(n).standard_normal(n)
            run = bsp_sample_sort(data, 4)
            assert np.array_equal(run.data, np.sort(data))

    def test_fewer_items_than_processors(self):
        data = np.array([3.0, 1.0])
        run = bsp_sample_sort(data, 8)
        assert np.array_equal(run.data, np.array([1.0, 3.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            bsp_sample_sort(np.zeros((3, 3)), 2)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_concurrent_backends(self, backend):
        rng = np.random.default_rng(9)
        data = rng.standard_normal(300)
        run = bsp_sample_sort(data, 4, backend=backend)
        assert np.array_equal(run.data, np.sort(data))

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.floats(allow_nan=False, allow_infinity=False,
                      width=32),
            max_size=300,
        ),
        p=st.integers(1, 6),
    )
    def test_property_matches_numpy(self, data, p):
        arr = np.array(data, dtype=np.float64)
        run = bsp_sample_sort(arr, p)
        assert np.array_equal(run.data, np.sort(arr))


class TestBspShape:
    def test_four_supersteps(self):
        rng = np.random.default_rng(1)
        run = bsp_sample_sort(rng.standard_normal(1000), 8)
        assert run.stats.S == 4

    def test_regular_sampling_bounds_buckets(self):
        """PSRS guarantee: no bucket exceeds ~2n/p for distinct keys."""
        rng = np.random.default_rng(2)
        n, p = 4000, 8
        run = bsp_sample_sort(rng.standard_normal(n), p)
        assert max(run.bucket_sizes) <= 2 * n // p + p
        assert sum(run.bucket_sizes) == n

    def test_h_scales_with_block_size(self):
        rng = np.random.default_rng(4)
        small = bsp_sample_sort(rng.standard_normal(800), 4).stats
        large = bsp_sample_sort(rng.standard_normal(8000), 4).stats
        assert 4 < large.H / small.H < 25

    def test_single_processor_no_traffic(self):
        rng = np.random.default_rng(5)
        run = bsp_sample_sort(rng.standard_normal(100), 1)
        # Only the self-addressed sample message.
        assert run.stats.H <= 2
