"""Tests for the N-body application (tree, ORB, sequential, BSP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.nbody import (
    BHTree,
    Bodies,
    accelerations,
    box_min_distance,
    bsp_nbody,
    direct_accelerations,
    load_imbalance,
    orb_partition,
    plummer,
    simulate,
    simulate_direct,
    total_energy,
    uniform_cube,
)


class TestSoftenedInverse:
    """Regression tests for the ``r² ** -1.5`` zero-distance guard."""

    def test_zero_distance_pair_raises_clear_error(self):
        """Two coincident bodies with eps=0 must raise, not emit inf."""
        from repro.apps.nbody.bhtree import pairwise_acceleration

        point = np.zeros(3)
        masses = np.array([1.0])
        positions = np.zeros((1, 3))  # same spot as the point
        with pytest.raises(ZeroDivisionError, match="zero-distance"):
            pairwise_acceleration(point, masses, positions, eps=0.0)

    def test_direct_accelerations_zero_distance_raises(self):
        pos = np.zeros((2, 3))  # coincident pair
        with pytest.raises(ZeroDivisionError, match="zero-distance"):
            direct_accelerations(pos, np.ones(2), eps=0.0)

    def test_softening_rescues_coincident_bodies(self):
        """Any healthy eps keeps the same inputs finite in both kernels."""
        pos = np.zeros((2, 3))
        acc = direct_accelerations(pos, np.ones(2), eps=0.05)
        assert np.all(np.isfinite(acc))
        acc_bh, _ = accelerations(pos, np.ones(2), theta=0.5, eps=0.05)
        assert np.all(np.isfinite(acc_bh))

    def test_no_spurious_warnings_on_healthy_input(self):
        import warnings

        from repro.apps.nbody.bhtree import softened_inv_r3

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = softened_inv_r3(np.array([1e-20, 1.0, 1e20]))
        assert np.all(np.isfinite(out))

    def test_floor_is_documented_epsilon(self):
        from repro.apps.nbody.bhtree import MIN_SOFTENED_R2, softened_inv_r3

        just_above = np.array([MIN_SOFTENED_R2 * 1.01])
        assert np.isfinite(softened_inv_r3(just_above)[0])
        with pytest.raises(ZeroDivisionError):
            softened_inv_r3(np.array([MIN_SOFTENED_R2 * 0.99]))

    def test_empty_input_ok(self):
        from repro.apps.nbody.bhtree import softened_inv_r3

        assert softened_inv_r3(np.zeros(0)).shape == (0,)


class TestPairwiseEdgeCases:
    """Empty force-term lists and degenerate trees return clean zeros."""

    def test_empty_force_terms_return_zero_vector(self):
        from repro.apps.nbody.bhtree import pairwise_acceleration

        acc = pairwise_acceleration(
            np.zeros(3), np.zeros(0), np.zeros((0, 3)), eps=0.05
        )
        assert acc.shape == (3,)
        assert np.array_equal(acc, np.zeros(3))

    def test_single_body_zero_acceleration(self):
        """A lone body has no force terms at any theta."""
        pos = np.array([[0.3, -0.1, 0.7]])
        acc, inter = accelerations(pos, np.ones(1), theta=0.8, eps=0.05)
        assert np.array_equal(acc, np.zeros((1, 3)))
        assert inter.tolist() == [0]

    def test_empty_tree_no_points(self):
        tree = BHTree(np.zeros((0, 3)), np.zeros(0))
        masses, points, count = tree.force_terms(np.zeros(3), theta=0.8)
        assert len(masses) == 0 and len(points) == 0 and count == 0
        for mode in ("reference", "vectorized"):
            from repro import kernels

            acc, inter = kernels.get("bh_walk", mode)(
                tree, np.array([[1.0, 2.0, 3.0]]), 0.8, 0.05, None
            )
            assert np.array_equal(acc, np.zeros((1, 3)))
            assert inter.tolist() == [0]

    def test_empty_points_against_real_tree(self):
        from repro import kernels

        b = plummer(50, seed=40)
        tree = BHTree(b.pos, b.mass)
        for mode in ("reference", "vectorized"):
            acc, inter = kernels.get("bh_walk", mode)(
                tree, np.zeros((0, 3)), 0.8, 0.05,
                np.zeros(0, dtype=np.int64),
            )
            assert acc.shape == (0, 3)
            assert inter.shape == (0,)


class TestBodies:
    def test_create_validates(self):
        with pytest.raises(ValueError):
            Bodies.create(np.zeros((3, 2)), np.zeros((3, 2)), np.ones(3))
        with pytest.raises(ValueError):
            Bodies.create(np.zeros((3, 3)), np.zeros((2, 3)), np.ones(3))
        with pytest.raises(ValueError):
            Bodies.create(np.zeros((2, 3)), np.zeros((2, 3)), np.zeros(2))

    def test_subset_concat_roundtrip(self):
        b = uniform_cube(10, seed=1)
        parts = [b.subset(np.arange(0, 5)), b.subset(np.arange(5, 10))]
        merged = Bodies.concatenate(parts).ordered_by_ident()
        assert np.allclose(merged.pos, b.pos)
        assert np.array_equal(merged.ident, b.ident)

    def test_box_min_distance(self):
        lo, hi = np.zeros(3), np.ones(3)
        assert box_min_distance(lo, hi, np.array([0.5, 0.5, 0.5])) == 0.0
        assert box_min_distance(lo, hi, np.array([2.0, 0.5, 0.5])) == 1.0
        assert box_min_distance(lo, hi, np.array([2.0, 2.0, 0.5])) == (
            pytest.approx(np.sqrt(2))
        )


class TestPlummer:
    def test_standard_units(self):
        b = plummer(2000, seed=1)
        assert b.mass.sum() == pytest.approx(1.0)
        # Centre of mass at rest at the origin.
        assert np.allclose((b.mass[:, None] * b.pos).sum(axis=0), 0, atol=1e-12)
        assert np.allclose((b.mass[:, None] * b.vel).sum(axis=0), 0, atol=1e-12)

    def test_virial_energy_near_quarter(self):
        """Standard units: total energy ≈ −1/4 (sampling noise allowed)."""
        b = plummer(3000, seed=2)
        e = total_energy(b, eps=0.0)
        assert -0.35 < e < -0.15

    def test_deterministic(self):
        a, b = plummer(100, seed=7), plummer(100, seed=7)
        assert np.array_equal(a.pos, b.pos)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            plummer(0)


class TestBHTree:
    def test_mass_conservation(self):
        b = plummer(300, seed=3)
        tree = BHTree(b.pos, b.mass)
        assert tree.root.mass == pytest.approx(b.mass.sum())
        assert np.allclose(
            tree.root.com, (b.mass[:, None] * b.pos).sum(axis=0) / b.mass.sum()
        )

    def test_theta_zero_is_direct_sum(self):
        b = plummer(120, seed=4)
        acc_bh, inter = accelerations(b.pos, b.mass, theta=0.0, eps=0.05)
        acc_direct = direct_accelerations(b.pos, b.mass, eps=0.05)
        assert np.allclose(acc_bh, acc_direct, rtol=1e-9, atol=1e-12)
        # theta=0 never uses a cell summary: interactions = n-1 each.
        assert np.all(inter == len(b) - 1)

    @pytest.mark.parametrize("theta", [0.3, 0.7, 1.0])
    def test_accuracy_improves_with_smaller_theta(self, theta):
        b = plummer(250, seed=5)
        acc_bh, _ = accelerations(b.pos, b.mass, theta=theta, eps=0.05)
        acc_d = direct_accelerations(b.pos, b.mass, eps=0.05)
        scale = np.abs(acc_d).max()
        err = np.abs(acc_bh - acc_d).max() / scale
        assert err < 0.08 * theta

    def test_fewer_interactions_with_larger_theta(self):
        b = plummer(400, seed=6)
        _, i_small = accelerations(b.pos, b.mass, theta=0.3)
        _, i_large = accelerations(b.pos, b.mass, theta=1.2)
        assert i_large.sum() < i_small.sum()

    def test_identical_positions_handled(self):
        pos = np.zeros((5, 3))
        tree = BHTree(pos, np.ones(5))
        assert tree.root.mass == pytest.approx(5.0)

    def test_leaf_size_bucketing(self):
        b = plummer(200, seed=8)
        t1 = BHTree(b.pos, b.mass, leaf_size=1)
        t16 = BHTree(b.pos, b.mass, leaf_size=16)
        assert t16.cell_count() < t1.cell_count()

    def test_validation(self):
        with pytest.raises(ValueError):
            BHTree(np.zeros((2, 2)), np.ones(2))
        with pytest.raises(ValueError):
            BHTree(np.zeros((2, 3)), np.ones(2), leaf_size=0)


class TestEssentialRecords:
    def test_far_box_gets_single_record(self):
        b = uniform_cube(200, seed=9)
        tree = BHTree(b.pos, b.mass)
        far_lo = np.array([100.0, 100.0, 100.0])
        far_hi = far_lo + 1.0
        masses, points = tree.essential_records(far_lo, far_hi, theta=1.0)
        assert len(masses) == 1
        assert masses[0] == pytest.approx(b.mass.sum())

    def test_near_box_gets_more_records(self):
        b = uniform_cube(300, seed=10)
        tree = BHTree(b.pos, b.mass)
        near = tree.essential_records(
            np.array([1.0, 0.0, 0.0]), np.array([2.0, 1.0, 1.0]), theta=0.7
        )
        far = tree.essential_records(
            np.array([50.0, 0.0, 0.0]), np.array([51.0, 1.0, 1.0]), theta=0.7
        )
        assert len(near[0]) > len(far[0])

    def test_mass_always_conserved(self):
        b = plummer(250, seed=11)
        tree = BHTree(b.pos, b.mass)
        masses, _ = tree.essential_records(
            np.array([0.5, 0.5, 0.5]), np.array([1.5, 1.5, 1.5]), theta=0.8
        )
        assert masses.sum() == pytest.approx(b.mass.sum())

    def test_pruning_is_sound_for_all_box_points(self):
        """Forces from the pruned records match the full tree for any
        point inside the requested box, within the theta error budget."""
        rng = np.random.default_rng(12)
        b = uniform_cube(400, seed=12)
        tree = BHTree(b.pos, b.mass)
        lo = np.array([2.0, 2.0, 2.0])
        hi = np.array([3.0, 3.0, 3.0])
        masses, points = tree.essential_records(lo, hi, theta=0.5)
        from repro.apps.nbody import pairwise_acceleration

        for _ in range(10):
            pt = lo + rng.random(3) * (hi - lo)
            approx = pairwise_acceleration(pt, masses, points, 0.05)
            exact = pairwise_acceleration(pt, b.mass, b.pos, 0.05)
            assert np.linalg.norm(approx - exact) <= (
                0.05 * np.linalg.norm(exact) + 1e-12
            )


class TestOrb:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_balanced_counts_uniform_weights(self, p):
        b = uniform_cube(400, seed=13)
        owner = orb_partition(b.pos, None, p)
        counts = np.bincount(owner, minlength=p)
        assert counts.min() > 0
        assert counts.max() - counts.min() <= max(2, 0.1 * counts.mean())

    def test_weighted_balance(self):
        b = uniform_cube(300, seed=14)
        weights = np.ones(300)
        weights[:50] = 20.0  # heavy corner
        owner = orb_partition(b.pos, weights, 4)
        loads = np.array(
            [weights[owner == q].sum() for q in range(4)]
        )
        assert load_imbalance(loads) < 0.5

    def test_spatial_coherence(self):
        """ORB regions are boxes: each part's bbox overlaps others little."""
        b = uniform_cube(500, seed=15)
        owner = orb_partition(b.pos, None, 2)
        a = b.pos[owner == 0]
        c = b.pos[owner == 1]
        # Split along one axis: the two parts separate on some axis.
        separated = any(
            a[:, ax].max() <= c[:, ax].min() + 1e-12
            or c[:, ax].max() <= a[:, ax].min() + 1e-12
            for ax in range(3)
        )
        assert separated

    def test_validation(self):
        b = uniform_cube(10, seed=16)
        with pytest.raises(ValueError):
            orb_partition(b.pos, None, 0)
        with pytest.raises(ValueError):
            orb_partition(b.pos, np.ones(5), 2)
        with pytest.raises(ValueError):
            orb_partition(b.pos, -np.ones(10), 2)

    def test_load_imbalance_metric(self):
        assert load_imbalance(np.array([1.0, 1.0])) == 0.0
        assert load_imbalance(np.array([3.0, 1.0])) == pytest.approx(0.5)


class TestSequentialSimulation:
    def test_energy_roughly_conserved(self):
        b = plummer(200, seed=17)
        e0 = total_energy(b)
        res = simulate(b, steps=5, theta=0.6, dt=0.01)
        e1 = total_energy(res.bodies)
        assert abs(e1 - e0) < 0.05 * abs(e0)

    def test_matches_direct_at_theta_zero(self):
        b = plummer(80, seed=18)
        bh = simulate(b, steps=3, theta=0.0, dt=0.01)
        direct = simulate_direct(b, steps=3, dt=0.01)
        assert np.allclose(bh.bodies.pos, direct.bodies.pos, atol=1e-10)

    def test_zero_steps_identity(self):
        b = plummer(50, seed=19)
        res = simulate(b, steps=0)
        assert np.array_equal(res.bodies.pos, b.pos)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            simulate(plummer(10), steps=-1)


class TestBspNBody:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_exact_match_at_theta_zero(self, p):
        """theta=0 disables approximation: parallel == direct sum."""
        b = plummer(60, seed=20)
        run = bsp_nbody(b, p, steps=2, theta=0.0, dt=0.01)
        direct = simulate_direct(b, steps=2, dt=0.01)
        assert np.array_equal(run.bodies.ident, direct.bodies.ident)
        assert np.allclose(run.bodies.pos, direct.bodies.pos, atol=1e-9)

    @pytest.mark.parametrize("p", [2, 3, 4])
    def test_close_to_sequential_bh(self, p):
        """With theta>0 trees differ across layouts, but trajectories stay
        within the approximation budget."""
        b = plummer(150, seed=21)
        run = bsp_nbody(b, p, steps=1, theta=0.5, dt=0.01)
        seq = simulate(b, steps=1, theta=0.5, dt=0.01)
        scale = np.abs(seq.bodies.pos).max()
        assert np.allclose(run.bodies.pos, seq.bodies.pos,
                           atol=2e-3 * scale)

    def test_mass_and_count_preserved(self):
        b = plummer(120, seed=22)
        run = bsp_nbody(b, 4, steps=3, theta=0.8, dt=0.01,
                        rebalance_threshold=0.01)
        assert len(run.bodies) == 120
        assert run.bodies.mass.sum() == pytest.approx(b.mass.sum())
        assert np.array_equal(np.sort(run.bodies.ident), np.arange(120))

    def test_six_supersteps_per_iteration(self):
        """Figure C.4: S = 6 per time step."""
        b = plummer(80, seed=23)
        for steps in (1, 2, 3):
            run = bsp_nbody(b, 4, steps=steps, theta=0.8, dt=0.01)
            assert run.stats.S == 6 * steps + 1  # + final segment

    def test_rebalance_keeps_correctness(self):
        b = plummer(100, seed=24)
        eager = bsp_nbody(b, 4, steps=3, theta=0.0, dt=0.01,
                          rebalance_threshold=0.0)
        direct = simulate_direct(b, steps=3, dt=0.01)
        assert np.allclose(eager.bodies.pos, direct.bodies.pos, atol=1e-9)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_concurrent_backends(self, backend):
        b = plummer(60, seed=25)
        run = bsp_nbody(b, 2, steps=1, theta=0.0, dt=0.01, backend=backend)
        direct = simulate_direct(b, steps=1, dt=0.01)
        assert np.allclose(run.bodies.pos, direct.bodies.pos, atol=1e-9)

    def test_essential_traffic_less_than_naive(self):
        """H must be far below the all-bodies exchange (the paper's
        bandwidth-minimization claim)."""
        b = plummer(256, seed=26)
        p = 4
        run = bsp_nbody(b, p, steps=1, theta=0.9, dt=0.01)
        naive_h = 2 * 256 * (p - 1)  # every body to every peer
        essential_h = max(s.h for s in run.stats.supersteps)
        assert essential_h < naive_h

    @settings(max_examples=5, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=80),
        p=st.integers(min_value=1, max_value=4),
        seed=st.integers(0, 100),
    )
    def test_property_theta_zero_matches_direct(self, n, p, seed):
        b = plummer(n, seed=seed)
        run = bsp_nbody(b, p, steps=1, theta=0.0, dt=0.01)
        direct = simulate_direct(b, steps=1, dt=0.01)
        assert np.allclose(run.bodies.pos, direct.bodies.pos, atol=1e-9)


class TestWarmup:
    def test_warmup_trims_statistics(self):
        b = plummer(100, seed=30)
        plain = bsp_nbody(b, 4, steps=2, theta=0.8, dt=0.01)
        warmed = bsp_nbody(b, 4, steps=2, theta=0.8, dt=0.01,
                           warmup_steps=1)
        # Accounted supersteps cover only the measured steps.
        assert plain.stats.S == 2 * 6 + 1
        assert warmed.stats.S == 2 * 6 + 1
        # ... but the warmed run has evolved one step further.
        assert not np.allclose(plain.bodies.pos, warmed.bodies.pos)

    def test_warmup_improves_balance(self):
        b = plummer(512, seed=31)
        cold = bsp_nbody(b, 4, steps=1, theta=0.9, dt=0.01, balance=False,
                         rebalance_threshold=1e9)
        warm = bsp_nbody(b, 4, steps=1, theta=0.9, dt=0.01, balance=False,
                         rebalance_threshold=1e9, warmup_steps=1)
        def balance(stats):
            return stats.total_charged / (stats.charged_depth * 4)
        assert balance(warm.stats) >= balance(cold.stats) - 0.02

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            bsp_nbody(plummer(10), 2, steps=1, warmup_steps=-1)
