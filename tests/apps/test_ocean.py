"""Tests for the Ocean application (multigrid + model + BSP version)."""

import numpy as np
import pytest

from repro.apps.ocean import (
    OceanParams,
    RowPartition,
    bsp_ocean,
    build_partitions,
    ocean_sequential,
    prolong,
    relax_red_black,
    residual,
    restrict,
    solve_poisson,
    wind_forcing,
)
from repro.apps.ocean.multigrid import COARSEST, apply_reflection


def manufactured_problem(n, k1=2, k2=3):
    """f whose exact cell-centred solution we can verify by residual."""
    h = 1.0 / n
    x = (np.arange(n + 2) - 0.5) * h
    X, Y = np.meshgrid(x, x, indexing="ij")
    f = np.zeros((n + 2, n + 2))
    f[1:-1, 1:-1] = np.sin(k1 * np.pi * X[1:-1, 1:-1]) * np.sin(
        k2 * np.pi * Y[1:-1, 1:-1]
    )
    return f, h


class TestMultigrid:
    def test_solver_reaches_tolerance(self):
        f, h = manufactured_problem(64)
        u, info = solve_poisson(f, h, tol=1e-8)
        assert info.converged
        assert info.residual_norm <= 1e-8 * max(
            np.linalg.norm(f[1:-1, 1:-1]), 1.0
        )

    def test_textbook_convergence_rate(self):
        """V(2,2) must contract the residual by ~10x or better per cycle."""
        rng = np.random.default_rng(0)
        n, h = 64, 1.0 / 64
        f = np.zeros((n + 2, n + 2))
        f[1:-1, 1:-1] = rng.standard_normal((n, n))
        u, info = solve_poisson(f, h, tol=1e-9, max_cycles=30)
        assert info.converged
        assert info.cycles <= 10

    def test_warm_start_cuts_cycles(self):
        f, h = manufactured_problem(32)
        u, cold = solve_poisson(f, h, tol=1e-8)
        _, warm = solve_poisson(f, h, tol=1e-8, u0=u)
        assert warm.cycles < cold.cycles
        assert warm.cycles == 0  # already converged

    def test_relaxation_reduces_residual(self):
        f, h = manufactured_problem(16)
        u = np.zeros_like(f)
        r0 = np.linalg.norm(residual(u, f, h)[1:-1, 1:-1])
        relax_red_black(u, f, h, sweeps=5)
        r1 = np.linalg.norm(residual(u, f, h)[1:-1, 1:-1])
        assert r1 < r0

    def test_restrict_preserves_mean(self):
        rng = np.random.default_rng(1)
        r = np.zeros((18, 18))
        r[1:-1, 1:-1] = rng.standard_normal((16, 16))
        rc = restrict(r)
        assert rc[1:-1, 1:-1].mean() == pytest.approx(r[1:-1, 1:-1].mean())

    def test_prolong_restrict_identity_on_constants(self):
        e = np.zeros((10, 10))
        e[1:-1, 1:-1] = 3.0
        fine = prolong(e, 16)
        assert np.allclose(fine[1:-1, 1:-1], 3.0)
        back = restrict(fine)
        assert np.allclose(back[1:-1, 1:-1], 3.0)

    def test_reflection_zeroes_faces(self):
        u = np.zeros((6, 6))
        u[1:-1, 1:-1] = np.arange(16).reshape(4, 4) + 1.0
        apply_reflection(u)
        # Face value = average of ghost and interior = 0.
        assert np.allclose(u[0, 1:-1] + u[1, 1:-1], 0)
        assert np.allclose(u[:, -1] + u[:, -2], 0)

    def test_size_validation(self):
        f = np.zeros((13, 13))  # interior 11: not a power of two
        with pytest.raises(ValueError):
            solve_poisson(f, 0.1)
        with pytest.raises(ValueError):
            solve_poisson(np.zeros((6, 7)), 0.1)


class TestRowPartition:
    def test_block_covers_all_rows(self):
        part = RowPartition.block(64, 5)
        owned = [part.range_of(q) for q in range(5)]
        assert owned[0][0] == 1
        assert owned[-1][1] == 65
        for (a, b), (c, d) in zip(owned, owned[1:]):
            assert b == c

    def test_owner_roundtrip(self):
        part = RowPartition.block(32, 7)
        for row in range(1, 33):
            q = part.owner(row)
            lo, hi = part.range_of(q)
            assert lo <= row < hi

    def test_owner_range_check(self):
        part = RowPartition.block(8, 2)
        with pytest.raises(ValueError):
            part.owner(0)
        with pytest.raises(ValueError):
            part.owner(9)

    def test_coarsen_alignment(self):
        """Coarse row I lives with fine row 2I at every level."""
        part = RowPartition.block(64, 6)
        coarse = part.coarsen()
        assert coarse.m == 32
        for big_i in range(1, 33):
            assert coarse.owner(big_i) == part.owner(2 * big_i)

    def test_hierarchy_bottoms_out(self):
        parts = build_partitions(64, 4)
        assert [p.m for p in parts] == [64, 32, 16, 8, 4]
        assert parts[-1].m == COARSEST

    def test_zero_row_processors_allowed(self):
        part = RowPartition.block(4, 8)
        counts = [part.range_of(q)[1] - part.range_of(q)[0] for q in range(8)]
        assert sum(counts) == 4
        assert min(counts) == 0


class TestOceanModel:
    def test_forcing_antisymmetric_in_y(self):
        f = wind_forcing(16, 1.0)
        inner = f[1:-1, 1:-1]
        assert np.allclose(inner, inner[0][None, :])  # x-independent
        assert np.allclose(inner[:, :8], -inner[:, :7:-1])  # two gyres

    def test_spinup_produces_circulation(self):
        state = ocean_sequential(34, 4)
        assert np.abs(state.psi).max() > 0
        assert np.abs(state.zeta).max() > 0
        assert len(state.cycles) == 4
        assert all(c >= 1 for c in state.cycles)

    def test_double_gyre_structure(self):
        """ψ changes sign between the two half-basins in y."""
        state = ocean_sequential(34, 6)
        m = 32
        top = state.psi[1:-1, 1 : m // 2 + 1].mean()
        bottom = state.psi[1:-1, m // 2 + 1 : -1].mean()
        assert top * bottom < 0

    def test_zero_steps(self):
        state = ocean_sequential(18, 0)
        assert np.all(state.psi == 0)
        assert state.cycles == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ocean_sequential(35, 1)
        with pytest.raises(ValueError):
            ocean_sequential(18, -1)


class TestBspOcean:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8, 16])
    def test_bitwise_match_with_sequential(self, p):
        """Distributed iterates replicate the sequential ones exactly."""
        seq = ocean_sequential(34, 2)
        run = bsp_ocean(34, 2, p)
        assert np.array_equal(
            run.state.psi[1:-1, 1:-1], seq.psi[1:-1, 1:-1]
        )
        assert np.array_equal(
            run.state.zeta[1:-1, 1:-1], seq.zeta[1:-1, 1:-1]
        )
        assert run.state.cycles == seq.cycles

    def test_supersteps_independent_of_p(self):
        """Figure C.1: ocean's S column is identical for every nprocs."""
        s_values = {bsp_ocean(34, 1, p).stats.S for p in (1, 2, 4, 8)}
        assert len(s_values) == 1

    def test_h_roughly_constant_across_p(self):
        """Ghost rows are full-width, so h_i barely grows with p (paper:
        12192 at p=2 vs 13360 at p=16 for size 66)."""
        h2 = bsp_ocean(34, 1, 2).stats.H
        h8 = bsp_ocean(34, 1, 8).stats.H
        assert h8 < 3 * h2

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_concurrent_backends(self, backend):
        seq = ocean_sequential(18, 1)
        run = bsp_ocean(18, 1, 2, backend=backend)
        assert np.array_equal(
            run.state.psi[1:-1, 1:-1], seq.psi[1:-1, 1:-1]
        )

    def test_custom_params_propagate(self):
        params = OceanParams(tol=1e-3, max_cycles=2)
        run = bsp_ocean(18, 2, 2, params=params)
        assert all(c <= 2 for c in run.state.cycles)

    def test_validation(self):
        with pytest.raises(ValueError):
            bsp_ocean(35, 1, 2)
        with pytest.raises(ValueError):
            bsp_ocean(18, -1, 2)


class TestDegenerateDecompositions:
    def test_more_processors_than_coarse_rows(self):
        """p exceeding coarse-level row counts (zero-row processors at
        deep levels) must not change results."""
        seq = ocean_sequential(18, 1)   # interior 16: coarse levels 8, 4
        run = bsp_ocean(18, 1, 12)      # 12 procs > 8 coarse rows
        assert np.array_equal(
            run.state.psi[1:-1, 1:-1], seq.psi[1:-1, 1:-1]
        )

    def test_processor_count_equals_rows(self):
        seq = ocean_sequential(18, 1)
        run = bsp_ocean(18, 1, 16)
        assert np.array_equal(
            run.state.psi[1:-1, 1:-1], seq.psi[1:-1, 1:-1]
        )
