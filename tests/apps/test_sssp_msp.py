"""Tests for the shortest-paths applications (SP and MSP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.msp import PAPER_NSOURCES, default_sources
from repro.apps.sssp import bsp_msp, bsp_sssp, dijkstra, dijkstra_many
from repro.graphs import (
    Graph,
    block_partition,
    geometric_graph,
    grid_graph,
    hash_partition,
    random_connected_graph,
    spatial_partition,
)


def scipy_dijkstra(graph, source):
    """Independent oracle: scipy.sparse.csgraph."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    mat = csr_matrix(
        (graph.weights, graph.indices, graph.indptr), shape=(graph.n, graph.n)
    )
    return sp_dijkstra(mat, indices=source)


class TestSequentialDijkstra:
    def test_line_graph(self):
        g = Graph.from_edges(
            4, np.array([0, 1, 2]), np.array([1, 2, 3]),
            np.array([1.0, 2.0, 3.0])
        )
        assert dijkstra(g, 0).tolist() == [0.0, 1.0, 3.0, 6.0]

    def test_matches_scipy(self):
        gg = geometric_graph(200, seed=1)
        assert np.allclose(dijkstra(gg.graph, 5), scipy_dijkstra(gg.graph, 5))

    def test_unreachable_is_inf(self):
        g = Graph.from_edges(3, np.array([0]), np.array([1]), np.array([1.0]))
        d = dijkstra(g, 0)
        assert d[2] == np.inf

    def test_bad_source(self):
        g = grid_graph(2, 2)
        with pytest.raises(ValueError):
            dijkstra(g, 99)

    def test_negative_weight_rejected(self):
        g = Graph.from_edges(2, np.array([0]), np.array([1]),
                             np.array([-1.0]))
        with pytest.raises(ValueError):
            dijkstra(g, 0)

    def test_dijkstra_many_rows(self):
        g = random_connected_graph(50, extra_edges=60, seed=2)
        many = dijkstra_many(g, [0, 7, 13])
        assert many.shape == (3, 50)
        for row, s in zip(many, [0, 7, 13]):
            assert np.allclose(row, dijkstra(g, s))


class TestBspSssp:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_matches_dijkstra_geometric(self, p):
        gg = geometric_graph(180, seed=p)
        owner = spatial_partition(gg.points, p)
        res = bsp_sssp(gg.graph, owner, p, source=0)
        assert np.allclose(res.dist, dijkstra(gg.graph, 0))

    @pytest.mark.parametrize("work_factor", [1, 5, 50, None])
    def test_any_work_factor_correct(self, work_factor):
        """The work factor trades supersteps for balance — never accuracy."""
        gg = geometric_graph(120, seed=3)
        owner = spatial_partition(gg.points, 4)
        res = bsp_sssp(gg.graph, owner, 4, source=7, work_factor=work_factor)
        assert np.allclose(res.dist, dijkstra(gg.graph, 7))

    def test_naive_variant_fewer_supersteps(self):
        """Draining the queue (naive) syncs less often than tiny budgets."""
        gg = geometric_graph(150, seed=5)
        owner = spatial_partition(gg.points, 4)
        naive = bsp_sssp(gg.graph, owner, 4, source=0, work_factor=None)
        tiny = bsp_sssp(gg.graph, owner, 4, source=0, work_factor=1)
        assert naive.stats.S < tiny.stats.S

    def test_hash_partition_correct(self):
        gg = geometric_graph(100, seed=7)
        owner = hash_partition(gg.graph.n, 4, seed=1)
        res = bsp_sssp(gg.graph, owner, 4, source=3)
        assert np.allclose(res.dist, dijkstra(gg.graph, 3))

    def test_grid_graph(self):
        g = grid_graph(8, 8, seed=1)
        owner = block_partition(g.n, 4)
        res = bsp_sssp(g, owner, 4, source=0)
        assert np.allclose(res.dist, dijkstra(g, 0))

    def test_disconnected_graph(self):
        g = Graph.from_edges(
            5, np.array([0, 1]), np.array([1, 2]), np.array([1.0, 1.0])
        )
        owner = block_partition(5, 2)
        res = bsp_sssp(g, owner, 2, source=0)
        expected = np.array([0.0, 1.0, 2.0, np.inf, np.inf])
        assert np.allclose(res.dist, expected)

    def test_source_on_last_processor(self):
        gg = geometric_graph(90, seed=9)
        owner = spatial_partition(gg.points, 3)
        src = int(np.flatnonzero(owner == 2)[0])
        res = bsp_sssp(gg.graph, owner, 3, source=src)
        assert np.allclose(res.dist, dijkstra(gg.graph, src))

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_concurrent_backends(self, backend):
        gg = geometric_graph(90, seed=11)
        owner = spatial_partition(gg.points, 3)
        res = bsp_sssp(gg.graph, owner, 3, source=0, backend=backend)
        assert np.allclose(res.dist, dijkstra(gg.graph, 0))

    def test_bad_args(self):
        g = grid_graph(3, 3)
        owner = block_partition(9, 2)
        with pytest.raises(ValueError):
            bsp_sssp(g, owner, 2, source=100)
        with pytest.raises(ValueError):
            bsp_sssp(g, owner, 2, source=0, work_factor=0)

    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=80),
        p=st.integers(min_value=1, max_value=4),
        seed=st.integers(0, 200),
        wf=st.sampled_from([2, 25, None]),
    )
    def test_property_matches_dijkstra(self, n, p, seed, wf):
        gg = geometric_graph(n, seed=seed)
        owner = spatial_partition(gg.points, p)
        src = seed % n
        res = bsp_sssp(gg.graph, owner, p, source=src, work_factor=wf)
        assert np.allclose(res.dist, dijkstra(gg.graph, src))


class TestBspMsp:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_sequential_many(self, p):
        gg = geometric_graph(150, seed=p + 20)
        owner = spatial_partition(gg.points, p)
        sources = default_sources(gg.graph.n, nsources=8, seed=1)
        res = bsp_msp(gg.graph, owner, p, sources)
        assert res.dist.shape == (8, gg.graph.n)
        assert np.allclose(res.dist, dijkstra_many(gg.graph, sources))

    def test_single_source_equals_sssp(self):
        gg = geometric_graph(100, seed=31)
        owner = spatial_partition(gg.points, 3)
        msp = bsp_msp(gg.graph, owner, 3, [4])
        sp = bsp_sssp(gg.graph, owner, 3, source=4)
        assert np.allclose(msp.dist[0], sp.dist)

    def test_paper_source_count(self):
        sources = default_sources(1000)
        assert len(sources) == PAPER_NSOURCES == 25
        assert len(set(sources)) == 25

    def test_sources_validation(self):
        g = grid_graph(3, 3)
        owner = block_partition(9, 2)
        with pytest.raises(ValueError):
            bsp_msp(g, owner, 2, [])
        with pytest.raises(ValueError):
            default_sources(5, nsources=10)

    def test_shared_graph_amortizes_supersteps(self):
        """K computations together need far fewer supersteps than K runs."""
        gg = geometric_graph(120, seed=41)
        owner = spatial_partition(gg.points, 4)
        sources = default_sources(gg.graph.n, nsources=5, seed=3)
        together = bsp_msp(gg.graph, owner, 4, sources, work_factor=50)
        separate = sum(
            bsp_sssp(gg.graph, owner, 4, source=s, work_factor=50).stats.S
            for s in sources
        )
        assert together.stats.S < separate

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_concurrent_backends(self, backend):
        gg = geometric_graph(80, seed=51)
        owner = spatial_partition(gg.points, 3)
        sources = [0, 10, 20]
        res = bsp_msp(gg.graph, owner, 3, sources, backend=backend)
        assert np.allclose(res.dist, dijkstra_many(gg.graph, sources))


class TestBspShape:
    def test_conservative_updates(self):
        """Per-superstep update traffic never exceeds border counts + flags."""
        from repro.graphs import LocalGraph

        gg = geometric_graph(200, seed=61)
        p = 4
        owner = spatial_partition(gg.points, p)
        res = bsp_sssp(gg.graph, owner, p, source=0, work_factor=None)
        max_border = max(
            LocalGraph.build(gg.graph, owner, q, p).nborder for q in range(p)
        )
        for step in res.stats.supersteps:
            assert step.h_sent_max <= max_border + (p - 1)

    def test_supersteps_scale_with_work_factor(self):
        gg = geometric_graph(200, seed=71)
        owner = spatial_partition(gg.points, 4)
        s_small = bsp_sssp(gg.graph, owner, 4, source=0, work_factor=10).stats.S
        s_large = bsp_sssp(gg.graph, owner, 4, source=0, work_factor=1000).stats.S
        assert s_small > s_large

    def test_single_processor_minimal(self):
        gg = geometric_graph(100, seed=81)
        res = bsp_sssp(gg.graph, np.zeros(100, dtype=np.int64), 1, source=0,
                       work_factor=None)
        assert res.stats.H == 0
        assert np.allclose(res.dist, dijkstra(gg.graph, 0))
