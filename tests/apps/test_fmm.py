"""Tests for the Fast Multipole Method (quadtree, operators, drivers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fmm import (
    bsp_fmm,
    cell_center,
    cells_at,
    children,
    default_depth,
    demorton,
    direct_evaluate,
    eval_multipole,
    eval_multipole_deriv,
    fmm_evaluate,
    interaction_list,
    l2l,
    l2p,
    l2p_deriv,
    leaf_owner_ranges,
    m2l,
    m2m,
    morton,
    neighbors,
    p2m,
    p2p,
    p2p_deriv,
    parent,
)


def cluster(rng, center, radius, n=25):
    z = center + radius * (
        (rng.random(n) - 0.5) + 1j * (rng.random(n) - 0.5)
    )
    q = rng.standard_normal(n)
    return z, q


class TestQuadtree:
    def test_morton_roundtrip(self):
        for ix in range(16):
            for iy in range(16):
                assert demorton(morton(ix, iy)) == (ix, iy)

    def test_morton_children_contiguous(self):
        """A cell's 4 children occupy 4 consecutive Morton codes."""
        for ix, iy in [(0, 0), (3, 5), (7, 7)]:
            kid_codes = sorted(morton(cx, cy) for cx, cy in children(ix, iy))
            assert kid_codes == list(
                range(4 * morton(ix, iy), 4 * morton(ix, iy) + 4)
            )

    def test_parent_child_inverse(self):
        for ix, iy in [(0, 0), (5, 2), (7, 7)]:
            for cx, cy in children(ix, iy):
                assert parent(cx, cy) == (ix, iy)

    def test_neighbors_counts(self):
        assert len(neighbors(2, 0, 0)) == 3    # corner
        assert len(neighbors(2, 1, 0)) == 5    # edge
        assert len(neighbors(2, 1, 1)) == 8    # interior

    def test_interaction_list_properties(self):
        for level in (2, 3):
            n = cells_at(level)
            for ix, iy in [(0, 0), (n // 2, n // 2), (n - 1, 1)]:
                il = interaction_list(level, ix, iy)
                assert len(il) <= 27
                near = set(neighbors(level, ix, iy)) | {(ix, iy)}
                for jx, jy in il:
                    assert (jx, jy) not in near
                    # Parent-adjacency: their parents are neighbors/equal.
                    assert abs(parent(jx, jy)[0] - parent(ix, iy)[0]) <= 1
                    assert abs(parent(jx, jy)[1] - parent(ix, iy)[1]) <= 1

    def test_interaction_list_covers_all_separated_cells(self):
        """Every cell is near, in the IL, or handled at a coarser level:
        at level 2 (4x4), near + IL covers everything."""
        il = interaction_list(2, 1, 1)
        near = set(neighbors(2, 1, 1)) | {(1, 1)}
        assert len(il) + len(near) == 16

    def test_leaf_owner_ranges_partition(self):
        ranges = leaf_owner_ranges(3, 5)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 64
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_default_depth_scales(self):
        assert default_depth(10) == 2
        assert default_depth(10_000) > default_depth(100)


class TestOperators:
    """Each FMM operator against brute force, to near machine precision."""

    def setup_method(self):
        self.rng = np.random.default_rng(7)
        self.center = 0.125 + 0.125j
        self.z, self.q = cluster(self.rng, self.center, 0.12)
        self.far = 0.8 + 0.75j + 0.05 * self.rng.random(6)
        self.exact = p2p(self.far, self.z, self.q)
        self.terms = 20

    def test_p2m_eval(self):
        a = p2m(self.z, self.q, self.center, self.terms)
        approx = eval_multipole(a, self.center, self.far)
        assert np.abs(approx.real - self.exact.real).max() < 1e-10

    def test_p2m_deriv(self):
        a = p2m(self.z, self.q, self.center, self.terms)
        approx = eval_multipole_deriv(a, self.center, self.far)
        exact = p2p_deriv(self.far, self.z, self.q)
        assert np.abs(approx - exact).max() < 1e-9

    def test_m2m_exactness(self):
        """M2M is exact (no truncation beyond the original expansion)."""
        a = p2m(self.z, self.q, self.center, self.terms)
        new_center = 0.25 + 0.25j
        b = m2m(a, self.center - new_center)
        shifted = eval_multipole(b, new_center, self.far)
        original = eval_multipole(a, self.center, self.far)
        assert np.abs(shifted.real - original.real).max() < 1e-10

    def test_m2l_and_l2p(self):
        a = p2m(self.z, self.q, self.center, self.terms)
        local_center = 0.8 + 0.75j
        b = m2l(a, self.center - local_center)
        approx = l2p(b, local_center, self.far)
        assert np.abs(approx.real - self.exact.real).max() < 1e-8

    def test_l2l_exactness(self):
        a = p2m(self.z, self.q, self.center, self.terms)
        local_center = 0.8 + 0.75j
        b = m2l(a, self.center - local_center)
        new_center = 0.82 + 0.73j
        c = l2l(b, new_center - local_center)
        assert np.abs(
            l2p(c, new_center, self.far) - l2p(b, local_center, self.far)
        ).max() < 1e-9

    def test_l2p_deriv_matches_difference_quotient(self):
        a = p2m(self.z, self.q, self.center, self.terms)
        local_center = 0.8 + 0.75j
        b = m2l(a, self.center - local_center)
        z0 = np.array([0.81 + 0.76j])
        h = 1e-6
        numeric = (
            l2p(b, local_center, z0 + h) - l2p(b, local_center, z0 - h)
        ) / (2 * h)
        assert np.abs(l2p_deriv(b, local_center, z0) - numeric).max() < 1e-4

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), terms=st.integers(8, 24))
    def test_property_pipeline_error_bounded(self, seed, terms):
        """P2M→M2M→M2L→L2L→L2P error shrinks geometrically in terms."""
        rng = np.random.default_rng(seed)
        z, q = cluster(rng, 0.125 + 0.125j, 0.2)
        targets = 0.875 + 0.875j + 0.1 * (
            rng.random(4) - 0.5 + 1j * (rng.random(4) - 0.5)
        )
        a = p2m(z, q, 0.125 + 0.125j, terms)
        b = m2m(a, (0.125 + 0.125j) - (0.25 + 0.25j))
        c = m2l(b, (0.25 + 0.25j) - (0.75 + 0.75j))
        d = l2l(c, (0.875 + 0.875j) - (0.75 + 0.75j))
        approx = l2p(d, 0.875 + 0.875j, targets)
        exact = p2p(targets, z, q)
        scale = max(np.abs(exact.real).max(), 1e-9)
        assert np.abs(approx.real - exact.real).max() / scale < 0.7**terms * 50


class TestSequentialFmm:
    def test_matches_direct_sum(self):
        rng = np.random.default_rng(3)
        pts = rng.random((600, 2))
        q = rng.standard_normal(600)
        res = fmm_evaluate(pts, q, terms=16, depth=3)
        exact = direct_evaluate(pts, q)
        scale = np.abs(exact.potential).max()
        assert np.abs(res.potential - exact.potential).max() / scale < 1e-6
        fscale = np.abs(exact.field).max()
        assert np.abs(res.field - exact.field).max() / fscale < 1e-5

    def test_error_decays_with_terms(self):
        rng = np.random.default_rng(5)
        pts = rng.random((400, 2))
        q = rng.standard_normal(400)
        exact = direct_evaluate(pts, q)
        errs = []
        for terms in (6, 12, 18):
            res = fmm_evaluate(pts, q, terms=terms, depth=3)
            errs.append(np.abs(res.potential - exact.potential).max())
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] < errs[0] * 1e-3

    def test_depth_invariance(self):
        rng = np.random.default_rng(6)
        pts = rng.random((500, 2))
        q = rng.standard_normal(500)
        exact = direct_evaluate(pts, q)
        for depth in (2, 3, 4):
            res = fmm_evaluate(pts, q, terms=16, depth=depth)
            scale = np.abs(exact.potential).max()
            err = np.abs(res.potential - exact.potential).max() / scale
            assert err < 1e-5, (depth, err)

    def test_neutral_pair_far_field_cancels(self):
        """A tight ± dipole's far potential is tiny (multipole a0 = 0)."""
        pts = np.array([[0.5, 0.5], [0.501, 0.5], [0.95, 0.95]])
        q = np.array([1.0, -1.0, 0.0])
        res = fmm_evaluate(pts, q, terms=16, depth=2)
        exact = direct_evaluate(pts, q)
        assert abs(res.potential[2] - exact.potential[2]) < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            fmm_evaluate(np.zeros((3, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            fmm_evaluate(np.full((2, 2), 1.5), np.zeros(2))
        with pytest.raises(ValueError):
            fmm_evaluate(np.full((2, 2), 0.5), np.zeros(2), terms=1)
        with pytest.raises(ValueError):
            fmm_evaluate(np.full((2, 2), 0.5), np.zeros(2), depth=1)


class TestBspFmm:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_matches_sequential(self, p):
        rng = np.random.default_rng(11)
        pts = rng.random((500, 2))
        q = rng.standard_normal(500)
        seq = fmm_evaluate(pts, q, terms=12, depth=3)
        run = bsp_fmm(pts, q, p, terms=12, depth=3)
        assert np.allclose(run.potential, seq.potential, atol=1e-10)
        assert np.allclose(run.field, seq.field, atol=1e-9)

    def test_constant_supersteps(self):
        """The FMM's BSP headline: S independent of p and depth."""
        rng = np.random.default_rng(13)
        pts = rng.random((300, 2))
        q = rng.standard_normal(300)
        s_values = set()
        for p in (2, 4, 8):
            for depth in (2, 3):
                s_values.add(
                    bsp_fmm(pts, q, p, terms=8, depth=depth).stats.S
                )
        assert s_values == {2}

    def test_h_is_boundary_not_volume(self):
        """Exchanged data ≪ replicating all multipoles + particles."""
        rng = np.random.default_rng(17)
        n = 2000
        pts = rng.random((n, 2))
        q = rng.standard_normal(n)
        run = bsp_fmm(pts, q, 4, terms=8, depth=4)
        everything = 9 * (4**4 + 4**3 + 4**2) + 2 * n  # all cells + bodies
        assert run.stats.H < everything

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_concurrent_backends(self, backend):
        rng = np.random.default_rng(19)
        pts = rng.random((300, 2))
        q = rng.standard_normal(300)
        seq = fmm_evaluate(pts, q, terms=10, depth=3)
        run = bsp_fmm(pts, q, 3, terms=10, depth=3, backend=backend)
        assert np.allclose(run.potential, seq.potential, atol=1e-10)

    def test_clustered_distribution(self):
        """Non-uniform inputs (empty cells) stay correct."""
        rng = np.random.default_rng(23)
        blob1 = 0.1 + 0.08 * rng.random((200, 2))
        blob2 = 0.8 + 0.15 * rng.random((200, 2))
        pts = np.vstack([blob1, blob2])
        q = rng.standard_normal(400)
        seq = direct_evaluate(pts, q)
        run = bsp_fmm(pts, q, 4, terms=16, depth=3)
        scale = np.abs(seq.potential).max()
        assert np.abs(run.potential - seq.potential).max() / scale < 1e-6
