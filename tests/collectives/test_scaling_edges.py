"""Collective edge cases at larger processor counts and odd shapes."""

import operator

import pytest

from repro import bsp_run
from repro.collectives import (
    allgather,
    allreduce,
    broadcast,
    gather,
    scan,
    scatter,
    tree_reduce,
)


class TestSixteenProcessors:
    def test_allreduce_p16(self):
        def program(bsp):
            return allreduce(bsp, bsp.pid, operator.add)

        assert bsp_run(program, 16).results == [120] * 16

    def test_tree_reduce_p16_matches_flat(self):
        def program(bsp):
            flat = allreduce(bsp, bsp.pid + 1, operator.add)
            tree = tree_reduce(bsp, bsp.pid + 1, operator.add)
            return flat, tree

        results = bsp_run(program, 16).results
        assert results[0] == (136, 136)
        assert all(r[1] is None for r in results[1:])

    def test_scan_p16(self):
        def program(bsp):
            return scan(bsp, 1, operator.add)

        assert bsp_run(program, 16).results == list(range(1, 17))


class TestBroadcastFlagPath:
    def test_auto_mode_consistent_when_root_varies_type(self):
        """The mode flag is decided root-side and shared; non-roots must
        not need to know the payload type."""

        def program(bsp):
            value = list(range(200)) if bsp.pid == 2 else None
            return broadcast(bsp, value, root=2)

        results = bsp_run(program, 5).results
        assert all(r == list(range(200)) for r in results)

    def test_two_phase_uneven_slices(self):
        """Payload length not divisible by p."""
        data = bytes(range(101))

        def program(bsp):
            return broadcast(bsp, data if bsp.pid == 0 else None, root=0,
                             two_phase=True)

        assert bsp_run(program, 7).results == [data] * 7


class TestRootVariants:
    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_scatter_gather_any_root(self, root):
        def program(bsp):
            values = (
                [f"v{q}" for q in range(bsp.nprocs)]
                if bsp.pid == root
                else None
            )
            mine = scatter(bsp, values, root=root)
            return gather(bsp, mine.upper(), root=root)

        results = bsp_run(program, 4).results
        assert results[root] == [f"V{q}" for q in range(4)]
        for q in range(4):
            if q != root:
                assert results[q] is None

    def test_allgather_payload_identity(self):
        def program(bsp):
            return allgather(bsp, {"pid": bsp.pid})

        results = bsp_run(program, 3).results
        assert results[0] == [{"pid": 0}, {"pid": 1}, {"pid": 2}]
        assert results[0] == results[1] == results[2]
