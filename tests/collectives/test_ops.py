"""Unit + property tests for the BSP collectives.

Each collective is checked against its functional specification on the
simulator; a representative subset re-runs on the concurrent backends to
guard against backend-specific ordering assumptions.
"""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bsp_run
from repro.collectives import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    broadcast,
    gather,
    reduce,
    scan,
    scatter,
    tree_reduce,
)
from repro.core.errors import BspUsageError


def run(program, nprocs, backend="simulator", **kwargs):
    return bsp_run(program, nprocs, backend=backend, kwargs=kwargs)


class TestBroadcast:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_one_stage(self, p):
        def program(bsp):
            value = ("payload", 42) if bsp.pid == 1 % p else None
            return broadcast(bsp, value, root=1 % p, two_phase=False)

        assert run(program, p).results == [("payload", 42)] * p

    @pytest.mark.parametrize("p", [2, 4, 7])
    def test_two_phase_bytes(self, p):
        data = bytes(range(256)) * 2

        def program(bsp):
            return broadcast(
                bsp, data if bsp.pid == 0 else None, root=0, two_phase=True
            )

        assert run(program, p).results == [data] * p

    def test_two_phase_list(self):
        data = list(range(101))

        def program(bsp):
            return broadcast(
                bsp, data if bsp.pid == 0 else None, root=0, two_phase=True
            )

        assert run(program, 4).results == [data] * 4

    def test_two_phase_tuple_preserves_type(self):
        data = tuple(range(50))

        def program(bsp):
            return broadcast(
                bsp, data if bsp.pid == 0 else None, root=0, two_phase=True
            )

        for result in run(program, 3).results:
            assert result == data
            assert isinstance(result, tuple)

    def test_auto_mode_small_value(self):
        def program(bsp):
            return broadcast(bsp, 7 if bsp.pid == 0 else None, root=0)

        assert run(program, 4).results == [7] * 4

    def test_auto_mode_large_sequence(self):
        data = bytes(1000)

        def program(bsp):
            return broadcast(bsp, data if bsp.pid == 0 else None, root=0)

        assert run(program, 4).results == [data] * 4

    def test_superstep_cost(self):
        """One-stage broadcast costs exactly one superstep."""

        def program(bsp):
            broadcast(bsp, 1 if bsp.pid == 0 else None, root=0, two_phase=False)

        assert run(program, 4).stats.S == 2  # 1 collective + final segment

    def test_bad_root(self):
        def program(bsp):
            broadcast(bsp, 1, root=9, two_phase=False)

        with pytest.raises(Exception):
            run(program, 2)


class TestScatterGather:
    @pytest.mark.parametrize("p", [1, 3, 6])
    def test_scatter(self, p):
        def program(bsp):
            values = [f"item-{q}" for q in range(p)] if bsp.pid == 0 else None
            return scatter(bsp, values, root=0)

        assert run(program, p).results == [f"item-{q}" for q in range(p)]

    def test_scatter_wrong_length(self):
        def program(bsp):
            scatter(bsp, [1] if bsp.pid == 0 else None, root=0)

        with pytest.raises(Exception):
            run(program, 3)

    @pytest.mark.parametrize("p", [1, 2, 5])
    def test_gather(self, p):
        def program(bsp):
            return gather(bsp, bsp.pid * 10, root=0)

        results = run(program, p).results
        assert results[0] == [q * 10 for q in range(p)]
        assert all(r is None for r in results[1:])

    def test_gather_to_nonzero_root(self):
        def program(bsp):
            return gather(bsp, bsp.pid, root=2)

        results = run(program, 4).results
        assert results[2] == [0, 1, 2, 3]
        assert results[0] is None

    def test_scatter_gather_roundtrip(self):
        def program(bsp):
            values = list(range(bsp.nprocs)) if bsp.pid == 0 else None
            mine = scatter(bsp, values, root=0)
            return gather(bsp, mine * 2, root=0)

        results = run(program, 5).results
        assert results[0] == [2 * q for q in range(5)]


class TestAllVariants:
    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_allgather(self, p):
        def program(bsp):
            return allgather(bsp, chr(ord("a") + bsp.pid))

        expected = [chr(ord("a") + q) for q in range(p)]
        assert run(program, p).results == [expected] * p

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_alltoall(self, p):
        def program(bsp):
            return alltoall(bsp, [(bsp.pid, q) for q in range(bsp.nprocs)])

        for pid, got in enumerate(run(program, p).results):
            assert got == [(src, pid) for src in range(p)]

    def test_alltoall_wrong_length(self):
        def program(bsp):
            alltoall(bsp, [0])

        with pytest.raises(Exception):
            run(program, 3)

    def test_allreduce_sum(self):
        def program(bsp):
            return allreduce(bsp, bsp.pid + 1, operator.add)

        p = 6
        assert run(program, p).results == [p * (p + 1) // 2] * p

    def test_allreduce_single_superstep(self):
        def program(bsp):
            allreduce(bsp, 1, operator.add)

        assert run(program, 4).stats.S == 2

    def test_allreduce_noncommutative_associative(self):
        """String concatenation: associative, not commutative."""

        def program(bsp):
            return allreduce(bsp, str(bsp.pid), operator.add)

        assert run(program, 4).results == ["0123"] * 4


class TestReduceScan:
    def test_reduce_max(self):
        def program(bsp):
            return reduce(bsp, (bsp.pid * 7) % 5, max, root=0)

        results = run(program, 5).results
        assert results[0] == max((q * 7) % 5 for q in range(5))
        assert results[1] is None

    @pytest.mark.parametrize("p", [1, 2, 3, 8])
    def test_scan_inclusive_sum(self, p):
        def program(bsp):
            return scan(bsp, bsp.pid + 1, operator.add)

        expected = [sum(range(1, q + 2)) for q in range(p)]
        assert run(program, p).results == expected

    def test_scan_concat_order(self):
        def program(bsp):
            return scan(bsp, str(bsp.pid), operator.add)

        assert run(program, 4).results == ["0", "01", "012", "0123"]

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8, 9])
    @pytest.mark.parametrize("fanin", [2, 3])
    def test_tree_reduce(self, p, fanin):
        def program(bsp):
            return tree_reduce(bsp, bsp.pid + 1, operator.add, fanin=fanin)

        results = run(program, p).results
        assert results[0] == p * (p + 1) // 2
        assert all(r is None for r in results[1:])

    def test_tree_reduce_uses_log_supersteps(self):
        def program(bsp):
            tree_reduce(bsp, 1, operator.add, fanin=2)

        stats = run(program, 8).stats
        assert stats.S == 4  # 3 rounds + final segment

    def test_tree_reduce_bad_fanin(self):
        def program(bsp):
            tree_reduce(bsp, 1, operator.add, fanin=1)

        with pytest.raises(Exception):
            run(program, 2)


class TestBarrier:
    def test_costs_one_superstep_no_traffic(self):
        def program(bsp):
            barrier(bsp)

        stats = run(program, 4).stats
        assert stats.S == 2
        assert stats.H == 0


class TestOnConcurrentBackends:
    """Representative spot-checks off the simulator."""

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_allreduce(self, backend):
        def program(bsp):
            return allreduce(bsp, bsp.pid, operator.add)

        assert run(program, 4, backend=backend).results == [6] * 4

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_broadcast_then_gather(self, backend):
        def program(bsp):
            seed = broadcast(bsp, 99 if bsp.pid == 0 else None, root=0,
                             two_phase=False)
            return gather(bsp, seed + bsp.pid, root=0)

        results = run(program, 3, backend=backend).results
        assert results[0] == [99, 100, 101]


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        p=st.integers(min_value=1, max_value=6),
        values=st.lists(st.integers(-1000, 1000), min_size=6, max_size=6),
    )
    def test_property_allreduce_equals_python_sum(self, p, values):
        def program(bsp):
            return allreduce(bsp, values[bsp.pid], operator.add)

        assert run(program, p).results == [sum(values[:p])] * p

    @settings(max_examples=25, deadline=None)
    @given(
        p=st.integers(min_value=1, max_value=6),
        values=st.lists(st.integers(-1000, 1000), min_size=6, max_size=6),
    )
    def test_property_scan_matches_itertools(self, p, values):
        import itertools

        def program(bsp):
            return scan(bsp, values[bsp.pid], operator.add)

        expected = list(itertools.accumulate(values[:p]))
        assert run(program, p).results == expected

    @settings(max_examples=20, deadline=None)
    @given(
        p=st.integers(min_value=1, max_value=5),
        payload=st.binary(min_size=0, max_size=200),
    )
    def test_property_broadcast_identity(self, p, payload):
        def program(bsp):
            return broadcast(
                bsp, payload if bsp.pid == 0 else None, root=0, two_phase=False
            )

        assert run(program, p).results == [payload] * p
