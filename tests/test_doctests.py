"""Executable documentation: run every module doctest."""

import doctest

import pytest

import repro.core.packets
import repro.core.runtime
import repro.graphs.unionfind
import repro.service.fleet

MODULES = [
    repro.core.packets,
    repro.core.runtime,
    repro.graphs.unionfind,
    repro.service.fleet,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tested = doctest.testmod(module).failed, doctest.testmod(
        module
    ).attempted
    assert tested > 0, f"{module.__name__} lost its doctests"
    assert failures == 0
