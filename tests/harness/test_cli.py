"""Tests for the ``python -m repro.harness`` command-line entry point."""

import json

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for app in ("ocean", "mst", "nbody", "matmult", "sp", "msp"):
            assert app in out
        assert "REPRO_FULL=1" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "ocean" in capsys.readouterr().out

    def test_single_table(self, capsys):
        assert main(["matmult", "144"]) == 0
        out = capsys.readouterr().out
        assert "matmult size 144" in out
        assert "SGI pred" in out
        assert "S paper" in out

    def test_profile_w_prints_superstep_tables(self, capsys):
        assert main(["matmult", "144", "--profile-w",
                     "--profile-limit", "4"]) == 0
        out = capsys.readouterr().out
        assert "measured w (ms)" in out
        assert "pred W (ms)" in out
        # One profile table per processor count of the sweep.
        assert out.count("measured w vs predicted SGI W") >= 2
        assert "charged work model" in out

    def test_unknown_size(self, capsys):
        assert main(["matmult", "999"]) == 2
        assert "unknown size" in capsys.readouterr().err

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["sorting"])


class TestRunJson:
    """``run --json``: machine-readable output and exit-code discipline."""

    def test_success_payload(self, capsys):
        assert main(["run", "matmult", "144", "--backend", "simulator",
                     "--nprocs", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["app"] == "matmult"
        assert payload["size"] == "144"
        assert payload["backend"] == "simulator"
        assert payload["nprocs"] == 4
        assert payload["S"] > 0
        assert payload["H"] >= 0
        assert payload["wall_seconds"] > 0
        assert len(payload["digest"]) == 64

    def test_digest_is_deterministic(self, capsys):
        assert main(["run", "matmult", "144", "--backend", "simulator",
                     "--nprocs", "4", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["run", "matmult", "144", "--backend", "simulator",
                     "--nprocs", "4", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["digest"] == second["digest"]

    def test_failure_payload_and_exit_code(self, capsys):
        # Checkpointing on a multiprocess backend without an on-disk
        # store is a typed config error; --json turns it into data.
        assert main(["run", "ocean", "66", "--backend", "processes",
                     "--checkpoint-every", "2", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["error"]["error"] == "BspConfigError"
        assert "store" in payload["error"]["message"]


class TestServiceCliClients:
    """The client subcommands fail cleanly when no gateway listens.

    "No gateway is listening" gets its own exit code (3) — distinct from
    1 (the request reached a gateway and failed) — and the message names
    the address that went dark, so wrappers can retry a bouncing gateway
    without retrying genuinely failed jobs.
    """

    def test_submit_refused_connection(self, capsys):
        code = main(["submit", "ocean", "66", "--port", "1",
                     "--host", "127.0.0.1"])
        assert code == 3
        err = capsys.readouterr().err
        assert "submit failed" in err
        assert "127.0.0.1:1" in err and "unavailable" in err

    def test_status_refused_connection(self, capsys):
        assert main(["status", "--port", "1"]) == 3
        assert "status failed" in capsys.readouterr().err

    def test_cancel_refused_connection(self, capsys):
        assert main(["cancel", "j1", "--port", "1"]) == 3
        assert "cancel failed" in capsys.readouterr().err
