"""Tests for the ``python -m repro.harness`` command-line entry point."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for app in ("ocean", "mst", "nbody", "matmult", "sp", "msp"):
            assert app in out
        assert "REPRO_FULL=1" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "ocean" in capsys.readouterr().out

    def test_single_table(self, capsys):
        assert main(["matmult", "144"]) == 0
        out = capsys.readouterr().out
        assert "matmult size 144" in out
        assert "SGI pred" in out
        assert "S paper" in out

    def test_profile_w_prints_superstep_tables(self, capsys):
        assert main(["matmult", "144", "--profile-w",
                     "--profile-limit", "4"]) == 0
        out = capsys.readouterr().out
        assert "measured w (ms)" in out
        assert "pred W (ms)" in out
        # One profile table per processor count of the sweep.
        assert out.count("measured w vs predicted SGI W") >= 2
        assert "charged work model" in out

    def test_unknown_size(self, capsys):
        assert main(["matmult", "999"]) == 2
        assert "unknown size" in capsys.readouterr().err

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["sorting"])
