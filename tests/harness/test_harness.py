"""Tests for the experiment harness: paper data, runner, report."""

import pytest

from repro.harness import (
    ALL_TABLES,
    APP_NPROCS,
    APP_SIZES,
    evaluate_app,
    machine_cpu_ratios,
    paper_sizes,
    rows_for,
    run_app,
    runnable_sizes,
    speedup_series,
)
from repro.harness.report import CHARGED_WORK_APPS, work_measures
from repro.harness.runner import HEAVY_SIZES


class TestPaperData:
    def test_row_counts(self):
        assert len(ALL_TABLES["ocean"]) == 20
        assert len(ALL_TABLES["mst"]) == 15
        assert len(ALL_TABLES["matmult"]) == 16
        assert len(ALL_TABLES["nbody"]) == 25
        assert len(ALL_TABLES["sp"]) == 15
        assert len(ALL_TABLES["msp"]) == 15

    def test_spot_values(self):
        """Headline Figure 3.1/3.2 entries, straight from the paper."""
        (row,) = rows_for("ocean", "514", np_=16)
        assert (row.sgi_time, row.sgi_spdp) == (2.23, 17.0)
        assert (row.w, row.h, row.s) == (2.38, 69946, 312)
        (row,) = rows_for("nbody", "64k", np_=16)
        assert (row.sgi_pred, row.cenju_spdp) == (4.97, 15.6)
        (row,) = rows_for("matmult", "576", np_=16)
        assert (row.h, row.s) == (124416, 7)
        (row,) = rows_for("msp", "40k", np_=16)
        assert row.sgi_spdp == 9.4

    def test_missing_entries_are_none(self):
        (row,) = rows_for("ocean", "66", np_=16)
        assert row.pc_time is None  # no >8-processor PC runs
        (row,) = rows_for("ocean", "514", np_=1)
        assert row.cenju_time is None  # too large for one Cenju node

    def test_every_app_has_np1_rows(self):
        for app, rows in ALL_TABLES.items():
            for size in paper_sizes(app):
                assert rows_for(app, size, np_=1), (app, size)

    def test_speedup_consistency(self):
        """Where present, paper speed-up ≈ time(1) / time(p) within
        rounding."""
        for app, rows in ALL_TABLES.items():
            for size in paper_sizes(app):
                (one,) = rows_for(app, size, np_=1)
                if one.sgi_time is None:
                    continue
                for row in rows_for(app, size):
                    if row.sgi_time and row.sgi_spdp:
                        implied = one.sgi_time / row.sgi_time
                        assert implied == pytest.approx(
                            row.sgi_spdp, rel=0.12, abs=0.15
                        ), (app, size, row.np)

    def test_sizes_match_runner(self):
        for app in ALL_TABLES:
            assert paper_sizes(app) == list(APP_SIZES[app])


class TestRunner:
    def test_runnable_excludes_heavy_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert "64k" not in runnable_sizes("nbody")
        assert "40k" in runnable_sizes("sp")

    def test_full_flag_enables_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        for app in APP_SIZES:
            assert runnable_sizes(app) == list(APP_SIZES[app])

    def test_heavy_sets_are_subsets(self):
        for app, heavy in HEAVY_SIZES.items():
            assert heavy <= set(APP_SIZES[app])

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            run_app("sorting", "1k", 2)

    @pytest.mark.parametrize("app", list(APP_SIZES))
    def test_smallest_size_runs(self, app):
        size = runnable_sizes(app)[0]
        p = APP_NPROCS[app][1]
        stats = run_app(app, size, p)
        assert stats.nprocs == p
        assert stats.S >= 1


class TestReport:
    def test_machine_cpu_ratios_from_paper(self):
        ratios = machine_cpu_ratios("nbody", "64k")
        assert ratios["SGI"] == 1.0
        assert ratios["Cenju"] == pytest.approx(55.56 / 74.08)
        assert ratios["PC-LAN"] == pytest.approx(49.33 / 74.08)

    def test_work_measures_metric_selection(self):
        stats = run_app("matmult", "144", 4)
        w, total = work_measures("matmult", stats)
        assert "matmult" in CHARGED_WORK_APPS
        assert w == stats.charged_depth
        assert total == stats.total_charged

    def test_work_measures_falls_back_to_seconds(self):
        """An app with no charges must fall back to measured time."""
        from repro import bsp_run

        def program(bsp):
            bsp.sync()

        stats = bsp_run(program, 2).stats
        w, total = work_measures("ocean", stats)  # charged app, no charges
        assert w == stats.W
        assert total == stats.total_work

    def test_evaluate_app_basics(self):
        table = evaluate_app("matmult", "144", nprocs_list=(1, 4))
        assert table.host_to_sgi > 0
        one, four = table.rows
        assert one.np == 1 and four.np == 4
        assert one.spdp["SGI"] == pytest.approx(1.0)
        assert four.spdp["SGI"] > 1.0
        # p=1 work is pinned to the paper's measurement by construction.
        assert one.w_scaled == pytest.approx(one.paper.w, rel=1e-6)
        assert four.paper is not None and four.paper.np == 4

    def test_evaluate_requires_p1_first(self):
        with pytest.raises(ValueError):
            evaluate_app("matmult", "144", nprocs_list=(4, 1))

    def test_speedup_series_shape(self):
        table = evaluate_app("matmult", "144", nprocs_list=(1, 4))
        series = speedup_series(table, "SGI")
        assert [np_ for np_, _, _ in series] == [1, 4]
        _, ours, paper = series[1]
        assert ours is not None and paper == 2.8

    def test_pc_lan_unsupported_above_8(self):
        table = evaluate_app("matmult", "144", nprocs_list=(1, 16))
        sixteen = table.rows[1]
        assert sixteen.pred["PC-LAN"] is None
        assert sixteen.pred["SGI"] is not None
