"""Tests for appendix-table rendering and speed-up series extraction."""

from repro.harness import appendix_table, evaluate_app, speedup_series


class TestAppendixTable:
    def setup_method(self):
        self.table = evaluate_app("matmult", "144", nprocs_list=(1, 4, 16))

    def test_header_and_rows_present(self):
        text = appendix_table(self.table)
        lines = text.splitlines()
        assert "matmult size 144" in lines[0]
        assert "host→SGI work scale" in lines[0]
        header = lines[1]
        for col in ("SGI pred", "Cenju spdp", "PC paper", "W paper",
                    "H paper", "S paper"):
            assert col in header
        # One row per processor count.
        assert len(lines) == 3 + 3

    def test_paper_values_appear(self):
        """The paper's H for matmult-144 at p=4 (10368) must be printed."""
        text = appendix_table(self.table)
        assert "10368" in text

    def test_unsupported_machine_cells_are_dashes(self):
        text = appendix_table(self.table)
        sixteen_row = text.splitlines()[-1]
        assert sixteen_row.strip().startswith("16")
        assert "-" in sixteen_row  # PC-LAN has no 16-processor column

    def test_columns_align(self):
        lines = appendix_table(self.table).splitlines()
        width = len(lines[1])
        assert all(len(line) == width for line in lines[1:])


class TestSpeedupSeries:
    def test_series_matches_table_rows(self):
        table = evaluate_app("matmult", "144", nprocs_list=(1, 4))
        series = speedup_series(table, "Cenju")
        assert [np_ for np_, _, _ in series] == [1, 4]
        np4, ours, paper = series[1]
        row4 = next(r for r in table.rows if r.np == 4)
        assert ours == row4.spdp["Cenju"]
        assert paper == row4.paper.cenju_spdp

    def test_missing_paper_speedup_is_none(self):
        table = evaluate_app("matmult", "144", nprocs_list=(1, 4))
        series = speedup_series(table, "PC-LAN")
        # Paper has PC values at 1 and 4 for matmult-144.
        assert series[0][2] == 1.0
        assert series[1][2] == 1.7
