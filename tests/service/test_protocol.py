"""Tests for the service wire protocol: framing, versioning, limits.

The frame layer is the trust boundary of the gateway — it must reject
oversized, truncated, wrong-version, and non-JSON input with the typed
:class:`~repro.service.protocol.ProtocolError`, never a silent misparse.
"""

import asyncio
import json
import socket
import struct

import pytest

from repro.service import protocol
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_payload,
    encode_frame,
    error_frame,
)


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame({"type": "health"})
        (length,) = struct.unpack("<I", frame[:4])
        assert length == len(frame) - 4
        obj = decode_payload(frame[4:])
        assert obj == {"v": PROTOCOL_VERSION, "type": "health"}

    def test_version_is_injected(self):
        payload = encode_frame({"type": "status"})[4:]
        assert json.loads(payload)["v"] == PROTOCOL_VERSION

    def test_explicit_version_survives(self):
        payload = encode_frame({"type": "status", "v": 1})[4:]
        assert json.loads(payload)["v"] == 1

    def test_wrong_version_rejected(self):
        payload = json.dumps({"v": 999, "type": "status"}).encode()
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_payload(payload)

    def test_missing_version_rejected(self):
        with pytest.raises(ProtocolError, match="version mismatch"):
            decode_payload(b'{"type": "status"}')

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_payload(b"[1, 2, 3]")

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_payload(b"\xff\xfe not json")

    def test_oversize_encode_rejected(self):
        big = {"type": "submit", "blob": "x" * (MAX_FRAME_BYTES + 1)}
        with pytest.raises(ProtocolError, match="frame ceiling"):
            encode_frame(big)

    def test_error_frame_shape(self):
        frame = error_frame("AdmissionError", "queue full", job_id="j9")
        assert frame["type"] == "error"
        assert frame["error"] == "AdmissionError"
        assert frame["message"] == "queue full"
        assert frame["job_id"] == "j9"
        assert frame["v"] == PROTOCOL_VERSION


class TestBlockingSide:
    """The client's blocking send/recv over a real socket pair."""

    def test_send_recv_round_trip(self):
        a, b = socket.socketpair()
        try:
            protocol.send_frame(a, {"type": "status", "job_id": "j1"})
            frame = protocol.recv_frame(b)
            assert frame["type"] == "status"
            assert frame["job_id"] == "j1"
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert protocol.recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame({"type": "health"})[:-3])
        finally:
            a.close()
        try:
            with pytest.raises(ProtocolError, match="mid-frame"):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_oversize_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("<I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="frame ceiling"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()


class TestAsyncioSide:
    """The gateway's stream reader, driven without sockets."""

    def _read(self, data: bytes):
        async def body():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await protocol.read_frame(reader)

        return asyncio.run(body())

    def test_read_frame(self):
        frame = self._read(encode_frame({"type": "health"}))
        assert frame == {"v": PROTOCOL_VERSION, "type": "health"}

    def test_clean_eof_is_none(self):
        assert self._read(b"") is None

    def test_mid_prefix_raises(self):
        with pytest.raises(ProtocolError, match="mid-prefix"):
            self._read(b"\x01\x02")

    def test_mid_frame_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            self._read(encode_frame({"type": "health"})[:-1])

    def test_oversize_prefix_raises(self):
        with pytest.raises(ProtocolError, match="frame ceiling"):
            self._read(struct.pack("<I", MAX_FRAME_BYTES + 1))
