"""Scheduler policy tests — pure logic, no pools, no sockets.

The satellite contract: admission overflow is a *typed* error, two
equal-weight tenants each get 50±10% of dispatches under saturation, and
a cancelled QUEUED job is never launched.
"""

import json

import pytest

from repro.core.errors import AdmissionError, BspUsageError
from repro.service.jobs import JobRecord, JobSpec
from repro.service.scheduler import Scheduler, SchedulerConfig, drain_order

KEY = ("threads", 4)


def record(job_id, tenant="default", nprocs=4, backend="threads"):
    return JobRecord(job_id=job_id, tenant=tenant,
                     spec=JobSpec(app="noop", size="1", nprocs=nprocs,
                                  backend=backend))


def submit_n(scheduler, tenant, count, start=0):
    for index in range(start, start + count):
        scheduler.submit(record(f"{tenant}-{index}", tenant=tenant))


class TestAdmission:
    def test_overflow_is_typed(self):
        scheduler = Scheduler(SchedulerConfig(max_queued=4))
        submit_n(scheduler, "a", 4)
        with pytest.raises(AdmissionError, match="admission queue full"):
            scheduler.submit(record("a-overflow", tenant="a"))
        # Nothing was queued for the rejected job.
        assert scheduler.queued_total == 4
        assert scheduler.get("a-overflow") is None

    def test_per_tenant_cap(self):
        scheduler = Scheduler(
            SchedulerConfig(max_queued=100, max_queued_per_tenant=2))
        submit_n(scheduler, "greedy", 2)
        with pytest.raises(AdmissionError, match="greedy"):
            scheduler.submit(record("greedy-2", tenant="greedy"))
        # Another tenant is unaffected by the greedy one's cap.
        scheduler.submit(record("polite-0", tenant="polite"))

    def test_duplicate_id_rejected(self):
        scheduler = Scheduler()
        scheduler.submit(record("j1"))
        with pytest.raises(BspUsageError, match="already submitted"):
            scheduler.submit(record("j1"))

    def test_bad_config_rejected(self):
        with pytest.raises(AdmissionError):
            SchedulerConfig(max_queued=0)
        with pytest.raises(AdmissionError):
            SchedulerConfig(weights={"a": 0.0})


class TestFairness:
    def test_equal_weights_equal_shares(self):
        """Two saturating tenants each get 50±10% of any drain window."""
        scheduler = Scheduler(SchedulerConfig(max_queued=100))
        # Tenant a bursts its whole load first; fairness must not reward
        # the burst with a head start.
        submit_n(scheduler, "a", 40)
        submit_n(scheduler, "b", 40)
        first_half = [r.tenant for r in drain_order(scheduler, KEY)][:40]
        share_a = first_half.count("a") / 40
        assert 0.4 <= share_a <= 0.6, first_half

    def test_weighted_shares(self):
        """weight 2:1 → dispatch ratio 2:1 over a saturated window."""
        scheduler = Scheduler(
            SchedulerConfig(max_queued=100,
                            weights={"heavy": 2.0, "light": 1.0}))
        submit_n(scheduler, "heavy", 40)
        submit_n(scheduler, "light", 40)
        window = [r.tenant for r in drain_order(scheduler, KEY)][:30]
        heavy = window.count("heavy")
        assert 17 <= heavy <= 23, window

    def test_late_joiner_gets_fair_share_now(self):
        """A tenant joining mid-run starts at the pass floor — it gets
        its share from now on, not a retroactive backlog of credit."""
        scheduler = Scheduler(SchedulerConfig(max_queued=100))
        submit_n(scheduler, "a", 20)
        drained = 0
        for _ in drain_order(scheduler, KEY):
            drained += 1
            if drained == 10:
                break
        submit_n(scheduler, "b", 20)
        window = [r.tenant for r in drain_order(scheduler, KEY)][:10]
        share_b = window.count("b") / 10
        assert 0.4 <= share_b <= 0.6, window

    def test_fifo_within_tenant(self):
        scheduler = Scheduler()
        submit_n(scheduler, "a", 5)
        order = [r.job_id for r in drain_order(scheduler, KEY)]
        assert order == [f"a-{i}" for i in range(5)]

    def test_in_flight_cap(self):
        scheduler = Scheduler(SchedulerConfig(max_in_flight=1))
        submit_n(scheduler, "a", 2)
        first = scheduler.next_job(KEY)
        assert first is not None and first.state == "RUNNING"
        # The tenant is at its cap: nothing else dispatches until finish.
        assert scheduler.next_job(KEY) is None
        scheduler.finish(first, "DONE")
        second = scheduler.next_job(KEY)
        assert second is not None and second.job_id == "a-1"

    def test_fleet_key_isolation(self):
        """A queue full of p=8 jobs never blocks a p=4 slot."""
        scheduler = Scheduler()
        scheduler.submit(record("big-0", nprocs=8))
        scheduler.submit(record("small-0", nprocs=4))
        got = scheduler.next_job(("threads", 4))
        assert got is not None and got.job_id == "small-0"
        got = scheduler.next_job(("threads", 4))
        assert got is None
        got = scheduler.next_job(("threads", 8))
        assert got is not None and got.job_id == "big-0"


class TestCancel:
    def test_cancel_queued_never_launches(self):
        scheduler = Scheduler()
        submit_n(scheduler, "a", 3)
        cancelled = scheduler.cancel("a-1")
        assert cancelled is not None and cancelled.state == "CANCELLED"
        launched = [r.job_id for r in drain_order(scheduler, KEY)]
        assert "a-1" not in launched
        assert launched == ["a-0", "a-2"]
        assert scheduler.cancelled == 1
        assert scheduler.get("a-1").state == "CANCELLED"
        # attempts is the gateway's counter; the scheduler never ran it.
        assert scheduler.get("a-1").attempts == 0

    def test_cancel_running_refused(self):
        scheduler = Scheduler()
        submit_n(scheduler, "a", 1)
        leased = scheduler.next_job(KEY)
        assert scheduler.cancel(leased.job_id) is None
        assert leased.state == "RUNNING"
        scheduler.finish(leased, "DONE")
        # Terminal jobs cannot be cancelled either.
        assert scheduler.cancel(leased.job_id) is None

    def test_cancel_unknown_raises(self):
        with pytest.raises(BspUsageError, match="unknown job id"):
            Scheduler().cancel("nope")


class TestLifecycleGuards:
    def test_finish_takes_done_or_failed_only(self):
        scheduler = Scheduler()
        submit_n(scheduler, "a", 1)
        leased = scheduler.next_job(KEY)
        with pytest.raises(BspUsageError):
            scheduler.finish(leased, "CANCELLED")
        scheduler.finish(leased, "FAILED")
        assert scheduler.failed == 1
        with pytest.raises(BspUsageError, match="FAILED"):
            scheduler.finish(leased, "DONE")

    def test_record_registry_is_bounded(self):
        scheduler = Scheduler(SchedulerConfig(max_queued=500, max_records=20))
        for index in range(30):
            scheduler.submit(record(f"a-{index}", tenant="a"))
            leased = scheduler.next_job(KEY)
            scheduler.finish(leased, "DONE")
        assert len(scheduler.jobs()) <= 21
        # The newest records survive pruning.
        assert scheduler.get("a-29") is not None


class TestSnapshot:
    def test_snapshot_is_json_safe(self):
        scheduler = Scheduler(SchedulerConfig(weights={"a": 2.0}))
        submit_n(scheduler, "a", 2)
        leased = scheduler.next_job(KEY)
        scheduler.finish(leased, "DONE")
        snap = json.loads(json.dumps(scheduler.snapshot()))
        assert snap["queued"] == 1
        assert snap["completed"] == 1
        assert snap["tenants"]["a"]["weight"] == 2.0
        assert snap["tenants"]["a"]["queued"] == 1
