"""End-to-end gateway tests: client → protocol → scheduler → warm fleet.

The fast tests run on a ``threads`` fleet (nothing to fork); the chaos
test warms a real process pool and SIGKILLs one of its workers mid-job —
the job must finish (checkpoint-resumed retry) or fail *cleanly*, the
client's stream must reach a terminal state (never hang), and the fleet
must be back at capacity afterwards.
"""

import time

import pytest

from repro import faults
from repro.core.errors import AdmissionError, BspConfigError, BspUsageError
from repro.service import (
    FleetSpec,
    GatewayConfig,
    SchedulerConfig,
    ServiceClient,
    serve_in_background,
)

pytestmark = pytest.mark.timeout(300)


def threads_config(**scheduler_kwargs):
    return GatewayConfig(
        fleet=(FleetSpec(backend="threads", nprocs=4, pools=2),),
        scheduler=SchedulerConfig(**scheduler_kwargs))


@pytest.fixture()
def service():
    with serve_in_background(threads_config()) as svc:
        yield svc


@pytest.fixture()
def client(service):
    return ServiceClient(service.host, service.port)


class TestSubmitLifecycle:
    def test_submit_runs_to_done(self, client):
        job = client.submit(app="noop", size="1", nprocs=4,
                            backend="threads")
        assert job["state"] == "DONE"
        assert job["attempts"] == 1
        assert job["error"] is None
        # The result payload is the ledger summary with its digest.
        assert job["result"]["S"] == 2
        assert len(job["result"]["digest"]) == 64
        assert job["result"]["wall_seconds"] > 0

    def test_states_stream_in_order(self, client):
        seen = []
        job = client.submit(app="spin", size="3", nprocs=4,
                            backend="threads",
                            on_state=lambda s: seen.append(s["state"]))
        assert job["state"] == "DONE"
        assert seen == ["RUNNING", "DONE"]

    def test_status_and_listing(self, client):
        job = client.submit(app="noop", size="1", nprocs=4,
                            backend="threads")
        got = client.status(job["job_id"])
        assert got["state"] == "DONE"
        assert got["result"]["digest"] == job["result"]["digest"]
        listing = client.status()
        assert listing["total"] >= 1
        assert any(j["job_id"] == job["job_id"] for j in listing["jobs"])

    def test_unknown_job_id_is_typed(self, client):
        with pytest.raises(BspUsageError, match="unknown job id"):
            client.status("j999999")

    def test_invalid_spec_is_typed(self, client):
        with pytest.raises(BspConfigError, match="unknown app"):
            client.submit(app="sorting", size="1", nprocs=4,
                          backend="threads")

    def test_health_telemetry(self, client):
        client.submit(app="noop", size="1", nprocs=4, backend="threads")
        health = client.health()
        assert health["scheduler"]["completed"] >= 1
        assert health["jobs_per_second"] > 0
        slots = health["fleet"]
        assert len(slots) == 2
        assert {slot["slot"] for slot in slots} == {
            "threads-p4-0", "threads-p4-1"}

    def test_failed_job_carries_typed_error(self, client):
        """A job whose run raises FAILs with the error payload — the
        stream still terminates."""
        job = client.submit(app="spin", size="3", nprocs=4,
                            backend="threads",
                            params={"spin_seconds": "not-a-number"})
        assert job["state"] == "FAILED"
        assert job["error"]["error"] == "ValueError"

    def test_concurrent_tenants_both_finish(self, service):
        alice = ServiceClient(service.host, service.port, tenant="alice")
        bob = ServiceClient(service.host, service.port, tenant="bob")
        handles = [alice.submit(app="noop", size="1", nprocs=4,
                                backend="threads", wait=False)
                   for _ in range(3)]
        handles += [bob.submit(app="noop", size="1", nprocs=4,
                               backend="threads", wait=False)
                    for _ in range(3)]
        finals = [handle.wait() for handle in handles]
        assert all(final["state"] == "DONE" for final in finals)
        tenants = {final["tenant"] for final in finals}
        assert tenants == {"alice", "bob"}


class TestAdmissionBoundary:
    def test_unknown_fleet_key_rejected(self, client):
        with pytest.raises(AdmissionError, match="no warm pool"):
            client.submit(app="noop", size="1", nprocs=32,
                          backend="threads")
        with pytest.raises(AdmissionError, match="no warm pool"):
            client.submit(app="noop", size="1", nprocs=4,
                          backend="simulator")

    def test_queue_overflow_rejected(self):
        """With both slots held by slow jobs and the queue full, the
        next submit is shed with a typed error, not queued late."""
        config = GatewayConfig(
            fleet=(FleetSpec(backend="threads", nprocs=4, pools=1),),
            scheduler=SchedulerConfig(max_queued=2))
        with serve_in_background(config) as svc:
            client = ServiceClient(svc.host, svc.port)
            slow = dict(app="spin", size="4", nprocs=4, backend="threads",
                        params={"spin_seconds": 0.1})
            running = client.submit(**slow, wait=False)
            # Give the single slot time to lease the running job, then
            # fill the queue behind it.
            deadline = time.time() + 30
            while client.status(running.job_id)["state"] == "QUEUED":
                assert time.time() < deadline
                time.sleep(0.01)
            queued = [client.submit(**slow, wait=False) for _ in range(2)]
            with pytest.raises(AdmissionError, match="admission queue full"):
                client.submit(**slow)
            for handle in [running] + queued:
                assert handle.wait()["state"] == "DONE"


class TestCancel:
    def test_cancel_queued_never_launches(self):
        config = GatewayConfig(
            fleet=(FleetSpec(backend="threads", nprocs=4, pools=1),),
            scheduler=SchedulerConfig(max_queued=8))
        with serve_in_background(config) as svc:
            client = ServiceClient(svc.host, svc.port)
            blocker = client.submit(app="spin", size="4", nprocs=4,
                                    backend="threads",
                                    params={"spin_seconds": 0.1},
                                    wait=False)
            victim = client.submit(app="noop", size="1", nprocs=4,
                                   backend="threads", wait=False)
            assert client.status(victim.job_id)["state"] == "QUEUED"
            cancelled = client.cancel(victim.job_id)
            assert cancelled["state"] == "CANCELLED"
            # The victim's stream terminates with the CANCELLED frame.
            final = victim.wait()
            assert final["state"] == "CANCELLED"
            assert blocker.wait()["state"] == "DONE"
            # It never launched: zero attempts, and cancelling again is
            # refused because it is already terminal.
            assert client.status(victim.job_id)["attempts"] == 0
            with pytest.raises(BspUsageError, match="CANCELLED"):
                client.cancel(victim.job_id)

    def test_cancel_done_job_refused(self, client):
        job = client.submit(app="noop", size="1", nprocs=4,
                            backend="threads")
        with pytest.raises(BspUsageError, match="not interruptible"):
            client.cancel(job["job_id"])


class TestShutdown:
    def test_shutdown_frame_stops_gateway(self):
        svc = serve_in_background(threads_config())
        client = ServiceClient(svc.host, svc.port)
        client.shutdown()
        deadline = time.time() + 30
        while svc._thread.is_alive():
            assert time.time() < deadline, "gateway did not stop"
            time.sleep(0.05)


class TestChaos:
    def test_sigkilled_pool_worker_mid_job(self):
        """SIGKILL a pool worker mid-job: the job is retried from its
        checkpoint (or cleanly FAILED), the stream never hangs, and the
        fleet is back at capacity for the next job."""
        config = GatewayConfig(
            fleet=(FleetSpec(backend="processes", nprocs=4, pools=1),))
        with serve_in_background(config) as svc:
            client = ServiceClient(svc.host, svc.port, timeout=120)
            handle = client.submit(
                app="spin", size="8", nprocs=4, backend="processes",
                checkpoint_every=1, retries=2,
                params={"spin_seconds": 0.05}, wait=False)
            slot = svc.gateway.fleet.slots[0]
            deadline = time.time() + 60
            while client.status(handle.job_id)["state"] != "RUNNING":
                assert time.time() < deadline, "job never started"
                time.sleep(0.01)
            time.sleep(0.1)  # let a couple of supersteps checkpoint
            faults.kill_pool_worker(slot.pool(), rank=1)
            final = handle.wait()  # must terminate, never hang
            assert final["state"] in ("DONE", "FAILED")
            if final["state"] == "DONE":
                # The retry resumed: the pool healed underneath the job.
                assert final["result"]["S"] >= 1
            else:
                assert final["error"] is not None
            # Fleet is back at capacity: the healed (or recycled) pool
            # runs the next job cleanly.
            after = client.submit(app="noop", size="1", nprocs=4,
                                  backend="processes")
            assert after["state"] == "DONE"
            health = client.health()
            pool_health = health["fleet"][0]["pool"]
            assert pool_health["alive"] == 4
            # The crash is visible in telemetry: either the pool healed
            # (restarts > 0) or the slot was recycled.
            assert (pool_health["restarts"] > 0
                    or health["fleet"][0]["recycles"] > 0)
