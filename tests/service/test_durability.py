"""Durable-gateway tests: journal, replay, idempotency, health probing.

Three layers:

* unit — the journal's self-validating records, the torn-tail fallback
  ladder, compaction, and the scheduler's replay affordances;
* property — weighted-fair dispatch order survives a crash/replay for
  random tenant/weight mixes (hypothesis);
* chaos — a *subprocess* gateway is SIGKILLed mid-stream with eight
  jobs in flight (running + queued), restarted on the same journal, and
  every job must reach DONE with its (S, H, h-series, m-series) ledger
  digest bit-identical to an uninterrupted run, the in-flight streaming
  clients surviving the bounce by key re-attach.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.core.errors import (
    GatewayUnavailableError,
    ServiceOverloadError,
)
from repro.service import (
    FleetSpec,
    GatewayConfig,
    SchedulerConfig,
    ServiceClient,
    serve_in_background,
)
from repro.service.jobs import JobRecord, JobSpec
from repro.service.journal import (
    JobJournal,
    compaction_records,
    decode_record,
    encode_record,
    restore_scheduler,
)
from repro.service.scheduler import Scheduler, drain_order

pytestmark = pytest.mark.timeout(300)

KEY = ("threads", 2)


def spec(**kwargs):
    base = dict(app="noop", size="1", nprocs=2, backend="threads")
    base.update(kwargs)
    return JobSpec(**base)


def make_record(job_id, tenant="default", **kwargs):
    return JobRecord(job_id=job_id, tenant=tenant, spec=spec(**kwargs))


class TestJournalRecords:
    def test_round_trip(self):
        rec = {"seq": 1, "kind": "STEP", "ts": 0.0, "job_id": "j1",
               "step": 7}
        line = encode_record(rec)
        assert line.endswith(b"\n")
        assert decode_record(line[:-1]) == rec

    def test_flipped_bit_fails_validation(self):
        line = encode_record({"seq": 1, "kind": "ADMITTED", "ts": 0.0,
                              "job_id": "j1"})[:-1]
        damaged = line[:70] + bytes([line[70] ^ 1]) + line[71:]
        assert decode_record(damaged) is None

    def test_append_scan_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append("SUBMITTED", "j1", tenant="t",
                       spec=spec().to_dict(), submitted_at=1.0)
        journal.append("ADMITTED", "j1")
        records, damaged = journal.scan()
        assert damaged == 0
        assert [r["kind"] for r in records] == ["SUBMITTED", "ADMITTED"]
        assert records[0]["seq"] == 1 and records[1]["seq"] == 2

    def test_torn_tail_is_skipped_never_replayed(self, tmp_path):
        """The fallback ladder: a torn final record (and anything after
        it) is dropped and counted; the valid prefix survives."""
        journal = JobJournal(tmp_path)
        journal.append("SUBMITTED", "j1", tenant="t",
                       spec=spec().to_dict(), submitted_at=1.0)
        journal.append("ADMITTED", "j1")
        journal.append("CANCELLED", "j1")
        with open(journal.path, "r+b") as fh:
            fh.seek(0, os.SEEK_END)
            fh.truncate(fh.tell() - 20)
        records, damaged = journal.scan()
        assert damaged == 1
        assert [r["kind"] for r in records] == ["SUBMITTED", "ADMITTED"]
        # Never replayed: the cancel is gone, the job replays as QUEUED.
        scheduler = Scheduler()
        replay = restore_scheduler(records, scheduler, damaged=damaged)
        assert replay.jobs["j1"].state == "QUEUED"
        assert replay.damaged == 1

    def test_garbage_mid_log_drops_the_rest(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append("SUBMITTED", "j1", tenant="t",
                       spec=spec().to_dict(), submitted_at=1.0)
        with open(journal.path, "ab") as fh:
            fh.write(b"not a journal record\n")
        journal2 = JobJournal(tmp_path)
        journal2.append("ADMITTED", "j1")  # lands after the garbage
        records, damaged = journal2.scan()
        assert [r["kind"] for r in records] == ["SUBMITTED"]
        assert damaged == 2

    def test_injected_torn_record(self, tmp_path):
        """The JOURNAL_TORN fault kind tears the just-written record."""
        journal = JobJournal(tmp_path)
        plan = faults.FaultPlan([faults.Fault(faults.JOURNAL_TORN, 0, 2)])
        with faults.injected(plan):
            journal.append("SUBMITTED", "j1", tenant="t",
                           spec=spec().to_dict(), submitted_at=1.0)
            journal.append("ADMITTED", "j1")
        records, damaged = journal.scan()
        assert [r["kind"] for r in records] == ["SUBMITTED"]
        assert damaged == 1

    def test_compaction_resequences_atomically(self, tmp_path):
        journal = JobJournal(tmp_path)
        for _ in range(5):
            journal.append("FLEET", pids=[1])
        records, _ = journal.scan()
        journal.compact(records[-2:])
        records2, damaged = journal.scan()
        assert damaged == 0
        assert [r["seq"] for r in records2] == [1, 2]
        assert journal.seq == 2
        journal.append("FLEET", pids=[2])
        assert journal.scan()[0][-1]["seq"] == 3
        # No orphaned temp files after compaction.
        assert not [n for n in os.listdir(tmp_path)
                    if n.startswith(".tmp-")]

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(Exception, match="unknown journal record kind"):
            JobJournal(tmp_path).append("NONSENSE")


class TestSchedulerReplay:
    def test_mark_dispatched_reproduces_pass_state(self):
        """Replaying journaled leases leaves pass values bit-equal to
        the live scheduler's."""
        weights = {"a": 2.0, "b": 1.0}
        live = Scheduler(SchedulerConfig(weights=weights))
        records = [make_record(f"j{i}", tenant="ab"[i % 2])
                   for i in range(6)]
        for record in records:
            live.submit(record)
        leased = [live.next_job(KEY).job_id for _ in range(3)]
        replayed = Scheduler(SchedulerConfig(weights=weights))
        for record in records:
            replayed.submit(make_record(record.job_id, tenant=record.tenant))
        for job_id in leased:
            assert replayed.mark_dispatched(job_id).job_id == job_id
        assert replayed.passes() == live.passes()
        # And the remaining fair order is identical too.
        rest_live = [r.job_id for r in drain_order(live, KEY)]
        rest_replayed = [r.job_id for r in drain_order(replayed, KEY)]
        assert rest_replayed == rest_live

    def test_resume_lane_dispatches_first_without_recharge(self):
        scheduler = Scheduler()
        running = make_record("j1")
        queued = make_record("j2")
        scheduler.submit(running)
        scheduler.submit(queued)
        assert scheduler.next_job(KEY) is running
        pass_after_lease = scheduler.passes()["default"]
        scheduler.enqueue_resumed(running)  # crash: back to the lane
        assert running.resume is True
        assert scheduler.next_job(KEY) is running  # ahead of j2
        assert scheduler.passes()["default"] == pass_after_lease
        assert scheduler.next_job(KEY) is queued

    def test_cancel_reaches_resume_lane(self):
        scheduler = Scheduler()
        record = make_record("j1")
        scheduler.submit(record)
        scheduler.next_job(KEY)
        scheduler.enqueue_resumed(record)
        assert scheduler.cancel("j1").state == "CANCELLED"
        assert scheduler.next_job(KEY) is None

    def test_set_passes_restores_fairness_state(self):
        scheduler = Scheduler()
        scheduler.set_passes({"a": 3.5, "b": 1.25})
        assert scheduler.passes() == {"a": 3.5, "b": 1.25}


class TestRestoreScheduler:
    def _journal(self, tmp_path):
        return JobJournal(tmp_path)

    def test_full_lifecycle_replay(self, tmp_path):
        journal = self._journal(tmp_path)
        sp = spec().to_dict()
        for jid in ("j1", "j2", "j3"):
            journal.append("SUBMITTED", jid, tenant="t", key=f"k-{jid}",
                           spec=sp, submitted_at=1.0)
            journal.append("ADMITTED", jid)
        journal.append("RUNNING", "j1", attempts=1, started_at=2.0)
        journal.append("STEP", "j1", step=4)
        journal.append("RUNNING", "j2", attempts=1, started_at=2.5)
        journal.append("DONE", "j2", result={"digest": "d" * 64},
                       finished_at=3.0)
        journal.append("CANCELLED", "j3", finished_at=3.5)
        records, damaged = journal.scan()
        scheduler = Scheduler()
        replay = restore_scheduler(records, scheduler, damaged=damaged)
        assert replay.jobs["j1"].state == "QUEUED"
        assert replay.jobs["j1"].resume and replay.jobs["j1"].progress_step == 4
        assert replay.jobs["j2"].state == "DONE"
        assert replay.jobs["j2"].result["digest"] == "d" * 64
        assert replay.jobs["j3"].state == "CANCELLED"
        assert [r.job_id for r in replay.resumed] == ["j1"]
        assert replay.keys == {"k-j1": "j1", "k-j2": "j2", "k-j3": "j3"}
        assert replay.max_job_number == 3
        assert scheduler.next_job(KEY).job_id == "j1"

    def test_submitted_without_admitted_is_not_a_job(self, tmp_path):
        """A crash between SUBMITTED and ADMITTED (the client never saw
        an accept) must not resurrect the job."""
        journal = self._journal(tmp_path)
        journal.append("SUBMITTED", "j1", tenant="t",
                       spec=spec().to_dict(), submitted_at=1.0)
        records, _ = journal.scan()
        scheduler = Scheduler()
        replay = restore_scheduler(records, scheduler)
        assert replay.jobs["j1"].state == "SUBMITTED"
        assert replay.replayed == 0
        assert scheduler.next_job(KEY) is None

    def test_compaction_survives_second_replay(self, tmp_path):
        """compact → scan → restore reproduces jobs, passes, and the
        resume lane — fairness survives a second crash."""
        journal = self._journal(tmp_path)
        sp = spec().to_dict()
        for i, tenant in enumerate(["a", "b", "a", "b"], start=1):
            journal.append("SUBMITTED", f"j{i}", tenant=tenant, spec=sp,
                           submitted_at=1.0)
            journal.append("ADMITTED", f"j{i}")
        journal.append("RUNNING", "j1", attempts=1, started_at=2.0)
        records, _ = journal.scan()
        first = Scheduler()
        restore_scheduler(records, first)
        journal.compact(compaction_records(first, fleet_pids=[424242]))
        records2, damaged2 = journal.scan()
        assert damaged2 == 0
        second = Scheduler()
        replay2 = restore_scheduler(records2, second)
        assert second.passes() == first.passes()
        assert replay2.fleet_pids == [424242]
        # j1 still resumes first, then the fair drain of the rest.
        order = [r.job_id for r in drain_order(second, KEY)]
        assert order[0] == "j1"
        assert set(order) == {"j1", "j2", "j3", "j4"}


TENANTS = ("alice", "bob", "carol", "dave")


@st.composite
def crash_scenarios(draw):
    weights = {t: draw(st.sampled_from([0.5, 1.0, 2.0, 3.0, 4.0]))
               for t in TENANTS}
    tenants = draw(st.lists(st.sampled_from(TENANTS), min_size=1,
                            max_size=12))
    dispatched = draw(st.integers(min_value=0, max_value=len(tenants)))
    return weights, tenants, dispatched


class TestFairOrderSurvivesRestart:
    @settings(max_examples=40, deadline=None)
    @given(crash_scenarios())
    def test_replayed_order_equals_pre_crash_fair_order(self, tmp_path_factory,
                                                        scenario):
        """For random tenant/weight mixes and a crash after a random
        number of dispatches, the restarted scheduler serves: the
        interrupted jobs in their original dispatch order, then the
        remaining queue in exactly the order the pre-crash scheduler
        would have used."""
        weights, tenants, dispatched = scenario
        tmp_path = tmp_path_factory.mktemp("journal")
        journal = JobJournal(tmp_path, fsync=False)
        live = Scheduler(SchedulerConfig(weights=weights))
        sp = spec().to_dict()
        for i, tenant in enumerate(tenants, start=1):
            jid = f"j{i}"
            journal.append("SUBMITTED", jid, tenant=tenant, spec=sp,
                           submitted_at=1.0)
            live.submit(make_record(jid, tenant=tenant))
            journal.append("ADMITTED", jid)
        in_flight = []
        for _ in range(dispatched):
            record = live.next_job(KEY)
            if record is None:
                break
            journal.append("RUNNING", record.job_id,
                           attempts=1, started_at=2.0)
            in_flight.append(record.job_id)
        expected = in_flight + [r.job_id for r in drain_order(live, KEY)]
        records, damaged = journal.scan()
        assert damaged == 0
        replayed = Scheduler(SchedulerConfig(weights=weights))
        restore_scheduler(records, replayed)
        # A second crash right after the replay's compaction must give
        # the same order again: compact before draining and replay that.
        compacted = compaction_records(replayed)
        twice = Scheduler(SchedulerConfig(weights=weights))
        restore_scheduler(compacted, twice)
        actual = [r.job_id for r in drain_order(replayed, KEY)]
        assert actual == expected
        assert [r.job_id for r in drain_order(twice, KEY)] == expected


class TestDurableGatewayInProcess:
    def _config(self, journal_dir, **kwargs):
        defaults = dict(
            fleet=(FleetSpec(backend="threads", nprocs=2, pools=1),),
            scheduler=SchedulerConfig(max_queued=32),
            journal_dir=str(journal_dir), probe_interval=0.0)
        defaults.update(kwargs)
        return GatewayConfig(**defaults)

    def test_terminal_records_and_keys_survive_restart(self, tmp_path):
        with serve_in_background(self._config(tmp_path)) as svc:
            client = ServiceClient(svc.host, svc.port)
            done = client.submit(app="noop", size="1", nprocs=2,
                                 backend="threads", key="idem-1")
            assert done["state"] == "DONE"
        with serve_in_background(self._config(tmp_path)) as svc:
            client = ServiceClient(svc.host, svc.port)
            again = client.submit(app="noop", size="1", nprocs=2,
                                  backend="threads", key="idem-1")
            assert again["job_id"] == done["job_id"]
            assert again["result"]["digest"] == done["result"]["digest"]
            # watch() by key answers from the journal-replayed record.
            watched = client.watch(key="idem-1")
            assert watched["state"] == "DONE"

    def test_queued_jobs_survive_restart_in_fair_order(self, tmp_path):
        """Stop a gateway with a full queue; the successor runs the
        queue in the order the first gateway would have."""
        with serve_in_background(self._config(tmp_path)) as svc:
            client = ServiceClient(svc.host, svc.port)
            blocker = client.submit(app="spin", size="4", nprocs=2,
                                    backend="threads",
                                    params={"spin_seconds": 0.2},
                                    wait=False)
            queued = [client.submit(app="noop", size="1", nprocs=2,
                                    backend="threads", key=f"q{i}",
                                    wait=False)
                      for i in range(4)]
            deadline = time.time() + 30
            while client.status(blocker.job_id)["state"] == "QUEUED":
                assert time.time() < deadline
                time.sleep(0.01)
            for handle in queued:
                handle.close()
            blocker.close()
            queued_ids = [h.job_id for h in queued]
        with serve_in_background(self._config(tmp_path)) as svc:
            client = ServiceClient(svc.host, svc.port)
            finals = {}
            deadline = time.time() + 60
            while len(finals) < len(queued_ids) and time.time() < deadline:
                for jid in queued_ids:
                    state = client.status(jid)
                    if state["state"] in ("DONE", "FAILED", "CANCELLED"):
                        finals[jid] = state
                time.sleep(0.05)
            assert set(finals) == set(queued_ids)
            assert all(f["state"] == "DONE" for f in finals.values())
            # Original submission order == completion order here (one
            # tenant, FIFO): started_at must be monotone over queue order.
            starts = [finals[jid]["started_at"] for jid in queued_ids]
            assert starts == sorted(starts)
            assert client.health()["journal"]["replayed"] >= len(queued_ids)

    def test_damaged_tail_reported_not_replayed(self, tmp_path):
        with serve_in_background(self._config(tmp_path)) as svc:
            client = ServiceClient(svc.host, svc.port)
            client.submit(app="noop", size="1", nprocs=2,
                          backend="threads")
        with open(os.path.join(tmp_path, "journal.log"), "ab") as fh:
            fh.write(b"torn garbage with no newline")
        with serve_in_background(self._config(tmp_path)) as svc:
            client = ServiceClient(svc.host, svc.port)
            health = client.health()
            assert health["journal"]["damaged"] == 1
            # Replay then compaction leaves a clean journal behind.
            assert client.submit(app="noop", size="1", nprocs=2,
                                 backend="threads")["state"] == "DONE"


class TestHealthProbing:
    def test_sick_slot_is_quarantined_and_recycled(self, tmp_path):
        """POOL_SICK probes quarantine the slot; the background recycle
        brings it back.  Counters are monotone, so we assert those."""
        config = GatewayConfig(
            fleet=(FleetSpec(backend="threads", nprocs=2, pools=2),),
            probe_interval=0.05, quarantine_after=2)
        plan = faults.FaultPlan(
            [faults.Fault(faults.POOL_SICK, 0, seq)
             for seq in range(1, 200)])
        with faults.injected(plan):
            with serve_in_background(config) as svc:
                client = ServiceClient(svc.host, svc.port)
                deadline = time.time() + 60
                while time.time() < deadline:
                    slots = {s["slot"]: s for s in client.health()["fleet"]}
                    sick = slots["threads-p2-0"]
                    if sick["quarantines"] >= 1:
                        break
                    time.sleep(0.05)
                assert sick["quarantines"] >= 1
                assert sick["probes_failed"] >= 2
                # The healthy sibling keeps serving throughout.
                assert client.submit(app="noop", size="1", nprocs=2,
                                     backend="threads")["state"] == "DONE"
                # Satellite: service counters ride in the pool dict too.
                pool = slots["threads-p2-1"]["pool"]
                if pool is not None:  # threads fleet has no pool snapshot
                    assert "quarantines" in pool

    def test_all_quarantined_sheds_with_retry_after(self):
        config = GatewayConfig(
            fleet=(FleetSpec(backend="threads", nprocs=2, pools=1),),
            probe_interval=0.0, shed_retry_after=7.0)
        with serve_in_background(config) as svc:
            client = ServiceClient(svc.host, svc.port)
            svc.gateway.fleet.slots[0].quarantine()
            with pytest.raises(ServiceOverloadError,
                               match="quarantined") as excinfo:
                client.submit(app="noop", size="1", nprocs=2,
                              backend="threads")
            assert excinfo.value.retry_after == 7.0
            svc.gateway.fleet.slots[0].unquarantine()
            assert client.submit(app="noop", size="1", nprocs=2,
                                 backend="threads")["state"] == "DONE"
            health = client.health()
            assert health["fleet"][0]["quarantines"] == 1


class TestGatewayUnavailable:
    def test_typed_error_with_last_known_address(self):
        client = ServiceClient("127.0.0.1", 1, reconnect_timeout=0.0)
        with pytest.raises(GatewayUnavailableError) as excinfo:
            client.health()
        assert excinfo.value.host == "127.0.0.1"
        assert excinfo.value.port == 1
        assert "127.0.0.1:1" in str(excinfo.value)
        assert isinstance(excinfo.value, ConnectionError)


# -- subprocess chaos --------------------------------------------------------

def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_gateway(port, journal_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "..", "src"),
         env.get("PYTHONPATH", "")])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.harness", "serve",
         "--port", str(port), "--fleet", "processes:2x2",
         "--journal-dir", str(journal_dir), "--probe-interval", "0",
         *extra],
        stderr=subprocess.PIPE, env=env, text=True)
    deadline = time.time() + 120
    banner = []
    while time.time() < deadline:
        line = proc.stderr.readline()
        if not line and proc.poll() is not None:
            raise AssertionError(
                f"gateway died during startup: {''.join(banner)}")
        banner.append(line)
        if "listening on" in line:
            return proc
    proc.kill()
    raise AssertionError(f"gateway never listened: {''.join(banner)}")


class TestGatewayCrashChaos:
    JOBS = 8
    STEPS = 10

    def _submit_all(self, client):
        return [client.submit(app="spin", size=str(self.STEPS), nprocs=2,
                              backend="processes", checkpoint_every=1,
                              params={"spin_seconds": 0.05},
                              key=f"crash-{i}", wait=False)
                for i in range(self.JOBS)]

    def test_sigkill_mid_stream_completes_bit_identical(self, tmp_path):
        """The acceptance scenario: SIGKILL the gateway with 8 streaming
        jobs in flight (2 running on the fleet, 6 queued), restart it on
        the same journal, and require every job to reach DONE with a
        ledger digest bit-identical to an uninterrupted run's."""
        control_dir = tmp_path / "control"
        crash_dir = tmp_path / "crash"
        port = _free_port()

        # Control: the same 8 jobs, uninterrupted, for golden digests.
        proc = _spawn_gateway(port, control_dir)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=300)
            finals = [h.wait() for h in self._submit_all(client)]
            assert all(f["state"] == "DONE" for f in finals)
            digests = {f["result"]["digest"] for f in finals}
            assert len(digests) == 1  # identical jobs, identical ledgers
            control_digest = digests.pop()
            client.shutdown()
        finally:
            proc.wait(timeout=60)

        # Chaos: submit, wait for running jobs to make progress, SIGKILL.
        proc = _spawn_gateway(port, crash_dir)
        client = ServiceClient("127.0.0.1", port, timeout=300,
                               reconnect_timeout=120)
        handles = self._submit_all(client)
        deadline = time.time() + 120
        while time.time() < deadline:
            states = [client.status(h.job_id) for h in handles]
            running = [s for s in states if s["state"] == "RUNNING"]
            if (len(running) >= 2
                    and all((s["progress_step"] or 0) >= 2
                            for s in running)):
                break
            time.sleep(0.05)
        else:
            pytest.fail("jobs never reached mid-run progress")
        assert any(s["state"] == "QUEUED" for s in states)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)

        # Restart on the same journal and port: the 8 streaming handles
        # re-attach by key and every job completes bit-identically.
        proc = _spawn_gateway(port, crash_dir)
        try:
            finals = [h.wait() for h in handles]
            assert all(f["state"] == "DONE" for f in finals), finals
            assert {f["result"]["digest"] for f in finals} == {
                control_digest}
            assert any(h.reconnects >= 1 for h in handles)
            health = client.health()
            assert health["journal"]["replayed"] >= 1
            # The dead gateway's forked pool workers were reaped before
            # the new fleet came up — no zombie writers.
            assert health["journal"]["orphans_reaped"] >= 1
            # Resumed jobs really resumed: the journal watched their
            # checkpoints advance before the crash, and the replay ran
            # them from there (journal_replays counted per slot).
            assert sum(s["journal_replays"]
                       for s in health["fleet"]) >= 1
            # Satellite: the service counters ride inside the pool's own
            # PoolHealth dict too, one coherent health blob per slot.
            assert all("quarantines" in s["pool"] and
                       "journal_replays" in s["pool"]
                       for s in health["fleet"])
            # No torn compaction leftovers in the journal dir.
            assert not [n for n in os.listdir(crash_dir)
                        if n.startswith(".tmp-")]
            client.shutdown()
        finally:
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()

    def test_gateway_crash_fault_kind_self_kills(self, tmp_path):
        """--crash-after-journal drives the GATEWAY_CRASH fault kind:
        the gateway SIGKILLs itself right after the named journal record
        lands, and a restart completes the interrupted job."""
        port = _free_port()
        # Records 1-2 are FLEET+SUBMITTED..; sequence 5 lands mid-run
        # (SUBMITTED, ADMITTED, RUNNING land as 2-4 after FLEET).
        proc = _spawn_gateway(port, tmp_path, "--crash-after-journal", "5")
        client = ServiceClient("127.0.0.1", port, timeout=300,
                               reconnect_timeout=120)
        handle = client.submit(app="spin", size="8", nprocs=2,
                               backend="processes", checkpoint_every=1,
                               params={"spin_seconds": 0.05},
                               key="self-kill", wait=False)
        proc.wait(timeout=120)
        assert proc.returncode == -signal.SIGKILL
        proc = _spawn_gateway(port, tmp_path)
        try:
            final = handle.wait()
            assert final["state"] == "DONE"
            assert handle.reconnects >= 1
            client.shutdown()
        finally:
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
