"""The zero-copy shared-memory data plane (repro.backends.shm).

Payload buffers at or above the zero-copy threshold travel as *leases*
into pooled named shared-memory segments: one sender-side memcpy, no
receive-side copy — the array a program reads out of ``bsp.get_pkt()``
is backed by the shared pages themselves.  Exercised here:

* the sender-side :class:`SegmentPool` (bump allocation, rewind on full
  release, generation bumps) and receiver-side :class:`LeaseTable`
  (refcount liveness probe, stale-generation detection) in isolation;
* transport round-trips: big buffers lease (hit counter), small ones
  stay on the slab path, releases flow back both piggybacked and on
  dedicated frames;
* pooled end-to-end runs in both modes — ``REPRO_ZEROCOPY=off`` must
  give bit-identical results with the fallback counter ticking instead;
* accounting invariance: the six paper apps produce bit-identical
  (S, H, h-series) ledgers with the data plane on and off;
* hostile-consumer property: mutating a delivered view after the next
  barrier never corrupts later deliveries (leases are never rewound
  while held);
* leak-freedom under chaos: SIGKILL mid-superstep, an exhausted restart
  budget, and the LEAK_SEGMENT / TORN_LEASE fault hooks all end with
  zero orphaned ``/dev/shm`` entries (autouse fixture below);
* the thread backend's by-reference guard: sent arrays freeze until the
  barrier (mutation raises), thaw on delivery, and ``off`` switches to
  copy-on-send value semantics.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import bsp_run
from repro import faults
from repro.backends import shm
from repro.backends.frames import FrameTransport
from repro.backends.processes import BspPool
from repro.core.errors import PoolExhaustedError, WorkerCrashError
from repro.core.packets import Packet, h_units

# Comfortably above the default 64 KiB threshold (float64 count).
BIG_N = 20_000
# Comfortably below it.
SMALL_N = 64


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test in this module must leave /dev/shm as it found it."""
    before = set(shm.scan_orphans())
    yield
    after = set(shm.scan_orphans())
    assert after <= before, f"leaked segments: {sorted(after - before)}"


# Module-level programs: pooled runs ship them by pickle.


def big_allgather(bsp, n=BIG_N, rounds=2):
    """Every pid sends a seeded big array to every other; returns the
    float sum of everything received (bit-stable across modes)."""
    rng = np.random.default_rng(bsp.pid)
    total = 0.0
    for _ in range(rounds):
        data = rng.standard_normal(n)
        for dst in range(bsp.nprocs):
            if dst != bsp.pid:
                bsp.send(dst, data)
        bsp.sync()
        for pkt in bsp.packets():
            total += float(np.asarray(pkt.payload).sum())
    return total


def hostile_consumer(bsp, rounds, n):
    """Verify every delivery, then vandalize the received views in place
    and keep half of them alive across supersteps.  Returns the number
    of mismatched elements ever observed — the property is 0."""
    held = []
    mismatches = 0
    for step in range(rounds):
        for dst in range(bsp.nprocs):
            if dst != bsp.pid:
                bsp.send(dst, np.full(n, step * bsp.nprocs + bsp.pid,
                                      dtype=np.int64))
        bsp.sync()
        for pkt in bsp.packets():
            arr = np.asarray(pkt.payload)
            mismatches += int(np.count_nonzero(
                arr != step * bsp.nprocs + pkt.src))
            arr[:] = -1  # mutate the delivered view after use
            if pkt.src % 2 == 0:
                held.append(arr)  # pin the lease across barriers
    return mismatches


# -- sender-side pool ---------------------------------------------------------


class TestSegmentPool:
    def test_lease_write_release_rewind(self):
        pool = shm.SegmentPool(shm.fabric_token(), 0, segment_bytes=1 << 16)
        try:
            lid1, name1, off1, view1 = pool.lease(1, 1000)
            lid2, name2, off2, view2 = pool.lease(1, 1000)
            assert (lid1, off1) == (1, 0)
            assert name1 == name2  # same per-dst segment, bump-allocated
            assert off2 == 1024    # 64-byte aligned past the first lease
            view1[:] = b"\x11" * 1000
            view2[:] = b"\x22" * 1000
            assert pool.outstanding == 2 and pool.segments == 1
            # Receiver side sees the sender's bytes through the name.
            seg_map = shm.SegmentMap()
            r1 = seg_map.region(name1, off1, 1000)
            r2 = seg_map.region(name2, off2, 1000)
            assert bytes(r1) == b"\x11" * 1000
            assert bytes(r2) == b"\x22" * 1000
            # Partial release does not rewind; full release does.
            pool.release([lid1])
            lid3, _, off3, _ = pool.lease(1, 100)
            assert off3 > 0
            pool.release([lid2, lid3])
            lid4, _, off4, view4 = pool.lease(1, 100)
            assert off4 == 0
            del r1, r2, view1, view2, view4
            seg_map.close()
        finally:
            pool.close()
            shm.sweep_segments(pool._token, {0: pool._created})

    def test_unknown_and_duplicate_releases_ignored(self):
        pool = shm.SegmentPool(shm.fabric_token(), 0)
        try:
            lid, _, _, view = pool.lease(1, 128)
            pool.release([999, lid, lid])  # unknown + duplicate: no-ops
            assert pool.outstanding == 0
            del view
        finally:
            pool.close()
            shm.sweep_segments(pool._token, {0: pool._created})

    def test_oversized_lease_gets_dedicated_segment(self):
        pool = shm.SegmentPool(shm.fabric_token(), 0, segment_bytes=4096)
        try:
            _, name, off, view = pool.lease(1, 1 << 20)
            assert off == 0 and view.nbytes == 1 << 20
            assert pool.segments == 1
        finally:
            del view
            pool.close()
            shm.sweep_segments(pool._token, {0: pool._created})

    def test_reset_bumps_generation_and_forgets_leases(self):
        pool = shm.SegmentPool(shm.fabric_token(), 0)
        try:
            pool.lease(1, 128)
            assert pool.generation == 0 and pool.outstanding == 1
            pool.reset()
            assert pool.generation == 1 and pool.outstanding == 0
            # Segments survive a reset (reused, not unlinked) ...
            assert pool.segments == 1
            lid, _, off, view = pool.lease(1, 128)
            assert off == 0
            # ... and lease ids never restart: stale releases stay safe.
            assert lid == 2
            del view
        finally:
            pool.close()
            shm.sweep_segments(pool._token, {0: pool._created})

    def test_deterministic_names_and_sweep(self):
        token = shm.fabric_token()
        pool = shm.SegmentPool(token, 3, segment_bytes=4096)
        pool.lease(0, 128)
        pool.lease(0, 1 << 20)  # second segment
        names = {shm.segment_name(token, 3, 0), shm.segment_name(token, 3, 1)}
        assert names <= set(shm.scan_orphans())
        pool.close()
        assert shm.sweep_segments(token, {3: pool._created}) == 2
        assert not names & set(shm.scan_orphans())
        # Sweeping again is a no-op, not an error.
        assert shm.sweep_segments(token, {3: pool._created}) == 0


class TestLeaseTable:
    def test_refcount_probe_frees_only_dropped_leases(self):
        token = shm.fabric_token()
        pool = shm.SegmentPool(token, 0)
        seg_map = shm.SegmentMap()
        try:
            lid1, name, off1, sv1 = pool.lease(1, 256)
            lid2, _, off2, sv2 = pool.lease(1, 256)
            del sv1, sv2  # sender-side views; the probe is receiver-side
            table = shm.LeaseTable()
            r1 = seg_map.region(name, off1, 256)
            r2 = seg_map.region(name, off2, 256)
            assert table.register(0, lid1, 0, r1) is False
            assert table.register(0, lid2, 0, r2) is False
            payload = r1[:100]  # a consumer view keeps lid1 alive
            del r1, r2
            assert table.collect_free() == {0: [lid2]}
            assert len(table) == 1
            del payload
            assert table.collect_free() == {0: [lid1]}
            assert len(table) == 0
        finally:
            seg_map.close()
            pool.close()
            shm.sweep_segments(token, {0: pool._created})

    def test_stale_generation_flagged(self):
        token = shm.fabric_token()
        pool = shm.SegmentPool(token, 0)
        seg_map = shm.SegmentMap()
        try:
            _, name, off, sv = pool.lease(1, 64)
            del sv
            table = shm.LeaseTable()
            region = seg_map.region(name, off, 64)
            assert table.register(0, 1, 1, region) is False  # gen 1 seen
            assert table.register(0, 2, 0, region) is True   # gen 0: stale
            assert table.register(0, 3, 1, region) is False  # same gen: fine
            assert table.register(0, 4, 2, region) is False  # newer: fine
            table.clear()
            assert len(table) == 0
            del region
        finally:
            seg_map.close()
            pool.close()
            shm.sweep_segments(token, {0: pool._created})


# -- transport round-trips ----------------------------------------------------


def _pkt(src, dst, payload, seq=0):
    return Packet(src=src, dst=dst, payload=payload, h=h_units(payload),
                  seq=seq)


class TestTransportRoundTrip:
    @pytest.fixture()
    def transport(self):
        t = FrameTransport(2, mp.get_context("fork"))
        yield t
        t.close()

    def test_big_buffer_leases_small_stays_on_slab(self, transport):
        big = np.arange(BIG_N, dtype=np.float64)
        small = np.arange(SMALL_N, dtype=np.float64)
        transport.send_packets(1, 1, 0, 0, [
            _pkt(0, 1, big, seq=0), _pkt(0, 1, small, seq=1)])
        frame = transport.recv(1)
        assert frame.stale == 0
        got = frame.packets(1)
        np.testing.assert_array_equal(np.asarray(got[0].payload), big)
        np.testing.assert_array_equal(np.asarray(got[1].payload), small)
        assert transport.zerocopy_stats() == (1, 0)
        assert transport.segment_counts() == {0: 1, 1: 0}
        # Proof of sharing: the delivered array is backed by the shared
        # pages — write through the receiver's view, read it back through
        # a fresh mapping of the same region.
        arr = np.asarray(got[0].payload)
        arr[0] = -123.0
        entries = transport._lease_tables[1]._entries
        (lease_id, (src, region)), = [
            (k, v) for k, v in entries.items()]
        assert src == 0
        assert region[:8].view(np.float64)[0] == -123.0

    def test_releases_piggyback_and_rewind(self, transport):
        big = np.ones(BIG_N)
        transport.send_packets(1, 1, 0, 0, [_pkt(0, 1, big)])
        frame = transport.recv(1)
        frame.packets(1)  # materialize and drop the payloads
        del frame  # the frame's buffer list pins the lease too
        freed = transport.collect_releases(1)
        assert list(freed) == [0] and len(freed[0]) == 1
        pool = transport._seg_pools[0]
        assert pool.outstanding == 1
        # Piggyback on the next (small) data frame back to the owner.
        transport.send_packets(0, 1, 1, 1, [_pkt(1, 0, b"ack")],
                               releases=freed[0])
        transport.recv(0)
        assert pool.outstanding == 0

    def test_dedicated_release_frame(self, transport):
        transport.send_packets(1, 1, 0, 0, [_pkt(0, 1, np.ones(BIG_N))])
        transport.recv(1).packets(1)
        freed = transport.collect_releases(1)
        transport.send_release(0, 1, 1, freed[0])
        frame = transport.recv(0)
        from repro.backends.frames import TAG_RELEASE
        assert frame.tag == TAG_RELEASE
        assert transport._seg_pools[0].outstanding == 0

    def test_torn_lease_discard_grows_pool_never_corrupts(self, transport):
        transport.send_packets(1, 1, 0, 0, [_pkt(0, 1, np.ones(BIG_N))])
        transport.recv(1).packets(1)
        assert transport.collect_releases(1, discard=True) == {}
        # The lease is gone from the table but never released: the
        # owner's region stays pinned (outstanding), so nothing can
        # overwrite it.  Only the teardown sweep reclaims the segment.
        assert len(transport._lease_tables[1]) == 0
        assert transport._seg_pools[0].outstanding == 1

    def test_broadcast_dedup_places_once_and_aliases(self):
        """The same buffer sent to two peers is copied into its segment
        once; the second frame carries an aliased lease over the same
        bytes, and the segment rewinds only after both release."""
        transport = FrameTransport(3, mp.get_context("fork"))
        try:
            block = np.arange(BIG_N, dtype=np.float64)
            transport.send_packets(1, 1, 0, 0, [_pkt(0, 1, block)])
            transport.send_packets(2, 1, 0, 0, [_pkt(0, 2, block)])
            pool = transport._seg_pools[0]
            assert pool.segments == 1  # both frames share one placement
            assert pool.outstanding == 2  # ...but carry distinct leases
            got1 = transport.recv(1).packets(1)
            got2 = transport.recv(2).packets(2)
            np.testing.assert_array_equal(np.asarray(got1[0].payload), block)
            np.testing.assert_array_equal(np.asarray(got2[0].payload), block)
            del got1, got2
            freed1 = transport.collect_releases(1)
            freed2 = transport.collect_releases(2)
            assert len(freed1[0]) == 1 and len(freed2[0]) == 1
            assert freed1[0] != freed2[0]  # distinct lease ids
            pool.release(freed1[0])
            assert pool.outstanding == 1  # a receiver still out: no rewind
            pool.release(freed2[0])
            assert pool.outstanding == 0
            _, _, off, view = pool.lease(1, 64)
            assert off == 0  # rewound only after the last alias came home
            del view
        finally:
            transport.close()

    def test_off_mode_counts_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_ZEROCOPY", "off")
        transport = FrameTransport(2, mp.get_context("fork"))
        try:
            big = np.arange(BIG_N, dtype=np.float64)
            transport.send_packets(1, 1, 0, 0, [_pkt(0, 1, big)])
            got = transport.recv(1).packets(1)
            np.testing.assert_array_equal(np.asarray(got[0].payload), big)
            assert transport.zerocopy_stats() == (0, 1)
            assert transport.segment_counts() == {0: 0, 1: 0}
            del got
        finally:
            transport.close()

    def test_threshold_env_tunes_the_cut(self, monkeypatch):
        monkeypatch.setenv("REPRO_ZEROCOPY_THRESHOLD", "256")
        transport = FrameTransport(2, mp.get_context("fork"))
        try:
            transport.send_packets(1, 1, 0, 0, [
                _pkt(0, 1, np.arange(64, dtype=np.float64), seq=0),   # 512 B
                _pkt(0, 1, np.arange(16, dtype=np.float64), seq=1)])  # 128 B
            got = transport.recv(1).packets(1)
            assert np.asarray(got[0].payload)[63] == 63
            assert transport.zerocopy_stats() == (1, 0)
            del got
        finally:
            transport.close()


# -- pooled end-to-end --------------------------------------------------------


class TestPooledEndToEnd:
    def test_zerocopy_on_hits_and_identical_results(self, monkeypatch):
        with BspPool(4, join_timeout=60.0) as pool:
            run_on = pool.run(big_allgather, 4)
            health = pool.health()
        assert health.zerocopy_hits > 0
        assert health.zerocopy_fallbacks == 0
        monkeypatch.setenv("REPRO_ZEROCOPY", "off")
        with BspPool(4, join_timeout=60.0) as pool:
            run_off = pool.run(big_allgather, 4)
            health = pool.health()
        assert health.zerocopy_hits == 0
        assert health.zerocopy_fallbacks > 0
        assert run_on.results == run_off.results  # bit-identical floats

    def test_small_payloads_never_lease(self):
        with BspPool(2, join_timeout=60.0) as pool:
            pool.run(big_allgather, 2, kwargs={"n": SMALL_N})
            health = pool.health()
        assert health.zerocopy_hits == 0
        assert health.zerocopy_fallbacks == 0

    def test_pool_reuse_reuses_segments(self):
        """Back-to-back runs on one warm pool must not grow /dev/shm —
        the fence rewinds pools instead of unlinking them."""
        with BspPool(2, join_timeout=60.0) as pool:
            pool.run(big_allgather, 2)
            counts1 = pool._transport.segment_counts()
            pool.run(big_allgather, 2)
            counts2 = pool._transport.segment_counts()
        assert counts1 == counts2


class TestHostileConsumerProperty:
    @pytest.fixture(scope="class")
    def low_threshold_pool(self):
        """One warm pool whose fabric leases nearly everything (threshold
        1 KiB), shared across hypothesis examples."""
        old = os.environ.get("REPRO_ZEROCOPY_THRESHOLD")
        os.environ["REPRO_ZEROCOPY_THRESHOLD"] = "1024"
        pool = BspPool(3, join_timeout=60.0)
        try:
            # Warm-up: create every (src, dst) segment now, while the
            # class fixture is being set up, so the per-test leak check
            # (which snapshots /dev/shm around each *function*) sees a
            # steady state rather than lazily appearing segments.  The
            # hostile program itself sends distinct per-dst arrays, so it
            # populates every per-destination sub-pool (a broadcast
            # would dedup into one).
            pool.run(hostile_consumer, 3, args=(1, 256))
            yield pool
        finally:
            pool.close()
            if old is None:
                os.environ.pop("REPRO_ZEROCOPY_THRESHOLD", None)
            else:
                os.environ["REPRO_ZEROCOPY_THRESHOLD"] = old

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(rounds=st.integers(1, 4), n=st.integers(16, 600))
    def test_mutating_received_views_never_corrupts(
            self, low_threshold_pool, rounds, n):
        """n*8 bytes straddles the 1 KiB threshold both ways, so leased
        and slab deliveries interleave; mutated + pinned views must
        never bleed into later deliveries."""
        run = low_threshold_pool.run(hostile_consumer, 3, args=(rounds, n))
        assert run.results == [0, 0, 0]

    def test_property_runs_took_the_lease_path(self, low_threshold_pool):
        hits, _ = low_threshold_pool._transport.zerocopy_stats()
        assert hits > 0


# -- accounting invariance ----------------------------------------------------


GOLDEN_SEED_ACCOUNTING = {
    ("ocean", "66"): (489, 15890, "b5882e80f3a2ab0c"),
    ("mst", "2.5k"): (7, 573, "42755087de787f56"),
    ("sp", "2.5k"): (23, 245, "78da159294fa786c"),
    ("msp", "2.5k"): (34, 3243, "5a9c0ce5981e431b"),
    ("nbody", "1k"): (7, 1511, "0faf953a2126eb31"),
    ("matmult", "144"): (3, 10368, "83b281fc68d1317b"),
}


class TestAccountingInvariance:
    @pytest.mark.parametrize("mode", ["on", "off"])
    @pytest.mark.parametrize("app,size", sorted(GOLDEN_SEED_ACCOUNTING))
    def test_golden_ledgers_identical_both_modes(self, monkeypatch, app,
                                                 size, mode):
        """H counts bytes the *program* sent, not bytes the wire moved:
        the data plane must be invisible to the paper's accounting."""
        import hashlib
        from repro.harness.runner import run_app
        monkeypatch.setenv("REPRO_ZEROCOPY", mode)
        stats = run_app(app, size, 4, backend="processes")
        digest = hashlib.sha256(",".join(
            str(s.h) for s in stats.supersteps).encode()).hexdigest()[:16]
        assert (stats.S, stats.H, digest) == GOLDEN_SEED_ACCOUNTING[app, size]


# -- chaos: no leaked segments ------------------------------------------------


def _pool_under(plan, nprocs=3, **kw):
    """A pool whose workers inherited ``plan`` but whose parent did not."""
    kw.setdefault("join_timeout", 30.0)
    with faults.injected(plan):
        return BspPool(nprocs, **kw)


class TestChaosLeaksNothing:
    def test_sigkill_mid_superstep_sweeps_clean(self):
        """The acceptance chaos test: SIGKILL a worker mid-superstep
        while big leases are in flight; heal; the clean rerun is
        correct; close leaves zero orphaned segments (autouse fixture
        asserts the sweep)."""
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=1, step=1)])
        with _pool_under(plan) as pool:
            with pytest.raises(WorkerCrashError):
                pool.run(big_allgather, 3)
            clean = pool.run(big_allgather, 3)
            assert pool.health().alive == 3
        with BspPool(3, join_timeout=30.0) as ref_pool:
            assert clean.results == ref_pool.run(big_allgather, 3).results

    def test_exhausted_budget_unlinks_dead_generation(self):
        """Satellite regression: PoolExhaustedError tears the fabric
        down, and the teardown must unlink every segment of the dead
        generation — immediately, not at close()."""
        before = set(shm.scan_orphans())
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=1, step=1)])
        pool = _pool_under(plan, max_restarts=0, backoff_base=0.01)
        try:
            with pytest.raises((PoolExhaustedError, WorkerCrashError)):
                pool.run(big_allgather, 3)
                pool.run(big_allgather, 3)  # pool is exhausted, terminal
            assert set(shm.scan_orphans()) <= before
        finally:
            pool.close()

    def test_leak_segment_fault_reclaimed_only_by_sweep(self):
        plan = faults.FaultPlan(
            [faults.Fault(faults.LEAK_SEGMENT, pid=1, step=0)])
        with _pool_under(plan, nprocs=2) as pool:
            run = pool.run(big_allgather, 2)
            # The leaked segment is real: it shows up in pid 1's creation
            # count and in /dev/shm while the pool lives ...
            assert pool._transport.segment_counts()[1] >= 2
            with BspPool(2, join_timeout=30.0) as ref_pool:
                assert run.results == ref_pool.run(big_allgather, 2).results
        # ... and the autouse fixture proves close() swept it.

    def test_torn_lease_fault_grows_pool_never_corrupts(self):
        plan = faults.FaultPlan(
            [faults.Fault(faults.TORN_LEASE, pid=1, step=0)])
        with _pool_under(plan, nprocs=2) as pool:
            run = pool.run(big_allgather, 2, kwargs={"rounds": 3})
            with BspPool(2, join_timeout=30.0) as ref_pool:
                ref = ref_pool.run(big_allgather, 2, kwargs={"rounds": 3})
            assert run.results == ref.results


# -- thread backend: by-reference guard ---------------------------------------


def threads_identity(bsp, box):
    if bsp.pid == 0:
        arr = np.arange(1000, dtype=np.float64)
        box["sent"] = arr
        bsp.send(1, arr)
        bsp.sync()
    else:
        bsp.sync()
        box["got"] = bsp.get_pkt().payload
    return True


def threads_guard(bsp, box):
    if bsp.pid == 0:
        arr = np.zeros(8)
        bsp.send(1, arr)
        try:
            arr[0] = 1.0
            box["raised"] = False
        except ValueError:
            box["raised"] = True
        bsp.sync()
        arr[0] = 2.0  # thawed on delivery: this must not raise
        box["thawed"] = True
    else:
        bsp.sync()
        box["got0"] = float(bsp.get_pkt().payload[0])
    return True


def threads_copy_on_send(bsp, box):
    if bsp.pid == 0:
        arr = np.zeros(8)
        bsp.send(1, arr)
        arr[:] = 7.0  # legal under copy-on-send; receiver sees the zeros
        bsp.sync()
    else:
        bsp.sync()
        box["got"] = np.asarray(bsp.get_pkt().payload).copy()
    return True


class TestThreadsByReference:
    def test_delivery_is_the_same_object(self):
        box = {}
        bsp_run(threads_identity, 2, backend="threads", args=(box,))
        assert box["got"] is box["sent"]
        assert box["got"].flags.writeable  # thawed on delivery

    def test_mutation_in_guard_window_raises_then_thaws(self):
        box = {}
        bsp_run(threads_guard, 2, backend="threads", args=(box,))
        assert box["raised"] is True
        assert box["thawed"] is True
        assert box["got0"] == 0.0  # the guarded send arrived intact

    def test_off_mode_is_copy_on_send(self, monkeypatch):
        monkeypatch.setenv("REPRO_ZEROCOPY", "off")
        box = {}
        bsp_run(threads_copy_on_send, 2, backend="threads", args=(box,))
        np.testing.assert_array_equal(box["got"], np.zeros(8))
        box = {}
        bsp_run(threads_guard, 2, backend="threads", args=(box,))
        assert box["raised"] is False  # no freeze in copy-on-send mode
