"""Backend-specific internals: registry, determinism, vanishing barrier."""

import threading

import pytest

from repro import BspConfigError, bsp_run
from repro.backends.base import available_backends, get_backend, register_backend
from repro.backends.threads import VanishingBarrier
from repro.core.errors import SynchronizationError


class TestRegistry:
    def test_builtins_available(self):
        assert {"simulator", "threads", "processes"} <= set(available_backends())

    def test_unknown_backend(self):
        with pytest.raises(BspConfigError):
            get_backend("gpu")

    def test_register_custom(self):
        from repro.backends.simulator import SimulatorBackend

        register_backend("custom-sim", SimulatorBackend)
        assert "custom-sim" in available_backends()
        run = bsp_run(lambda bsp: bsp.pid, 2, backend="custom-sim")
        assert run.results == [0, 1]

    def test_bad_nprocs(self):
        with pytest.raises(BspConfigError):
            bsp_run(lambda bsp: None, 0)
        with pytest.raises(BspConfigError):
            bsp_run(lambda bsp: None, -3)


class TestSimulatorDeterminism:
    def test_same_run_twice_identical_stats(self):
        def program(bsp):
            for step in range(4):
                for q in range(bsp.nprocs):
                    bsp.send(q, (bsp.pid, step))
                bsp.sync()
                collected = [p.payload for p in bsp.packets()]
            return collected

        r1 = bsp_run(program, 4, backend="simulator")
        r2 = bsp_run(program, 4, backend="simulator")
        assert r1.results == r2.results
        assert r1.stats.H == r2.stats.H
        assert r1.stats.S == r2.stats.S
        assert [s.h for s in r1.stats.supersteps] == [
            s.h for s in r2.stats.supersteps
        ]

    def test_serialized_execution_order(self):
        """VPs run one at a time, in pid order within each superstep."""
        trace = []

        def program(bsp):
            trace.append(("a", bsp.pid))
            bsp.sync()
            trace.append(("b", bsp.pid))

        bsp_run(program, 3, backend="simulator")
        assert trace == [
            ("a", 0), ("a", 1), ("a", 2),
            ("b", 0), ("b", 1), ("b", 2),
        ]


class TestVanishingBarrier:
    def test_basic_two_party(self):
        barrier = VanishingBarrier(2)
        hits = []

        def worker():
            barrier.wait()
            hits.append(1)

        t = threading.Thread(target=worker)
        t.start()
        barrier.wait()
        t.join(timeout=2)
        assert hits == [1]

    def test_leave_releases_waiting_cohort(self):
        barrier = VanishingBarrier(2)
        released = threading.Event()

        def waiter():
            barrier.wait()
            released.set()

        t = threading.Thread(target=waiter)
        t.start()
        # Give the waiter time to park, then leave: it must be released.
        import time

        time.sleep(0.05)
        barrier.leave()
        assert released.wait(timeout=2)
        t.join(timeout=2)

    def test_abort_raises_in_waiters(self):
        barrier = VanishingBarrier(2)
        errors = []

        def waiter():
            try:
                barrier.wait()
            except SynchronizationError:
                errors.append(True)

        t = threading.Thread(target=waiter)
        t.start()
        import time

        time.sleep(0.05)
        barrier.abort()
        t.join(timeout=2)
        assert errors == [True]
        with pytest.raises(SynchronizationError):
            barrier.wait()

    def test_reusable_across_generations(self):
        barrier = VanishingBarrier(1)
        for _ in range(5):
            barrier.wait()

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            VanishingBarrier(0)


class TestProcessesBackend:
    def test_compute_runs_in_parallel_processes(self):
        """Results must come from distinct processes."""
        import os

        def program(bsp):
            return os.getpid()

        run = bsp_run(program, 3, backend="processes")
        assert len(set(run.results)) == 3

    def test_large_payload_roundtrip(self):
        import numpy as np

        def program(bsp):
            data = np.full(50_000, bsp.pid, dtype=np.int64)
            bsp.send((bsp.pid + 1) % bsp.nprocs, data)
            bsp.sync()
            (pkt,) = list(bsp.packets())
            return int(pkt.payload[0]), len(pkt.payload)

        run = bsp_run(program, 2, backend="processes")
        assert run.results == [(1, 50_000), (0, 50_000)]

    def test_many_supersteps(self):
        def program(bsp):
            acc = 0
            for step in range(30):
                bsp.send((bsp.pid + step) % bsp.nprocs, 1)
                bsp.sync()
                acc += sum(p.payload for p in bsp.packets())
            return acc

        run = bsp_run(program, 4, backend="processes")
        assert sum(run.results) == 4 * 30


class TestProcessesFailFast:
    def test_unpicklable_payload_fails_fast(self):
        """A payload that cannot cross the process boundary must surface
        as an error promptly, not a deadlock-until-timeout."""
        import time

        def program(bsp):
            bsp.send((bsp.pid + 1) % bsp.nprocs, lambda x: x)  # unpicklable
            bsp.sync()

        from repro import BspError

        t0 = time.perf_counter()
        with pytest.raises(BspError):
            bsp_run(program, 2, backend="processes")
        assert time.perf_counter() - t0 < 30
