"""Three-mode synchronization equivalence and the relaxed-mode contracts.

The sync layer's promise (DESIGN "Synchronization modes"): ``relaxed``
and ``elide`` change *when a processor may pass the barrier*, never what
the program observes.  Exercised here:

* bit-identical results and (S, H, h-series, m-series) ledgers versus
  the simulator golden, for every mode on both pooled backends — on a
  ring with deliberate empty supersteps (the barrier-bound shape the
  modes exist to accelerate), and property-tested over random
  pattern-respecting programs;
* the same ledger identity for all six paper applications;
* fault handling survives the mode switch: a dropped frame stalls a
  relaxed run into :class:`DeadlockError` (a missing final is
  indistinguishable from a missing message — run-ahead must not paper
  over it), while a slow-but-beating program stays a plain
  :class:`SynchronizationError`;
* crash-mid-superstep recovery under checkpointing reproduces the
  golden run in relaxed mode (the checkpoint cut falls back to a strict
  fence, so a resumed run restarts from a fully quiesced boundary);
* the per-mode wire-frame budgets on empty supersteps, counted by a
  :class:`~repro.faults.FrameCounter` at the actual send sites: pipes
  send **zero** frames in relaxed/elide, TCP relaxed sends exactly one
  empty-final per live link per boundary, and TCP elide with a declared
  empty pattern sends nothing at all (full barrier elision);
* an out-of-pattern send under a validating declaration fails loudly at
  the next boundary instead of deadlocking the receiver.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bsp_run
from repro import faults
from repro.backends.processes import ProcessBackend
from repro.backends.tcp import TcpBackend
from repro.core.errors import (
    DeadlockError,
    SynchronizationError,
    VirtualProcessorError,
)

MODES = ("strict", "relaxed", "elide")

# Module-level programs: pooled runs ship them by pickle.


def mixed_ring(bsp, rounds=4):
    """Ring exchange alternating with pure-barrier (empty) supersteps."""
    total = 0
    for r in range(rounds):
        bsp.send((bsp.pid + 1) % bsp.nprocs, (bsp.pid + 1) * (r + 1))
        bsp.sync()
        total += sum(pkt.payload for pkt in bsp.packets())
        bsp.sync()  # empty superstep: nothing but the barrier
    return total


def pattern_ring(bsp, rounds=4):
    """Same ring, but with its static pattern declared for elide mode."""
    p = bsp.nprocs
    bsp.pattern({(bsp.pid + 1) % p}, {(bsp.pid - 1) % p})
    return mixed_ring(bsp, rounds)


def patterned_random(bsp, edges, rounds, seed):
    """A random pattern-respecting program, deterministic in (seed, pid).

    ``edges`` is the full directed communication graph; each round every
    edge fires with probability 0.7 — so some rounds leave some (or all)
    links silent, exactly the partial-emptiness relaxed sync must handle.
    """
    bsp.pattern({d for s, d in edges if s == bsp.pid},
                {s for s, d in edges if d == bsp.pid})
    rng = random.Random(seed * 131 + bsp.pid)
    inboxes = []
    for r in range(rounds):
        for s, d in edges:
            if s == bsp.pid:
                fire = rng.random() < 0.7
                payload = rng.randrange(1_000_000)
                if fire:
                    bsp.send(d, (bsp.pid, r, payload))
        bsp.sync()
        inboxes.append(sorted(pkt.payload for pkt in bsp.packets()))
    return inboxes


def counting_ring(bsp, rounds=6):
    """Checkpointed ring: state is (next round, running total)."""
    total = 0
    start = 0
    restored = bsp.resume_state()
    if restored is not None:
        start, total = restored
    for r in range(start, rounds):
        bsp.checkpoint(lambda: (r, total))
        bsp.send((bsp.pid + 1) % bsp.nprocs, (bsp.pid + 1) * (r + 1))
        bsp.sync()
        total += sum(pkt.payload for pkt in bsp.packets())
    return total


def slow_ring(bsp, rounds, pause):
    import time
    for _ in range(rounds):
        bsp.send((bsp.pid + 1) % bsp.nprocs, bsp.pid)
        bsp.sync()
        time.sleep(pause)
    return True


def empty_steps(bsp, rounds=4):
    for _ in range(rounds):
        bsp.sync()
    return bsp.pid


def empty_pattern_steps(bsp, rounds=4):
    bsp.pattern(())  # no neighbors declared: nothing to wait for
    for _ in range(rounds):
        bsp.sync()
    return bsp.pid


def out_of_pattern(bsp):
    bsp.pattern({(bsp.pid + 1) % bsp.nprocs})
    bsp.send((bsp.pid + 2) % bsp.nprocs, "stray")
    bsp.sync()
    return True


def _ledger_key(stats):
    return (stats.S, stats.H, stats.h_series, stats.m_series)


def _snapshot(run):
    return (run.results, _ledger_key(run.stats))


def _pooled(backend_kind, nprocs, plan, **kw):
    """A pooled backend whose *initial* workers inherited ``plan``."""
    cls = {"processes": ProcessBackend, "tcp": TcpBackend}[backend_kind]
    with faults.injected(plan):
        return cls.pool(nprocs, **kw)


@pytest.fixture(scope="module", params=["processes", "tcp"])
def mode_pool(request):
    """One shared 4-worker pool per backend for the equivalence sweeps."""
    cls = {"processes": ProcessBackend, "tcp": TcpBackend}[request.param]
    with cls.pool(4) as backend:
        yield request.param, backend


class TestThreeModeEquivalence:
    def test_mixed_ring_identity(self, mode_pool):
        _, backend = mode_pool
        golden = _snapshot(bsp_run(mixed_ring, 4))
        for mode in MODES:
            run = bsp_run(mixed_ring, 4, backend=backend, sync=mode)
            assert _snapshot(run) == golden, mode

    def test_pattern_ring_identity(self, mode_pool):
        """With the pattern declared, elide prunes non-neighbor frames —
        and still reproduces the strict ledger bit-for-bit."""
        _, backend = mode_pool
        golden = _snapshot(bsp_run(pattern_ring, 4))
        for mode in MODES:
            run = bsp_run(pattern_ring, 4, backend=backend, sync=mode)
            assert _snapshot(run) == golden, mode

    def test_elide_without_pattern_is_safe(self, mode_pool):
        """No declaration: elide degrades to relaxed (wait on everyone)."""
        _, backend = mode_pool
        golden = _snapshot(bsp_run(mixed_ring, 4, args=(3,)))
        run = bsp_run(mixed_ring, 4, backend=backend, args=(3,),
                      sync="elide")
        assert _snapshot(run) == golden

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000), data=st.data())
    def test_property_random_patterned_programs(self, mode_pool, seed, data):
        """Any pattern-respecting program is mode-invariant, including
        rounds where a declared link happens to stay silent."""
        _, backend = mode_pool
        all_edges = [(s, d) for s in range(4) for d in range(4) if s != d]
        edges = tuple(sorted(data.draw(
            st.sets(st.sampled_from(all_edges), min_size=1, max_size=6))))
        rounds = data.draw(st.integers(1, 3))
        args = (edges, rounds, seed)
        golden = _snapshot(bsp_run(patterned_random, 4, args=args))
        for mode in ("relaxed", "elide"):
            run = bsp_run(patterned_random, 4, backend=backend, args=args,
                          sync=mode)
            assert _snapshot(run) == golden, (mode, edges, rounds)


class TestSixAppLedgerIdentity:
    """The acceptance sweep: every paper app, every mode, one ledger."""

    @pytest.mark.parametrize("app,size", [
        ("ocean", "66"), ("mst", "2.5k"), ("sp", "2.5k"),
        ("msp", "2.5k"), ("nbody", "1k"), ("matmult", "144"),
    ])
    def test_golden_ledgers(self, app, size, mode_pool):
        from repro.harness.runner import run_app
        _, backend = mode_pool
        golden = _ledger_key(run_app(app, size, 4))
        for mode in MODES:
            stats = run_app(app, size, 4, backend=backend, sync=mode)
            assert _ledger_key(stats) == golden, mode


class TestRelaxedFaultContracts:
    @pytest.mark.parametrize("backend_kind", ["processes", "tcp"])
    def test_dropped_frame_stalls_into_deadlock(self, backend_kind):
        """In relaxed mode a lost data frame also loses its piggybacked
        final, so the victim never passes the barrier — the supervisor
        must still call it a deadlock, with the stalled pids named."""
        plan = faults.FaultPlan(
            [faults.Fault(faults.DROP_FRAME, pid=0, step=0, arg=1)])
        cls = {"processes": ProcessBackend, "tcp": TcpBackend}[backend_kind]
        backend = cls(join_timeout=2.5)
        with faults.injected(plan):
            with pytest.raises(DeadlockError) as err:
                bsp_run(mixed_ring, 3, backend=backend, sync="relaxed")
        assert err.value.stalled
        assert "worker 0" in str(err.value)
        assert "os pid" in str(err.value)
        assert "heartbeat" in str(err.value)

    @pytest.mark.parametrize("backend_kind", ["processes", "tcp"])
    def test_slow_but_beating_is_not_deadlock(self, backend_kind):
        cls = {"processes": ProcessBackend, "tcp": TcpBackend}[backend_kind]
        backend = cls(join_timeout=2.5)
        with pytest.raises(SynchronizationError) as err:
            bsp_run(slow_ring, 2, backend=backend, args=(30, 0.3),
                    sync="relaxed")
        assert not isinstance(err.value, DeadlockError)
        assert "still advancing" in str(err.value)

    @pytest.mark.parametrize("backend_kind", ["processes", "tcp"])
    @pytest.mark.parametrize("kill_step", [0, 3])
    def test_crash_recovery_in_relaxed_mode(self, tmp_path, backend_kind,
                                            kill_step):
        """Kill a worker mid-run under checkpointing: the healed relaxed
        run must reproduce the uninterrupted golden bit-for-bit."""
        from repro import CheckpointConfig, DiskCheckpointStore
        golden = _snapshot(bsp_run(counting_ring, 2))
        plan = faults.FaultPlan(
            [faults.Fault(faults.KILL, pid=1, step=kill_step)])
        cfg = CheckpointConfig(
            store=DiskCheckpointStore(tmp_path / "ckpt"),
            run_key=f"relaxed-{backend_kind}-{kill_step}")
        with _pooled(backend_kind, 2, plan) as backend:
            run = bsp_run(counting_ring, 2, backend=backend, retries=1,
                          checkpoint=cfg, sync="relaxed")
            health = backend.health()
        assert _snapshot(run) == golden
        assert health.generation >= 1
        assert "WorkerCrashError" in health.last_fault

    def test_out_of_pattern_send_fails_loudly(self):
        """validate=True: a stray send is a program error at the next
        boundary, not a silent deadlock of the undeclared receiver."""
        with pytest.raises(VirtualProcessorError) as err:
            bsp_run(out_of_pattern, 3, backend="processes", sync="elide")
        assert "BspUsageError" in err.value.traceback_text
        assert "declared communication pattern" in err.value.traceback_text


def _count_frames(backend_kind, sync, program, nprocs=3, rounds=4):
    """Total wire frames a pooled run actually sent, via FrameCounter."""
    counter = faults.FrameCounter(nprocs)
    plan = faults.FaultPlan([], frame_counter=counter)
    try:
        with _pooled(backend_kind, nprocs, plan) as backend:
            bsp_run(program, nprocs, backend=backend, args=(rounds,),
                    sync=sync)
        return counter.total()
    finally:
        counter.close()


class TestEmptySuperstepFrameBudgets:
    """Regression: the whole point of relaxed sync is what is NOT sent.

    ``rounds`` pure-barrier supersteps at p processors must cost, in
    boundary frames on the wire (p=3, rounds=4 here):

    ========== ======================== =====
    backend    mode                     frames
    ========== ======================== =====
    processes  strict                   p·(p−1)·rounds (one per link)
    processes  relaxed / elide          0 (inline epoch publish)
    tcp        strict                   2·p·(p−1)·rounds (counts+release)
    tcp        relaxed                  p·(p−1)·rounds (one empty-final)
    tcp        elide, empty pattern     0 (full barrier elision)
    ========== ======================== =====
    """

    P, ROUNDS = 3, 4
    LINKS = P * (P - 1) * ROUNDS

    def test_processes_strict_baseline(self):
        assert _count_frames("processes", "strict", empty_steps,
                             self.P, self.ROUNDS) == self.LINKS

    @pytest.mark.parametrize("sync", ["relaxed", "elide"])
    def test_processes_relaxed_sends_nothing(self, sync):
        assert _count_frames("processes", sync, empty_steps,
                             self.P, self.ROUNDS) == 0

    def test_tcp_strict_baseline(self):
        assert _count_frames("tcp", "strict", empty_steps,
                             self.P, self.ROUNDS) == 2 * self.LINKS

    def test_tcp_relaxed_one_final_per_link(self):
        assert _count_frames("tcp", "relaxed", empty_steps,
                             self.P, self.ROUNDS) == self.LINKS

    def test_tcp_elide_empty_pattern_sends_nothing(self):
        assert _count_frames("tcp", "elide", empty_pattern_steps,
                             self.P, self.ROUNDS) == 0

    def test_pipes_elide_empty_pattern_sends_nothing(self):
        assert _count_frames("processes", "elide", empty_pattern_steps,
                             self.P, self.ROUNDS) == 0
