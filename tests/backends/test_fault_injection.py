"""Deterministic fault injection against the supervised process backend.

Every recovery path in :mod:`repro.backends.processes` is provoked on
purpose via :mod:`repro.faults` and asserted on:

* hard crashes (SIGKILL, ``os._exit``) surface as
  :class:`WorkerCrashError` naming pid + signal/exit code, in well under
  a second on a warm pool (the seed revision took the full 120s timeout);
* program-level faults (raise, sender-side pickle poison) stay
  :class:`VirtualProcessorError` and never consume restart budget;
* dropped frames become :class:`DeadlockError` with the stalled pids,
  while slow-but-beating programs get a plain "raise join_timeout"
  :class:`SynchronizationError`;
* a pool heals after every crash and its next clean run reproduces the
  simulator's accounting bit-for-bit (property-tested over seeded plans);
* an exhausted restart budget is terminal (:class:`PoolExhaustedError`)
  unless the backend opts into thread degradation;
* ``close()`` racing an in-flight run — even one ignoring SIGTERM —
  leaves no zombie children.
"""

import multiprocessing as mp
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bsp_run
from repro import faults
from repro.backends.processes import BspPool, ProcessBackend
from repro.core.errors import (
    DeadlockError,
    PoolExhaustedError,
    SynchronizationError,
    VirtualProcessorError,
    WorkerCrashError,
)
from repro.core.stats import ProgramStats

# Module-level programs: pooled runs ship them by pickle.


def ring_program(bsp, rounds=2):
    for _ in range(rounds):
        bsp.send((bsp.pid + 1) % bsp.nprocs, bsp.pid)
        bsp.sync()
    return sorted(pkt.payload for pkt in bsp.packets())


def slow_ring_program(bsp, rounds, pause):
    for _ in range(rounds):
        bsp.send((bsp.pid + 1) % bsp.nprocs, bsp.pid)
        bsp.sync()
        time.sleep(pause)
    return True


def stuck_program(bsp):
    """pid 0 never reaches its first sync: a genuine deadlock."""
    if bsp.pid == 0:
        time.sleep(3600)
    bsp.send((bsp.pid + 1) % bsp.nprocs, bsp.pid)
    bsp.sync()
    return True


def stubborn_program(bsp):
    """Ignores SIGTERM and sleeps: only SIGKILL can reap it."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(3600)
    return True


def _pool_under(plan, nprocs=3, **kw):
    """A pool whose workers inherited ``plan`` but whose parent did not.

    Replacement workers forked during a heal/rebuild therefore come up
    clean — the fault fires exactly once.
    """
    kw.setdefault("join_timeout", 30.0)
    with faults.injected(plan):
        return BspPool(nprocs, **kw)


def _golden(nprocs, rounds=2):
    run = bsp_run(ring_program, nprocs, backend="simulator", args=(rounds,))
    return (
        tuple(tuple(r) for r in run.results),
        run.stats.S,
        run.stats.H,
        tuple(s.h for s in run.stats.supersteps),
        tuple(s.m for s in run.stats.supersteps),
    )


def _snapshot(run):
    stats = getattr(run, "stats", None)
    if stats is None:  # a raw BackendRun from BspPool.run
        stats = ProgramStats.from_ledgers(run.ledgers)
    return (
        tuple(tuple(r) for r in run.results),
        stats.S,
        stats.H,
        tuple(s.h for s in stats.supersteps),
        tuple(s.m for s in stats.supersteps),
    )


class TestCrashDetection:
    def test_sigkill_detected_fast_and_attributed(self):
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=1, step=1)])
        with _pool_under(plan) as pool:
            t0 = time.monotonic()
            with pytest.raises(WorkerCrashError) as err:
                pool.run(ring_program, 3)
            elapsed = time.monotonic() - t0
            # The sentinel fires on death; only the _CRASH_GRACE drain and
            # the victim's join stand between death and attribution.  The
            # seed revision sat out the full join_timeout (120s default).
            assert elapsed < 1.0 + pool._backoff_base
            assert err.value.pid == 1
            assert err.value.signal_name == "SIGKILL"
            assert err.value.os_pid is not None
            assert "worker 1" in str(err.value)
            assert "SIGKILL" in str(err.value)

    def test_exit_code_attributed(self):
        plan = faults.FaultPlan(
            [faults.Fault(faults.EXIT, pid=2, step=0, arg=42)])
        with _pool_under(plan) as pool:
            with pytest.raises(WorkerCrashError) as err:
                pool.run(ring_program, 3)
            assert err.value.pid == 2
            assert err.value.exitcode == 42
            assert err.value.signal_name is None
            assert "exited with code 42" in str(err.value)

    def test_oneshot_sigkill_attributed(self):
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=0, step=0)])
        with faults.injected(plan):
            t0 = time.monotonic()
            with pytest.raises(WorkerCrashError) as err:
                bsp_run(ring_program, 3, backend="processes")
            elapsed = time.monotonic() - t0
        assert err.value.pid == 0
        assert err.value.signal_name == "SIGKILL"
        assert elapsed < 5.0  # fork + detect; nowhere near join_timeout

    def test_hooks_inert_without_plan(self):
        assert faults.active() is None
        run = bsp_run(ring_program, 3, backend="processes")
        assert _snapshot(run)[0] == _golden(3)[0]


class TestProgramLevelFaults:
    def test_raise_stays_program_failure_and_costs_no_budget(self):
        # Fault at step 3: the 4-round run hits it, the 2-round clean run
        # afterwards never reaches it — same workers, same inherited plan.
        plan = faults.FaultPlan([faults.Fault(faults.RAISE, pid=0, step=3)])
        with _pool_under(plan) as pool:
            with pytest.raises(VirtualProcessorError) as err:
                pool.run(ring_program, 3, args=(4,))
            assert err.value.pid == 0
            assert "injected failure" in err.value.traceback_text
            health = pool.health()
            assert health.restarts == 0 and health.generation == 0
            assert health.restarts_left == pool._max_restarts
            assert _snapshot(pool.run(ring_program, 3)) == _golden(3)

    def test_poison_fails_in_sender_thread(self):
        plan = faults.FaultPlan([faults.Fault(faults.POISON, pid=1, step=0)])
        with faults.injected(plan):
            with pytest.raises(VirtualProcessorError) as err:
                bsp_run(ring_program, 3, backend="processes")
        assert err.value.pid == 1
        assert "injected pickle failure" in err.value.traceback_text


class TestDeadlockVsSlow:
    def test_dropped_frame_is_deadlock_with_stalled_pids(self):
        plan = faults.FaultPlan(
            [faults.Fault(faults.DROP_FRAME, pid=0, step=0, arg=1)])
        backend = ProcessBackend(join_timeout=2.5)
        with faults.injected(plan):
            with pytest.raises(DeadlockError) as err:
                backend.run(ring_program, 3)
        assert err.value.stalled  # nobody advances past the lost frame
        # Satellite: every timeout message carries the per-pid liveness
        # table — who is alive, heartbeats, os pids.
        assert "worker 0" in str(err.value)
        assert "os pid" in str(err.value)
        assert "heartbeat" in str(err.value)

    def test_stuck_program_is_deadlock(self):
        backend = ProcessBackend(join_timeout=2.5)
        with pytest.raises(DeadlockError) as err:
            backend.run(stuck_program, 2)
        assert 0 in err.value.stalled

    def test_slow_but_beating_is_not_deadlock(self):
        backend = ProcessBackend(join_timeout=2.5)
        with pytest.raises(SynchronizationError) as err:
            backend.run(slow_ring_program, 2, args=(30, 0.3))
        assert not isinstance(err.value, DeadlockError)
        assert "still advancing" in str(err.value)
        assert "join_timeout" in str(err.value)


class TestSelfHealing:
    def test_heal_then_golden_accounting(self):
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=1, step=1)])
        with _pool_under(plan) as pool:
            with pytest.raises(WorkerCrashError):
                pool.run(ring_program, 3)
            t0 = time.monotonic()
            snapshot = _snapshot(pool.run(ring_program, 3))
            heal_plus_run = time.monotonic() - t0
            assert snapshot == _golden(3)
            health = pool.health()
            assert health.generation == 1
            assert health.restarts >= 1
            assert health.alive == 3
            assert "WorkerCrashError" in health.last_fault
            assert heal_plus_run < 30.0

    def test_repeated_crashes_consume_budget_then_exhaust(self):
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=0, step=0)])
        with _pool_under(plan, max_restarts=0, backoff_base=0.01) as pool:
            with pytest.raises(PoolExhaustedError) as err:
                pool.run(ring_program, 3)
            assert "restart budget" in str(err.value)
            # Terminal: the pool stays broken.
            with pytest.raises(PoolExhaustedError):
                pool.run(ring_program, 3)
            assert pool.health().alive == 0

    def test_degrade_to_threads_on_exhaustion(self):
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=0, step=0)])
        with faults.injected(plan):
            backend = ProcessBackend.pool(
                2, join_timeout=30.0, max_restarts=0, degrade_to_threads=True)
        with backend:
            run = bsp_run(ring_program, 2, backend=backend)
        assert [sorted(r) for r in run.results] == [[1], [0]]

    def test_bsp_run_retries_recovers_crash(self):
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=1, step=0)])
        with faults.injected(plan):
            backend = ProcessBackend.pool(3, join_timeout=30.0)
        with backend:
            run = bsp_run(ring_program, 3, backend=backend, retries=1)
            assert _snapshot(run) == _golden(3)

    def test_retries_do_not_mask_program_errors(self):
        plan = faults.FaultPlan([faults.Fault(faults.RAISE, pid=0, step=0)])
        with faults.injected(plan):
            with pytest.raises(VirtualProcessorError):
                bsp_run(ring_program, 2, backend="processes", retries=3)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_any_crash_plan_heals_to_golden(self, seed):
        """Every seeded crash schedule ends in a healed pool whose next
        clean run reproduces the simulator's accounting bit-for-bit."""
        plan = faults.FaultPlan.random(
            seed, nprocs=3, nsteps=2, kinds=(faults.KILL, faults.EXIT))
        assert plan.faults  # the seeded schedule always fires
        with _pool_under(plan, max_restarts=4, backoff_base=0.01) as pool:
            with pytest.raises(WorkerCrashError) as err:
                pool.run(ring_program, 3)
            assert err.value.pid == plan.faults[0].pid
            assert _snapshot(pool.run(ring_program, 3)) == _golden(3)
            assert pool.health().alive == 3


class TestNoZombies:
    def test_close_with_inflight_stubborn_run_leaves_no_zombies(self):
        pool = BspPool(2, join_timeout=60.0)
        # Dispatch directly so close() races a genuinely in-flight run
        # whose workers ignore SIGTERM.
        import pickle as _pickle
        blob = _pickle.dumps((stubborn_program, (), {}))
        pool._run_id += 1
        for pid in range(2):
            pool._ctrl[pid].put(("run", pool._run_id, 2, blob))
        time.sleep(0.3)  # let the workers enter the stubborn sleep
        t0 = time.monotonic()
        pool.close()
        elapsed = time.monotonic() - t0
        assert not any(p.is_alive() for p in pool._procs)
        assert not [c for c in mp.active_children()
                    if c.name.startswith("bsp-")]
        assert elapsed < 30.0  # escalation, not the 60s join_timeout

    def test_failed_oneshot_leaves_no_children(self):
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=0, step=0)])
        with faults.injected(plan):
            with pytest.raises(WorkerCrashError):
                bsp_run(ring_program, 3, backend="processes")
        assert not [c for c in mp.active_children()
                    if c.name.startswith("bsp-")]
