"""Property tests for the total-exchange pairing schedule (Appendix B.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.backends.exchange import (
    IDLE,
    exchange_schedule,
    peer_order,
    validate_schedule,
)
from repro.core.errors import BspConfigError


class TestSchedule:
    def test_single_processor_empty(self):
        assert exchange_schedule(1) == ()

    def test_two_processors(self):
        assert exchange_schedule(2) == ((1, 0),)

    def test_even_p_has_p_minus_1_stages_no_idle(self):
        for p in (2, 4, 8, 16):
            stages = exchange_schedule(p)
            assert len(stages) == p - 1
            assert all(IDLE not in stage for stage in stages)

    def test_odd_p_has_p_stages_one_idle_each(self):
        for p in (3, 5, 7, 9):
            stages = exchange_schedule(p)
            assert len(stages) == p
            for stage in stages:
                assert sum(1 for x in stage if x == IDLE) == 1
            # Each processor idles exactly once.
            idles = [i for stage in stages for i, x in enumerate(stage) if x == IDLE]
            assert sorted(idles) == list(range(p))

    @given(st.integers(min_value=1, max_value=40))
    def test_property_matching_decomposition(self, p):
        """Every stage is a matching; stages cover each pair exactly once."""
        validate_schedule(p)

    def test_invalid_nprocs(self):
        with pytest.raises(BspConfigError):
            exchange_schedule(0)


class TestPeerOrder:
    @given(st.integers(min_value=2, max_value=20))
    def test_property_each_pid_sees_all_peers_once(self, p):
        for pid in range(p):
            order = peer_order(p, pid)
            assert sorted(order) == [q for q in range(p) if q != pid]

    def test_symmetry_within_stage(self):
        # If i talks to j at its k-th busy stage, j talks to i at the same
        # global stage (deadlock-freedom of the pairing).
        p = 6
        stages = exchange_schedule(p)
        for stage in stages:
            for i, j in enumerate(stage):
                assert stage[j] == i

    def test_bad_pid(self):
        with pytest.raises(BspConfigError):
            peer_order(4, 4)
