"""The pool's single-run discipline and its JSON-safe health snapshot.

A warm pool executes one job at a time — the service fleet leans on the
pool itself to enforce that (a concurrent ``run()`` is a typed usage
error, not silent corruption).  And ``PoolHealth`` must round-trip
through plain JSON, because the service ships it over the wire.
"""

import json
import threading
import time

import pytest

from repro.backends.processes import BspPool, PoolHealth
from repro.core.errors import BspUsageError


def slow_program(bsp, seconds):
    if bsp.pid == 0:
        time.sleep(seconds)
    bsp.sync()
    return bsp.pid


class TestConcurrentRunGuard:
    def test_concurrent_run_is_typed_error(self):
        with BspPool(2) as pool:
            started = threading.Event()
            outcome = {}

            def first_run():
                started.set()
                outcome["run"] = pool.run(slow_program, 2, args=(0.6,))

            thread = threading.Thread(target=first_run)
            thread.start()
            started.wait()
            time.sleep(0.2)  # let the first run reach the pool
            with pytest.raises(BspUsageError, match="one job at a time"):
                pool.run(slow_program, 2, args=(0.0,))
            thread.join()
            assert outcome["run"].results == [0, 1]
            # The pool is reusable once the first run finished.
            again = pool.run(slow_program, 2, args=(0.0,))
            assert again.results == [0, 1]


class TestConcurrentMeshGuard:
    def test_concurrent_mesh_run_is_typed_error(self):
        from repro.backends.tcp import TcpBackend

        with TcpBackend.pool(2) as backend:
            mesh = backend._mesh
            started = threading.Event()
            outcome = {}

            def first_run():
                started.set()
                outcome["run"] = mesh.run(slow_program, 2, args=(0.6,))

            thread = threading.Thread(target=first_run)
            thread.start()
            started.wait()
            time.sleep(0.2)
            with pytest.raises(BspUsageError, match="one job at a time"):
                mesh.run(slow_program, 2, args=(0.0,))
            thread.join()
            assert outcome["run"].results == [0, 1]


class TestPoolHealthSerialization:
    def test_round_trips_through_json(self):
        health = PoolHealth(generation=2, restarts=3, restarts_left=2,
                            last_fault="WorkerCrashError('rank 1')",
                            alive=4, capacity=4,
                            heal_kinds=("re-fork", "rebuild"),
                            retransmits=5, reconnects=1)
        wire = json.dumps(health.to_dict())
        back = PoolHealth.from_dict(json.loads(wire))
        assert back == health
        assert back.heal_kinds == ("re-fork", "rebuild")

    def test_live_pool_snapshot_is_json_safe(self):
        with BspPool(2) as pool:
            pool.run(slow_program, 2, args=(0.0,))
            snapshot = pool.health().to_dict()
            parsed = json.loads(json.dumps(snapshot))
            assert parsed["alive"] == 2
            assert parsed["capacity"] == 2
            assert parsed["generation"] == 0
            assert parsed["heal_kinds"] == []
