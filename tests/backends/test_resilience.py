"""Survivable-mesh resilience suite: fuzzing, chaos, heal-in-place.

Three layers of the robustness contract (DESIGN "Failure-mode matrix"):

* **Frame integrity under hostile bytes** — property-based fuzzing of
  :class:`~repro.backends.tcp_wire.FrameDecoder`: any single-byte
  corruption of a CRC-protected frame is either rejected
  (:class:`PacketError`), surfaced as a ``TAG_CORRUPT`` marker (which
  the channel answers with a NACK), or leaves the decoder waiting for
  more bytes.  Never a silently wrong frame, never a hang.
* **Chaos runs** — seeded link resets, frame corruption, duplication,
  partitions, and a mid-run SIGKILL on checkpointed real applications
  (ocean, shortest paths) over the TCP mesh, strict and relaxed: the
  run completes with bit-identical results and (S, H, h-series,
  m-series) ledgers versus the undisturbed golden run, the mesh heals
  in place (generation advances, no full rebuild), and the repair shows
  up in the ``health()`` counters.
* **Plumbing satellites** — rendezvous timeouts name the missing ranks,
  ``heartbeat_interval`` flows from :class:`MachineProfile` to the pool,
  ``integrity=False`` switches the whole protection layer off.
"""

import socket
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CheckpointConfig, DiskCheckpointStore, PacketError
from repro import faults
from repro.backends import tcp_wire as wire
from repro.backends.frames import TAG_PKT
from repro.backends.tcp import TcpBackend
from repro.backends.tcp_launch import bind_listener, fold_token, rendezvous_fabric
from repro.core.errors import SynchronizationError, WorkerCrashError
from repro.core.machines import MachineProfile
from repro.core.packets import Packet

# ---------------------------------------------------------------------------
# Module-level programs (pooled runs ship programs by pickle)
# ---------------------------------------------------------------------------


def ring_program(bsp, rounds=2):
    acc = []
    for step in range(rounds):
        bsp.send((bsp.pid + 1) % bsp.nprocs, (bsp.pid, step))
        bsp.sync()
        acc.extend(pkt.payload for pkt in bsp.packets())
    return acc


def _flatten(chunks):
    out = bytearray()
    for chunk in chunks:
        out += bytes(memoryview(chunk))
    return bytes(out)


def _sample_frame(seed: int) -> bytes:
    payload = bytes((seed * 37 + i) % 251 for i in range(48))
    pkts = [Packet(src=0, dst=1, seq=0, payload=payload, h=2),
            Packet(src=0, dst=1, seq=1, payload={"round": seed}, h=1)]
    return _flatten(wire.encode_packet_frame(seed % 7, seed % 5, 0, pkts,
                                             seq=seed % 11))


_FUZZ = settings(max_examples=60, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


class TestDecoderFuzz:
    """No byte stream may make the decoder hang or emit a wrong frame."""

    @_FUZZ
    @given(seed=st.integers(0, 30), pos=st.integers(0, 200),
           mask=st.integers(1, 255))
    def test_single_byte_flip_never_silently_wrong(self, seed, pos, mask):
        blob = bytearray(_sample_frame(seed))
        blob[pos % len(blob)] ^= mask
        dec = wire.FrameDecoder()
        try:
            frames = dec.feed(bytes(blob))
        except PacketError:
            return  # structural rejection: link-reset territory
        # Whatever survived structurally must have failed its CRC (the
        # corruption marker the channel turns into a NACK) — the decoder
        # may also still be waiting if the flip grew a length field that
        # the envelope checksum happens not to cover for multi-frame
        # streams; what it must never do is hand back a clean frame.
        assert all(f.tag == wire.TAG_CORRUPT for f in frames)

    @_FUZZ
    @given(seed=st.integers(0, 30), data=st.data())
    def test_truncation_waits_then_completes(self, seed, data):
        blob = _sample_frame(seed)
        cut = data.draw(st.integers(1, len(blob) - 1))
        dec = wire.FrameDecoder()
        assert dec.feed(blob[:cut]) == []
        assert dec.mid_frame
        (frame,) = dec.feed(blob[cut:])
        assert frame.tag == TAG_PKT
        assert not dec.mid_frame

    @_FUZZ
    @given(seeds=st.lists(st.integers(0, 30), min_size=1, max_size=4),
           data=st.data())
    def test_random_splits_preserve_frame_sequence(self, seeds, data):
        blob = b"".join(_sample_frame(s) for s in seeds)
        ncuts = data.draw(st.integers(0, 6))
        cuts = sorted(data.draw(st.integers(0, len(blob)))
                      for _ in range(ncuts))
        dec = wire.FrameDecoder()
        frames = []
        prev = 0
        for cut in cuts + [len(blob)]:
            frames.extend(dec.feed(blob[prev:cut]))
            prev = cut
        assert [f.seq for f in frames] == [s % 11 for s in seeds]
        assert [f.step for f in frames] == [s % 5 for s in seeds]

    @_FUZZ
    @given(junk=st.binary(min_size=1, max_size=256))
    def test_garbage_rejected_or_flagged(self, junk):
        dec = wire.FrameDecoder()
        try:
            frames = dec.feed(junk)
        except PacketError:
            return
        assert all(f.tag == wire.TAG_CORRUPT for f in frames)

    @_FUZZ
    @given(seed=st.integers(0, 30))
    def test_duplicate_frames_decode_twice(self, seed):
        # Dup suppression is the channel's job (seq < rx_next is
        # dropped); the decoder must surface both copies faithfully.
        blob = _sample_frame(seed)
        frames = wire.FrameDecoder().feed(blob + blob)
        assert len(frames) == 2
        assert frames[0].seq == frames[1].seq == seed % 11


# ---------------------------------------------------------------------------
# Chaos: seeded network faults + a crash on checkpointed applications
# ---------------------------------------------------------------------------


def _ledger_key(stats):
    return (stats.S, stats.H, stats.h_series, stats.m_series)


def _chaos_plan(kill_step: int) -> faults.FaultPlan:
    """Every network fault kind, spread across ranks, plus one SIGKILL."""
    return faults.FaultPlan([
        faults.Fault(faults.RESET_CONN, pid=0, step=1, arg=1),
        faults.Fault(faults.CORRUPT_FRAME, pid=1, step=2, arg=0),
        faults.Fault(faults.DUP_FRAME, pid=1, step=3, arg=0),
        faults.Fault(faults.PARTITION, pid=0, step=4),
        faults.Fault(faults.SLOW_LINK, pid=1, step=5, arg=(0, 0.05)),
        faults.Fault(faults.KILL, pid=1, step=kill_step),
    ])


def _chaos_pool(nprocs, plan):
    with faults.injected(plan):
        return TcpBackend.pool(nprocs)


def _cfg(tmp_path, run_key):
    return CheckpointConfig(store=DiskCheckpointStore(tmp_path / "ckpt"),
                            run_key=run_key)


class TestChaos:
    @pytest.mark.parametrize("sync", ["strict", "relaxed"])
    def test_ocean_identity_under_chaos(self, tmp_path, sync):
        from repro.apps.ocean import bsp_ocean
        golden = bsp_ocean(18, 6, 2)
        kill_step = max(6, int(golden.stats.S * 0.6))
        with _chaos_pool(2, _chaos_plan(kill_step)) as backend:
            run = bsp_ocean(18, 6, 2, backend=backend, retries=1,
                            checkpoint=_cfg(tmp_path, f"chaos-ocean-{sync}"),
                            sync=sync)
            health = backend.health()
        assert np.array_equal(golden.state.psi, run.state.psi)
        assert np.array_equal(golden.state.zeta, run.state.zeta)
        assert _ledger_key(run.stats) == _ledger_key(golden.stats)
        # The crash healed in place: the epoch advanced, the mesh was
        # never rebuilt, and the link-level repairs are all accounted.
        assert health.generation >= 1
        assert "re-fork" in health.heal_kinds
        assert "rebuild" not in health.heal_kinds
        assert health.reconnects >= 1
        assert health.alive == health.capacity == 2

    @pytest.mark.parametrize("sync", ["strict", "relaxed"])
    def test_sssp_identity_under_chaos(self, tmp_path, sync):
        from repro.apps.nbody.orb import orb_partition
        from repro.apps.sssp import bsp_sssp
        from repro.graphs import geometric_graph
        gg = geometric_graph(60, seed=0)
        owner = orb_partition(gg.points, None, 2)
        golden = bsp_sssp(gg.graph, owner, 2, source=0, work_factor=8)
        # The last superstep is a boundary-free tail, so keep the kill
        # strictly inside the synchronized prefix.
        kill_step = max(3, min(int(golden.stats.S * 0.6),
                               golden.stats.S - 3))
        with _chaos_pool(2, _chaos_plan(kill_step)) as backend:
            run = bsp_sssp(gg.graph, owner, 2, source=0, work_factor=8,
                           backend=backend, retries=1,
                           checkpoint=_cfg(tmp_path, f"chaos-sp-{sync}"),
                           sync=sync)
            health = backend.health()
        assert np.array_equal(golden.dist, run.dist)
        assert _ledger_key(run.stats) == _ledger_key(golden.stats)
        assert health.generation >= 1
        assert "re-fork" in health.heal_kinds
        assert "rebuild" not in health.heal_kinds

    def test_network_faults_alone_never_dirty_the_mesh(self):
        # Without a crash the repairs are invisible to the epoch: the
        # run completes on generation 0 with zero restarts.
        plan = faults.FaultPlan([
            faults.Fault(faults.RESET_CONN, pid=0, step=0, arg=1),
            faults.Fault(faults.CORRUPT_FRAME, pid=1, step=1, arg=0),
        ])
        with _chaos_pool(2, plan) as backend:
            run = backend.run(ring_program, 2, args=(3,))
            health = backend.health()
        assert run.results == [[(1, 0), (1, 1), (1, 2)],
                               [(0, 0), (0, 1), (0, 2)]]
        assert health.generation == 0
        assert health.restarts == 0
        assert health.heal_kinds == ()
        assert health.reconnects >= 1
        assert health.retransmits >= 1


class TestHealInPlace:
    def test_kill_heals_without_rebuild(self):
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=1, step=1)])
        with _chaos_pool(3, plan) as backend:
            with pytest.raises(WorkerCrashError):
                backend.run(ring_program, 3, args=(3,))
            run = backend.run(ring_program, 3, args=(3,))
            health = backend.health()
        assert [sorted(r) for r in run.results]
        assert health.heal_kinds == ("re-fork",)
        assert health.generation == 1
        assert health.restarts == 1
        assert health.alive == 3

    def test_heal_in_place_disabled_rebuilds(self):
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=1, step=1)])
        with faults.injected(plan):
            backend = TcpBackend.pool(2, heal_in_place=False)
        with backend:
            with pytest.raises(WorkerCrashError):
                backend.run(ring_program, 2)
            backend.run(ring_program, 2)
            health = backend.health()
        assert health.heal_kinds == ("rebuild",)
        assert health.restarts == 2  # whole capacity re-forked

    def test_max_heals_budget_falls_back_to_rebuild(self):
        # Rank 1 dies in run 1 (rank 0 is still blocked at the step-1
        # barrier, so its own later fault stays armed); the healed run 2
        # then loses rank 0, but the single-heal budget is spent and the
        # mesh falls back to a full rebuild for run 3.
        plan = faults.FaultPlan([
            faults.Fault(faults.KILL, pid=1, step=1),
            faults.Fault(faults.KILL, pid=0, step=3),
        ])
        with faults.injected(plan):
            backend = TcpBackend.pool(2, max_heals=1)
        with backend:
            with pytest.raises(WorkerCrashError):
                backend.run(ring_program, 2, args=(5,))
            with pytest.raises(WorkerCrashError):
                backend.run(ring_program, 2, args=(5,))
            backend.run(ring_program, 2, args=(5,))
            health = backend.health()
        assert "re-fork" in health.heal_kinds
        assert "rebuild" in health.heal_kinds


# ---------------------------------------------------------------------------
# Satellites: rendezvous diagnostics, heartbeat plumbing, off-switch
# ---------------------------------------------------------------------------


class TestSatellites:
    def test_rendezvous_timeout_names_missing_ranks(self):
        listener = bind_listener("127.0.0.1")
        addr = listener.getsockname()
        with pytest.raises(SynchronizationError, match=r"missing rank\(s\) \[1, 2\]"):
            rendezvous_fabric(0, 3, addr, coordinator_listener=listener,
                              timeout=0.4)

    def test_fold_token_distinct_per_generation(self):
        gens = {fold_token(12345, g) for g in range(16)}
        assert len(gens) == 16
        assert all(0 <= t <= 0x7FFFFFFF for t in gens)

    def test_machine_profile_carries_heartbeat_interval(self):
        profile = MachineProfile(name="lan", g_us={2: 10.0}, L_us={2: 400.0},
                                 heartbeat_interval=0.5)
        assert profile.heartbeat_interval == 0.5
        # Default mirrors the backend default.
        assert MachineProfile(name="x", g_us={1: 1.0},
                              L_us={1: 1.0}).heartbeat_interval == 0.25

    def test_pool_accepts_heartbeat_interval(self):
        with TcpBackend.pool(2, heartbeat_interval=0.1) as backend:
            run = backend.run(ring_program, 2)
        assert run.results == [[(1, 0), (1, 1)], [(0, 0), (0, 1)]]

    def test_integrity_off_switch(self):
        # integrity=False strips CRC/journaling/reconnect — the raw
        # fast path benchmarked as the overhead baseline.
        with TcpBackend.pool(2, integrity=False) as backend:
            run = backend.run(ring_program, 2)
            health = backend.health()
        assert run.results == [[(1, 0), (1, 1)], [(0, 0), (0, 1)]]
        assert health.retransmits == 0
        assert health.reconnects == 0

    def test_health_exposes_repair_counters(self):
        plan = faults.FaultPlan([
            faults.Fault(faults.CORRUPT_FRAME, pid=0, step=1, arg=1)])
        with _chaos_pool(2, plan) as backend:
            backend.run(ring_program, 2, args=(3,))
            health = backend.health()
        assert health.retransmits >= 1
        assert health.heal_kinds == ()
