"""Crash-then-resume identity on the supervised multi-process backends.

The recovery contract (DESIGN "Recovery semantics"): kill a worker at an
arbitrary superstep of a checkpointed run and the healed, resumed run
must produce **bit-identical results and a bit-identical
(S, H, h-series, m-series) ledger** versus the uninterrupted golden run —
resuming from the last barrier must be observationally equivalent to
never having crashed.  Exercised here:

* a crash-at-superstep-k sweep over a checkpointed ring (every k, on the
  process pool; a subset on the TCP mesh);
* the same golden identity for the real applications — ocean, shortest
  paths, N-body — on both pooled backends, killed mid-run;
* damaged checkpoints (truncated / corrupted newest shard) demote to the
  previous complete checkpoint — and to a from-zero restart when nothing
  validates — never a resume from garbage;
* a ``DeadlockError`` under checkpointing is retried after the fabric
  rebuild and resumes past the stalled superstep;
* SIGINT mid-run tears the pool down (no zombies, no temp files) and the
  published checkpoints stay resumable;
* every recovery-path crash message carries the per-worker liveness
  table, on TCP exactly as on pipes.
"""

import multiprocessing as mp
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import CheckpointConfig, DiskCheckpointStore, bsp_run
from repro import faults
from repro.backends.processes import ProcessBackend
from repro.backends.tcp import TcpBackend
from repro.core.errors import DeadlockError, WorkerCrashError

# Module-level programs: pooled runs ship them by pickle.


def counting_ring(bsp, rounds=6, pause=0.0):
    """Checkpointed ring: state is (next round, running total)."""
    total = 0
    start = 0
    restored = bsp.resume_state()
    if restored is not None:
        start, total = restored
    for r in range(start, rounds):
        bsp.checkpoint(lambda: (r, total))
        if pause:
            time.sleep(pause)
        bsp.send((bsp.pid + 1) % bsp.nprocs, (bsp.pid + 1) * (r + 1))
        bsp.sync()
        total += sum(pkt.payload for pkt in bsp.packets())
    return total


def _ledger_key(stats):
    return (stats.S, stats.H, stats.h_series, stats.m_series)


def _golden_ring(nprocs, rounds=6):
    run = bsp_run(counting_ring, nprocs, args=(rounds,))
    return run.results, _ledger_key(run.stats)


def _pooled(backend_kind, nprocs, plan, **kw):
    """A pooled backend whose *initial* workers inherited ``plan``.

    Replacement workers forked during a heal come up clean, so each
    scheduled fault fires exactly once — which is what makes the retry
    deterministic and the test repeatable.
    """
    cls = {"processes": ProcessBackend, "tcp": TcpBackend}[backend_kind]
    with faults.injected(plan):
        return cls.pool(nprocs, **kw)


def _cfg(tmp_path, run_key, **kw):
    return CheckpointConfig(store=DiskCheckpointStore(tmp_path / "ckpt"),
                            run_key=run_key, **kw)


class TestCrashAtEverySuperstep:
    @pytest.mark.parametrize("kill_step", list(range(6)))
    def test_ring_identity_processes(self, tmp_path, kill_step):
        golden_results, golden_ledger = _golden_ring(2)
        plan = faults.FaultPlan(
            [faults.Fault(faults.KILL, pid=1, step=kill_step)])
        with _pooled("processes", 2, plan) as backend:
            run = bsp_run(counting_ring, 2, backend=backend, retries=1,
                          checkpoint=_cfg(tmp_path, f"ring-{kill_step}"))
            health = backend.health()
        assert run.results == golden_results
        assert _ledger_key(run.stats) == golden_ledger
        # Satellite: the heal is visible through the supervision surface.
        assert health.generation >= 1
        assert health.restarts >= 1
        assert "WorkerCrashError" in health.last_fault

    @pytest.mark.parametrize("kill_step", [0, 3, 5])
    def test_ring_identity_tcp(self, tmp_path, kill_step):
        golden_results, golden_ledger = _golden_ring(2)
        plan = faults.FaultPlan(
            [faults.Fault(faults.KILL, pid=1, step=kill_step)])
        with _pooled("tcp", 2, plan) as backend:
            run = bsp_run(counting_ring, 2, backend=backend, retries=1,
                          checkpoint=_cfg(tmp_path, f"tring-{kill_step}"))
            health = backend.health()
        assert run.results == golden_results
        assert _ledger_key(run.stats) == golden_ledger
        assert health.generation >= 1
        assert health.restarts_left == -1  # a mesh has no budget to spend
        assert "WorkerCrashError" in health.last_fault

    def test_exhausted_retries_reraise_with_worker_table(self, tmp_path):
        """With no retry budget the crash propagates — and its message
        carries the per-worker liveness table for the post-mortem."""
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=1, step=2)])
        with _pooled("processes", 2, plan) as backend:
            with pytest.raises(WorkerCrashError) as err:
                bsp_run(counting_ring, 2, backend=backend,
                        checkpoint=_cfg(tmp_path, "noretry"))
        assert "worker 0" in str(err.value)
        assert "worker 1" in str(err.value)
        assert "os pid" in str(err.value)


class TestApplicationIdentity:
    """Kill a rank mid-run in each real application, on both backends."""

    @pytest.mark.parametrize("backend_kind", ["processes", "tcp"])
    def test_ocean(self, tmp_path, backend_kind):
        from repro.apps.ocean import bsp_ocean
        golden = bsp_ocean(18, 6, 2)
        kill_step = int(golden.stats.S * 0.6)
        plan = faults.FaultPlan(
            [faults.Fault(faults.KILL, pid=1, step=kill_step)])
        with _pooled(backend_kind, 2, plan) as backend:
            run = bsp_ocean(18, 6, 2, backend=backend, retries=1,
                            checkpoint=_cfg(tmp_path, "ocean"))
        assert np.array_equal(golden.state.psi, run.state.psi)
        assert np.array_equal(golden.state.zeta, run.state.zeta)
        assert _ledger_key(run.stats) == _ledger_key(golden.stats)

    @pytest.mark.parametrize("backend_kind", ["processes", "tcp"])
    def test_sssp(self, tmp_path, backend_kind):
        from repro.apps.nbody.orb import orb_partition
        from repro.apps.sssp import bsp_sssp
        from repro.graphs import geometric_graph
        gg = geometric_graph(60, seed=0)
        owner = orb_partition(gg.points, None, 2)
        golden = bsp_sssp(gg.graph, owner, 2, source=0, work_factor=8)
        kill_step = max(1, int(golden.stats.S * 0.6))
        plan = faults.FaultPlan(
            [faults.Fault(faults.KILL, pid=0, step=kill_step)])
        with _pooled(backend_kind, 2, plan) as backend:
            run = bsp_sssp(gg.graph, owner, 2, source=0, work_factor=8,
                           backend=backend, retries=1,
                           checkpoint=_cfg(tmp_path, "sssp"))
        assert np.array_equal(golden.dist, run.dist)
        assert _ledger_key(run.stats) == _ledger_key(golden.stats)

    @pytest.mark.parametrize("backend_kind", ["processes", "tcp"])
    def test_nbody(self, tmp_path, backend_kind):
        from repro.apps.nbody import bsp_nbody, plummer
        bodies = plummer(48, seed=1)
        golden = bsp_nbody(bodies, 2, steps=3)
        kill_step = max(1, int(golden.stats.S * 0.6))
        plan = faults.FaultPlan(
            [faults.Fault(faults.EXIT, pid=1, step=kill_step, arg=3)])
        with _pooled(backend_kind, 2, plan) as backend:
            run = bsp_nbody(bodies, 2, steps=3, backend=backend, retries=1,
                            checkpoint=_cfg(tmp_path, "nbody"))
        assert np.array_equal(golden.bodies.pos, run.bodies.pos)
        assert np.array_equal(golden.bodies.vel, run.bodies.vel)
        assert np.array_equal(golden.bodies.ident, run.bodies.ident)
        assert _ledger_key(run.stats) == _ledger_key(golden.stats)


class TestDamagedCheckpointFallback:
    @pytest.mark.parametrize("kind", sorted(faults.CHECKPOINT_KINDS))
    def test_damaged_newest_falls_back_to_previous(self, tmp_path, kind):
        """The shard written at the kill step is damaged on disk, so the
        retry must resume from the *previous* barrier — and still match."""
        golden_results, golden_ledger = _golden_ring(2)
        plan = faults.FaultPlan([
            faults.Fault(kind, pid=1, step=3),
            faults.Fault(faults.KILL, pid=1, step=3),
        ])
        cfg = _cfg(tmp_path, "fallback")
        with _pooled("processes", 2, plan) as backend:
            run = bsp_run(counting_ring, 2, backend=backend, retries=1,
                          checkpoint=cfg)
        assert run.results == golden_results
        assert _ledger_key(run.stats) == golden_ledger

    @pytest.mark.parametrize("kind", sorted(faults.CHECKPOINT_KINDS))
    def test_every_shard_damaged_restarts_from_zero(self, tmp_path, kind):
        """When no checkpoint validates the ladder bottoms out at a full
        restart — never a resume from garbage — and identity still holds."""
        golden_results, golden_ledger = _golden_ring(2)
        tampers = [faults.Fault(kind, pid=pid, step=step)
                   for pid in (0, 1) for step in range(6)]
        plan = faults.FaultPlan(
            tampers + [faults.Fault(faults.KILL, pid=1, step=4)])
        cfg = _cfg(tmp_path, "scorched")
        with _pooled("processes", 2, plan) as backend:
            run = bsp_run(counting_ring, 2, backend=backend, retries=1,
                          checkpoint=cfg)
            # The crashed attempt's shards were all damaged: nothing to
            # resume from, so the retry genuinely restarted at step 0.
            # (The clean replacement worker then re-published valid
            # shards, which is why the store is healthy afterwards.)
        assert run.results == golden_results
        assert _ledger_key(run.stats) == golden_ledger


class TestDeadlockResume:
    def test_deadlock_retried_under_checkpointing(self, tmp_path):
        golden_results, golden_ledger = _golden_ring(2)
        plan = faults.FaultPlan(
            [faults.Fault(faults.DROP_FRAME, pid=0, step=2, arg=1)])
        with _pooled("processes", 2, plan, join_timeout=2.5) as backend:
            run = bsp_run(counting_ring, 2, backend=backend, retries=1,
                          checkpoint=_cfg(tmp_path, "deadlock"))
        assert run.results == golden_results
        assert _ledger_key(run.stats) == golden_ledger

    def test_deadlock_not_retried_without_checkpointing(self):
        """Replaying a deadlocked program from zero would deadlock
        identically, so without a checkpoint the error propagates."""
        plan = faults.FaultPlan(
            [faults.Fault(faults.DROP_FRAME, pid=0, step=2, arg=1)])
        with faults.injected(plan):
            backend = ProcessBackend(join_timeout=2.5)
            with pytest.raises(DeadlockError):
                bsp_run(counting_ring, 2, backend=backend, retries=3)


class TestKeyboardInterrupt:
    def test_sigint_tears_down_and_stays_resumable(self, tmp_path):
        golden_results, golden_ledger = _golden_ring(2, rounds=40)
        cfg = _cfg(tmp_path, "sigint")
        backend = ProcessBackend.pool(2)
        timer = threading.Timer(
            1.0, lambda: os.kill(os.getpid(), signal.SIGINT))
        timer.start()
        try:
            with pytest.raises(KeyboardInterrupt):
                bsp_run(counting_ring, 2, args=(40, 0.05), backend=backend,
                        checkpoint=cfg)
        finally:
            timer.cancel()
            backend.close()
        # Teardown is complete: no zombie workers, no half-written shards.
        assert not [c for c in mp.active_children()
                    if c.name.startswith("bsp-")]
        store = cfg.store
        tmp_files = [name
                     for dirpath, _dirs, names in os.walk(store.root)
                     for name in names if name.startswith(".tmp-")]
        assert tmp_files == []
        # The published checkpoints survived and the run resumes from
        # them to the golden answer on a fresh pool.
        resumed_from = store.latest_step("sigint", 2)
        assert resumed_from is not None and resumed_from >= 1
        with ProcessBackend.pool(2) as fresh:
            run = bsp_run(
                counting_ring, 2, args=(40, 0.0), backend=fresh,
                checkpoint=CheckpointConfig(store=store, run_key="sigint",
                                            resume=True))
        assert run.results == golden_results
        assert _ledger_key(run.stats) == golden_ledger


class TestTcpCrashParity:
    def test_tcp_crash_message_has_worker_table(self):
        plan = faults.FaultPlan([faults.Fault(faults.KILL, pid=1, step=1)])
        with _pooled("tcp", 2, plan) as backend:
            with pytest.raises(WorkerCrashError) as err:
                bsp_run(counting_ring, 2, backend=backend)
        assert err.value.pid == 1
        assert "worker 0" in str(err.value)
        assert "worker 1" in str(err.value)
        assert "os pid" in str(err.value)
