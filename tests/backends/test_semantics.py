"""BSP delivery semantics, identical across all backends.

Every test here is parameterized over the four backends: the paper's
portability claim starts with the library behaving the same everywhere —
including over real sockets ("tcp" runs the full mesh on loopback).
"""

import numpy as np
import pytest

from repro import BspError, BspUsageError, VirtualProcessorError, bsp_run
from repro.core.errors import SynchronizationError

BACKENDS = ["simulator", "threads", "processes", "tcp"]

pytestmark = pytest.mark.parametrize("backend", BACKENDS)


def ring_program(bsp):
    right = (bsp.pid + 1) % bsp.nprocs
    bsp.send(right, ("hello", bsp.pid))
    bsp.sync()
    return [pkt.payload for pkt in bsp.packets()]


class TestDelivery:
    def test_ring_exchange(self, backend):
        run = bsp_run(ring_program, 4, backend=backend)
        for pid, got in enumerate(run.results):
            assert got == [("hello", (pid - 1) % 4)]

    def test_single_processor(self, backend):
        run = bsp_run(ring_program, 1, backend=backend)
        assert run.results == [[("hello", 0)]]

    def test_self_send(self, backend):
        def program(bsp):
            bsp.send(bsp.pid, bsp.pid * 10)
            bsp.sync()
            return [p.payload for p in bsp.packets()]

        run = bsp_run(program, 3, backend=backend)
        assert run.results == [[0], [10], [20]]

    def test_no_delivery_before_sync(self, backend):
        def program(bsp):
            bsp.send(bsp.pid, "x")
            before = bsp.npackets
            bsp.sync()
            after = bsp.npackets
            return before, after

        run = bsp_run(program, 2, backend=backend)
        assert all(r == (0, 1) for r in run.results)

    def test_unread_packets_dropped_at_next_sync(self, backend):
        def program(bsp):
            bsp.send(bsp.pid, "old")
            bsp.sync()
            # Do not read; sync again -> "old" must be gone.
            bsp.send(bsp.pid, "new")
            bsp.sync()
            return [p.payload for p in bsp.packets()]

        run = bsp_run(program, 2, backend=backend)
        assert all(r == ["new"] for r in run.results)

    def test_all_to_all(self, backend):
        def program(bsp):
            for q in range(bsp.nprocs):
                bsp.send(q, (bsp.pid, q))
            bsp.sync()
            return sorted(p.payload for p in bsp.packets())

        p = 4
        run = bsp_run(program, p, backend=backend)
        for pid, got in enumerate(run.results):
            assert got == [(src, pid) for src in range(p)]

    def test_multiple_supersteps_accumulate(self, backend):
        def program(bsp):
            total = 0
            left = (bsp.pid - 1) % bsp.nprocs
            for step in range(5):
                bsp.send(left, step)
                bsp.sync()
                total += sum(p.payload for p in bsp.packets())
            return total

        run = bsp_run(program, 3, backend=backend)
        assert run.results == [10, 10, 10]

    def test_deterministic_delivery_order(self, backend):
        def program(bsp):
            if bsp.pid != 0:
                for k in range(3):
                    bsp.send(0, (bsp.pid, k))
            bsp.sync()
            return [p.payload for p in bsp.packets()]

        run = bsp_run(program, 4, backend=backend)
        expected = [(src, k) for src in range(1, 4) for k in range(3)]
        assert run.results[0] == expected

    def test_numpy_payloads(self, backend):
        def program(bsp):
            data = np.arange(8, dtype=np.float64) * bsp.pid
            bsp.send((bsp.pid + 1) % bsp.nprocs, data)
            bsp.sync()
            (pkt,) = list(bsp.packets())
            return float(pkt.payload.sum())

        run = bsp_run(program, 3, backend=backend)
        base = float(np.arange(8).sum())
        assert run.results == [base * 2, 0.0, base * 1]

    def test_results_indexed_by_pid(self, backend):
        run = bsp_run(lambda bsp: bsp.pid * 2, 5, backend=backend)
        assert run.results == [0, 2, 4, 6, 8]
        assert run.result == 0


class TestAccounting:
    def test_superstep_count(self, backend):
        def program(bsp):
            for _ in range(7):
                bsp.sync()

        run = bsp_run(program, 2, backend=backend)
        # 7 syncs => 8 supersteps (final segment counts).
        assert run.stats.S == 8

    def test_h_counts_16_byte_units(self, backend):
        def program(bsp):
            if bsp.pid == 0:
                bsp.send(1, b"x" * 160)  # 10 packets
            bsp.sync()
            list(bsp.packets())

        run = bsp_run(program, 2, backend=backend)
        assert run.stats.H == 10
        assert run.stats.supersteps[0].h_sent_max == 10
        assert run.stats.supersteps[0].h_recv_max == 10

    def test_h_recv_attributed_to_sending_superstep(self, backend):
        def program(bsp):
            if bsp.pid == 0:
                bsp.send(1, b"x" * 32)  # 2 packets in superstep 0
            bsp.sync()
            list(bsp.packets())
            bsp.sync()

        run = bsp_run(program, 2, backend=backend)
        assert run.stats.supersteps[0].h == 2
        assert run.stats.supersteps[1].h == 0

    def test_explicit_h_override(self, backend):
        def program(bsp):
            bsp.send((bsp.pid + 1) % bsp.nprocs, "tiny", h=50)
            bsp.sync()
            list(bsp.packets())

        run = bsp_run(program, 2, backend=backend)
        assert run.stats.supersteps[0].h == 50

    def test_charge(self, backend):
        def program(bsp):
            bsp.charge(100)
            bsp.sync()
            bsp.charge(1)

        run = bsp_run(program, 2, backend=backend)
        assert run.stats.charged_depth == pytest.approx(101)
        assert run.stats.total_charged == pytest.approx(202)

    def test_work_measured_positive(self, backend):
        def program(bsp):
            acc = 0
            for i in range(20000):
                acc += i * i
            bsp.sync()
            return acc

        run = bsp_run(program, 2, backend=backend)
        assert run.stats.W > 0
        assert run.stats.total_work >= run.stats.W


class TestErrors:
    def test_program_exception_propagates(self, backend):
        def program(bsp):
            if bsp.pid == 1:
                raise ValueError("boom on 1")
            bsp.sync()

        with pytest.raises(VirtualProcessorError) as info:
            bsp_run(program, 3, backend=backend)
        assert info.value.pid == 1
        assert "boom on 1" in info.value.traceback_text

    def test_bad_destination(self, backend):
        def program(bsp):
            bsp.send(99, "x")

        with pytest.raises(VirtualProcessorError):
            bsp_run(program, 2, backend=backend)

    def test_unsynced_send_at_exit_rejected(self, backend):
        def program(bsp):
            bsp.send((bsp.pid + 1) % bsp.nprocs, "lost")
            # Missing sync before return.

        with pytest.raises((VirtualProcessorError, BspUsageError)):
            bsp_run(program, 2, backend=backend)

    def test_mismatched_sync_counts_detected(self, backend):
        def program(bsp):
            if bsp.pid == 0:
                bsp.sync()
            # pid 1 never syncs.

        with pytest.raises((BspError, SynchronizationError)):
            bsp_run(program, 2, backend=backend)


class TestOffClock:
    def test_off_clock_excludes_time(self, backend):
        import time

        def program(bsp):
            with bsp.off_clock():
                time.sleep(0.05)
            bsp.sync()

        run = bsp_run(program, 2, backend=backend)
        assert run.stats.W < 0.05
