"""Tests for the batched zero-copy exchange layer and the persistent pool.

Three layers of guarantees:

* the frame combiner is a faithful round-trip (payload kinds, ``h``/``seq``
  metadata, writability of reconstructed arrays);
* :class:`~repro.core.packets.PacketRuns` concatenation produces exactly
  the canonical ``(src, seq)`` order the old global sort did (property
  tested on random permutations);
* a :class:`~repro.backends.processes.BspPool` is reusable across runs —
  fresh ledgers every time, surviving failed runs — and the accounting the
  whole stack produces is bit-identical to the pre-frame implementation
  (golden values recorded from the seed revision).
"""

import hashlib
import multiprocessing as mp
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.frames import (
    FrameTransport,
    Slab,
    _RecvPool,
    decode_packets,
    encode_packets,
)
from repro.backends.processes import BspPool, ProcessBackend
from repro.core.errors import BspConfigError, BspUsageError, VirtualProcessorError
from repro.core.packets import Packet, PacketRuns, delivery_order
from repro.harness.runner import run_app


def _mk(src, dst, payload, h, seq):
    return Packet(src=src, dst=dst, payload=payload, h=h, seq=seq)


class TestCombinerRoundTrip:
    """encode_packets/decode_packets must be the identity on a bucket."""

    def _roundtrip(self, packets):
        meta, buffers = encode_packets(packets)
        # Cross the "process boundary": materialize the out-of-band
        # buffers into writable bytearrays, as the receiving side does.
        received = [bytearray(mv) for mv in buffers]
        return decode_packets(meta, received, packets[0].src if packets else 0,
                              packets[0].dst if packets else 0)

    def test_numpy_payloads(self):
        arrays = [np.arange(64, dtype=np.float64),
                  np.ones((3, 5), dtype=np.int32),
                  np.zeros(0, dtype=np.float32)]
        packets = [_mk(1, 2, a, h=4, seq=i) for i, a in enumerate(arrays)]
        out = self._roundtrip(packets)
        assert len(out) == len(packets)
        for orig, got in zip(packets, out):
            assert got.src == 1 and got.dst == 2
            assert got.h == orig.h and got.seq == orig.seq
            assert got.payload.dtype == orig.payload.dtype
            assert got.payload.shape == orig.payload.shape
            np.testing.assert_array_equal(got.payload, orig.payload)

    def test_reconstructed_arrays_are_writable(self):
        pkt = _mk(0, 1, np.arange(10, dtype=np.float64), h=1, seq=0)
        out = self._roundtrip([pkt])[0]
        out.payload[3] = -1.0  # must not raise: programs mutate received halos
        assert out.payload[3] == -1.0
        assert pkt.payload[3] == 3.0  # and the sender's array is untouched

    def test_bytes_str_and_mixed(self):
        payloads = [b"raw-bytes", "unicode-é", 12345,
                    {"k": [1, 2.5, None]}, (np.arange(4), "tail")]
        packets = [_mk(2, 0, p, h=1 + i, seq=10 + i)
                   for i, p in enumerate(payloads)]
        out = self._roundtrip(packets)
        assert [p.seq for p in out] == [10, 11, 12, 13, 14]
        assert [p.h for p in out] == [1, 2, 3, 4, 5]
        assert out[0].payload == b"raw-bytes"
        assert out[1].payload == "unicode-é"
        assert out[2].payload == 12345
        assert out[3].payload == {"k": [1, 2.5, None]}
        np.testing.assert_array_equal(out[4].payload[0], np.arange(4))
        assert out[4].payload[1] == "tail"

    def test_empty_bucket(self):
        meta, buffers = encode_packets([])
        assert decode_packets(meta, [bytearray(mv) for mv in buffers], 0, 0) == []

    def test_noncontiguous_array_falls_back_to_copy(self):
        strided = np.arange(100, dtype=np.float64)[::3]
        out = self._roundtrip([_mk(0, 1, strided, h=1, seq=0)])[0]
        np.testing.assert_array_equal(out.payload, strided)


class TestRecvPool:
    """Receive buffers recycle only once every consumer dropped them."""

    def test_busy_buffer_not_recycled(self):
        pool = _RecvPool()
        first = pool.take(1024)
        view = memoryview(first)  # a live consumer
        second = pool.take(1024)
        assert second is not first
        view.release()
        del first, second
        third = pool.take(1024)
        fourth = pool.take(1024)
        assert {id(third), id(fourth)} <= {id(b) for b in pool._bufs}

    def test_recycles_after_consumers_drop(self):
        pool = _RecvPool()
        buf = pool.take(2048)
        ident = id(buf)
        del buf
        assert id(pool.take(2048)) == ident

    def test_distinct_sizes_do_not_alias(self):
        pool = _RecvPool()
        a = pool.take(100)
        del a
        b = pool.take(200)
        assert len(b) == 200


class TestSlabRing:
    """The ring must never wedge on frames it cannot physically hold."""

    def test_unsatisfiable_alloc_raises_immediately(self):
        # Reviewer repro: on a 64 KiB slab, alloc(30016), drain fully,
        # then alloc(40064).  The second alloc needs 40064 bytes plus
        # 35520 bytes of wrap padding — more than the whole ring — so no
        # amount of receiver draining can ever satisfy it.  It must fail
        # fast, not spin out the timeout as "receiver not draining".
        slab = Slab(64 << 10, spin_timeout=5.0)
        try:
            slab.alloc(30016)
            slab.free_to(slab._ctrl[1])  # receiver consumed everything
            start = time.monotonic()
            with pytest.raises(ValueError, match="can never fit"):
                slab.alloc(40064)
            assert time.monotonic() - start < 1.0
        finally:
            slab.close()

    def test_half_capacity_frames_always_satisfiable(self):
        # Anything <= max_frame must succeed at every tail position once
        # the ring is drained, wrap padding included.
        slab = Slab(64 << 10, spin_timeout=5.0)
        try:
            for _ in range(17):  # drives the tail through several wraps
                off = slab.alloc(slab.max_frame - 24)
                slab.write(off, bytes(slab.max_frame - 24))
                slab.free_to(slab._ctrl[1])
        finally:
            slab.close()

    def test_partial_prefault_keeps_ring_usable(self):
        slab = Slab(1 << 20, spin_timeout=5.0)
        try:
            slab.prefault(4096)  # commit only the first page of data
            payload = bytes(range(256)) * 1024  # 256 KiB, beyond the prefix
            for _ in range(6):
                off = slab.alloc(len(payload))
                slab.write(off, payload)
                assert slab.read_copy(off, len(payload)) == payload
                slab.free_to(slab._ctrl[1])
        finally:
            slab.close()

    def test_oversized_frame_takes_pipe_path(self):
        # A frame bigger than half the slab routes through the pipe
        # fallback and still round-trips; the slab stays untouched.
        ctx = mp.get_context("fork")
        transport = FrameTransport(2, ctx, slab_bytes=64 << 10,
                                   spin_timeout=5.0)
        try:
            slab = transport._slabs[1]
            payload = np.arange(slab.max_frame // 8 + 64, dtype=np.float64)
            pkt = _mk(0, 1, payload, h=7, seq=3)
            transport.send_packets(1, run_id=1, step=0, src=0, packets=[pkt])
            assert slab._ctrl[1] == 0  # nothing was allocated from the ring
            frame = transport.recv(1)
            (got,) = frame.packets(1)
            assert (got.h, got.seq) == (7, 3)
            np.testing.assert_array_equal(got.payload, payload)
        finally:
            transport.close()


class TestDeliveryOrderProperty:
    """PacketRuns concatenation == the old global (src, seq) sort."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_merged_equals_sorted(self, data):
        nsrc = data.draw(st.integers(0, 6))
        runs = []
        flat = []
        srcs = data.draw(st.permutations(list(range(nsrc))))
        for src in srcs:
            length = data.draw(st.integers(0, 8))
            start = data.draw(st.integers(0, 100))
            run = [_mk(src, 0, (src, k), h=1, seq=start + k)
                   for k in range(length)]
            runs.append((src, run))
            flat.extend(run)
        shuffled = data.draw(st.permutations(flat))
        expected = delivery_order(shuffled)
        got = PacketRuns(runs).merged()
        assert [(p.src, p.seq) for p in got] == \
               [(p.src, p.seq) for p in expected]
        assert [p.payload for p in got] == [p.payload for p in expected]

    def test_single_run_is_returned_as_is(self):
        run = [_mk(3, 0, k, h=1, seq=k) for k in range(4)]
        assert PacketRuns([(3, run)]).merged() == run


# ---------------------------------------------------------------------------
# Pool lifecycle (module-level programs: the pool ships them by pickle)
# ---------------------------------------------------------------------------


def ring_program(bsp, shift):
    bsp.send((bsp.pid + shift) % bsp.nprocs, bsp.pid)
    bsp.sync()
    return [p.payload for p in bsp.packets()]


def failing_program(bsp, bad_pid):
    if bsp.pid == bad_pid:
        raise RuntimeError("deliberate failure")
    bsp.send((bsp.pid + 1) % bsp.nprocs, bsp.pid)
    bsp.sync()
    return bsp.pid


def sized_exchange_program(bsp, sizes):
    """Exchange uint8 payloads of the given sizes, one per superstep."""
    peer = (bsp.pid + 1) % bsp.nprocs
    received = []
    for size in sizes:
        bsp.send(peer, np.full(size, bsp.pid, dtype=np.uint8))
        bsp.sync()
        received.append(sum(p.payload.nbytes for p in bsp.packets()))
    return received


def numpy_exchange_program(bsp, size, scale):
    for q in range(bsp.nprocs):
        if q != bsp.pid:
            bsp.send(q, np.full(size, float(bsp.pid * scale)))
    bsp.sync()
    return sum(float(p.payload[0]) for p in bsp.packets())


class TestBspPoolReuse:
    def test_many_runs_fresh_ledgers(self):
        with BspPool(3) as pool:
            for shift in (1, 2, 1):
                run = pool.run(ring_program, args=(shift,))
                assert run.results == [[(pid - shift) % 3] for pid in range(3)]
                # Fresh accounting per run: exactly the program's two
                # supersteps (sync + final), never accumulated across runs.
                assert all(ledger.nsupersteps == 2 for ledger in run.ledgers)

    def test_recycled_buffers_do_not_corrupt_payloads(self):
        with BspPool(3) as pool:
            for scale in (1, 10, 100):
                run = pool.run(numpy_exchange_program, args=(1 << 12, scale))
                for pid in range(3):
                    expected = sum(q * scale for q in range(3) if q != pid)
                    assert run.results[pid] == expected

    def test_large_frames_on_small_slab_do_not_wedge(self):
        # Regression: with a 64 KiB slab, a 30016-byte frame followed by
        # a 40064-byte frame used to leave the second alloc needing more
        # than the ring's capacity — every worker then spun out the full
        # timeout and the run died.  Such frames must take the pipe path.
        sizes = (30016, 40064, 40064)
        with BspPool(2, join_timeout=20.0, slab_bytes=64 << 10) as pool:
            start = time.monotonic()
            run = pool.run(sized_exchange_program, args=(sizes,))
            assert time.monotonic() - start < 15.0
            assert run.results == [list(sizes), list(sizes)]

    def test_survives_failed_run(self):
        with BspPool(3) as pool:
            with pytest.raises(VirtualProcessorError) as err:
                pool.run(failing_program, args=(1,))
            assert err.value.pid == 1
            # The same workers must be reusable immediately afterwards.
            run = pool.run(ring_program, args=(1,))
            assert run.results == [[2], [0], [1]]

    def test_smaller_runs_share_the_pool(self):
        with BspPool(4) as pool:
            assert pool.run(ring_program, nprocs=2, args=(1,)).results == \
                [[1], [0]]
            assert len(pool.run(ring_program, nprocs=4, args=(1,)).results) == 4

    def test_oversized_run_rejected(self):
        with BspPool(2) as pool:
            with pytest.raises(BspConfigError):
                pool.run(ring_program, nprocs=3, args=(1,))

    def test_unpicklable_program_message(self):
        with BspPool(2) as pool:
            with pytest.raises(BspUsageError, match="module-level"):
                pool.run(lambda bsp: None)

    def test_closed_pool_rejects_runs(self):
        pool = BspPool(2)
        pool.close()
        with pytest.raises(BspConfigError):
            pool.run(ring_program, args=(1,))

    def test_backend_pool_classmethod(self):
        with ProcessBackend.pool(3) as backend:
            first = backend.run(ring_program, 3, args=(1,))
            second = backend.run(ring_program, 3, args=(2,))
        assert first.results == [[2], [0], [1]]
        assert second.results == [[1], [2], [0]]


# ---------------------------------------------------------------------------
# Golden accounting: bit-identical to the pre-frame (seed) implementation
# ---------------------------------------------------------------------------

#: (S, H, sha256-prefix of the comma-joined per-superstep h series), as
#: measured on the simulator backend at the seed revision (p=4, seed 0).
GOLDEN_SEED_ACCOUNTING = {
    ("ocean", "66"): (489, 15890, "b5882e80f3a2ab0c"),
    ("mst", "2.5k"): (7, 573, "42755087de787f56"),
    ("sp", "2.5k"): (23, 245, "78da159294fa786c"),
    ("msp", "2.5k"): (34, 3243, "5a9c0ce5981e431b"),
    ("nbody", "1k"): (7, 1511, "0faf953a2126eb31"),
    ("matmult", "144"): (3, 10368, "83b281fc68d1317b"),
}


class TestGoldenAccounting:
    """The exchange layer is transport only: W/H/S must never move."""

    @pytest.mark.parametrize("app,size", sorted(GOLDEN_SEED_ACCOUNTING))
    def test_simulator_accounting_unchanged(self, app, size):
        golden_s, golden_h, golden_digest = GOLDEN_SEED_ACCOUNTING[(app, size)]
        stats = run_app(app, size, 4)
        series = ",".join(str(ss.h) for ss in stats.supersteps)
        digest = hashlib.sha256(series.encode()).hexdigest()[:16]
        assert (stats.S, stats.H) == (golden_s, golden_h)
        assert digest == golden_digest

    @pytest.mark.parametrize("app,size", sorted(GOLDEN_SEED_ACCOUNTING))
    def test_tcp_accounting_matches_simulator_golden(self, app, size):
        # Real sockets are still transport only: the combined-frame layout
        # rides the TCP stream byte-for-byte, so the golden ledgers hold.
        golden_s, golden_h, golden_digest = GOLDEN_SEED_ACCOUNTING[(app, size)]
        stats = run_app(app, size, 4, backend="tcp")
        series = ",".join(str(ss.h) for ss in stats.supersteps)
        digest = hashlib.sha256(series.encode()).hexdigest()[:16]
        assert (stats.S, stats.H) == (golden_s, golden_h)
        assert digest == golden_digest
