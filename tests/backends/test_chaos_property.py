"""Property test: random BSP programs behave identically on all backends.

The portability claim, adversarially: generate a random-but-deterministic
communication pattern from a seed (random destinations, payload sizes,
superstep counts, including processors that sit silent), run it on the
simulator, thread, and process backends, and require identical results
and identical (H, S, per-superstep h) accounting.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bsp_run
from repro.core.errors import VirtualProcessorError, WorkerCrashError


def chaos_program(bsp, seed, nsteps):
    """Deterministic pseudo-random exchange pattern, seeded per pid."""
    rng = np.random.default_rng(seed * 1000 + bsp.pid)
    digest = 0
    for step in range(nsteps):
        nsend = int(rng.integers(0, 5))
        for _ in range(nsend):
            dst = int(rng.integers(0, bsp.nprocs))
            kind = int(rng.integers(0, 3))
            if kind == 0:
                payload = int(rng.integers(0, 1000))
            elif kind == 1:
                payload = bytes(rng.integers(0, 256, size=int(rng.integers(0, 50)), dtype=np.uint8))
            else:
                payload = rng.standard_normal(int(rng.integers(1, 20)))
            bsp.send(dst, (bsp.pid, step, payload))
        bsp.sync()
        for pkt in bsp.packets():
            src, pstep, payload = pkt.payload
            digest = (digest * 31 + src + pstep) % (2**31)
            if isinstance(payload, bytes):
                digest = (digest + sum(payload)) % (2**31)
            elif isinstance(payload, np.ndarray):
                digest = (digest + int(abs(payload).sum() * 100)) % (2**31)
            else:
                digest = (digest + payload) % (2**31)
    return digest


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    nprocs=st.integers(1, 5),
    nsteps=st.integers(1, 6),
)
def test_property_backends_agree_on_chaos(seed, nprocs, nsteps):
    outcomes = []
    for backend in ("simulator", "threads", "processes"):
        run = bsp_run(
            chaos_program, nprocs, backend=backend, args=(seed, nsteps)
        )
        outcomes.append(
            (
                tuple(run.results),
                run.stats.S,
                run.stats.H,
                tuple(s.h for s in run.stats.supersteps),
                tuple(s.m for s in run.stats.supersteps),
            )
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


@pytest.mark.parametrize("backend", ["simulator", "threads", "processes"])
def test_silent_processors_are_fine(backend):
    """Processors that never send still synchronize correctly."""

    def program(bsp):
        for _ in range(3):
            if bsp.pid == 0:
                bsp.send(bsp.nprocs - 1, "ping")
            bsp.sync()
            drained = len(list(bsp.packets()))
        return drained

    run = bsp_run(program, 4, backend=backend)
    assert run.results == [0, 0, 0, 1]
    assert run.stats.S == 4


def crash_mid_superstep(bsp, victim, hard):
    """Exchange for one superstep, then pid ``victim`` dies mid-step 1."""
    bsp.send((bsp.pid + 1) % bsp.nprocs, bsp.pid)
    bsp.sync()
    if bsp.pid == victim:
        if hard:
            os._exit(99)  # no interpreter cleanup, no result report
        raise RuntimeError("chaos: mid-superstep failure")
    bsp.send((bsp.pid + 1) % bsp.nprocs, bsp.pid)
    bsp.sync()
    return True


@pytest.mark.parametrize("backend", ["simulator", "threads", "processes"])
def test_soft_crash_mid_superstep_names_the_pid(backend):
    """A program exception mid-superstep surfaces as a single
    VirtualProcessorError attributing the right pid on every backend."""
    with pytest.raises(VirtualProcessorError) as err:
        bsp_run(crash_mid_superstep, 3, backend=backend, args=(1, False))
    assert err.value.pid == 1
    assert "chaos: mid-superstep failure" in err.value.traceback_text


def test_hard_crash_mid_superstep_names_pid_and_exit_code():
    """A worker dying without cleanup is a WorkerCrashError (processes
    only — threads and the simulator cannot survive os._exit)."""
    with pytest.raises(WorkerCrashError) as err:
        bsp_run(crash_mid_superstep, 3, backend="processes", args=(2, True))
    assert err.value.pid == 2
    assert err.value.exitcode == 99
    assert not [c for c in mp.active_children() if c.name.startswith("bsp-")]


def interrupted_program(bsp):
    bsp.send((bsp.pid + 1) % bsp.nprocs, bsp.pid)
    bsp.sync()
    if bsp.pid == 0:
        raise KeyboardInterrupt
    return True


@pytest.mark.parametrize("backend", ["simulator", "threads", "processes"])
def test_keyboard_interrupt_is_contained_and_cleaned_up(backend):
    """A KeyboardInterrupt inside the program body must not wedge the
    backend: it is reported like any program failure and (for processes)
    every child is reaped."""
    with pytest.raises(VirtualProcessorError) as err:
        bsp_run(interrupted_program, 3, backend=backend)
    assert err.value.pid == 0
    assert "KeyboardInterrupt" in err.value.traceback_text
    if backend == "processes":
        assert not [c for c in mp.active_children()
                    if c.name.startswith("bsp-")]
