"""The TCP backend: wire protocol, sockets, supervision, calibration.

The wire tests exercise the stream decoder against everything a TCP
byte stream can do to a frame (partial reads, splits inside the length
prefix, several frames per ``recv``, hostile lengths).  The backend
tests run real programs over loopback sockets and assert the paper's
portability claim: same results, same W/H/S ledgers, same failure
taxonomy as every other backend.
"""

import hashlib
import multiprocessing as mp
import pickle
import socket
import time

import pytest

from repro import (
    BspConfigError,
    BspUsageError,
    DeadlockError,
    PacketError,
    SynchronizationError,
    VirtualProcessorError,
    WorkerCrashError,
    bsp_run,
    calibrate_backend,
)
from repro import faults
from repro.backends import tcp_wire as wire
from repro.backends.base import get_backend
from repro.backends.frames import TAG_PKT
from repro.backends.tcp import TcpBackend, TcpMesh, TcpSpmdBackend
from repro.backends.tcp_launch import parse_hostport
from repro.core.packets import Packet


# ---------------------------------------------------------------------------
# Module-level programs (the persistent mesh ships programs by pickle)
# ---------------------------------------------------------------------------


def ring_program(bsp, rounds=2):
    acc = []
    for step in range(rounds):
        bsp.send((bsp.pid + 1) % bsp.nprocs, (bsp.pid, step))
        bsp.sync()
        acc.extend(pkt.payload for pkt in bsp.packets())
    return acc


def crashy_program(bsp):
    if bsp.pid == 1:
        raise RuntimeError("kaboom on 1")
    bsp.send((bsp.pid + 1) % bsp.nprocs, 0)
    bsp.sync()
    return bsp.pid


def _spmd_main(rank, nprocs, port, q):
    backend = TcpSpmdBackend(rank, nprocs, ("127.0.0.1", port), token=1234)
    try:
        run = bsp_run(ring_program, nprocs, backend=backend)
        q.put((rank, run.results, run.stats.S, run.stats.H))
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


def _flatten(chunks):
    out = bytearray()
    for chunk in chunks:
        out += bytes(memoryview(chunk))
    return bytes(out)


def _sample_packets():
    return [
        Packet(src=0, dst=1, seq=0, payload=b"x" * 40, h=3),
        Packet(src=0, dst=1, seq=1, payload={"k": [1, 2]}, h=1),
    ]


class TestFrameDecoder:
    def test_roundtrip_packet_frame(self):
        blob = _flatten(wire.encode_packet_frame(7, 3, 0, _sample_packets()))
        (frame,) = wire.FrameDecoder().feed(blob)
        assert (frame.tag, frame.run_id, frame.step, frame.src) == (
            TAG_PKT, 7, 3, 0)
        got = frame.packets(1)
        assert [(p.src, p.dst, p.seq, p.h) for p in got] == [
            (0, 1, 0, 3), (0, 1, 1, 1)]
        assert bytes(got[0].payload) == b"x" * 40
        assert got[1].payload == {"k": [1, 2]}

    def test_byte_at_a_time(self):
        # Splits everywhere, including inside the 4-byte length prefix.
        blob = _flatten(wire.encode_packet_frame(1, 0, 2, _sample_packets()))
        dec = wire.FrameDecoder()
        frames = []
        for i in range(len(blob)):
            frames.extend(dec.feed(blob[i:i + 1]))
            if i < len(blob) - 1:
                assert frames == []  # nothing completes early
        (frame,) = frames
        assert frame.src == 2
        assert not dec.mid_frame

    def test_several_frames_in_one_chunk(self):
        blob = b"".join(
            _flatten(wire.encode_frame(wire.TAG_RELEASE, 1, s, 0))
            for s in range(4))
        frames = wire.FrameDecoder().feed(blob)
        assert [f.step for f in frames] == [0, 1, 2, 3]

    def test_split_straddling_two_frames(self):
        a = _flatten(wire.encode_frame(wire.TAG_COUNTS, 1, 0, 0,
                                       pickle.dumps(1)))
        b = _flatten(wire.encode_packet_frame(1, 0, 0, _sample_packets()))
        dec = wire.FrameDecoder()
        cut = len(a) + 3  # mid-prefix of the second frame
        first = dec.feed((a + b)[:cut])
        assert [f.tag for f in first] == [wire.TAG_COUNTS]
        assert dec.mid_frame
        second = dec.feed((a + b)[cut:])
        assert [f.tag for f in second] == [TAG_PKT]

    def test_oversized_header_rejected(self):
        dec = wire.FrameDecoder()
        env = wire.pack_envelope(0, -1, -1, wire.MAX_HEADER_BYTES + 1)
        with pytest.raises(PacketError, match="header"):
            dec.feed(env)

    def test_oversized_frame_rejected(self):
        chunks = wire.encode_frame(TAG_PKT, 0, 0, 0, b"", [b"y" * 64])
        dec = wire.FrameDecoder(max_frame_bytes=16)
        with pytest.raises(PacketError, match="exceeds"):
            dec.feed(_flatten(chunks))

    def test_garbage_header_rejected(self):
        blob = wire.pack_envelope(0, -1, -1, 8) + b"notapkl!"
        with pytest.raises(PacketError, match="undecodable"):
            wire.FrameDecoder().feed(blob)

    def test_wrong_version_rejected(self):
        # A consistent envelope (valid check byte) from a future protocol.
        body = wire._ENV_BODY.pack(wire.WIRE_VERSION + 1, 0, -1, -1, 8)
        echk = 0
        for byte in body:
            echk ^= byte
        with pytest.raises(PacketError, match="version"):
            wire.FrameDecoder().feed(body + bytes((echk,)))

    def test_flipped_envelope_bit_rejected(self):
        good = _flatten(wire.encode_frame(wire.TAG_RELEASE, 1, 0, 0))
        bad = bytes([good[0] ^ 0x40]) + good[1:]
        with pytest.raises(PacketError, match="envelope"):
            wire.FrameDecoder().feed(bad)

    def test_corrupt_payload_yields_marker_not_frame(self):
        blob = bytearray(
            _flatten(wire.encode_packet_frame(1, 0, 2, _sample_packets(),
                                              seq=7)))
        blob[-1] ^= 0xFF  # smash the crc trailer
        (frame,) = wire.FrameDecoder().feed(bytes(blob))
        assert frame.tag == wire.TAG_CORRUPT
        assert frame.seq == 7

    def test_object_frame_roundtrip(self):
        obj = ("ok", 3, 1, [b"payload" * 100], None)
        blob = _flatten(wire.encode_object_frame(
            wire.TAG_RESULT, 3, 0, 1, obj))
        (frame,) = wire.FrameDecoder().feed(blob)
        assert wire.frame_object(frame) == obj


class TestLaunchHelpers:
    def test_parse_hostport(self):
        assert parse_hostport("pc1:5000", 47710) == ("pc1", 5000)
        assert parse_hostport("pc1", 47710) == ("pc1", 47710)
        with pytest.raises(BspConfigError):
            parse_hostport("pc1:fast", 47710)


# ---------------------------------------------------------------------------
# Backend behaviour over loopback
# ---------------------------------------------------------------------------


class TestTcpBackend:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_matches_simulator(self, nprocs):
        sim = bsp_run(ring_program, nprocs, backend="simulator")
        tcp = bsp_run(ring_program, nprocs, backend="tcp")
        assert tcp.results == sim.results
        assert (tcp.stats.S, tcp.stats.H) == (sim.stats.S, sim.stats.H)
        assert [s.h for s in tcp.stats.supersteps] == \
            [s.h for s in sim.stats.supersteps]

    def test_registered_by_name(self):
        assert get_backend("tcp").name == "tcp"

    def test_unknown_backend_lists_available(self):
        with pytest.raises(BspConfigError, match="tcp"):
            get_backend("udp")

    def test_closures_work_oneshot(self):
        # One-shot mode forks, so the program never crosses a pickler.
        captured = 17
        run = bsp_run(lambda bsp: bsp.pid + captured, 2, backend="tcp")
        assert run.results == [17, 18]

    def test_program_error_attributed(self):
        with pytest.raises(VirtualProcessorError) as info:
            bsp_run(crashy_program, 3, backend="tcp")
        assert info.value.pid == 1
        assert "kaboom on 1" in info.value.traceback_text


class TestTcpSupervision:
    def test_sigkill_surfaces_fast(self):
        plan = faults.FaultPlan([faults.Fault(faults.KILL, 1, 1)])
        with faults.injected(plan):
            t0 = time.monotonic()
            with pytest.raises(WorkerCrashError) as info:
                bsp_run(ring_program, 3, backend="tcp", args=(3,))
        assert time.monotonic() - t0 < 1.0
        assert info.value.pid == 1
        assert "SIGKILL" in str(info.value)

    def test_dropped_frame_is_deadlock(self):
        backend = TcpBackend(join_timeout=6.0)
        plan = faults.FaultPlan(
            [faults.Fault(faults.DROP_FRAME, 1, 1, 2)])
        with faults.injected(plan):
            with pytest.raises(DeadlockError):
                bsp_run(ring_program, 3, backend=backend, args=(3,))

    def test_injected_raise(self):
        plan = faults.FaultPlan([faults.Fault(faults.RAISE, 2, 1)])
        with faults.injected(plan):
            with pytest.raises(VirtualProcessorError) as info:
                bsp_run(ring_program, 4, backend="tcp", args=(3,))
        assert info.value.pid == 2

    def test_poison_payload_reported_not_hung(self):
        plan = faults.FaultPlan([faults.Fault(faults.POISON, 0, 1)])
        with faults.injected(plan):
            with pytest.raises(VirtualProcessorError) as info:
                bsp_run(ring_program, 3, backend="tcp", args=(3,))
        assert info.value.pid == 0

    def test_delay_completes(self):
        plan = faults.FaultPlan([faults.Fault(faults.DELAY, 1, 1, 0.2)])
        with faults.injected(plan):
            run = bsp_run(ring_program, 3, backend="tcp", args=(2,))
        assert run.results == bsp_run(
            ring_program, 3, backend="simulator", args=(2,)).results


class TestTcpMesh:
    def test_pool_reuse_and_subcapacity(self):
        with TcpBackend.pool(4) as backend:
            first = bsp_run(ring_program, 4, backend=backend)
            second = bsp_run(ring_program, 2, backend=backend)
        sim4 = bsp_run(ring_program, 4, backend="simulator")
        sim2 = bsp_run(ring_program, 2, backend="simulator")
        assert first.results == sim4.results
        assert second.results == sim2.results

    def test_failed_run_rebuilds_mesh(self):
        with TcpBackend.pool(3) as backend:
            with pytest.raises(VirtualProcessorError):
                bsp_run(crashy_program, 3, backend=backend)
            # The byte streams cannot be fenced after a failure; the mesh
            # must rebuild transparently and still produce golden results.
            run = bsp_run(ring_program, 3, backend=backend)
        assert run.results == bsp_run(
            ring_program, 3, backend="simulator").results

    def test_unpicklable_program_rejected_helpfully(self):
        with TcpBackend.pool(2) as backend:
            with pytest.raises(BspUsageError, match="module-level"):
                bsp_run(lambda bsp: bsp.pid, 2, backend=backend)

    def test_capacity_enforced(self):
        with TcpMesh(2) as mesh:
            with pytest.raises(BspConfigError):
                mesh.run(ring_program, nprocs=3)


class TestTcpSpmd:
    def test_three_rank_all_gather(self):
        lsock = socket.socket()
        lsock.bind(("127.0.0.1", 0))
        port = lsock.getsockname()[1]
        lsock.close()
        ctx = mp.get_context("fork")
        q = ctx.Queue()
        procs = [ctx.Process(target=_spmd_main, args=(r, 3, port, q))
                 for r in range(3)]
        for proc in procs:
            proc.start()
        try:
            rows = sorted(q.get(timeout=60) for _ in range(3))
        finally:
            for proc in procs:
                proc.join(10)
        golden = bsp_run(ring_program, 3, backend="simulator")
        # Every rank gathered the same complete result vector and ledgers.
        for rank, results, s, h in rows:
            assert results == golden.results
            assert (s, h) == (golden.stats.S, golden.stats.H)


class TestTcpCalibration:
    def test_calibrate_accepts_instance(self):
        with TcpBackend.pool(2) as backend:
            cal = calibrate_backend(backend, 2, latency_rounds=3,
                                    bandwidth_rounds=1, packets_each=50)
        assert cal.backend == "tcp"
        assert cal.nprocs == 2
        assert cal.L_us > 0 and cal.g_us >= 0
        profile = cal.as_profile("tcp-here")
        assert profile.L(2) == pytest.approx(cal.L_us * 1e-6)

    def test_register_machine_roundtrip(self):
        from repro import MachineProfile, get_machine, register_machine
        from repro.core.machines import MACHINES

        profile = MachineProfile(
            name="unit-test-machine", g_us={2: 1.0}, L_us={2: 10.0})
        register_machine(profile)
        try:
            assert get_machine("Unit-Test-Machine") is profile
        finally:
            MACHINES.pop("unit-test-machine", None)
