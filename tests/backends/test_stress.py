"""Stress-shaped backend tests: wide fan-outs, many supersteps, big p."""

import numpy as np
import pytest

from repro import bsp_run


class TestWideRuns:
    def test_thirty_two_processors_simulator(self):
        def program(bsp):
            for q in range(bsp.nprocs):
                bsp.send(q, bsp.pid)
            bsp.sync()
            return sum(p.payload for p in bsp.packets())

        run = bsp_run(program, 32)
        total = 32 * 31 // 2
        assert run.results == [total] * 32
        assert run.stats.supersteps[0].h == 32

    def test_hundred_supersteps(self):
        def program(bsp):
            acc = 0
            for step in range(100):
                bsp.send((bsp.pid + 1) % bsp.nprocs, step)
                bsp.sync()
                acc += sum(p.payload for p in bsp.packets())
            return acc

        run = bsp_run(program, 4)
        assert run.results == [sum(range(100))] * 4
        assert run.stats.S == 101

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_sixteen_concurrent(self, backend):
        def program(bsp):
            data = np.arange(100) * bsp.pid
            bsp.send((bsp.pid + 7) % bsp.nprocs, data)
            bsp.sync()
            (pkt,) = list(bsp.packets())
            return int(pkt.payload.sum())

        run = bsp_run(program, 16, backend=backend)
        base = int(np.arange(100).sum())
        for pid, got in enumerate(run.results):
            src = (pid - 7) % 16
            assert got == base * src

    def test_fan_in_hotspot(self):
        """Everyone floods processor 0: h accounting and delivery hold."""

        def program(bsp):
            for k in range(20):
                bsp.send(0, (bsp.pid, k))
            bsp.sync()
            if bsp.pid == 0:
                got = [p.payload for p in bsp.packets()]
                return len(got), got == sorted(got)
            return len(list(bsp.packets())), True

        run = bsp_run(program, 8)
        assert run.results[0] == (160, True)
        assert run.stats.supersteps[0].h_recv_max == 160

    def test_alternating_silence(self):
        """Processors alternate between sending and idling per superstep."""

        def program(bsp):
            seen = 0
            for step in range(10):
                if (step + bsp.pid) % 2 == 0:
                    bsp.send((bsp.pid + 1) % bsp.nprocs, 1)
                bsp.sync()
                seen += sum(p.payload for p in bsp.packets())
            return seen

        run = bsp_run(program, 4)
        assert run.results == [5] * 4
