"""Tests for graph generators, partitioners, and the distributed layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    LocalGraph,
    block_partition,
    connectivity_threshold,
    cut_edges,
    geometric_graph,
    grid_graph,
    hash_partition,
    imbalance,
    partition_counts,
    partition_graph,
    random_connected_graph,
    spatial_partition,
)


class TestGeometricGraph:
    def test_connected_at_delta(self):
        gg = geometric_graph(200, seed=1)
        assert gg.graph.is_connected()

    def test_delta_is_minimal(self):
        """Removing all edges of length >= δ disconnects the graph."""
        gg = geometric_graph(150, seed=3)
        u, v, w = gg.graph.edge_list()
        keep = w < gg.delta * (1 - 1e-9)
        from repro.graphs import Graph

        smaller = Graph.from_edges(gg.graph.n, u[keep], v[keep], w[keep])
        assert not smaller.is_connected()

    def test_weights_are_distances(self):
        gg = geometric_graph(80, seed=5)
        u, v, w = gg.graph.edge_list()
        d = np.linalg.norm(gg.points[u] - gg.points[v], axis=1)
        assert np.allclose(w, d)

    def test_edges_within_radius(self):
        gg = geometric_graph(80, seed=7)
        _, _, w = gg.graph.edge_list()
        assert w.max() <= gg.delta * (1 + 1e-9)

    def test_deterministic(self):
        a = geometric_graph(60, seed=11)
        b = geometric_graph(60, seed=11)
        assert np.array_equal(a.points, b.points)
        assert a.delta == b.delta
        assert np.array_equal(a.graph.indices, b.graph.indices)

    def test_single_node(self):
        gg = geometric_graph(1, seed=0)
        assert gg.graph.n == 1
        assert gg.delta == 0.0

    def test_two_nodes(self):
        gg = geometric_graph(2, seed=0)
        assert gg.graph.nedges == 1
        assert gg.delta == pytest.approx(
            float(np.linalg.norm(gg.points[0] - gg.points[1]))
        )

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            geometric_graph(0)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=2, max_value=120),
           seed=st.integers(0, 1000))
    def test_property_connected_and_threshold_tight(self, n, seed):
        gg = geometric_graph(n, seed=seed)
        assert gg.graph.is_connected()
        _, _, w = gg.graph.edge_list()
        # δ itself must be realized by some edge (the MST bottleneck edge).
        assert np.isclose(w.max(), gg.delta)


class TestThreshold:
    def test_collinear_points(self):
        points = np.column_stack([np.linspace(0, 1, 5), np.zeros(5)])
        assert connectivity_threshold(points) == pytest.approx(0.25)

    def test_fewer_than_two(self):
        assert connectivity_threshold(np.zeros((1, 2))) == 0.0


class TestOtherGenerators:
    def test_random_connected(self):
        g = random_connected_graph(100, extra_edges=50, seed=2)
        assert g.is_connected()
        assert g.nedges >= 99

    def test_grid_graph(self):
        g = grid_graph(4, 5)
        assert g.n == 20
        assert g.nedges == 4 * 4 + 3 * 5  # horizontal + vertical
        assert g.is_connected()


class TestPartitioners:
    @pytest.mark.parametrize("p", [1, 2, 3, 7])
    def test_block_balanced(self, p):
        owner = block_partition(100, p)
        counts = partition_counts(owner, p)
        assert counts.max() - counts.min() <= 1
        assert imbalance(owner, p) <= 0.1

    @pytest.mark.parametrize("p", [1, 4, 5])
    def test_hash_balanced(self, p):
        owner = hash_partition(1000, p, seed=1)
        counts = partition_counts(owner, p)
        assert counts.max() - counts.min() <= 1

    def test_spatial_balanced_and_local(self):
        gg = geometric_graph(400, seed=9)
        p = 4
        spatial = spatial_partition(gg.points, p)
        hashed = hash_partition(gg.graph.n, p, seed=9)
        assert partition_counts(spatial, p).max() - partition_counts(
            spatial, p
        ).min() <= 1
        # Locality: strips cut far fewer edges than random assignment.
        cut_spatial = cut_edges(gg.graph.indptr, gg.graph.indices, spatial)
        cut_hash = cut_edges(gg.graph.indptr, gg.graph.indices, hashed)
        assert cut_spatial < cut_hash

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            block_partition(10, 0)
        with pytest.raises(ValueError):
            block_partition(-1, 2)


class TestLocalGraph:
    def make(self, p=3, n=120, seed=4):
        gg = geometric_graph(n, seed=seed)
        owner = spatial_partition(gg.points, p)
        return gg.graph, owner, partition_graph(gg.graph, owner, p)

    def test_homes_partition_nodes(self):
        graph, owner, locals_ = self.make()
        all_home = np.concatenate([lg.home for lg in locals_])
        assert sorted(all_home.tolist()) == list(range(graph.n))

    def test_border_nodes_are_foreign_neighbors(self):
        graph, owner, locals_ = self.make()
        for lg in locals_:
            for b in lg.border:
                assert owner[b] != lg.pid
            # Every border node neighbors some home node.
            home_set = set(lg.home.tolist())
            for b in lg.border.tolist():
                nbrs, _ = graph.neighbors(b)
                assert home_set & set(nbrs.tolist())

    def test_watchers_symmetry(self):
        """q watches u on p  <=>  u is a border node of q."""
        graph, owner, locals_ = self.make()
        for lg in locals_:
            for gid in lg.home.tolist():
                for q in lg.watchers(gid).tolist():
                    assert gid in set(locals_[q].border.tolist())

    def test_conservative_bound(self):
        """Total watcher links == total border entries (the conservative
        traffic bound of Section 3.3)."""
        _, _, locals_ = self.make()
        watcher_links = sum(len(lg.watcher_pid) for lg in locals_)
        border_entries = sum(lg.nborder for lg in locals_)
        assert watcher_links == border_entries

    def test_neighbors_match_global(self):
        graph, owner, locals_ = self.make()
        lg = locals_[0]
        gid = int(lg.home[0])
        nbrs, w = lg.neighbors(gid)
        gn, gw = graph.neighbors(gid)
        assert sorted(nbrs.tolist()) == sorted(gn.tolist())

    def test_home_edges_plus_cut_edges_cover(self):
        graph, owner, locals_ = self.make()
        total_home = sum(len(lg.home_edges()[0]) for lg in locals_)
        total_cut = sum(len(lg.cut_edges()[0]) for lg in locals_)
        # Cut edges are seen from both sides; home edges once per owner.
        assert total_home + total_cut // 2 == graph.nedges
        assert total_cut % 2 == 0

    def test_non_home_queries_raise(self):
        _, _, locals_ = self.make()
        lg = locals_[0]
        foreign = int(locals_[1].home[0])
        with pytest.raises(KeyError):
            lg.neighbors(foreign)
        with pytest.raises(KeyError):
            lg.watchers(foreign)

    def test_owner_length_validated(self):
        graph, owner, _ = self.make()
        with pytest.raises(ValueError):
            LocalGraph.build(graph, owner[:-1], 0, 3)

    def test_single_processor_no_border(self):
        gg = geometric_graph(50, seed=2)
        lg = LocalGraph.build(gg.graph, np.zeros(50, dtype=np.int64), 0, 1)
        assert lg.nhome == 50
        assert lg.nborder == 0
        assert len(lg.watcher_pid) == 0
