"""Tests for the CSR graph and union-find substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, UnionFind


def tri_graph():
    return Graph.from_edges(
        3, np.array([0, 1, 0]), np.array([1, 2, 2]), np.array([1.0, 2.0, 3.0])
    )


class TestGraph:
    def test_symmetric_storage(self):
        g = tri_graph()
        assert g.nedges == 3
        assert len(g.indices) == 6
        nbrs, w = g.neighbors(0)
        assert sorted(nbrs.tolist()) == [1, 2]
        assert sorted(w.tolist()) == [1.0, 3.0]

    def test_degree(self):
        g = Graph.from_edges(4, np.array([0, 0, 0]), np.array([1, 2, 3]),
                             np.ones(3))
        assert g.degree(0) == 3
        assert g.degree(3) == 1

    def test_edge_list_each_edge_once(self):
        g = tri_graph()
        u, v, w = g.edge_list()
        assert len(u) == 3
        assert np.all(u < v)
        assert {(a, b) for a, b in zip(u.tolist(), v.tolist())} == {
            (0, 1), (1, 2), (0, 2)
        }

    def test_duplicate_edges_keep_lightest(self):
        g = Graph.from_edges(
            2, np.array([0, 1]), np.array([1, 0]), np.array([5.0, 2.0])
        )
        assert g.nedges == 1
        _, _, w = g.edge_list()
        assert w.tolist() == [2.0]

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, np.array([0]), np.array([0]), np.array([1.0]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, np.array([0]), np.array([5]), np.array([1.0]))

    def test_is_connected(self):
        assert tri_graph().is_connected()
        g = Graph.from_edges(4, np.array([0]), np.array([1]), np.array([1.0]))
        assert not g.is_connected()

    def test_empty_graph_connected(self):
        g = Graph.from_edges(0, np.empty(0, int), np.empty(0, int), np.empty(0))
        assert g.is_connected()

    def test_isolated_node(self):
        g = Graph.from_edges(2, np.empty(0, int), np.empty(0, int), np.empty(0))
        assert not g.is_connected()
        assert g.degree(0) == 0

    def test_total_weight(self):
        assert tri_graph().total_weight() == pytest.approx(6.0)

    def test_subgraph_edges(self):
        g = tri_graph()
        mask = np.array([True, True, False])
        u, v, w = g.subgraph_edges(mask)
        assert (u.tolist(), v.tolist(), w.tolist()) == ([0], [1], [1.0])


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(5)
        assert uf.ncomponents == 5
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.ncomponents == 4

    def test_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 2)
        assert uf.connected(0, 3)
        assert uf.ncomponents == 1

    def test_roots_consistent_with_find(self):
        uf = UnionFind(10)
        for a, b in [(0, 1), (2, 3), (4, 5), (1, 3), (5, 9)]:
            uf.union(a, b)
        roots = uf.roots()
        for x in range(10):
            assert roots[x] == uf.find(x)

    def test_components_partition(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        comps = uf.components()
        members = sorted(m for group in comps.values() for m in group.tolist())
        assert members == list(range(6))
        assert len(comps) == uf.ncomponents == 4

    def test_zero_elements(self):
        uf = UnionFind(0)
        assert uf.ncomponents == 0
        assert len(uf) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @settings(max_examples=50)
    @given(
        n=st.integers(min_value=1, max_value=40),
        ops=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)),
                     max_size=60),
    )
    def test_property_matches_naive_partition(self, n, ops):
        """Union-find agrees with a naive set-merging implementation."""
        uf = UnionFind(n)
        naive = [{i} for i in range(n)]
        lookup = list(range(n))
        for a, b in ops:
            a, b = a % n, b % n
            uf.union(a, b)
            sa, sb = lookup[a], lookup[b]
            if sa != sb:
                naive[sa] |= naive[sb]
                for x in naive[sb]:
                    lookup[x] = sa
                naive[sb] = set()
        for a in range(n):
            for b in range(a + 1, n):
                assert uf.connected(a, b) == (lookup[a] == lookup[b])
        assert uf.ncomponents == sum(1 for s in naive if s)
