"""Equivalence suite: vectorized kernels against their pure-Python oracles.

The contract (DESIGN.md "Kernels"): a vectorized kernel may change *how*
a local phase computes, never *what* it computes or charges.  Integer
results — interaction counts, labels, candidate dictionaries, heap-push
multisets, cut offsets — must be identical; floating-point forces may
differ only in summation order (tested to 1e-10 against the direct
oracle).  Every application is additionally run end-to-end under both
modes and must produce identical answers *and* identical (W, H, S)
accounting.
"""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.apps.mst.parallel import bsp_mst
from repro.apps.nbody import BHTree, plummer, uniform_cube
from repro.apps.sort.samplesort import bsp_sample_sort
from repro.apps.sssp.parallel import bsp_msp, bsp_sssp
from repro.graphs.distributed import LocalGraph
from repro.graphs.generators import random_connected_graph
from repro.graphs.unionfind import UnionFind

MODES = ("reference", "vectorized")


def ledger(stats):
    return (stats.S, stats.H, stats.total_charged, stats.charged_depth)


# ---------------------------------------------------------------------------
# Registry behaviour
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_kernels_have_both_modes(self):
        assert kernels.names()  # non-empty registry
        for name in kernels.names():
            for mode in MODES:
                assert callable(kernels.get(name, mode))

    def test_unknown_name_raises(self):
        with pytest.raises(kernels.KernelError):
            kernels.get("no_such_kernel")

    def test_unknown_mode_raises(self):
        with pytest.raises(kernels.KernelError):
            kernels.get("bh_walk", "turbo")

    def test_using_overrides_env(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "reference")
        assert kernels.current_mode() == "reference"
        with kernels.using("vectorized"):
            assert kernels.current_mode() == "vectorized"
        assert kernels.current_mode() == "reference"

    def test_env_typo_degrades_to_default(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "vectorised-typo")
        assert kernels.current_mode() == kernels.DEFAULT_MODE

    def test_using_rejects_unknown_mode(self):
        with pytest.raises(kernels.KernelError):
            with kernels.using("turbo"):
                pass


# ---------------------------------------------------------------------------
# Barnes–Hut: walk and direct kernels vs the oracles
# ---------------------------------------------------------------------------


class TestBhEquivalence:
    @pytest.mark.parametrize("theta", [0.3, 0.8, 1.2])
    def test_walk_matches_reference(self, theta):
        b = plummer(400, seed=1)
        tree = BHTree(b.pos, b.mass)
        skip = np.arange(len(b), dtype=np.int64)
        acc_v, int_v = kernels.get("bh_walk", "vectorized")(
            tree, b.pos, theta, 0.05, skip
        )
        acc_r, int_r = kernels.get("bh_walk", "reference")(
            tree, b.pos, theta, 0.05, skip
        )
        assert np.array_equal(int_v, int_r)  # counts exactly equal
        assert np.allclose(acc_v, acc_r, rtol=0, atol=1e-10)

    def test_walk_without_skip_matches(self):
        """Foreign-tree traversal: no self-exclusion."""
        b = plummer(200, seed=2)
        pts = uniform_cube(64, seed=3).pos + 4.0
        tree = BHTree(b.pos, b.mass)
        acc_v, int_v = kernels.get("bh_walk", "vectorized")(
            tree, pts, 0.7, 0.05, None
        )
        acc_r, int_r = kernels.get("bh_walk", "reference")(
            tree, pts, 0.7, 0.05, None
        )
        assert np.array_equal(int_v, int_r)
        assert np.allclose(acc_v, acc_r, rtol=0, atol=1e-10)

    def test_walk_forces_match_direct_oracle(self):
        """theta=0 opens every cell: the walk must equal the O(N²) sum."""
        b = plummer(150, seed=4)
        tree = BHTree(b.pos, b.mass)
        for mode in MODES:
            acc, inter = kernels.get("bh_walk", mode)(
                tree, b.pos, 0.0, 0.05,
                np.arange(len(b), dtype=np.int64),
            )
            direct = kernels.get("bh_direct", mode)(b.pos, b.mass, 0.05)
            assert np.allclose(acc, direct, rtol=0, atol=1e-10)
            assert np.all(inter == len(b) - 1)

    def test_direct_matches_reference(self):
        b = plummer(300, seed=5)
        acc_v = kernels.get("bh_direct", "vectorized")(b.pos, b.mass, 0.05)
        acc_r = kernels.get("bh_direct", "reference")(b.pos, b.mass, 0.05)
        assert np.allclose(acc_v, acc_r, rtol=0, atol=1e-10)

    def test_deep_tree_small_leaves(self):
        """leaf_size=1 maximizes tree depth and leaf expansion traffic."""
        b = plummer(120, seed=6)
        tree = BHTree(b.pos, b.mass, leaf_size=1)
        skip = np.arange(len(b), dtype=np.int64)
        acc_v, int_v = kernels.get("bh_walk", "vectorized")(
            tree, b.pos, 0.6, 0.05, skip
        )
        acc_r, int_r = kernels.get("bh_walk", "reference")(
            tree, b.pos, 0.6, 0.05, skip
        )
        assert np.array_equal(int_v, int_r)
        assert np.allclose(acc_v, acc_r, rtol=0, atol=1e-10)

    def test_coincident_bodies_degenerate_cells(self):
        """Identical positions stop splitting; the walk must not loop."""
        pos = np.vstack([np.zeros((4, 3)), np.ones((3, 3))])
        mass = np.ones(7)
        tree = BHTree(pos, mass)
        skip = np.arange(7, dtype=np.int64)
        acc_v, int_v = kernels.get("bh_walk", "vectorized")(
            tree, pos, 0.8, 0.1, skip
        )
        acc_r, int_r = kernels.get("bh_walk", "reference")(
            tree, pos, 0.8, 0.1, skip
        )
        assert np.array_equal(int_v, int_r)
        assert np.allclose(acc_v, acc_r, rtol=0, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=120),
        theta=st.floats(min_value=0.0, max_value=1.5),
        leaf=st.integers(min_value=1, max_value=16),
        seed=st.integers(0, 1000),
    )
    def test_property_walk_equivalence(self, n, theta, leaf, seed):
        b = plummer(n, seed=seed)
        tree = BHTree(b.pos, b.mass, leaf_size=leaf)
        skip = np.arange(n, dtype=np.int64)
        acc_v, int_v = kernels.get("bh_walk", "vectorized")(
            tree, b.pos, theta, 0.05, skip
        )
        acc_r, int_r = kernels.get("bh_walk", "reference")(
            tree, b.pos, theta, 0.05, skip
        )
        assert np.array_equal(int_v, int_r)
        assert np.allclose(acc_v, acc_r, rtol=0, atol=1e-10)


# ---------------------------------------------------------------------------
# Graph kernels: MST pieces vs the oracles
# ---------------------------------------------------------------------------


def _union_some(n, pairs):
    uf = UnionFind(n)
    for a, b in pairs:
        uf.union(a, b)
    return uf


class TestMstKernels:
    def test_labels_match(self):
        rng = np.random.default_rng(7)
        n = 200
        uf = _union_some(
            n, rng.integers(0, n, size=(80, 2)).tolist()
        )
        home = np.unique(rng.integers(0, n, size=120))
        ref = kernels.get("mst_labels", "reference")(uf, home, n)
        vec = kernels.get("mst_labels", "vectorized")(uf, home, n)
        assert np.array_equal(ref, vec)

    def test_labels_empty_home(self):
        uf = UnionFind(10)
        home = np.zeros(0, dtype=np.int64)
        ref = kernels.get("mst_labels", "reference")(uf, home, 10)
        vec = kernels.get("mst_labels", "vectorized")(uf, home, 10)
        assert np.array_equal(ref, vec)

    @staticmethod
    def _edge_fixture(seed, n=60, m=300):
        """Key-sorted edge arrays + endpoint component labels, as the
        Borůvka round hands them to the kernels (ties included)."""
        rng = np.random.default_rng(seed)
        eu = rng.integers(0, n, size=m)
        ev = (eu + 1 + rng.integers(0, n - 1, size=m)) % n
        # Quantized weights force plenty of equal-weight ties.
        ew = np.round(rng.random(m) * 4) / 4
        lo, hi = np.minimum(eu, ev), np.maximum(eu, ev)
        order = np.lexsort((hi, lo, ew))
        ew, lo, hi = ew[order], lo[order], hi[order]
        labels = rng.integers(0, n // 4, size=n)
        la, lb = labels[lo], labels[hi]
        crossing = la != lb
        active = np.flatnonzero(crossing)
        return active, ew, lo, hi, la[crossing], lb[crossing], n

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_component_minima_match(self, seed):
        args = self._edge_fixture(seed)
        ref = kernels.get("mst_component_minima", "reference")(*args)
        vec = kernels.get("mst_component_minima", "vectorized")(*args)
        assert ref == vec

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_pair_minima_match(self, seed):
        args = self._edge_fixture(seed)
        ref = kernels.get("mst_pair_minima", "reference")(*args)
        vec = kernels.get("mst_pair_minima", "vectorized")(*args)
        assert ref == vec

    def test_component_minima_empty(self):
        empty = np.zeros(0, dtype=np.int64)
        ew = np.zeros(0)
        ref = kernels.get("mst_component_minima", "reference")(
            empty, ew, empty, empty, empty, empty, 10
        )
        vec = kernels.get("mst_component_minima", "vectorized")(
            empty, ew, empty, empty, empty, empty, 10
        )
        assert ref == vec == {}
        assert kernels.get("mst_pair_minima", "vectorized")(
            empty, ew, empty, empty, empty, empty, 10
        ) == []


# ---------------------------------------------------------------------------
# Graph kernels: SSSP pieces vs the oracles
# ---------------------------------------------------------------------------


def _local_graph(seed, n=80, p=4, pid=1):
    g = random_connected_graph(n, 3 * n, seed=seed)
    owner = np.random.default_rng(seed).integers(0, p, size=n)
    return LocalGraph.build(g, owner, pid, p)


class TestSsspKernels:
    def test_border_adjacency_same_content(self):
        lg = _local_graph(11)
        ref = kernels.get("sssp_border_adjacency", "reference")(lg)
        csr = kernels.get("sssp_border_adjacency", "vectorized")(lg)
        for u, edges in ref.items():
            lo, hi = csr.ptr[u], csr.ptr[u + 1]
            assert csr.degree[u] == len(edges)
            assert csr.home[lo:hi].tolist() == [v for v, _ in edges]
            assert csr.weight[lo:hi].tolist() == [w for _, w in edges]
        # Nodes absent from the dict have zero CSR degree.
        absent = set(range(lg.n_global)) - set(ref)
        assert all(csr.degree[u] == 0 for u in absent)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_apply_updates_identical_state(self, seed):
        """Same dist matrix, same changed set, same heap-push multiset."""
        lg = _local_graph(seed)
        rng = np.random.default_rng(seed + 100)
        nsrc = 3
        border = sorted(
            kernels.get("sssp_border_adjacency", "reference")(lg)
        )
        if not border:
            pytest.skip("partition produced no border nodes")
        # One batch per peer; each (k, u) used at most once, as the
        # sender discipline guarantees.
        records = [
            (k, u, float(rng.random() * 3))
            for k in range(nsrc)
            for u in rng.choice(
                border, size=min(5, len(border)), replace=False
            ).tolist()
        ]
        rng.shuffle(records)
        cut = len(records) // 2
        batches = [records[:cut], records[cut:]]

        states = {}
        for mode in MODES:
            adj = kernels.get("sssp_border_adjacency", mode)(lg)
            dist = np.full((nsrc, lg.n_global), np.inf)
            # Pre-existing labels make some updates non-improving.
            pre = np.random.default_rng(seed).random((nsrc, lg.n_global))
            dist[pre < 0.2] = 1.0
            queues = [[] for _ in range(nsrc)]
            changed = set()
            scans = kernels.get("sssp_apply_updates", mode)(
                adj, dist, queues, changed, [list(b) for b in batches]
            )
            states[mode] = (
                scans, dist.copy(), changed,
                [sorted(q) for q in queues],  # heap multisets
            )
        r, v = states["reference"], states["vectorized"]
        assert r[0] == v[0]                      # border_scans charge
        assert np.array_equal(r[1], v[1])        # dist (inf == inf ok)
        assert r[2] == v[2]                      # changed set
        assert r[3] == v[3]                      # push multisets

    @pytest.mark.parametrize("work_factor", [None, 1, 7])
    def test_relax_identical_state(self, work_factor):
        lg = _local_graph(21)
        nsrc = 2
        states = {}
        for mode in MODES:
            dist = np.full((nsrc, lg.n_global), np.inf)
            queues = [[] for _ in range(nsrc)]
            changed = set()
            for k in range(nsrc):
                for u in lg.home[: 3].tolist():
                    dist[k, u] = 0.5 * k
                    heapq.heappush(queues[k], (0.5 * k, u))
            scanned = kernels.get("sssp_relax", mode)(
                lg, dist, queues, changed, work_factor
            )
            states[mode] = (
                scanned, dist.copy(), changed, [sorted(q) for q in queues]
            )
        r, v = states["reference"], states["vectorized"]
        assert r[0] == v[0]
        assert np.array_equal(r[1], v[1])
        assert r[2] == v[2]
        assert r[3] == v[3]


# ---------------------------------------------------------------------------
# Samplesort partition kernel
# ---------------------------------------------------------------------------


class TestSortKernel:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=200),
        p=st.integers(min_value=1, max_value=8),
        seed=st.integers(0, 1000),
    )
    def test_property_cuts_match(self, n, p, seed):
        rng = np.random.default_rng(seed)
        block = np.sort(rng.integers(0, 20, size=n).astype(np.float64))
        splitters = np.sort(rng.integers(0, 20, size=p - 1)).astype(
            np.float64
        )
        ref = kernels.get("sort_partition", "reference")(block, splitters)
        vec = kernels.get("sort_partition", "vectorized")(block, splitters)
        assert np.array_equal(ref, vec)

    def test_duplicates_at_splitter(self):
        block = np.array([1.0, 2.0, 2.0, 2.0, 3.0])
        splitters = np.array([2.0])
        ref = kernels.get("sort_partition", "reference")(block, splitters)
        vec = kernels.get("sort_partition", "vectorized")(block, splitters)
        assert np.array_equal(ref, vec)
        assert vec.tolist() == [0, 4, 5]  # bisect_right semantics


# ---------------------------------------------------------------------------
# End-to-end: every application, both modes, identical answers + ledgers
# ---------------------------------------------------------------------------


class TestEndToEndModes:
    def _both(self, fn):
        out = {}
        for mode in MODES:
            with kernels.using(mode):
                out[mode] = fn()
        return out["reference"], out["vectorized"]

    def test_nbody_identical_interaction_counts(self):
        """Same tree → same MAC decisions → identical counts, and forces
        agree to 1e-10 (only summation order may differ)."""
        b = plummer(300, seed=31)
        tree = BHTree(b.pos, b.mass)
        skip = np.arange(len(b), dtype=np.int64)

        def run():
            acc, inter = kernels.get("bh_walk")(
                tree, b.pos, 0.8, 0.05, skip
            )
            return acc, inter

        (acc_r, int_r), (acc_v, int_v) = self._both(run)
        assert np.array_equal(int_r, int_v)
        assert np.allclose(acc_r, acc_v, rtol=0, atol=1e-10)

    def test_mst_identical_edges_and_ledger(self):
        g = random_connected_graph(250, 1000, seed=32)
        owner = np.random.default_rng(32).integers(0, 4, size=250)

        def run():
            r = bsp_mst(g, owner, 4)
            return sorted(r.edges), r.weight, r.ncomponents, ledger(r.stats)

        ref, vec = self._both(run)
        assert ref == vec

    def test_sssp_identical_distances_and_ledger(self):
        g = random_connected_graph(200, 800, seed=33)
        owner = np.random.default_rng(33).integers(0, 4, size=200)

        def run():
            r = bsp_sssp(g, owner, 4, source=0, work_factor=40)
            return r.dist.tolist(), ledger(r.stats)

        ref, vec = self._both(run)
        assert ref == vec

    def test_msp_identical_distances_and_ledger(self):
        g = random_connected_graph(150, 600, seed=34)
        owner = np.random.default_rng(34).integers(0, 3, size=150)

        def run():
            r = bsp_msp(g, owner, 3, sources=[0, 7, 13])
            return r.dist.tolist(), ledger(r.stats)

        ref, vec = self._both(run)
        assert ref == vec

    def test_sort_identical_output_and_ledger(self):
        data = np.random.default_rng(35).random(2000)

        def run():
            r = bsp_sample_sort(data, 4)
            return r.data.tolist(), r.bucket_sizes, ledger(r.stats)

        ref, vec = self._both(run)
        assert ref == vec
        assert ref[0] == sorted(data.tolist())

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_property_sssp_modes_agree(self, seed):
        g = random_connected_graph(60, 200, seed=seed)
        owner = np.random.default_rng(seed).integers(0, 2, size=60)

        def run():
            r = bsp_sssp(g, owner, 2, source=0, work_factor=10)
            return r.dist.tolist(), ledger(r.stats)

        ref, vec = self._both(run)
        assert ref == vec
