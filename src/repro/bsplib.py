"""A BSPlib-flavoured adapter over the Green BSP core.

The Green BSP library predates BSPlib (Hill et al., 1998), but the
standard that grew out of this family of libraries is BSPlib, and most
surviving BSP code is written against its vocabulary.  This module lets
such code run on repro's backends with minimal translation:

=====================  ==========================================
BSPlib                 repro.bsplib
=====================  ==========================================
``bsp_pid()``          ``ctx.pid``
``bsp_nprocs()``       ``ctx.nprocs``
``bsp_sync()``         ``ctx.sync()``
``bsp_send(pid, tag,   ``ctx.bsp_send(pid, tag, payload)``
  payload)``
``bsp_qsize()``        ``ctx.qsize()``
``bsp_get_tag()``      ``ctx.get_tag()``
``bsp_move()``         ``ctx.move()``
``bsp_push_reg/put/    ``ctx.push_reg(array)`` / ``ctx.put(...)`` /
  get/pop_reg``          ``ctx.get(...)`` / ``ctx.pop_reg(h)``
``bsp_time()``         ``ctx.time()``
=====================  ==========================================

Semantics follow BSPlib's *buffered* (safe) variants: ``put`` copies on
call and lands at the next sync; ``get`` reads the source as of the next
sync and materializes after it (one extra barrier, as in
:mod:`repro.core.drma`, which supplies the registration machinery).
BSMP (``bsp_send``/``bsp_move``) delivers tagged messages after the sync,
in deterministic order.

``bsp_sync`` here always costs **two** core supersteps — the DRMA
request/reply round trip — so S in the statistics is twice the BSPlib
superstep count plus one.  BSPlib-on-shared-memory avoids that; the gap
is the same one the paper notes between the Oxford and Green libraries.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from .core.api import Bsp
from .core.drma import Drma, GetFuture
from .core.errors import BspUsageError
from .core.runtime import BspRunResult, bsp_run


@dataclass(frozen=True)
class CommPattern:
    """One processor's static communication graph, for barrier elision.

    ``sends_to`` — the pids this processor may address; ``receives_from``
    — the pids it may hear from.  Under ``sync="elide"`` the runtime
    exchanges completion frames only along these links, so a processor
    with a sparse pattern pays O(degree) per barrier instead of O(p).
    Declarations must be mutually consistent across processors (q in p's
    ``sends_to`` iff p in q's ``receives_from``); the library cannot
    check this locally, and an inconsistent declaration stalls the run
    the way a lost message would.  ``validate=True`` makes an
    out-of-pattern send raise
    :class:`~repro.core.errors.BspUsageError` at the boundary.
    """

    sends_to: frozenset[int]
    receives_from: frozenset[int]
    validate: bool = True

    @classmethod
    def build(cls, pid: int, nprocs: int, sends_to,
              receives_from=None, *, validate: bool = True) -> "CommPattern":
        """Normalize raw pid iterables into a pattern for ``pid``.

        Drops the own pid (self-sends are always local), range-checks
        every declared peer, and defaults ``receives_from`` to the
        symmetric closure (receive from exactly whom you send to).
        """
        out = frozenset(int(q) for q in sends_to) - {pid}
        src = (out if receives_from is None
               else frozenset(int(q) for q in receives_from) - {pid})
        for peer in out | src:
            if not 0 <= peer < nprocs:
                raise BspUsageError(
                    f"pid {pid} declared pattern peer {peer}, outside "
                    f"range({nprocs})")
        return cls(sends_to=out, receives_from=src, validate=validate)


class BsplibContext:
    """Per-processor BSPlib-style facade over a :class:`Bsp` context."""

    def __init__(self, bsp: Bsp):
        self._bsp = bsp
        self._drma = Drma(bsp)
        self._queue: deque[tuple[Any, Any]] = deque()
        self._pending_gets: list[tuple[GetFuture, np.ndarray, int]] = []
        self._t0 = time.perf_counter()

    # -- SPMD inquiry -----------------------------------------------------

    @property
    def pid(self) -> int:
        """``bsp_pid()``."""
        return self._bsp.pid

    @property
    def nprocs(self) -> int:
        """``bsp_nprocs()``."""
        return self._bsp.nprocs

    def time(self) -> float:
        """``bsp_time()``: elapsed seconds on this processor."""
        return time.perf_counter() - self._t0

    def pattern(self, sends_to, receives_from=None, *,
                validate: bool = True) -> None:
        """Declare this processor's static communication pattern.

        Forwards to :meth:`repro.core.api.Bsp.pattern`; see
        :class:`CommPattern` for the elision semantics.
        """
        self._bsp.pattern(sends_to, receives_from, validate=validate)

    # -- BSMP (tagged message passing) --------------------------------------

    def bsp_send(self, pid: int, tag: Any, payload: Any) -> None:
        """``bsp_send``: queue a tagged message for delivery at the sync."""
        self._bsp.send(pid, ("bsmp", tag, payload))

    def qsize(self) -> int:
        """``bsp_qsize()``: number of undelivered received messages."""
        return len(self._queue)

    def get_tag(self) -> Any | None:
        """``bsp_get_tag()``: tag of the head message (None when empty)."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def move(self) -> Any | None:
        """``bsp_move()``: pop and return the head message's payload."""
        if not self._queue:
            return None
        return self._queue.popleft()[1]

    def messages(self) -> list[tuple[Any, Any]]:
        """Drain all queued (tag, payload) pairs (convenience)."""
        out = list(self._queue)
        self._queue.clear()
        return out

    # -- DRMA ---------------------------------------------------------------

    def push_reg(self, array: np.ndarray) -> int:
        """``bsp_push_reg``: register a 1-D array; returns its handle.

        Must be called collectively in the same order everywhere,
        matching BSPlib's registration sequence semantics.
        """
        return self._drma.register(array)

    def pop_reg(self, handle: int) -> None:
        """``bsp_pop_reg``: registration is positional and permanent in
        this adapter; popping is accepted and ignored (documented
        divergence — reuse of popped slots is not supported)."""

    def put(self, pid: int, handle: int, values: Any, offset: int = 0
            ) -> None:
        """``bsp_put`` (buffered): lands at the next :meth:`sync`."""
        self._drma.put(pid, handle, values, offset)

    def get(self, pid: int, handle: int, offset: int, length: int
            ) -> GetFuture:
        """``bsp_get`` (buffered): value is available after :meth:`sync`."""
        return self._drma.get(pid, handle, offset, length)

    def hpput(self, pid: int, handle: int, values: Any, offset: int = 0
              ) -> None:
        """``bsp_hpput``: in this adapter identical to the safe put (no
        unbuffered fast path exists on a message-passing substrate)."""
        self.put(pid, handle, values, offset)

    # -- synchronization ------------------------------------------------------

    def sync(self) -> None:
        """``bsp_sync()``: one BSPlib superstep (= two core supersteps).

        Delivers puts, serves gets, and makes BSMP messages available via
        :meth:`move` in deterministic (sender, order) sequence.
        """
        bsmp: list[tuple[Any, Any]] = []

        # The DRMA layer's sync() consumes the packet stream; BSMP
        # messages ride the same superstep, so intercept them first by
        # wrapping the context's packet iterator.  Simplest correct
        # approach: run the DRMA protocol manually around a tagged drain.
        drma = self._drma
        bsp = self._bsp
        bsp.sync()
        for pkt in bsp.packets():
            tag = pkt.payload[0]
            if tag == "bsmp":
                bsmp.append((pkt.payload[1], pkt.payload[2]))
            elif tag == "drma-put":
                _, handle, offset, data = pkt.payload
                target = drma._check_handle(handle)
                drma._bounds(target, offset, len(data))
                target[offset : offset + len(data)] = data
            elif tag == "drma-getreq":
                _, handle, offset, length, ticket = pkt.payload
                source = drma._check_handle(handle)
                drma._bounds(source, offset, length)
                bsp.send(
                    pkt.src,
                    ("drma-getrep", ticket, source[offset:offset + length].copy()),
                )
            else:
                raise BspUsageError(f"unexpected packet tag {tag!r}")
        bsp.sync()
        replies = {}
        for pkt in bsp.packets():
            tag, ticket, data = pkt.payload
            if tag != "drma-getrep":
                raise BspUsageError(
                    "plain sends must not cross a bsplib sync boundary"
                )
            replies[ticket] = data
        for ticket, future in drma._pending_gets:
            if ticket not in replies:
                raise BspUsageError(f"get ticket {ticket} missing its reply")
            future._value = replies[ticket]
            future._ready = True
        drma._pending_gets.clear()
        self._queue.extend(bsmp)


@dataclass(frozen=True)
class BsplibRun:
    """Results of a bsplib program run."""

    results: list[Any]
    stats: Any

    @classmethod
    def from_core(cls, run: BspRunResult) -> "BsplibRun":
        return cls(results=run.results, stats=run.stats)


def bsp_begin(
    program: Callable[..., Any],
    nprocs: int,
    *,
    backend: str = "simulator",
    args: Sequence[Any] = (),
    retries: int = 0,
) -> BsplibRun:
    """Run a BSPlib-style SPMD program: ``program(ctx, *args)``.

    The name mirrors BSPlib's ``bsp_begin``; Python needs no matching
    ``bsp_end`` — returning from the program ends the computation.
    ``retries`` re-runs the program after a worker-process crash
    (:class:`~repro.core.errors.WorkerCrashError`), as in
    :func:`~repro.core.runtime.bsp_run`.
    """

    def wrapper(bsp: Bsp, *inner: Any) -> Any:
        return program(BsplibContext(bsp), *inner)

    return BsplibRun.from_core(
        bsp_run(wrapper, nprocs, backend=backend, args=tuple(args),
                retries=retries)
    )
