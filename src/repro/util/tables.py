"""Paper-style ASCII tables for the benchmark harness."""

from __future__ import annotations

from typing import Any, Sequence


def format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Monospace table with right-aligned numeric-ish columns."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> None:
    print()
    print(render_table(headers, rows, title=title))
    print()
