"""Superstep-level inspection of a run: tables, CSV, cost attribution.

The BSP model's pedagogical strength is that a program's behaviour on any
machine is readable off its per-superstep (w_i, h_i) profile.  These
helpers render that profile — as a table, as CSV for external tooling,
and as a "which superstep costs what on machine X" attribution that
pinpoints the phase a given machine's g or L punishes.
"""

from __future__ import annotations

import io
from typing import Sequence

from ..core.machines import MachineProfile
from ..core.stats import ProgramStats
from .tables import render_table


def superstep_table(
    stats: ProgramStats,
    *,
    limit: int = 20,
) -> str:
    """Human-readable per-superstep profile (first ``limit`` rows)."""
    headers = ["step", "w (ms)", "charged", "h", "msgs", "total work (ms)"]
    rows: list[list[object]] = []
    for s in stats.supersteps[:limit]:
        rows.append([
            s.index, s.w * 1e3, s.charged, s.h, s.m, s.total_work * 1e3,
        ])
    title = f"per-superstep profile ({stats.summary()})"
    text = render_table(headers, rows, title=title)
    hidden = stats.S - min(limit, stats.S)
    if hidden > 0:
        text += f"\n... {hidden} more supersteps"
    return text


def w_profile_table(
    stats: ProgramStats,
    *,
    host_to_sgi: float = 1.0,
    use_charged: bool = True,
    limit: int = 20,
    title: str | None = None,
) -> str:
    """Measured local-compute seconds per superstep beside predicted W.

    ``measured w`` is the wall-clock local-compute time of the slowest
    processor in each superstep — what the BSP clock actually accrued on
    this host.  ``pred W`` maps the superstep's work depth (charged
    operation counts when ``use_charged``, measured seconds otherwise)
    onto paper-SGI seconds through ``host_to_sgi``, the same transplant
    the report tables apply.  Reading the two columns side by side shows
    which supersteps' measured compute diverges from the model — the
    first thing to check when a predicted speed-up curve misses.
    """
    headers = ["step", "measured w (ms)", "charged", "pred W (ms)", "h"]
    rows: list[list[object]] = []
    for s in stats.supersteps[:limit]:
        depth = s.charged if use_charged else s.w
        rows.append([
            s.index, s.w * 1e3, s.charged, depth * host_to_sgi * 1e3, s.h,
        ])
    total_depth = stats.charged_depth if use_charged else stats.W
    rows.append([
        "total", stats.W * 1e3, stats.charged_depth,
        total_depth * host_to_sgi * 1e3, stats.H,
    ])
    text = render_table(
        headers, rows,
        title=title or f"W profile ({stats.summary()})",
    )
    hidden = stats.S - min(limit, stats.S)
    if hidden > 0:
        text += f"\n... {hidden} more supersteps (total row covers all)"
    return text


def to_csv(stats: ProgramStats) -> str:
    """Machine-readable per-superstep dump (header + one row per step)."""
    buf = io.StringIO()
    buf.write("index,w_seconds,charged,h,h_sent_max,h_recv_max,m,"
              "total_work,total_charged,total_msgs\n")
    for s in stats.supersteps:
        buf.write(
            f"{s.index},{s.w!r},{s.charged!r},{s.h},{s.h_sent_max},"
            f"{s.h_recv_max},{s.m},{s.total_work!r},{s.total_charged!r},"
            f"{s.total_msgs}\n"
        )
    return buf.getvalue()


def hotspots(
    stats: ProgramStats,
    machine: MachineProfile,
    *,
    top: int = 5,
    work_scale: float = 1.0,
) -> list[tuple[int, float, str]]:
    """The ``top`` costliest supersteps on ``machine``.

    Returns (superstep index, predicted seconds, dominant term) tuples,
    sorted by cost.  The dominant term — "work", "bandwidth", or
    "latency" — says which knob (W, H, or S) to attack first, the
    paper's three-way optimization objective.
    """
    p = stats.nprocs
    g, latency = machine.g(p), machine.L(p)
    scored: list[tuple[int, float, str]] = []
    for s in stats.supersteps:
        terms = {
            "work": s.w * work_scale,
            "bandwidth": g * s.h,
            "latency": latency,
        }
        dominant = max(terms, key=terms.__getitem__)
        scored.append((s.index, sum(terms.values()), dominant))
    scored.sort(key=lambda item: -item[1])
    return scored[:top]


def compare_machines(
    stats: ProgramStats,
    machines: Sequence[MachineProfile],
    *,
    work_scale: float = 1.0,
) -> str:
    """One-line cost breakdown per machine, as a table."""
    headers = ["machine", "pred (s)", "work", "bandwidth", "latency",
               "dominant"]
    rows: list[list[object]] = []
    for machine in machines:
        if not machine.supports(stats.nprocs):
            rows.append([machine.name, None, None, None, None, "-"])
            continue
        g, latency = machine.g(stats.nprocs), machine.L(stats.nprocs)
        work = stats.W * work_scale
        bandwidth = g * stats.H
        lat = latency * stats.S
        terms = {"work": work, "bandwidth": bandwidth, "latency": lat}
        rows.append([
            machine.name, work + bandwidth + lat, work, bandwidth, lat,
            max(terms, key=terms.__getitem__),
        ])
    return render_table(headers, rows, title="cost attribution by machine")
