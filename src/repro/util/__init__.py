"""Shared utilities: paper-style tables and superstep tracing."""

from .tables import format_cell, print_table, render_table
from .trace import (
    compare_machines,
    hotspots,
    superstep_table,
    to_csv,
    w_profile_table,
)

__all__ = [
    "compare_machines",
    "format_cell",
    "hotspots",
    "print_table",
    "render_table",
    "superstep_table",
    "to_csv",
    "w_profile_table",
]
