"""Collective operations built purely on Green BSP send/sync.

The paper contrasts BSP with PVM/MPI precisely here (Section 1.3): rich
libraries optimize each collective per machine, which "rules out any simple
cost model", whereas BSP builds collectives from its two primitives and
*costs them* with ``W + gH + LS``.  Each function documents its BSP cost so
a programmer can pick variants from a machine's g and L — e.g. the
two-phase broadcast trades an extra superstep (+L) for an h-relation that
drops from ``(p-1)·m`` to ``~m + p``.
"""

from .ops import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    broadcast,
    gather,
    reduce,
    scan,
    scatter,
    total_exchange,
    tree_reduce,
)

__all__ = [
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "broadcast",
    "gather",
    "reduce",
    "scan",
    "scatter",
    "total_exchange",
    "tree_reduce",
]
