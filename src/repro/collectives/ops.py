"""Collective operations built purely on Green BSP ``send``/``sync``.

Every function takes the per-processor :class:`~repro.core.api.Bsp` context
as its first argument, consumes one or more *whole supersteps*, and must be
called by **all** processors in the same superstep.  Docstrings state each
collective's BSP cost in terms of the message size ``m`` (in 16-byte
packets) and processor count ``p``, so variants can be chosen from a
machine's g and L exactly as the paper prescribes.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence, TypeVar

from ..core.api import Bsp
from ..core.errors import BspUsageError
from ..core.packets import h_units

T = TypeVar("T")


def barrier(bsp: Bsp) -> None:
    """Pure synchronization: one superstep, h = 0, cost ``L``."""
    bsp.sync()


def broadcast(
    bsp: Bsp,
    value: Any = None,
    root: int = 0,
    *,
    two_phase: bool | None = None,
) -> Any:
    """Broadcast ``value`` from ``root`` to all processors.

    Two variants, selectable with ``two_phase`` (default: pick by size):

    * **one-stage** — root sends the whole value to everyone.
      Cost: ``g·(p−1)·m + L`` (one superstep); best for small ``m`` or
      large ``L``.
    * **two-phase** — root scatters ``p`` slices, then everyone
      all-gathers.  Cost: ``≈ 2·g·(m + p) + 2L`` (two supersteps); best
      when ``m ≫ p`` and bandwidth dominates latency.  Only available for
      values that slice like sequences/bytes; the value is delivered
      re-assembled.

    Returns the broadcast value on every processor.
    """
    p = bsp.nprocs
    if not 0 <= root < p:
        raise BspUsageError(f"broadcast root {root} out of range({p})")
    if two_phase is None:
        two_phase = (
            bsp.pid == root
            and isinstance(value, (bytes, bytearray, list, tuple))
            and h_units(value) >= 4 * p
        )
        # All processors must agree on the variant; agreement costs one
        # superstep, so auto-selection is only safe when the type is known
        # root-side.  Broadcast the flag itself one-stage.
        if bsp.pid == root:
            for q in range(p):
                if q != root:
                    bsp.send(q, ("bcast-mode", two_phase))
        bsp.sync()
        if bsp.pid != root:
            (pkt,) = list(bsp.packets())
            two_phase = pkt.payload[1]
        else:
            list(bsp.packets())
    if not two_phase:
        if bsp.pid == root:
            for q in range(p):
                if q != root:
                    bsp.send(q, value)
        bsp.sync()
        if bsp.pid == root:
            list(bsp.packets())
            return value
        (pkt,) = list(bsp.packets())
        return pkt.payload

    # Two-phase: scatter slices, then allgather them.
    if bsp.pid == root:
        n = len(value)
        bounds = [(k * n) // p for k in range(p + 1)]
        slices = [value[bounds[k] : bounds[k + 1]] for k in range(p)]
        kind = type(value)
    else:
        slices = None
        kind = None
    my_slice = scatter(bsp, slices, root=root)
    parts = allgather(bsp, my_slice)
    first = parts[0]
    if isinstance(first, (bytes, bytearray)):
        return type(first)().join(parts)
    out: list[Any] = []
    for part in parts:
        out.extend(part)
    return tuple(out) if isinstance(first, tuple) else out


def scatter(bsp: Bsp, values: Sequence[Any] | None, root: int = 0) -> Any:
    """Distribute ``values[q]`` from ``root`` to processor ``q``.

    One superstep; root's h is ``sum_q m_q``.  ``values`` is only read on
    the root (length must be ``p``); returns this processor's slice.
    """
    p = bsp.nprocs
    if bsp.pid == root:
        if values is None or len(values) != p:
            raise BspUsageError(
                f"scatter root needs exactly {p} values, got "
                f"{None if values is None else len(values)}"
            )
        for q in range(p):
            bsp.send(q, values[q])
    bsp.sync()
    (pkt,) = list(bsp.packets())
    return pkt.payload


def gather(bsp: Bsp, value: Any, root: int = 0) -> list[Any] | None:
    """Collect one value per processor at ``root`` (pid order).

    One superstep; root receives ``sum_q m_q``.  Returns the list on the
    root, ``None`` elsewhere.
    """
    bsp.send(root, (bsp.pid, value))
    bsp.sync()
    if bsp.pid != root:
        return None
    out: list[Any] = [None] * bsp.nprocs
    for pkt in bsp.packets():
        pid, value = pkt.payload
        out[pid] = value
    return out


def allgather(bsp: Bsp, value: Any) -> list[Any]:
    """Every processor ends with ``[value_0, ..., value_{p-1}]``.

    One superstep, total exchange; h = ``(p−1)·m`` per processor.
    """
    for q in range(bsp.nprocs):
        if q != bsp.pid:
            bsp.send(q, (bsp.pid, value))
    bsp.sync()
    out: list[Any] = [None] * bsp.nprocs
    out[bsp.pid] = value
    for pkt in bsp.packets():
        pid, payload = pkt.payload
        out[pid] = payload
    return out


def alltoall(bsp: Bsp, values: Sequence[Any]) -> list[Any]:
    """Personalized total exchange: processor ``i`` gets ``values_j[i]``.

    ``values`` must have length ``p`` (entry ``q`` goes to processor
    ``q``).  One superstep; h = ``sum_{q≠pid} m_q`` out per processor.
    """
    p = bsp.nprocs
    if len(values) != p:
        raise BspUsageError(f"alltoall needs exactly {p} values, got {len(values)}")
    for q in range(p):
        if q != bsp.pid:
            bsp.send(q, (bsp.pid, values[q]))
    bsp.sync()
    out: list[Any] = [None] * p
    out[bsp.pid] = values[bsp.pid]
    for pkt in bsp.packets():
        pid, payload = pkt.payload
        out[pid] = payload
    return out


#: Alias emphasizing the communication pattern the paper's g-benchmark uses.
total_exchange = alltoall


def reduce(
    bsp: Bsp,
    value: T,
    op: Callable[[T, T], T],
    root: int = 0,
) -> T | None:
    """Combine one value per processor with ``op`` at ``root``.

    One superstep (gather then local fold): root's h is ``(p−1)·m``; the
    fold is applied in pid order, so non-commutative ``op`` is safe as
    long as it is associative.  Returns the result on root, ``None``
    elsewhere.
    """
    values = gather(bsp, value, root=root)
    if bsp.pid != root:
        return None
    assert values is not None
    acc = values[0]
    for item in values[1:]:
        acc = op(acc, item)
    return acc


def allreduce(bsp: Bsp, value: T, op: Callable[[T, T], T]) -> T:
    """Combine values with ``op``; every processor gets the result.

    Implemented as a symmetric all-gather + local fold: **one** superstep
    with h = ``(p−1)·m``, versus two supersteps for reduce-then-broadcast.
    For the small values typical of convergence flags this is the right
    trade on every paper machine (L ≫ g·p·m).
    """
    values = allgather(bsp, value)
    acc = values[0]
    for item in values[1:]:
        acc = op(acc, item)
    return acc


def scan(bsp: Bsp, value: T, op: Callable[[T, T], T]) -> T:
    """Inclusive prefix combine: processor ``i`` gets ``op``-fold of
    ``value_0 .. value_i``.

    One superstep: each processor sends its value to all *higher* pids
    (h ≤ ``(p−1)·m``) and folds what it receives in pid order.
    """
    for q in range(bsp.pid + 1, bsp.nprocs):
        bsp.send(q, (bsp.pid, value))
    bsp.sync()
    received = sorted((pkt.payload for pkt in bsp.packets()), key=lambda kv: kv[0])
    acc: T | None = None
    for _, item in received:
        acc = item if acc is None else op(acc, item)
    return value if acc is None else op(acc, value)


def tree_reduce(
    bsp: Bsp,
    value: T,
    op: Callable[[T, T], T],
    *,
    fanin: int = 2,
) -> T | None:
    """Tree reduction to processor 0 in ``ceil(log_fanin p)`` supersteps.

    Cost: ``log_fanin(p) · (g·(fanin−1)·m + L)``.  Beats the flat
    :func:`reduce` when ``g·p·m > log(p)·L`` — i.e. for large messages on
    low-latency machines (the SGI column of Figure 2.1); the flat version
    wins on the Cenju/PC-LAN latency profiles.  Provided for the
    collectives ablation benchmark.
    """
    if fanin < 2:
        raise BspUsageError(f"fanin must be >= 2, got {fanin}")
    p = bsp.nprocs
    acc = value
    stride = 1
    rounds = max(1, math.ceil(math.log(p, fanin))) if p > 1 else 0
    for _ in range(rounds):
        group = stride * fanin
        if bsp.pid % group != 0:
            parent = (bsp.pid // group) * group
            if bsp.pid % stride == 0:
                bsp.send(parent, (bsp.pid, acc))
            bsp.sync()
            list(bsp.packets())
        else:
            bsp.sync()
            received = sorted(
                (pkt.payload for pkt in bsp.packets()), key=lambda kv: kv[0]
            )
            for _, item in received:
                acc = op(acc, item)
        stride = group
    return acc if bsp.pid == 0 else None
