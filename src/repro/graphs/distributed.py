"""The paper's distributed graph layout: home nodes and border nodes.

Sections 3.3/3.4: "Each processor contains a data structure representing
the portion of the graph for which it is responsible, and also a copy of
each node in the graph that is connected to a node in its portion.  The
nodes for which a processor is responsible are called *home nodes* and the
other nodes are called *border nodes*."

:class:`LocalGraph` is that per-processor structure.  It also precomputes
*watchers*: for each home node, the set of other processors that hold it as
a border node — exactly the processors that must be notified when the home
node's label changes.  An algorithm that only ever sends one message per
(changed home node, watcher) pair is *conservative* in the paper's sense:
its per-processor traffic is bounded by its border-node count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph


@dataclass(frozen=True)
class LocalGraph:
    """Processor-local view of a partitioned graph.

    All node ids are *global*; ``local_of`` maps a global home id to its
    row in the local CSR arrays (−1 for non-home nodes).
    """

    pid: int
    nprocs: int
    n_global: int
    owner: np.ndarray          # global: node -> owning processor
    home: np.ndarray           # sorted global ids owned by this processor
    border: np.ndarray         # sorted global ids adjacent to home, not home
    local_of: np.ndarray       # global id -> local home row, or -1
    indptr: np.ndarray         # CSR over local home rows
    indices: np.ndarray        # neighbor *global* ids
    weights: np.ndarray
    watcher_ptr: np.ndarray    # CSR over local home rows ...
    watcher_pid: np.ndarray    # ... listing processors that border the node

    @classmethod
    def build(cls, graph: Graph, owner: np.ndarray, pid: int, nprocs: int
              ) -> "LocalGraph":
        owner = np.asarray(owner, dtype=np.int64)
        if len(owner) != graph.n:
            raise ValueError("owner array length must equal node count")
        if len(owner) and not (0 <= owner.min() and owner.max() < nprocs):
            raise ValueError(
                f"owner values must lie in range({nprocs}); got "
                f"[{owner.min()}, {owner.max()}]"
            )
        home = np.flatnonzero(owner == pid).astype(np.int64)
        local_of = np.full(graph.n, -1, dtype=np.int64)
        local_of[home] = np.arange(len(home), dtype=np.int64)

        counts = graph.indptr[home + 1] - graph.indptr[home] if len(home) else \
            np.zeros(0, dtype=np.int64)
        indptr = np.zeros(len(home) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(indptr[-1], dtype=np.int64)
        weights = np.empty(indptr[-1], dtype=np.float64)
        for row, gid in enumerate(home):
            lo, hi = graph.indptr[gid], graph.indptr[gid + 1]
            indices[indptr[row]: indptr[row + 1]] = graph.indices[lo:hi]
            weights[indptr[row]: indptr[row + 1]] = graph.weights[lo:hi]

        nbr_owner = owner[indices] if len(indices) else np.zeros(0, np.int64)
        foreign = nbr_owner != pid
        border = np.unique(indices[foreign])

        # Watchers per home row: unique foreign owners among its neighbors.
        watcher_ptr = np.zeros(len(home) + 1, dtype=np.int64)
        watcher_chunks: list[np.ndarray] = []
        for row in range(len(home)):
            seg = nbr_owner[indptr[row]: indptr[row + 1]]
            uniq = np.unique(seg[seg != pid])
            watcher_chunks.append(uniq)
            watcher_ptr[row + 1] = watcher_ptr[row] + len(uniq)
        watcher_pid = (
            np.concatenate(watcher_chunks)
            if watcher_chunks
            else np.zeros(0, dtype=np.int64)
        )
        return cls(
            pid=pid,
            nprocs=nprocs,
            n_global=graph.n,
            owner=owner,
            home=home,
            border=border,
            local_of=local_of,
            indptr=indptr,
            indices=indices,
            weights=weights,
            watcher_ptr=watcher_ptr,
            watcher_pid=watcher_pid,
        )

    # -- queries ------------------------------------------------------------

    @property
    def nhome(self) -> int:
        return len(self.home)

    @property
    def nborder(self) -> int:
        return len(self.border)

    def is_home(self, gid: int) -> bool:
        return self.local_of[gid] >= 0

    def neighbors(self, gid: int) -> tuple[np.ndarray, np.ndarray]:
        """(global neighbor ids, weights) of home node ``gid``."""
        row = self.local_of[gid]
        if row < 0:
            raise KeyError(f"node {gid} is not a home node of pid {self.pid}")
        return (
            self.indices[self.indptr[row]: self.indptr[row + 1]],
            self.weights[self.indptr[row]: self.indptr[row + 1]],
        )

    def watchers(self, gid: int) -> np.ndarray:
        """Processors holding home node ``gid`` as a border node."""
        row = self.local_of[gid]
        if row < 0:
            raise KeyError(f"node {gid} is not a home node of pid {self.pid}")
        return self.watcher_pid[self.watcher_ptr[row]: self.watcher_ptr[row + 1]]

    def home_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edges with both endpoints home, each once (u < v), global ids."""
        src = np.repeat(self.home, np.diff(self.indptr))
        dst = self.indices
        keep = (self.local_of[dst] >= 0) & (src < dst)
        return src[keep], dst[keep], self.weights[keep]

    def cut_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edges from a home node to a foreign node (home endpoint first)."""
        src = np.repeat(self.home, np.diff(self.indptr))
        keep = self.local_of[self.indices] < 0
        return src[keep], self.indices[keep], self.weights[keep]


def partition_graph(
    graph: Graph, owner: np.ndarray, nprocs: int
) -> list[LocalGraph]:
    """Build every processor's :class:`LocalGraph` (harness convenience)."""
    return [LocalGraph.build(graph, owner, pid, nprocs) for pid in range(nprocs)]
