"""Compact CSR graph representation shared by the graph applications.

An undirected weighted graph stored in compressed-sparse-row form with
NumPy arrays — the data layout every graph app (MST, SP, MSP) iterates
over.  Construction deduplicates parallel edges (keeping the lightest) and
rejects self-loops, matching the paper's geometric input class where an
edge is a unique point pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Graph:
    """Undirected weighted graph in CSR form.

    Attributes
    ----------
    indptr, indices, weights:
        Standard CSR arrays; every undirected edge appears twice (u→v and
        v→u) with the same weight.
    """

    n: int
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges_u: np.ndarray,
        edges_v: np.ndarray,
        edge_weights: np.ndarray,
    ) -> "Graph":
        """Build from undirected edge arrays (each edge listed once).

        Self-loops are rejected; duplicate (u, v) pairs keep the minimum
        weight.
        """
        u = np.asarray(edges_u, dtype=np.int64)
        v = np.asarray(edges_v, dtype=np.int64)
        w = np.asarray(edge_weights, dtype=np.float64)
        if not (len(u) == len(v) == len(w)):
            raise ValueError("edge arrays must have equal length")
        if len(u) and (u.min() < 0 or v.min() < 0 or max(u.max(), v.max()) >= n):
            raise ValueError("edge endpoint out of range")
        if np.any(u == v):
            raise ValueError("self-loops are not allowed")
        # Canonicalize and dedupe, keeping the lightest parallel edge.
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        order = np.lexsort((w, hi, lo))
        lo, hi, w = lo[order], hi[order], w[order]
        if len(lo):
            keep = np.ones(len(lo), dtype=bool)
            keep[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
            lo, hi, w = lo[keep], hi[keep], w[keep]
        # Symmetrize into CSR.
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        ww = np.concatenate([w, w])
        order = np.argsort(src, kind="stable")
        src, dst, ww = src[order], dst[order], ww[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(n=n, indptr=indptr, indices=dst, weights=ww)

    @property
    def nedges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def neighbors(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbor ids, edge weights) of ``node`` as array views."""
        lo, hi = self.indptr[node], self.indptr[node + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def edge_list(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Each undirected edge once, as (u, v, w) arrays with u < v."""
        src = np.repeat(np.arange(self.n, dtype=np.int64),
                        np.diff(self.indptr))
        mask = src < self.indices
        return src[mask], self.indices[mask], self.weights[mask]

    def is_connected(self) -> bool:
        """BFS connectivity check (used by generators and tests)."""
        if self.n == 0:
            return True
        seen = np.zeros(self.n, dtype=bool)
        frontier = [0]
        seen[0] = True
        count = 1
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                lo, hi = self.indptr[node], self.indptr[node + 1]
                for nbr in self.indices[lo:hi]:
                    if not seen[nbr]:
                        seen[nbr] = True
                        count += 1
                        nxt.append(int(nbr))
            frontier = nxt
        return count == self.n

    def subgraph_edges(
        self, node_mask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edges with *both* endpoints in ``node_mask`` (each once, u < v)."""
        u, v, w = self.edge_list()
        keep = node_mask[u] & node_mask[v]
        return u[keep], v[keep], w[keep]

    def total_weight(self) -> float:
        return float(self.weights.sum() / 2.0)
