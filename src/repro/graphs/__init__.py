"""Graph substrate: CSR graphs, the paper's G(δ) generator, partitioners,
and the home/border distributed layout used by MST, SP, and MSP."""

from .distributed import LocalGraph, partition_graph
from .generators import (
    GeometricGraph,
    connectivity_threshold,
    geometric_graph,
    grid_graph,
    random_connected_graph,
)
from .graph import Graph
from .partition import (
    block_partition,
    cut_edges,
    hash_partition,
    imbalance,
    partition_counts,
    spatial_partition,
)
from .unionfind import UnionFind

__all__ = [
    "GeometricGraph",
    "Graph",
    "LocalGraph",
    "UnionFind",
    "block_partition",
    "connectivity_threshold",
    "cut_edges",
    "geometric_graph",
    "grid_graph",
    "hash_partition",
    "imbalance",
    "partition_counts",
    "partition_graph",
    "random_connected_graph",
    "spatial_partition",
]
