"""Input-graph generators, including the paper's geometric class G(δ).

Section 3.3: "Nodes are assigned uniformly at random to points on the unit
square.  Now construct a graph G(r) on the nodes by adding an edge between
all nodes within distance r.  The graph G is G(δ) where δ is the minimum
value such that G(δ) is a single connected component.  The weight assigned
to edge (u, v) is the distance between the points."

δ is computed exactly: it is the longest edge of the Euclidean minimum
spanning tree of the points (the classic connectivity-threshold fact), and
the EMST is a subgraph of the Delaunay triangulation, so we Kruskal over
Delaunay edges — O(n log n) overall — then materialize G(δ) with a k-d
tree range query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import Delaunay, cKDTree

from .graph import Graph
from .unionfind import UnionFind


@dataclass(frozen=True)
class GeometricGraph:
    """A G(δ) instance: the graph plus its generative data."""

    graph: Graph
    points: np.ndarray  # (n, 2) positions in the unit square
    delta: float        # the connectivity threshold used as radius


def _delaunay_edges(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique undirected edges of the Delaunay triangulation."""
    tri = Delaunay(points)
    simplices = tri.simplices
    pairs = np.vstack(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    )
    lo = pairs.min(axis=1)
    hi = pairs.max(axis=1)
    keys = lo * len(points) + hi
    _, unique_idx = np.unique(keys, return_index=True)
    return lo[unique_idx], hi[unique_idx]


def connectivity_threshold(points: np.ndarray) -> float:
    """δ = longest edge of the Euclidean MST of ``points``.

    For n < 2 the threshold is 0 (a single point is trivially connected).
    Degenerate inputs (collinear points, n <= 3) fall back to Kruskal over
    all pairs, which Delaunay cannot triangulate.
    """
    n = len(points)
    if n < 2:
        return 0.0
    if n <= 3:
        u, v = np.triu_indices(n, k=1)
    else:
        try:
            u, v = _delaunay_edges(points)
        except Exception:
            u, v = np.triu_indices(n, k=1)
    d = np.linalg.norm(points[u] - points[v], axis=1)
    order = np.argsort(d, kind="stable")
    uf = UnionFind(n)
    longest = 0.0
    for k in order:
        if uf.union(int(u[k]), int(v[k])):
            longest = float(d[k])
            if uf.ncomponents == 1:
                return longest
    raise ValueError(
        "points not connected by candidate edges (degenerate input)"
    )


def geometric_graph(n: int, seed: int = 0) -> GeometricGraph:
    """The paper's G(δ) input: minimal-radius connected geometric graph.

    Weights are Euclidean distances.  Deterministic given ``(n, seed)``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    delta = connectivity_threshold(points)
    if n == 1:
        graph = Graph.from_edges(
            1, np.empty(0, int), np.empty(0, int), np.empty(0)
        )
        return GeometricGraph(graph=graph, points=points, delta=0.0)
    tree = cKDTree(points)
    # Tiny epsilon keeps the threshold pair itself inside the radius under
    # floating-point round-off.
    pairs = tree.query_pairs(delta * (1 + 1e-12), output_type="ndarray")
    u, v = pairs[:, 0], pairs[:, 1]
    w = np.linalg.norm(points[u] - points[v], axis=1)
    graph = Graph.from_edges(n, u, v, w)
    return GeometricGraph(graph=graph, points=points, delta=delta)


def random_connected_graph(
    n: int, extra_edges: int = 0, seed: int = 0
) -> Graph:
    """Uniform random connected graph for tests: a random spanning tree
    (random-parent construction) plus ``extra_edges`` random chords, with
    uniform weights in (0, 1]."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    us: list[int] = []
    vs: list[int] = []
    perm = rng.permutation(n)
    for i in range(1, n):
        parent = perm[rng.integers(0, i)]
        us.append(int(perm[i]))
        vs.append(int(parent))
    for _ in range(extra_edges):
        a, b = rng.integers(0, n, size=2)
        if a != b:
            us.append(int(a))
            vs.append(int(b))
    w = rng.random(len(us)) + 1e-9
    return Graph.from_edges(n, np.array(us, int), np.array(vs, int), w)


def grid_graph(rows: int, cols: int, seed: int = 0) -> Graph:
    """rows×cols lattice with random weights; a worst case for border
    traffic under block partitioning (used by partitioning tests)."""
    rng = np.random.default_rng(seed)
    idx = np.arange(rows * cols).reshape(rows, cols)
    us = np.concatenate([idx[:, :-1].ravel(), idx[:-1, :].ravel()])
    vs = np.concatenate([idx[:, 1:].ravel(), idx[1:, :].ravel()])
    w = rng.random(len(us)) + 1e-9
    return Graph.from_edges(rows * cols, us, vs, w)
