"""Array-based disjoint-set forest (union by rank + path halving).

Used by the sequential Kruskal baseline, by the local and mixed phases of
the parallel MST (Section 3.3), and by the geometric-graph generator to
find the connectivity threshold δ.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Disjoint sets over ``range(n)``.

    >>> uf = UnionFind(4)
    >>> uf.union(0, 1)
    True
    >>> uf.union(1, 0)
    False
    >>> uf.connected(0, 1), uf.connected(0, 2)
    (True, False)
    >>> uf.ncomponents
    3
    """

    __slots__ = ("_parent", "_rank", "_ncomp")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int8)
        self._ncomp = n

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        rank = self._rank
        if rank[ra] < rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if rank[ra] == rank[rb]:
            rank[ra] += 1
        self._ncomp -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    @property
    def ncomponents(self) -> int:
        """Number of disjoint sets."""
        return self._ncomp

    def roots(self) -> np.ndarray:
        """Representative of every element (fully compressed), as an array."""
        parent = self._parent
        # Iterative full compression: repeatedly jump until fixpoint.
        roots = parent.copy()
        while True:
            nxt = roots[roots]
            if np.array_equal(nxt, roots):
                return roots
            roots = nxt

    def components(self) -> dict[int, np.ndarray]:
        """Map from representative to the member array of its set."""
        roots = self.roots()
        order = np.argsort(roots, kind="stable")
        sorted_roots = roots[order]
        bounds = np.flatnonzero(np.diff(sorted_roots)) + 1
        groups = np.split(order, bounds)
        return {int(roots[g[0]]): g for g in groups}
