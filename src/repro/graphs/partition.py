"""Node-to-processor partitioners.

The paper assumes the input graph "is initially partitioned among the
processors" (Sections 3.3/3.4) with load balance "within about 10%".  For
the geometric inputs we partition by spatial strips (sorted x-coordinate
blocks), which keeps most edges processor-internal — the property that
makes the MST/SP algorithms *conservative* (border traffic bounded by
border-node count).  Hash and block partitioners are provided as
worst/neutral baselines for the partitioning ablation.
"""

from __future__ import annotations

import numpy as np


def block_partition(n: int, nprocs: int) -> np.ndarray:
    """Contiguous id ranges: node i → floor(i * p / n).  Balanced to ±1."""
    _check(n, nprocs)
    return (np.arange(n, dtype=np.int64) * nprocs) // max(n, 1)


def hash_partition(n: int, nprocs: int, seed: int = 0) -> np.ndarray:
    """Random assignment — destroys locality; the ablation's bad case.

    Balanced to ±1 (random permutation of a balanced assignment).
    """
    _check(n, nprocs)
    rng = np.random.default_rng(seed)
    owner = block_partition(n, nprocs)
    return owner[rng.permutation(n)]


def spatial_partition(points: np.ndarray, nprocs: int) -> np.ndarray:
    """Vertical strips of equal population, by sorted x-coordinate.

    The locality-preserving partitioner used for G(δ) inputs; balanced to
    ±1 node.
    """
    n = len(points)
    _check(n, nprocs)
    owner = np.empty(n, dtype=np.int64)
    order = np.argsort(points[:, 0], kind="stable")
    owner[order] = (np.arange(n, dtype=np.int64) * nprocs) // max(n, 1)
    return owner


def partition_counts(owner: np.ndarray, nprocs: int) -> np.ndarray:
    """Nodes per processor (validation/metrics helper)."""
    return np.bincount(owner, minlength=nprocs)


def imbalance(owner: np.ndarray, nprocs: int) -> float:
    """Load imbalance: max/mean − 1.  0.0 is perfectly balanced.

    The paper quotes "load-balanced to within about 10%" for its MST
    inputs, i.e. imbalance ≈ 0.1.
    """
    counts = partition_counts(owner, nprocs)
    mean = counts.mean()
    if mean == 0:
        return 0.0
    return float(counts.max() / mean - 1.0)


def cut_edges(indptr: np.ndarray, indices: np.ndarray, owner: np.ndarray) -> int:
    """Number of undirected edges crossing processors (border traffic
    proxy; lower is better for conservative algorithms)."""
    src = np.repeat(np.arange(len(indptr) - 1, dtype=np.int64), np.diff(indptr))
    crossing = owner[src] != owner[indices]
    return int(crossing.sum() // 2)


def _check(n: int, nprocs: int) -> None:
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
