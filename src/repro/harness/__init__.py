"""Experiment harness: runs the six applications, feeds the cost model,
and renders the paper's tables (Figures 1.1, 2.1, 3.1, 3.2, C.1–C.6)."""

from .paperdata import ALL_TABLES, PaperRow, paper_sizes, rows_for
from .report import (
    ExperimentTable,
    ReproducedRow,
    appendix_table,
    evaluate_app,
    machine_cpu_ratios,
    speedup_series,
)
from .runner import (
    APP_NPROCS,
    APP_SIZES,
    full_runs_enabled,
    run_app,
    runnable_sizes,
)

__all__ = [
    "ALL_TABLES",
    "APP_NPROCS",
    "APP_SIZES",
    "ExperimentTable",
    "PaperRow",
    "ReproducedRow",
    "appendix_table",
    "evaluate_app",
    "full_runs_enabled",
    "machine_cpu_ratios",
    "paper_sizes",
    "rows_for",
    "run_app",
    "runnable_sizes",
    "speedup_series",
]
