"""Run one of the six applications and collect its BSP statistics.

All experiment measurement happens on the deterministic simulator backend
(the paper's own W/H/S-measurement methodology); the harness then feeds
the measured :class:`ProgramStats` to the cost model with the Figure 2.1
machine parameters (:mod:`repro.harness.report`).

Problem-size labels follow the paper ("2.5k", "66", "64k", ...).  By
default the benchmarks run every paper size that is tractable in-process;
the very largest (nbody 64k/256k) are skipped unless ``REPRO_FULL=1`` is
set in the environment.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Any

import numpy as np

from ..apps.matmul import cannon_matmul
from ..apps.msp import PAPER_NSOURCES, default_sources
from ..apps.mst import bsp_mst
from ..apps.nbody import bsp_nbody, plummer
from ..apps.ocean import bsp_ocean
from ..apps.sssp import bsp_msp, bsp_sssp
from ..apps.nbody.orb import orb_partition
from ..core.stats import ProgramStats
from ..graphs import geometric_graph

#: size label -> concrete problem size, per app (the paper's columns).
APP_SIZES: dict[str, dict[str, int]] = {
    "ocean": {"66": 66, "130": 130, "258": 258, "514": 514},
    "mst": {"2.5k": 2500, "10k": 10000, "40k": 40000},
    "sp": {"2.5k": 2500, "10k": 10000, "40k": 40000},
    "msp": {"2.5k": 2500, "10k": 10000, "40k": 40000},
    "nbody": {"1k": 1024, "4k": 4096, "16k": 16384,
              "64k": 65536, "256k": 262144},
    "matmult": {"144": 144, "288": 288, "432": 432, "576": 576},
}

#: Sizes only run under REPRO_FULL=1 (minutes of simulator time each).
HEAVY_SIZES: dict[str, set[str]] = {
    "nbody": {"16k", "64k", "256k"},
    "msp": {"40k"},
    "mst": set(),
    "sp": set(),
    "ocean": set(),
    "matmult": set(),
}

#: Processor counts per app, following the paper's tables.
APP_NPROCS: dict[str, tuple[int, ...]] = {
    "ocean": (1, 2, 4, 8, 16),
    "mst": (1, 2, 4, 8, 16),
    "sp": (1, 2, 4, 8, 16),
    "msp": (1, 2, 4, 8, 16),
    "nbody": (1, 2, 4, 8, 16),
    "matmult": (1, 4, 9, 16),
}

#: Ocean time steps per experiment run (the W-normalization against the
#: paper's 1-processor row absorbs the absolute step count).
OCEAN_STEPS = 2
#: N-body time steps per experiment run (the paper's tables report S=6,
#: i.e. one iteration).
NBODY_STEPS = 1


def full_runs_enabled() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0")


def runnable_sizes(app: str) -> list[str]:
    """Paper size labels to run, honouring the REPRO_FULL switch."""
    sizes = list(APP_SIZES[app])
    if full_runs_enabled():
        return sizes
    return [s for s in sizes if s not in HEAVY_SIZES[app]]


@lru_cache(maxsize=8)
def _graph_instance(n: int, seed: int):
    return geometric_graph(n, seed=seed)


def run_app(
    app: str,
    size_label: str,
    nprocs: int,
    *,
    seed: int = 0,
    backend: str = "simulator",
    checkpoint: Any = None,
    retries: int = 0,
    sync: str = "strict",
) -> ProgramStats:
    """Execute one (app, size, p) experiment and return its statistics.

    ``checkpoint`` (a :class:`repro.checkpoint.CheckpointConfig`) and
    ``retries`` enable per-superstep snapshots and crash resume for the
    apps that implement the capture/restore protocol (ocean, nbody,
    sp, msp); the others reject the combination rather than silently
    restarting from zero.  ``sync`` selects the synchronization mode
    (every app runs in all three; ocean and matmult also declare their
    communication pattern, so ``elide`` prunes their barriers); results
    and (S, H, h-series) ledgers are identical in every mode.
    """
    size = APP_SIZES[app][size_label]
    if checkpoint is not None and app in ("mst", "matmult"):
        raise ValueError(
            f"{app} does not implement the checkpoint capture/restore "
            f"protocol; run it without --checkpoint-every")
    if app == "ocean":
        return bsp_ocean(size, OCEAN_STEPS, nprocs, backend=backend,
                         checkpoint=checkpoint, retries=retries,
                         sync=sync).stats
    if app == "matmult":
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((size, size))
        b = rng.standard_normal((size, size))
        return cannon_matmul(a, b, nprocs, backend=backend,
                             sync=sync).stats
    if app == "nbody":
        bodies = plummer(size, seed=seed)
        # One untimed warm-up step settles the load distribution, as in
        # the paper's measurements of an ongoing simulation.
        return bsp_nbody(bodies, nprocs, steps=NBODY_STEPS,
                         warmup_steps=1, backend=backend,
                         checkpoint=checkpoint, retries=retries,
                         sync=sync).stats
    # Graph applications share the G(δ) input class, partitioned into 2-D
    # ORB tiles: node-count-balanced (the paper's "within about 10%"),
    # locality-preserving, and — unlike 1-D strips — engaging most
    # processors once a shortest-path wavefront has grown past one tile.
    gg = _graph_instance(size, seed)
    owner = orb_partition(gg.points, None, nprocs)
    if app == "mst":
        return bsp_mst(gg.graph, owner, nprocs, backend=backend,
                       sync=sync).stats
    # The paper's work factor is a fixed *time period*; ours is the
    # equivalent relaxation budget, scaled to the input and chosen (one
    # value per input, "for the exact same program and input on all of
    # the architectures") near the ablation's optimum.
    work_factor = max(64, size // 40)
    if app == "sp":
        return bsp_sssp(gg.graph, owner, nprocs, source=0,
                        work_factor=work_factor, backend=backend,
                        checkpoint=checkpoint, retries=retries,
                        sync=sync).stats
    if app == "msp":
        nsources = min(PAPER_NSOURCES, size)
        sources = default_sources(size, nsources=nsources, seed=seed)
        return bsp_msp(gg.graph, owner, nprocs, sources,
                       work_factor=work_factor, backend=backend,
                       checkpoint=checkpoint, retries=retries,
                       sync=sync).stats
    raise ValueError(f"unknown app {app!r}")
