"""Command-line entry point: regenerate any paper table on demand.

Usage::

    python -m repro.harness ocean 130          # one (app, size) sweep
    python -m repro.harness mst                # all runnable sizes
    python -m repro.harness --list             # what can be run

Prints the Appendix-C-style table (ours next to the paper's).  The same
sweeps, with shape assertions, live in ``benchmarks/``.

The TCP launcher (the paper's PC-LAN platform, Appendix B.3)::

    # all ranks on this machine, over real loopback sockets:
    python -m repro.harness launch-tcp --nprocs 4 ocean 66

    # one rank per machine; run once per host with its own --rank:
    python -m repro.harness launch-tcp --nprocs 4 --rank 0 \\
        --coordinator pc0:47710 ocean 66        # on pc0
    python -m repro.harness launch-tcp --nprocs 4 --rank 1 \\
        --coordinator pc0:47710 ocean 66        # on pc1, ... etc.

Every invocation runs the same program (SPMD); rank 0's machine prints
the result.  See README "Running across machines".

Checkpointed, supervised runs (crash recovery, DESIGN "Recovery
semantics")::

    python -m repro.harness run ocean 66 --backend processes \\
        --nprocs 4 --checkpoint-every 1 --checkpoint-dir /tmp/ckpt \\
        --retries 2 -v

    # after a crash that exhausted the retry budget, resume in place:
    python -m repro.harness run ocean 66 --backend processes \\
        --nprocs 4 --checkpoint-every 1 --checkpoint-dir /tmp/ckpt \\
        --retries 2 --resume

Serving BSP jobs (the ``repro.service`` gateway; README "Serving BSP
jobs")::

    python -m repro.harness serve --fleet processes:4x2   # terminal 1
    python -m repro.harness submit ocean 66 --nprocs 4    # terminal 2
    python -m repro.harness status                        # all jobs
    python -m repro.harness cancel j7                     # if still queued
"""

from __future__ import annotations

import argparse
import sys

from .paperdata import ALL_TABLES
from .report import appendix_table, evaluate_app, w_profile_report
from .runner import APP_SIZES, run_app, runnable_sizes


def _launch_tcp(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness launch-tcp",
        description="Run one paper app on the TCP (PC-LAN) backend.",
    )
    parser.add_argument("app", choices=sorted(ALL_TABLES))
    parser.add_argument("size", help="paper size label, e.g. 66")
    parser.add_argument("--nprocs", type=int, required=True,
                        help="total number of BSP processors (= ranks)")
    parser.add_argument("--rank", type=int, default=None,
                        help="this machine's rank; omit to fork every "
                             "rank locally over loopback")
    parser.add_argument("--coordinator", default="127.0.0.1:47710",
                        help="rank 0's host:port (multi-host mode)")
    parser.add_argument("--bind-host", default=None,
                        help="interface this rank's listener binds "
                             "(multi-host mode; default: coordinator host)")
    parser.add_argument("--token", type=int, default=0,
                        help="shared launch token; reject strangers' dials")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="rendezvous / join timeout in seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sync", default="strict",
                        choices=["strict", "relaxed", "elide"],
                        help="synchronization mode (identical results "
                             "and ledgers; cheaper barriers)")
    parser.add_argument("--generation", type=int, default=0,
                        help="mesh generation to rendezvous at; a rank "
                             "relaunched after a remesh must name the "
                             "epoch the survivors advanced to")
    parser.add_argument("--max-heals", type=int, default=8,
                        help="remesh attempts after a peer loss before "
                             "giving up (multi-host mode)")
    args = parser.parse_args(argv)

    if args.size not in APP_SIZES[args.app]:
        print(f"unknown size {args.size!r} for {args.app}; "
              f"known: {list(APP_SIZES[args.app])}", file=sys.stderr)
        return 2

    from ..backends.tcp import TcpBackend, TcpSpmdBackend
    from ..backends.tcp_launch import parse_hostport
    from ..core.errors import RemeshError, SynchronizationError

    if args.rank is None:
        backend = TcpBackend(join_timeout=args.timeout)
        rank = 0
    else:
        coordinator = parse_hostport(args.coordinator, 47710)
        backend = TcpSpmdBackend(
            args.rank, args.nprocs, coordinator,
            token=args.token, bind_host=args.bind_host,
            timeout=args.timeout, generation=args.generation,
        )
        rank = args.rank
    try:
        heals_left = args.max_heals if args.rank is not None else 0
        while True:
            try:
                stats = run_app(args.app, args.size, args.nprocs,
                                seed=args.seed, backend=backend,
                                sync=args.sync)
                break
            except SynchronizationError as exc:
                # Multi-host heal loop: a lost peer dirties the mesh;
                # every surviving rank re-rendezvouses at the next
                # generation and the operator relaunches the dead rank
                # with --generation <new epoch>.
                if heals_left <= 0:
                    raise
                heals_left -= 1
                print(f"[rank {rank}] peer lost ({exc}); remeshing "
                      f"({heals_left} heal(s) left)", file=sys.stderr)
                try:
                    gen = backend.remesh()
                except RemeshError:
                    raise exc from None
                print(f"[rank {rank}] remeshed at generation {gen}",
                      file=sys.stderr)
    finally:
        close = getattr(backend, "close", None)
        if close is not None:
            close()
    if rank == 0:
        print(f"{args.app}/{args.size} on tcp, p={args.nprocs}: "
              f"S={stats.S} H={stats.H} W={stats.W:.4f}s")
    return 0


def _run(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness run",
        description="Run one paper app on a supervised backend, "
                    "optionally with superstep checkpointing.",
    )
    parser.add_argument("app", choices=sorted(ALL_TABLES))
    parser.add_argument("size", help="paper size label, e.g. 66")
    parser.add_argument("--backend", default="processes",
                        choices=["simulator", "processes", "tcp"])
    parser.add_argument("--nprocs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--retries", type=int, default=0,
                        help="crash/deadlock retry budget for the run")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="K",
                        help="snapshot every K supersteps (enables "
                             "checkpointing; requires --checkpoint-dir "
                             "on multiprocess backends)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="on-disk checkpoint store root")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the newest complete checkpoint "
                             "instead of clearing the store first")
    parser.add_argument("--sync", default="strict",
                        choices=["strict", "relaxed", "elide"],
                        help="synchronization mode (identical results "
                             "and ledgers; cheaper barriers)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output: one JSON object "
                             "with the (S, H, W) ledger, its digest, "
                             "wall time, and ok/error — exit 0 on "
                             "success, 1 on a failed run; scripted "
                             "clients parse this instead of scraping "
                             "the human line")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="log supervision state (pool generation, "
                             "restarts, heal kinds, link repair "
                             "counters, last fault) after the run")
    parser.add_argument("--heal-in-place", dest="heal_in_place",
                        action="store_true", default=True,
                        help="heal a crashed TCP mesh in place: re-fork "
                             "only the dead ranks and re-rendezvous the "
                             "survivors (default)")
    parser.add_argument("--no-heal-in-place", dest="heal_in_place",
                        action="store_false",
                        help="tear down and rebuild the whole mesh on "
                             "every crash instead of healing in place")
    parser.add_argument("--max-heals", type=int, default=8,
                        help="in-place heals before falling back to "
                             "full rebuilds (tcp backend)")
    parser.add_argument("--heartbeat-interval", type=float, default=0.25,
                        metavar="SECONDS",
                        help="supervision heartbeat period (tcp backend; "
                             "keep well under the 1s stall window)")
    args = parser.parse_args(argv)

    if args.size not in APP_SIZES[args.app]:
        print(f"unknown size {args.size!r} for {args.app}; "
              f"known: {list(APP_SIZES[args.app])}", file=sys.stderr)
        return 2

    checkpoint = None
    if args.checkpoint_every is not None or args.resume:
        from ..checkpoint import (
            CheckpointConfig,
            DiskCheckpointStore,
            MemoryCheckpointStore,
        )
        if args.checkpoint_dir is not None:
            store = DiskCheckpointStore(args.checkpoint_dir)
        else:
            store = MemoryCheckpointStore()
        checkpoint = CheckpointConfig(
            store=store,
            every=args.checkpoint_every or 1,
            run_key=f"{args.app}-{args.size}-p{args.nprocs}",
            resume=args.resume,
        )

    if args.backend == "processes":
        from ..backends.processes import ProcessBackend
        backend = ProcessBackend.pool(args.nprocs)
    elif args.backend == "tcp":
        from ..backends.tcp import TcpBackend
        backend = TcpBackend.pool(
            args.nprocs,
            heal_in_place=args.heal_in_place,
            max_heals=args.max_heals,
            heartbeat_interval=args.heartbeat_interval,
        )
    else:
        backend = "simulator"
    import time as _time

    from ..core.errors import BspError
    t0 = _time.perf_counter()
    try:
        stats = run_app(args.app, args.size, args.nprocs,
                        seed=args.seed, backend=backend,
                        checkpoint=checkpoint, retries=args.retries,
                        sync=args.sync)
    except BspError as exc:
        if not args.json:
            raise
        # Machine-readable failure: same shape as success, ok=false,
        # typed error, exit code 1 — scripted callers branch on either.
        import json as _json
        print(_json.dumps({
            "ok": False,
            "app": args.app, "size": args.size, "backend": args.backend,
            "nprocs": args.nprocs, "sync": args.sync,
            "error": {"error": type(exc).__name__, "message": str(exc)},
            "wall_seconds": _time.perf_counter() - t0,
        }, indent=2))
        return 1
    finally:
        if args.verbose and not isinstance(backend, str):
            health = backend.health()
            if health is not None:
                budget = ("unbounded" if health.restarts_left < 0
                          else health.restarts_left)
                print(f"[supervision] generation={health.generation} "
                      f"restarts={health.restarts} "
                      f"restarts_left={budget} "
                      f"alive={health.alive}/{health.capacity}",
                      file=sys.stderr)
                if health.heal_kinds:
                    print("[supervision] heals: "
                          + ", ".join(health.heal_kinds), file=sys.stderr)
                if health.retransmits or health.reconnects:
                    print(f"[supervision] link repair: "
                          f"retransmits={health.retransmits} "
                          f"reconnects={health.reconnects}",
                          file=sys.stderr)
                if health.last_fault:
                    print(f"[supervision] last fault: {health.last_fault}",
                          file=sys.stderr)
        if not isinstance(backend, str):
            backend.close()
    if args.json:
        import json as _json

        from ..service.jobs import stats_payload
        payload = stats_payload(stats, _time.perf_counter() - t0)
        payload.update({"ok": True, "app": args.app, "size": args.size,
                        "backend": args.backend, "nprocs": args.nprocs,
                        "sync": args.sync})
        print(_json.dumps(payload, indent=2))
        return 0
    print(f"{args.app}/{args.size} on {args.backend}, p={args.nprocs}: "
          f"S={stats.S} H={stats.H} W={stats.W:.4f}s")
    return 0


def _serve(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness serve",
        description="Serve BSP jobs over TCP from a warm pool fleet.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=47780,
                        help="listen port (0 = pick a free one)")
    parser.add_argument("--fleet", action="append", default=None,
                        metavar="BACKEND:P[xN]",
                        help="warm N pools of P workers on BACKEND, e.g. "
                             "processes:4x2; repeatable, default "
                             "processes:4x2")
    parser.add_argument("--max-queued", type=int, default=256,
                        help="admission queue bound; overflow is a typed "
                             "rejection, not latency")
    parser.add_argument("--max-in-flight", type=int, default=None,
                        help="per-tenant cap on simultaneously running "
                             "jobs")
    parser.add_argument("--weight", action="append", default=[],
                        metavar="TENANT=W",
                        help="fair-share weight for a tenant (default 1)")
    parser.add_argument("--checkpoint-root", default=None,
                        help="service-managed on-disk checkpoint store "
                             "(default: private tempdir, or "
                             "<journal-dir>/checkpoints with --journal-dir)")
    parser.add_argument("--journal-dir", default=None,
                        help="durable job journal root; on startup an "
                             "existing journal is replayed — queued jobs "
                             "re-admitted in fair order, interrupted jobs "
                             "resumed from their last checkpoint")
    parser.add_argument("--probe-interval", type=float, default=1.0,
                        help="fleet health probe period in seconds "
                             "(0 disables probing)")
    parser.add_argument("--quarantine-after", type=int, default=2,
                        help="consecutive failed probes before a pool "
                             "slot is quarantined")
    parser.add_argument("--restart-burst", type=int, default=3,
                        help="worker restarts between probes that count "
                             "as a storm (immediate quarantine)")
    parser.add_argument("--crash-after-journal", type=int, default=None,
                        metavar="SEQ",
                        help="test hook: SIGKILL this gateway right "
                             "after journal record SEQ lands on disk")
    parser.add_argument("--tear-journal-at", type=int, default=None,
                        metavar="SEQ",
                        help="test hook: tear journal record SEQ in "
                             "half after writing it (simulated torn "
                             "tail)")
    args = parser.parse_args(argv)

    import asyncio

    from ..service import (
        FleetSpec,
        GatewayConfig,
        SchedulerConfig,
        ServiceGateway,
        parse_fleet_spec,
    )
    weights = {}
    for item in args.weight:
        tenant, sep, weight = item.partition("=")
        if not sep:
            print(f"--weight takes TENANT=W, got {item!r}", file=sys.stderr)
            return 2
        weights[tenant] = float(weight)
    fleet = tuple(parse_fleet_spec(text)
                  for text in (args.fleet or ["processes:4x2"]))
    if args.crash_after_journal is not None or args.tear_journal_at is not None:
        from .. import faults
        plan = []
        if args.crash_after_journal is not None:
            plan.append(faults.Fault(faults.GATEWAY_CRASH, 0,
                                     args.crash_after_journal))
        if args.tear_journal_at is not None:
            plan.append(faults.Fault(faults.JOURNAL_TORN, 0,
                                     args.tear_journal_at))
        faults.install(faults.FaultPlan(plan))
    config = GatewayConfig(
        host=args.host, port=args.port, fleet=fleet,
        scheduler=SchedulerConfig(max_queued=args.max_queued,
                                  max_in_flight=args.max_in_flight,
                                  weights=weights),
        checkpoint_root=args.checkpoint_root,
        journal_dir=args.journal_dir,
        probe_interval=args.probe_interval,
        quarantine_after=args.quarantine_after,
        restart_burst=args.restart_burst,
    )

    async def body() -> None:
        gateway = ServiceGateway(config)
        await gateway.start()
        fleet_desc = ", ".join(
            f"{spec.backend}:{spec.nprocs}x{spec.pools}" for spec in fleet)
        if gateway.journal is not None:
            print(f"[serve] journal: replayed={gateway.journal_replays} "
                  f"damaged={gateway.journal_damaged} "
                  f"orphans_reaped={gateway.orphans_reaped}",
                  file=sys.stderr)
        print(f"[serve] listening on {gateway.host}:{gateway.port} "
              f"fleet=[{fleet_desc}]", file=sys.stderr)
        await gateway.serve_forever()

    try:
        asyncio.run(body())
    except KeyboardInterrupt:
        print("[serve] interrupted; fleet shut down", file=sys.stderr)
    return 0


#: Exit code for "no gateway is listening there" — distinct from 1
#: (the request reached a gateway and failed), so retry wrappers can
#: tell a bouncing gateway from a genuinely failed job.
_EX_UNAVAILABLE = 3


def _client_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=47780)
    parser.add_argument("--tenant", default="default")


def _submit(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness submit",
        description="Submit one job to a running gateway and stream its "
                    "lifecycle.",
    )
    parser.add_argument("app", help="paper app (ocean, mst, ...) or a "
                                    "builtin micro job (noop, spin)")
    parser.add_argument("size", help="paper size label (or superstep "
                                     "count for builtins)")
    _client_args(parser)
    parser.add_argument("--nprocs", type=int, default=4)
    parser.add_argument("--backend", default="processes")
    parser.add_argument("--sync", default="strict",
                        choices=["strict", "relaxed", "elide"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--retries", type=int, default=0)
    parser.add_argument("--checkpoint-every", type=int, default=None)
    parser.add_argument("--key", default=None,
                        help="idempotency key: resubmitting the same key "
                             "re-attaches to the existing job (across "
                             "restarts of a journalled gateway) instead "
                             "of queuing a duplicate, and arms automatic "
                             "stream re-attach on a gateway bounce")
    parser.add_argument("--no-wait", action="store_true",
                        help="print the accepted record and return "
                             "without waiting for completion")
    args = parser.parse_args(argv)

    import json

    from ..core.errors import BspError, GatewayUnavailableError
    from ..service import ServiceClient
    client = ServiceClient(args.host, args.port, tenant=args.tenant)
    try:
        outcome = client.submit(
            app=args.app, size=args.size, nprocs=args.nprocs,
            backend=args.backend, sync=args.sync, seed=args.seed,
            retries=args.retries, checkpoint_every=args.checkpoint_every,
            key=args.key, wait=False)
        if args.no_wait:
            outcome.close()
            print(json.dumps(outcome.job, indent=2))
            return 0
        final = outcome.wait(
            on_state=lambda job: print(f"[{job['job_id']}] {job['state']}",
                                       file=sys.stderr))
    except GatewayUnavailableError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return _EX_UNAVAILABLE
    except (BspError, ConnectionError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(final, indent=2))
    return 0 if final["state"] == "DONE" else 1


def _status(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness status",
        description="Query a running gateway: one job, or service health.",
    )
    parser.add_argument("job_id", nargs="?", default=None)
    _client_args(parser)
    parser.add_argument("--json", action="store_true",
                        help="full machine-readable health dump, "
                             "including per-fleet-slot health (probe "
                             "failures, quarantined pools, journal "
                             "replay counters)")
    args = parser.parse_args(argv)

    import json

    from ..core.errors import BspError, GatewayUnavailableError
    from ..service import ServiceClient
    client = ServiceClient(args.host, args.port, tenant=args.tenant)
    try:
        if args.job_id is not None:
            print(json.dumps(client.status(args.job_id), indent=2))
        else:
            health = client.health()
            if not args.json:
                # Summary view: drop the per-slot detail, keep the
                # fleet-level counters (quarantines included).
                health = dict(health)
                health["fleet"] = [
                    {k: slot[k] for k in ("slot", "busy_job", "jobs_run",
                                          "recycles", "quarantined")
                     if k in slot}
                    for slot in health.get("fleet", [])]
            print(json.dumps(health, indent=2))
    except GatewayUnavailableError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return _EX_UNAVAILABLE
    except (BspError, ConnectionError) as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    return 0


def _cancel(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness cancel",
        description="Cancel a QUEUED job on a running gateway.",
    )
    parser.add_argument("job_id")
    _client_args(parser)
    args = parser.parse_args(argv)

    import json

    from ..core.errors import BspError, GatewayUnavailableError
    from ..service import ServiceClient
    client = ServiceClient(args.host, args.port, tenant=args.tenant)
    try:
        print(json.dumps(client.cancel(args.job_id), indent=2))
    except GatewayUnavailableError as exc:
        print(f"cancel failed: {exc}", file=sys.stderr)
        return _EX_UNAVAILABLE
    except (BspError, ConnectionError) as exc:
        print(f"cancel failed: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "launch-tcp":
        return _launch_tcp(argv[1:])
    if argv and argv[0] == "run":
        return _run(argv[1:])
    if argv and argv[0] == "serve":
        return _serve(argv[1:])
    if argv and argv[0] == "submit":
        return _submit(argv[1:])
    if argv and argv[0] == "status":
        return _status(argv[1:])
    if argv and argv[0] == "cancel":
        return _cancel(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's Appendix C tables.",
    )
    parser.add_argument("app", nargs="?", choices=sorted(ALL_TABLES))
    parser.add_argument("size", nargs="?", help="paper size label, e.g. 130")
    parser.add_argument("--list", action="store_true",
                        help="list apps and runnable sizes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--profile-w", action="store_true",
                        help="also print per-superstep measured local-"
                             "compute seconds beside the predicted W")
    parser.add_argument("--profile-limit", type=int, default=20,
                        help="supersteps to show per --profile-w table")
    args = parser.parse_args(argv)

    if args.list or args.app is None:
        for app in sorted(APP_SIZES):
            sizes = runnable_sizes(app)
            extra = sorted(set(APP_SIZES[app]) - set(sizes))
            note = f" (+{', '.join(extra)} with REPRO_FULL=1)" if extra else ""
            print(f"{app:>8}: {', '.join(sizes)}{note}")
        return 0

    sizes = [args.size] if args.size else runnable_sizes(args.app)
    for size in sizes:
        if size not in APP_SIZES[args.app]:
            print(f"unknown size {size!r} for {args.app}; "
                  f"known: {list(APP_SIZES[args.app])}", file=sys.stderr)
            return 2
        table = evaluate_app(args.app, size, seed=args.seed)
        print(appendix_table(table))
        print()
        if args.profile_w:
            print(w_profile_report(table, limit=args.profile_limit))
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
