"""Command-line entry point: regenerate any paper table on demand.

Usage::

    python -m repro.harness ocean 130          # one (app, size) sweep
    python -m repro.harness mst                # all runnable sizes
    python -m repro.harness --list             # what can be run

Prints the Appendix-C-style table (ours next to the paper's).  The same
sweeps, with shape assertions, live in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys

from .paperdata import ALL_TABLES
from .report import appendix_table, evaluate_app
from .runner import APP_SIZES, runnable_sizes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's Appendix C tables.",
    )
    parser.add_argument("app", nargs="?", choices=sorted(ALL_TABLES))
    parser.add_argument("size", nargs="?", help="paper size label, e.g. 130")
    parser.add_argument("--list", action="store_true",
                        help="list apps and runnable sizes")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.list or args.app is None:
        for app in sorted(APP_SIZES):
            sizes = runnable_sizes(app)
            extra = sorted(set(APP_SIZES[app]) - set(sizes))
            note = f" (+{', '.join(extra)} with REPRO_FULL=1)" if extra else ""
            print(f"{app:>8}: {', '.join(sizes)}{note}")
        return 0

    sizes = [args.size] if args.size else runnable_sizes(args.app)
    for size in sizes:
        if size not in APP_SIZES[args.app]:
            print(f"unknown size {size!r} for {args.app}; "
                  f"known: {list(APP_SIZES[args.app])}", file=sys.stderr)
            return 2
        table = evaluate_app(args.app, size, seed=args.seed)
        print(appendix_table(table))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
