"""Turn measured statistics into the paper's tables.

The pipeline per (app, size):

1. run the app on the simulator for every processor count, collecting
   (W, H, S) — the paper's own measurement method;
2. transplant the measured work seconds onto 1996 hardware: a single
   *host→SGI scale* per (app, size), the ratio of the paper's measured
   one-processor work to ours, plus a per-(app, machine) CPU ratio taken
   from the paper's own one-processor predictions (exactly how the paper
   "estimated" Cenju/PC work depths from SGI measurements);
3. apply the cost model ``T = scaled_W + gH + LS`` with the Figure 2.1
   parameters to produce predicted times and modeled speed-ups per
   machine;
4. print them beside the paper's columns.

What should match is the *shape*: speed-up trends, latency breakdowns,
crossovers.  Absolute W matches by construction at p = 1; everything else
is genuinely reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.machines import PAPER_MACHINES, MachineProfile
from ..core.stats import ProgramStats
from ..util.tables import render_table
from .paperdata import PaperRow, rows_for
from .runner import APP_NPROCS, run_app

#: Machine column order in all reports.
MACHINE_ORDER = ("SGI", "Cenju", "PC-LAN")

#: Apps whose work depth is modeled by *charged* operation counts rather
#: than measured Python seconds: stencil cells (ocean), block flops
#: (matmult), body-cell interactions (nbody), edges scanned (mst/sp/msp),
#: key comparisons (sort).  Wall-clock on this host misrepresents load on
#: the paper's machines — per-superstep interpreter overhead swamps small
#: kernels, and shared-host contention adds noise — so the harness uses
#: the analytic counts, the analogue of the paper's own "estimated" work
#: depths, normalized to the paper's measured one-processor seconds.
#: Measured seconds remain recorded in every run's statistics.
CHARGED_WORK_APPS = frozenset(
    {"ocean", "matmult", "nbody", "mst", "sp", "msp", "sort"}
)


def work_measures(app: str, stats: ProgramStats) -> tuple[float, float]:
    """(work depth, total work) in the app's chosen work metric."""
    if app in CHARGED_WORK_APPS and stats.total_charged > 0:
        return stats.charged_depth, stats.total_charged
    return stats.W, stats.total_work


@dataclass(frozen=True)
class ReproducedRow:
    """Our counterpart of one Appendix C row."""

    app: str
    size: str
    np: int
    pred: dict[str, float | None]   # machine -> predicted seconds
    spdp: dict[str, float | None]   # machine -> modeled speed-up
    comm: dict[str, float | None]   # machine -> gH + LS share
    w_scaled: float                 # work depth in paper-SGI seconds
    h: int
    s: int
    twk_scaled: float               # total work in paper-SGI seconds
    paper: PaperRow | None = None


@dataclass
class ExperimentTable:
    """All rows of one (app, size) experiment plus its scales.

    ``stats`` keeps the raw per-run statistics keyed by processor count,
    so callers can drill from the modeled rows back down to the measured
    per-superstep profile (``--profile-w``).
    """

    app: str
    size: str
    host_to_sgi: float
    machine_ratio: dict[str, float]
    rows: list[ReproducedRow] = field(default_factory=list)
    stats: dict[int, ProgramStats] = field(default_factory=dict)


def machine_cpu_ratios(app: str, size: str) -> dict[str, float]:
    """Per-machine CPU-speed ratio vs the SGI, from the paper's own
    one-processor predictions for this (app, size)."""
    (row,) = rows_for(app, size, np_=1)
    ratios = {"SGI": 1.0}
    ratios["Cenju"] = (
        row.cenju_pred / row.sgi_pred if row.cenju_pred and row.sgi_pred
        else 1.0
    )
    ratios["PC-LAN"] = (
        row.pc_pred / row.sgi_pred if row.pc_pred and row.sgi_pred
        else PAPER_MACHINES["PC-LAN"].work_scale
    )
    return ratios


def evaluate_app(
    app: str,
    size: str,
    nprocs_list: tuple[int, ...] | None = None,
    *,
    seed: int = 0,
) -> ExperimentTable:
    """Run the full processor sweep for one (app, size) and model it."""
    nprocs_list = nprocs_list or APP_NPROCS[app]
    stats: dict[int, ProgramStats] = {
        p: run_app(app, size, p, seed=seed) for p in nprocs_list
    }
    base = stats[nprocs_list[0]]
    if nprocs_list[0] != 1:
        raise ValueError("the sweep must include p=1 first (for scaling)")
    paper_one = rows_for(app, size, np_=1)
    base_w, _ = work_measures(app, base)
    host_to_sgi = (paper_one[0].w / base_w) if paper_one and base_w > 0 else 1.0
    ratios = machine_cpu_ratios(app, size) if paper_one else {
        m: 1.0 for m in MACHINE_ORDER
    }
    table = ExperimentTable(
        app=app, size=size, host_to_sgi=host_to_sgi, machine_ratio=ratios,
        stats=stats,
    )
    preds_one: dict[str, float | None] = {}
    for p in nprocs_list:
        st = stats[p]
        w_depth, w_total = work_measures(app, st)
        pred: dict[str, float | None] = {}
        comm: dict[str, float | None] = {}
        spdp: dict[str, float | None] = {}
        for name in MACHINE_ORDER:
            machine = PAPER_MACHINES[name]
            if not machine.supports(p):
                pred[name] = comm[name] = spdp[name] = None
                continue
            g, length = machine.g(p), machine.L(p)
            work = w_depth * host_to_sgi * ratios[name]
            comm_cost = g * st.H + length * st.S
            pred[name] = work + comm_cost
            comm[name] = comm_cost
            if p == nprocs_list[0]:
                preds_one[name] = pred[name]
            base_pred = preds_one.get(name)
            spdp[name] = (
                base_pred / pred[name] if base_pred and pred[name] else None
            )
        paper_rows = rows_for(app, size, np_=p)
        table.rows.append(
            ReproducedRow(
                app=app,
                size=size,
                np=p,
                pred=pred,
                spdp=spdp,
                comm=comm,
                w_scaled=w_depth * host_to_sgi,
                h=st.H,
                s=st.S,
                twk_scaled=w_total * host_to_sgi,
                paper=paper_rows[0] if paper_rows else None,
            )
        )
    return table


def appendix_table(table: ExperimentTable) -> str:
    """Render an Appendix-C-style table: ours next to the paper's."""
    headers = [
        "NP",
        "SGI pred", "SGI paper", "SGI spdp", "SGI p.spdp",
        "Cenju pred", "Cenju paper", "Cenju spdp", "Cenju p.spdp",
        "PC pred", "PC paper", "PC spdp", "PC p.spdp",
        "W", "W paper", "H", "H paper", "S", "S paper",
    ]
    rows = []
    for r in table.rows:
        p = r.paper
        rows.append([
            r.np,
            r.pred["SGI"], p.sgi_pred if p else None,
            r.spdp["SGI"], p.sgi_spdp if p else None,
            r.pred["Cenju"], p.cenju_pred if p else None,
            r.spdp["Cenju"], p.cenju_spdp if p else None,
            r.pred["PC-LAN"], p.pc_pred if p else None,
            r.spdp["PC-LAN"], p.pc_spdp if p else None,
            r.w_scaled, p.w if p else None,
            r.h, p.h if p else None,
            r.s, p.s if p else None,
        ])
    title = (
        f"{table.app} size {table.size} — reproduced (pred/spdp) vs paper "
        f"(paper/p.spdp); host→SGI work scale {table.host_to_sgi:.3g}"
    )
    return render_table(headers, rows, title=title)


def w_profile_report(table: ExperimentTable, *, limit: int = 20) -> str:
    """Per-superstep measured-vs-predicted W tables for every run.

    One table per processor count: the host's measured local-compute
    milliseconds per superstep beside the model's predicted W on the
    paper's SGI (work depth × host→SGI scale) — the drill-down view for
    judging where the W transplant is faithful and where interpreter
    overhead distorts it.
    """
    from ..util.trace import w_profile_table

    use_charged = table.app in CHARGED_WORK_APPS
    parts = []
    for p in sorted(table.stats):
        st = table.stats[p]
        parts.append(w_profile_table(
            st,
            host_to_sgi=table.host_to_sgi,
            use_charged=use_charged,
            limit=limit,
            title=(
                f"{table.app}/{table.size} p={p} — measured w vs "
                f"predicted SGI W (scale {table.host_to_sgi:.3g}, "
                f"{'charged' if use_charged else 'measured'} work model)"
            ),
        ))
    return "\n\n".join(parts)


def speedup_series(table: ExperimentTable, machine: str
                   ) -> list[tuple[int, float | None, float | None]]:
    """(np, our modeled speed-up, paper speed-up) for one machine."""
    out = []
    for r in table.rows:
        paper_spdp = None
        if r.paper is not None:
            paper_spdp = {
                "SGI": r.paper.sgi_spdp,
                "Cenju": r.paper.cenju_spdp,
                "PC-LAN": r.paper.pc_spdp,
            }[machine]
        out.append((r.np, r.spdp[machine], paper_spdp))
    return out


def assert_supported(machine: MachineProfile, nprocs: int) -> bool:
    return machine.supports(nprocs)
