"""Superstep checkpointing: resume from the last barrier, not from zero.

Why the barrier is the right place
----------------------------------
A BSP program advances through globally consistent supersteps: at the
moment every rank sits at the top of superstep *s*, no message is in
flight that the cut does not account for — every packet sent before the
barrier has been delivered into some rank's inbox, and nothing of
superstep *s* has been sent yet.  A set of per-rank snapshots taken at
the same superstep boundary is therefore a *consistent cut* by
construction; no Chandy–Lamport marker protocol is needed.  This module
exploits that: each rank independently snapshots

* its program state (whatever the program's opt-in ``capture`` callable
  returns),
* its undelivered inbox (packets delivered at the s−1 → s barrier but
  not yet consumed), and
* its accounting ledger for supersteps ``0..s-1``,

and a checkpoint at step *s* is *complete* exactly when all ``nprocs``
shards for step *s* exist and validate.

What is deliberately **not** in a snapshot: wall-clock ``work_seconds``
of the in-progress superstep (it restarts from zero on resume — W is a
measurement, not program state), backend transport state (sockets, slab
rings — rebuilt by the pool/mesh heal), and the RNG of anything the
program does not itself capture.  The identity contract after a resume
is bit-identical *results* and bit-identical ``(S, H, h-series)``
ledgers; W is wall-clock and differs run to run regardless.

Store design
------------
One shard per (run_key, step, rank).  Shards are self-validating: the
payload's SHA-256 is recorded at write time (in a header line on disk,
beside the bytes in memory) so truncation and corruption are *detected*
at read time rather than trusted.  ``latest_step`` only ever names a
step whose every shard validates — so the recovery ladder

    newest complete checkpoint → older complete checkpoint → restart
    from superstep 0

falls out of a single scan, and a damaged newest checkpoint silently
demotes to the previous one instead of being resumed from.

Disk writes are atomic (write to a dot-tmp file, fsync, ``os.replace``)
and retention is bounded: each rank keeps its shards for the newest
``keep`` steps and prunes the rest, so a long run's checkpoint directory
stays O(keep · nprocs) files.

Fault injection: :meth:`CheckpointStore.save_shard` consults the
installed :class:`repro.faults.FaultPlan` after the durable write and
applies ``TRUNCATE_CHECKPOINT`` / ``CORRUPT_CHECKPOINT`` damage to the
just-written shard — modelling torn writes and silent media corruption
so the fallback ladder is testable on purpose.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import threading
from dataclasses import dataclass
from typing import Any, Iterable

from . import faults
from .core.errors import BspConfigError, CheckpointError

_FORMAT_VERSION = 1
_STEP_PREFIX = "step-"
_RANK_PREFIX = "rank-"
_SHARD_SUFFIX = ".ckpt"
_TMP_PREFIX = ".tmp-"
_MAX_HEADER = 4096


def atomic_replace_write(path: str, *chunks: bytes,
                         tmp_prefix: str = _TMP_PREFIX) -> None:
    """Durably write ``chunks`` to ``path``: dot-tmp + fsync + os.replace.

    The disk-durability primitive shared by :class:`DiskCheckpointStore`
    shards and the service's job journal (:mod:`repro.service.journal`):
    a reader never observes a half-written file under its final name, and
    a crash mid-write leaves only a temp file for the next sweep.  The
    temp file lives in ``path``'s own directory so the replace is within
    one filesystem.
    """
    directory, name = os.path.split(path)
    tmp = os.path.join(directory, f"{tmp_prefix}{name}-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            for chunk in chunks:
                fh.write(chunk)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass


@dataclass
class Snapshot:
    """One rank's member of a consistent cut at a superstep boundary.

    ``samples`` covers supersteps ``0..step-1`` verbatim (including the
    receive-side counts charged at the s−1 → s barrier); ``inbox`` is the
    rank's undelivered packets at that barrier.  Restoring both is what
    makes the resumed run's (S, H, h-series) ledger bit-identical.
    """

    step: int
    pid: int
    nprocs: int
    state: Any
    inbox: list
    samples: list


def encode_snapshot(snapshot: Snapshot) -> bytes:
    return pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)


def decode_snapshot(blob: bytes) -> Snapshot:
    try:
        snap = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint shard failed to unpickle: {exc}") from exc
    if not isinstance(snap, Snapshot):
        raise CheckpointError(
            f"checkpoint shard decoded to {type(snap).__name__}, "
            "not a Snapshot")
    return snap


class CheckpointStore:
    """Per-rank shard store with checksum validation and bounded retention.

    Subclasses implement ``_put`` / ``load_shard`` / ``steps`` /
    ``_valid_pids`` / ``clear`` / ``_tamper``; this base supplies the
    complete-step resolution (and the fault-injection hook on writes).
    """

    #: Whether shards written by a forked worker process are visible to
    #: the parent and to replacement workers.  ``bsp_run`` refuses
    #: non-shared stores on multi-process backends.
    shared_across_processes: bool = False

    # -- write side ----------------------------------------------------------

    def save_shard(self, run_key: str, step: int, pid: int, nprocs: int,
                   blob: bytes) -> None:
        """Durably store one rank's shard, then apply any scheduled damage."""
        self._put(run_key, step, pid, nprocs, bytes(blob))
        plan = faults._ACTIVE
        if plan is not None:
            mode = plan.tampers_checkpoint(pid, step)
            if mode is not None:
                self._tamper(run_key, step, pid, mode)

    def _put(self, run_key: str, step: int, pid: int, nprocs: int,
             blob: bytes) -> None:
        raise NotImplementedError

    def _tamper(self, run_key: str, step: int, pid: int, mode: str) -> None:
        raise NotImplementedError

    # -- read side -----------------------------------------------------------

    def load_shard(self, run_key: str, step: int, pid: int) -> bytes:
        """The validated payload, or :class:`CheckpointError` if the shard
        is missing, truncated, or fails its checksum."""
        raise NotImplementedError

    def steps(self, run_key: str) -> list[int]:
        """All steps with at least one shard present, ascending."""
        raise NotImplementedError

    def _valid_pids(self, run_key: str, step: int) -> dict[int, int]:
        """pid → recorded nprocs, for every shard at ``step`` that
        validates (bad shards are simply absent from the map)."""
        raise NotImplementedError

    def clear(self, run_key: str) -> None:
        """Drop every shard (and any stale temp file) under ``run_key``."""
        raise NotImplementedError

    def complete_steps(self, run_key: str, nprocs: int) -> list[int]:
        """Steps whose all ``nprocs`` shards exist and validate, ascending."""
        out = []
        for step in self.steps(run_key):
            pids = self._valid_pids(run_key, step)
            if len(pids) == nprocs and all(
                    pids.get(pid) == nprocs for pid in range(nprocs)):
                out.append(step)
        return out

    def latest_step(self, run_key: str, nprocs: int) -> int | None:
        """The newest complete, fully valid step — or ``None`` (restart)."""
        steps = self.complete_steps(run_key, nprocs)
        return steps[-1] if steps else None

    def rollback(self, run_key: str, step: int) -> list[int]:
        """Drop every shard *newer* than ``step`` (the resume cut).

        A healed mesh rolls survivors back to the last complete
        checkpoint and replays forward; shards the crashed attempt wrote
        past that cut are from an epoch that no longer exists.  Leaving
        them would let the retry's own writes interleave with stale
        ones — a later ``latest_step`` could then name a step whose
        shards mix two attempts.  Returns the dropped steps, ascending.
        """
        dropped = [s for s in self.steps(run_key) if s > step]
        for stale in dropped:
            self._drop_step(run_key, stale)
        return dropped

    def _drop_step(self, run_key: str, step: int) -> None:
        """Remove every shard stored at ``step``."""
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """In-memory store for the simulator/thread backends (and unit tests).

    Shards live in this process only, so multi-process backends cannot
    use it — ``bsp_run`` rejects the combination up front.
    """

    shared_across_processes = False

    def __init__(self, keep: int = 3):
        if not isinstance(keep, int) or keep < 1:
            raise BspConfigError(f"keep must be a positive int, got {keep!r}")
        self._keep = keep
        self._lock = threading.Lock()
        # (run_key, step, pid) -> (nprocs, mutable payload, sha256 at put)
        self._shards: dict[tuple[str, int, int],
                           tuple[int, bytearray, str]] = {}

    def _put(self, run_key, step, pid, nprocs, blob):
        with self._lock:
            self._shards[(run_key, step, pid)] = (
                nprocs, bytearray(blob), hashlib.sha256(blob).hexdigest())
            mine = sorted(s for (rk, s, p) in self._shards
                          if rk == run_key and p == pid)
            for stale in mine[:-self._keep]:
                self._shards.pop((run_key, stale, pid), None)

    def _tamper(self, run_key, step, pid, mode):
        with self._lock:
            entry = self._shards.get((run_key, step, pid))
            if entry is None:
                return
            _nprocs, data, _sha = entry
            if mode == faults.TRUNCATE_CHECKPOINT:
                del data[len(data) // 2:]
            elif data:
                data[-1] ^= 0xFF

    def load_shard(self, run_key, step, pid):
        with self._lock:
            entry = self._shards.get((run_key, step, pid))
            blob = None if entry is None else bytes(entry[1])
        if entry is None:
            raise CheckpointError(
                f"no checkpoint shard for rank {pid} at step {step} "
                f"(run {run_key!r})")
        if hashlib.sha256(blob).hexdigest() != entry[2]:
            raise CheckpointError(
                f"checkpoint shard for rank {pid} at step {step} "
                f"(run {run_key!r}) failed its checksum")
        return blob

    def steps(self, run_key):
        with self._lock:
            return sorted({s for (rk, s, _p) in self._shards if rk == run_key})

    def _valid_pids(self, run_key, step):
        with self._lock:
            entries = [(p, n, bytes(d), sha)
                       for (rk, s, p), (n, d, sha) in self._shards.items()
                       if rk == run_key and s == step]
        return {p: n for p, n, blob, sha in entries
                if hashlib.sha256(blob).hexdigest() == sha}

    def _drop_step(self, run_key, step):
        with self._lock:
            for key in [k for k in self._shards
                        if k[0] == run_key and k[1] == step]:
                del self._shards[key]

    def clear(self, run_key):
        with self._lock:
            for key in [k for k in self._shards if k[0] == run_key]:
                del self._shards[key]


class DiskCheckpointStore(CheckpointStore):
    """On-disk store: ``<root>/<run_key>/step-NNNNNNNN/rank-NNNN.ckpt``.

    Each shard is one header line of JSON (version, identity, payload
    length, SHA-256) followed by the raw pickled snapshot.  Writes go to
    a dot-tmp file, fsync, then ``os.replace`` — a reader never sees a
    half-written shard under its final name, and a crash mid-write
    leaves only a temp file that the next scan or ``clear`` sweeps.

    The instance holds only plain attributes, so it pickles across the
    fork/pool boundary; workers write shards directly to the shared
    filesystem the parent scans.
    """

    shared_across_processes = True

    def __init__(self, root: str | os.PathLike, keep: int = 3):
        if not isinstance(keep, int) or keep < 1:
            raise BspConfigError(f"keep must be a positive int, got {keep!r}")
        self._root = os.fspath(root)
        self._keep = keep
        os.makedirs(self._root, exist_ok=True)

    @property
    def root(self) -> str:
        return self._root

    def _run_dir(self, run_key):
        return os.path.join(self._root, run_key)

    def _step_dir(self, run_key, step):
        return os.path.join(self._run_dir(run_key),
                            f"{_STEP_PREFIX}{step:08d}")

    def _shard_path(self, run_key, step, pid):
        return os.path.join(self._step_dir(run_key, step),
                            f"{_RANK_PREFIX}{pid:04d}{_SHARD_SUFFIX}")

    def _put(self, run_key, step, pid, nprocs, blob):
        step_dir = self._step_dir(run_key, step)
        os.makedirs(step_dir, exist_ok=True)
        header = json.dumps({
            "v": _FORMAT_VERSION, "step": step, "pid": pid,
            "nprocs": nprocs, "nbytes": len(blob),
            "sha256": hashlib.sha256(blob).hexdigest(),
        }).encode("ascii")
        path = self._shard_path(run_key, step, pid)
        try:
            atomic_replace_write(path, header, b"\n", blob)
        except FileNotFoundError:
            # A peer's retention pass (or a driver rollback) removed the
            # step directory between our makedirs and the write; re-create
            # it — this rank's shard is current either way.
            os.makedirs(step_dir, exist_ok=True)
            atomic_replace_write(path, header, b"\n", blob)
        self._prune(run_key, pid)

    def _prune(self, run_key, pid):
        # Each rank prunes only its own shards, so concurrent writers
        # never race on a file; empty step dirs fall once the last
        # rank's shard is gone (rmdir fails harmlessly until then).
        mine = [s for s in self._scan_steps(run_key)
                if os.path.exists(self._shard_path(run_key, s, pid))]
        for stale in sorted(mine)[:-self._keep]:
            try:
                os.unlink(self._shard_path(run_key, stale, pid))
            except FileNotFoundError:
                pass
            try:
                os.rmdir(self._step_dir(run_key, stale))
            except OSError:
                pass

    def _tamper(self, run_key, step, pid, mode):
        path = self._shard_path(run_key, step, pid)
        try:
            if mode == faults.TRUNCATE_CHECKPOINT:
                size = os.path.getsize(path)
                with open(path, "r+b") as fh:
                    fh.truncate(max(0, size // 2))
            else:
                with open(path, "r+b") as fh:
                    fh.seek(-1, os.SEEK_END)
                    last = fh.read(1)
                    fh.seek(-1, os.SEEK_END)
                    fh.write(bytes([last[0] ^ 0xFF]))
        except OSError:  # pragma: no cover - shard vanished mid-tamper
            pass

    def _scan_steps(self, run_key) -> list[int]:
        try:
            names = os.listdir(self._run_dir(run_key))
        except FileNotFoundError:
            return []
        steps = []
        for name in names:
            if name.startswith(_STEP_PREFIX):
                try:
                    steps.append(int(name[len(_STEP_PREFIX):]))
                except ValueError:
                    continue
        return sorted(steps)

    def _read(self, path: str) -> tuple[dict, bytes]:
        with open(path, "rb") as fh:
            header_line = fh.readline(_MAX_HEADER)
            if not header_line.endswith(b"\n"):
                raise CheckpointError(f"{path}: malformed checkpoint header")
            try:
                header = json.loads(header_line)
            except ValueError as exc:
                raise CheckpointError(
                    f"{path}: unparseable checkpoint header") from exc
            blob = fh.read()
        if not isinstance(header, dict) or header.get("v") != _FORMAT_VERSION \
                or not isinstance(header.get("nbytes"), int):
            raise CheckpointError(f"{path}: unsupported checkpoint header")
        if len(blob) != header["nbytes"]:
            raise CheckpointError(
                f"{path}: truncated shard ({len(blob)} of "
                f"{header['nbytes']} payload bytes)")
        if hashlib.sha256(blob).hexdigest() != header.get("sha256"):
            raise CheckpointError(f"{path}: shard failed its checksum")
        return header, blob

    def load_shard(self, run_key, step, pid):
        path = self._shard_path(run_key, step, pid)
        try:
            header, blob = self._read(path)
        except FileNotFoundError:
            raise CheckpointError(
                f"no checkpoint shard for rank {pid} at step {step} "
                f"(run {run_key!r}, expected {path})") from None
        if header.get("step") != step or header.get("pid") != pid:
            raise CheckpointError(
                f"{path}: header identity (step {header.get('step')}, "
                f"rank {header.get('pid')}) does not match its location")
        return blob

    def steps(self, run_key):
        # Scans happen between runs (workers idle or dead), so sweeping
        # orphaned temp files from interrupted writes here is safe.
        self._sweep_temps(run_key)
        return self._scan_steps(run_key)

    def _sweep_temps(self, run_key) -> None:
        for step in self._scan_steps(run_key):
            step_dir = self._step_dir(run_key, step)
            try:
                names = os.listdir(step_dir)
            except FileNotFoundError:
                continue
            for name in names:
                if name.startswith(_TMP_PREFIX):
                    try:
                        os.unlink(os.path.join(step_dir, name))
                    except FileNotFoundError:
                        pass

    def _valid_pids(self, run_key, step):
        step_dir = self._step_dir(run_key, step)
        try:
            names = os.listdir(step_dir)
        except FileNotFoundError:
            return {}
        out: dict[int, int] = {}
        for name in names:
            if not (name.startswith(_RANK_PREFIX)
                    and name.endswith(_SHARD_SUFFIX)):
                continue
            try:
                pid = int(name[len(_RANK_PREFIX):-len(_SHARD_SUFFIX)])
            except ValueError:
                continue
            try:
                header, _blob = self._read(os.path.join(step_dir, name))
            except (CheckpointError, OSError):
                continue
            if header.get("step") == step and header.get("pid") == pid \
                    and isinstance(header.get("nprocs"), int):
                out[pid] = header["nprocs"]
        return out

    def _drop_step(self, run_key, step):
        shutil.rmtree(self._step_dir(run_key, step), ignore_errors=True)

    def clear(self, run_key):
        shutil.rmtree(self._run_dir(run_key), ignore_errors=True)


@dataclass
class CheckpointConfig:
    """How a ``bsp_run`` checkpoints: where, how often, and whether to
    resume from what the store already holds.

    ``run_key`` namespaces runs sharing one store; ``resume=False`` (the
    default) clears the key up front so stale shards from a previous run
    can never hijack an in-run crash retry.
    """

    store: CheckpointStore
    every: int = 1
    run_key: str = "default"
    resume: bool = False

    def __post_init__(self):
        if not isinstance(self.store, CheckpointStore):
            raise BspConfigError(
                f"checkpoint store must be a CheckpointStore, "
                f"got {type(self.store).__name__}")
        if not isinstance(self.every, int) or self.every < 1:
            raise BspConfigError(
                f"checkpoint_every must be a positive int, "
                f"got {self.every!r}")
        if not self.run_key or "/" in self.run_key or os.sep in self.run_key:
            raise BspConfigError(
                f"run_key must be a non-empty path-free name, "
                f"got {self.run_key!r}")


class WorkerCheckpoint:
    """One rank's checkpoint agent, bound to its :class:`~repro.core.api.Bsp`.

    Created (and the resume snapshot loaded) inside the worker by
    :class:`CheckpointedProgram`; the ``Bsp`` context calls ``due`` /
    ``write`` from its ``checkpoint()`` method and hands the restored
    program state out once via ``take_state``.
    """

    def __init__(self, store: CheckpointStore, every: int, run_key: str,
                 snapshot: Snapshot | None = None):
        self._store = store
        self._every = every
        self._run_key = run_key
        self._snapshot = snapshot
        self._state_pending = snapshot is not None
        self._last_step = None if snapshot is None else snapshot.step

    @property
    def snapshot(self) -> Snapshot | None:
        return self._snapshot

    def take_state(self) -> Any:
        if not self._state_pending:
            return None
        self._state_pending = False
        return self._snapshot.state

    def due(self, step: int) -> bool:
        return self._last_step is None or step - self._last_step >= self._every

    def write(self, step: int, pid: int, nprocs: int, state: Any,
              inbox: Iterable, samples: Iterable) -> None:
        snap = Snapshot(step=step, pid=pid, nprocs=nprocs, state=state,
                        inbox=list(inbox), samples=list(samples))
        self._store.save_shard(self._run_key, step, pid, nprocs,
                               encode_snapshot(snap))
        self._last_step = step


class CheckpointedProgram:
    """Program wrapper that attaches a checkpoint agent inside each worker.

    Picklable whenever the wrapped program and store are, so it crosses
    every backend boundary (fork, pooled pickle blob, TCP) unchanged.
    When ``resume_step`` is set, each rank loads and validates its own
    shard before the program body runs; ``Bsp._attach_checkpoint``
    restores ledger, inbox, and superstep counter from it.
    """

    def __init__(self, program, config: CheckpointConfig,
                 resume_step: int | None):
        self._program = program
        self._config = config
        self._resume_step = resume_step

    def __call__(self, bsp, *args, **kwargs):
        cfg = self._config
        snapshot = None
        if self._resume_step is not None:
            blob = cfg.store.load_shard(cfg.run_key, self._resume_step,
                                        bsp.pid)
            snapshot = decode_snapshot(blob)
            if (snapshot.step != self._resume_step or snapshot.pid != bsp.pid
                    or snapshot.nprocs != bsp.nprocs):
                raise CheckpointError(
                    f"checkpoint shard mismatch: expected (step "
                    f"{self._resume_step}, rank {bsp.pid}, nprocs "
                    f"{bsp.nprocs}), found (step {snapshot.step}, rank "
                    f"{snapshot.pid}, nprocs {snapshot.nprocs})")
        bsp._attach_checkpoint(WorkerCheckpoint(
            cfg.store, cfg.every, cfg.run_key, snapshot))
        return self._program(bsp, *args, **kwargs)
