"""Barnes–Hut octree: construction, force evaluation, essential pruning.

The BH tree [Barnes & Hut 1986] hierarchically groups bodies into cubic
cells; a cell of side ``s`` whose centre of mass lies at distance ``d``
from an evaluation point may stand in for all its bodies when
``s / d < θ`` (the opening criterion), giving O(N log N) force evaluation.

Two consumers:

* :func:`accelerations` — sequential force evaluation over the whole tree
  (the baseline program and the per-processor local phase);
* :meth:`BHTree.essential_records` — the *essential tree* of Section 3.2:
  the pruned view of a local tree that is sufficient for every evaluation
  point inside a foreign processor's bounding box.  Pruning uses the
  minimum distance from the box to the cell's centre of mass, so the
  opening criterion is satisfied for *every* body the receiver holds; the
  receiver can therefore treat the records as plain point masses.  The
  paper notes being "careful in minimizing the amount of data sent" here —
  each record is (mass, com), two 16-byte packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ... import kernels
from .bodies import box_min_distance

#: Default opening angle; the SPLASH/paper-era customary value.
DEFAULT_THETA = 1.0
#: Default Plummer softening (fraction of the system scale).
DEFAULT_EPS = 0.05

#: Softened-distance floor: ``r² + eps²`` below this means two bodies sit
#: at (numerically) the same point with no softening, and ``r²^{-1.5}``
#: would overflow into ``inf``/``nan`` accelerations that silently corrupt
#: every downstream integration step.  The floor is far below any physical
#: separation (``1e-30`` ≈ (1e-15)², the square of double-precision noise
#: on unit-scale coordinates) so it never triggers on healthy inputs.
MIN_SOFTENED_R2 = 1e-30


def softened_inv_r3(r2: np.ndarray) -> np.ndarray:
    """``r2 ** -1.5`` with the zero-distance guard.

    Raises :class:`ZeroDivisionError` when any softened squared distance
    falls below :data:`MIN_SOFTENED_R2` — a zero-distance pair evaluated
    with ``eps = 0`` — instead of propagating ``inf``/``nan`` into the
    accelerations.  Evaluated under ``np.errstate`` so legitimate large
    values never emit spurious warnings.
    """
    r2 = np.asarray(r2)
    if r2.size and float(np.min(r2)) < MIN_SOFTENED_R2:
        raise ZeroDivisionError(
            "zero-distance body pair with eps=0: softened r^2 "
            f"{float(np.min(r2)):.3g} is below the {MIN_SOFTENED_R2:.0e} "
            "floor; separate the coincident bodies or use a positive "
            "softening eps"
        )
    with np.errstate(divide="ignore", over="ignore"):
        return r2 ** -1.5


@dataclass
class _Cell:
    """One octree node (internal or leaf)."""

    center: np.ndarray
    half: float
    mass: float = 0.0
    com: np.ndarray = field(default_factory=lambda: np.zeros(3))
    children: list["_Cell | None"] | None = None  # None => leaf
    body_index: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class BHTree:
    """Barnes–Hut octree over a fixed set of bodies.

    ``leaf_size`` > 1 buckets nearby bodies into one leaf (bodies in a
    leaf always interact exactly); ``bounds`` forces a specific root cube
    so that independently built trees decompose space identically.
    """

    def __init__(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        *,
        leaf_size: int = 8,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
    ):
        pos = np.ascontiguousarray(pos, dtype=np.float64)
        mass = np.ascontiguousarray(mass, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError(f"pos must be (n, 3), got {pos.shape}")
        if mass.shape != (len(pos),):
            raise ValueError("mass must be (n,)")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.pos = pos
        self.mass = mass
        self.leaf_size = leaf_size
        if bounds is None:
            if len(pos) == 0:
                lo = np.zeros(3)
                hi = np.ones(3)
            else:
                lo, hi = pos.min(axis=0), pos.max(axis=0)
        else:
            lo, hi = np.asarray(bounds[0], float), np.asarray(bounds[1], float)
        center = (lo + hi) / 2.0
        half = float(max((hi - lo).max() / 2.0, 1e-12)) * (1 + 1e-9)
        self.root = _Cell(center=center, half=half)
        self._build(self.root, list(range(len(pos))))

    def _build(self, cell: _Cell, index: list[int]) -> None:
        cell.body_index = index
        if index:
            m = self.mass[index]
            cell.mass = float(m.sum())
            cell.com = (m[:, None] * self.pos[index]).sum(axis=0) / cell.mass
        if len(index) <= self.leaf_size:
            return
        cell.children = [None] * 8
        buckets: list[list[int]] = [[] for _ in range(8)]
        c = cell.center
        for i in index:
            p = self.pos[i]
            octant = (
                (4 if p[0] >= c[0] else 0)
                | (2 if p[1] >= c[1] else 0)
                | (1 if p[2] >= c[2] else 0)
            )
            buckets[octant].append(i)
        quarter = cell.half / 2.0
        for octant, bucket in enumerate(buckets):
            if not bucket:
                continue
            offset = np.array(
                [
                    quarter if octant & 4 else -quarter,
                    quarter if octant & 2 else -quarter,
                    quarter if octant & 1 else -quarter,
                ]
            )
            child = _Cell(center=c + offset, half=quarter)
            cell.children[octant] = child
            if len(bucket) == len(index):
                # Degenerate: identical positions — stop splitting.
                child.body_index = bucket
                m = self.mass[bucket]
                child.mass = float(m.sum())
                child.com = cell.com.copy()
                continue
            self._build(child, bucket)
        cell.body_index = []  # internal nodes don't keep body lists

    # -- queries -------------------------------------------------------------

    @property
    def nbodies(self) -> int:
        return len(self.mass)

    def cell_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            cell = stack.pop()
            count += 1
            if cell.children:
                stack.extend(ch for ch in cell.children if ch is not None)
        return count

    def depth(self) -> int:
        def rec(cell: _Cell) -> int:
            if not cell.children:
                return 1
            return 1 + max(
                rec(ch) for ch in cell.children if ch is not None
            )

        return rec(self.root)

    def force_terms(
        self, point: np.ndarray, theta: float, *, skip: int = -1
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """(masses, positions, interactions) to accumulate at ``point``.

        Traverses with the opening criterion; ``skip`` excludes one body
        index (the evaluation body itself).  The returned interaction
        count is the paper-era load measure used for ORB weights.
        """
        masses: list[float] = []
        points: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if cell.mass <= 0.0:
                continue
            if cell.is_leaf:
                for i in cell.body_index:
                    if i != skip:
                        masses.append(float(self.mass[i]))
                        points.append(self.pos[i])
                continue
            d = float(np.linalg.norm(cell.com - point))
            if d > 0.0 and (2.0 * cell.half) / d < theta:
                masses.append(cell.mass)
                points.append(cell.com)
            else:
                assert cell.children is not None
                stack.extend(ch for ch in cell.children if ch is not None)
        if not masses:
            return np.zeros(0), np.zeros((0, 3)), 0
        return np.array(masses), np.vstack(points), len(masses)

    def essential_records(
        self,
        box_lo: np.ndarray,
        box_hi: np.ndarray,
        theta: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The essential tree for a foreign region, flattened to records.

        Returns (masses, positions).  A cell is emitted whole when the
        opening criterion holds at the *minimum* distance from the foreign
        box to the cell's centre of mass — then it holds for every body in
        the box; otherwise the cell is opened.  Leaves emit their bodies.
        """
        masses: list[float] = []
        points: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if cell.mass <= 0.0:
                continue
            if cell.is_leaf:
                for i in cell.body_index:
                    masses.append(float(self.mass[i]))
                    points.append(self.pos[i])
                continue
            d_min = box_min_distance(box_lo, box_hi, cell.com)
            if d_min > 0.0 and (2.0 * cell.half) / d_min < theta:
                masses.append(cell.mass)
                points.append(cell.com)
            else:
                assert cell.children is not None
                stack.extend(ch for ch in cell.children if ch is not None)
        if not masses:
            return np.zeros(0), np.zeros((0, 3))
        return np.array(masses), np.vstack(points)


def pairwise_acceleration(
    point: np.ndarray,
    masses: np.ndarray,
    positions: np.ndarray,
    eps: float,
) -> np.ndarray:
    """Softened gravitational acceleration at ``point`` from point masses.

    An empty force-term list (``positions.shape == (0, 3)``) yields the
    zero vector of shape ``(3,)`` — the single body / empty tree case —
    never a degenerate empty result.
    """
    masses = np.asarray(masses, dtype=np.float64)
    if masses.size == 0:
        return np.zeros(3)
    delta = np.asarray(positions, dtype=np.float64).reshape(-1, 3) - point
    r2 = (delta * delta).sum(axis=1) + eps * eps
    inv_r3 = softened_inv_r3(r2)
    return (masses * inv_r3) @ delta


def accelerations(
    pos: np.ndarray,
    mass: np.ndarray,
    *,
    theta: float = DEFAULT_THETA,
    eps: float = DEFAULT_EPS,
    leaf_size: int = 8,
    tree: BHTree | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Barnes–Hut accelerations for every body.

    Returns ``(acc, interactions)`` where ``interactions[i]`` counts the
    force terms accumulated for body ``i`` (the per-body load measure).
    """
    if tree is None:
        tree = BHTree(pos, mass, leaf_size=leaf_size)
    n = len(mass)
    walk = kernels.get("bh_walk")
    return walk(tree, pos, theta, eps, np.arange(n, dtype=np.int64))


def direct_accelerations(
    pos: np.ndarray, mass: np.ndarray, *, eps: float = DEFAULT_EPS
) -> np.ndarray:
    """Exact O(N²) accelerations — the accuracy oracle for tests."""
    return kernels.get("bh_direct")(pos, mass, eps)
