"""Body-set container and axis-aligned bounding boxes for the N-body app."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Bodies:
    """A set of point masses with positions and velocities (3-D).

    Arrays are (n, 3) float64 for ``pos``/``vel`` and (n,) for ``mass``;
    ``ident`` carries stable global ids through migrations so parallel and
    sequential results can be compared body-by-body.
    """

    pos: np.ndarray
    vel: np.ndarray
    mass: np.ndarray
    ident: np.ndarray

    @classmethod
    def create(cls, pos: np.ndarray, vel: np.ndarray, mass: np.ndarray
               ) -> "Bodies":
        pos = np.ascontiguousarray(pos, dtype=np.float64)
        vel = np.ascontiguousarray(vel, dtype=np.float64)
        mass = np.ascontiguousarray(mass, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError(f"pos must be (n, 3), got {pos.shape}")
        if vel.shape != pos.shape:
            raise ValueError("vel shape must match pos")
        if mass.shape != (len(pos),):
            raise ValueError("mass must be (n,)")
        if len(mass) and mass.min() <= 0:
            raise ValueError("masses must be positive")
        return cls(pos=pos, vel=vel, mass=mass,
                   ident=np.arange(len(pos), dtype=np.int64))

    def __len__(self) -> int:
        return len(self.mass)

    def subset(self, index: np.ndarray) -> "Bodies":
        return Bodies(
            pos=self.pos[index].copy(),
            vel=self.vel[index].copy(),
            mass=self.mass[index].copy(),
            ident=self.ident[index].copy(),
        )

    @staticmethod
    def concatenate(parts: list["Bodies"]) -> "Bodies":
        if not parts:
            raise ValueError("nothing to concatenate")
        return Bodies(
            pos=np.vstack([p.pos for p in parts]),
            vel=np.vstack([p.vel for p in parts]),
            mass=np.concatenate([p.mass for p in parts]),
            ident=np.concatenate([p.ident for p in parts]),
        )

    def ordered_by_ident(self) -> "Bodies":
        """Rows sorted by global id (canonical order for comparisons)."""
        return self.subset(np.argsort(self.ident, kind="stable"))

    def aabb(self) -> tuple[np.ndarray, np.ndarray]:
        """(lo, hi) corners of the bodies' bounding box."""
        if len(self) == 0:
            zero = np.zeros(3)
            return zero, zero
        return self.pos.min(axis=0), self.pos.max(axis=0)

    def kinetic_energy(self) -> float:
        return float(0.5 * (self.mass * (self.vel**2).sum(axis=1)).sum())


def box_min_distance(lo: np.ndarray, hi: np.ndarray, point: np.ndarray
                     ) -> float:
    """Minimum Euclidean distance from ``point`` to the box [lo, hi].

    Zero when the point lies inside — the conservative quantity the
    essential-tree pruning uses: every body in the box is at least this
    far from ``point``.
    """
    gap = np.maximum(np.maximum(lo - point, point - hi), 0.0)
    return float(np.sqrt((gap * gap).sum()))
