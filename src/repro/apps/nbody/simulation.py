"""Sequential Barnes–Hut N-body simulation (the 1-processor baseline).

Each time step rebuilds the BH tree, evaluates softened-gravity
accelerations with the opening criterion, and advances a symplectic Euler
(kick–drift) integrator — the same scheme the BSP driver uses, so parallel
and sequential trajectories are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bhtree import DEFAULT_EPS, DEFAULT_THETA, accelerations, direct_accelerations
from .bodies import Bodies

#: Default time step in Hénon units.
DEFAULT_DT = 0.025


@dataclass(frozen=True)
class SimulationResult:
    """Final state plus per-run diagnostics."""

    bodies: Bodies
    total_interactions: int
    steps: int


def step_bodies(
    bodies: Bodies,
    acc: np.ndarray,
    dt: float,
) -> None:
    """One in-place kick–drift update (symplectic Euler)."""
    bodies.vel += acc * dt
    bodies.pos += bodies.vel * dt


def simulate(
    bodies: Bodies,
    steps: int = 1,
    *,
    theta: float = DEFAULT_THETA,
    eps: float = DEFAULT_EPS,
    dt: float = DEFAULT_DT,
    leaf_size: int = 8,
) -> SimulationResult:
    """Evolve a copy of ``bodies`` for ``steps`` Barnes–Hut time steps."""
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    state = bodies.subset(np.arange(len(bodies)))
    total_inter = 0
    for _ in range(steps):
        acc, inter = accelerations(
            state.pos, state.mass, theta=theta, eps=eps, leaf_size=leaf_size
        )
        total_inter += int(inter.sum())
        step_bodies(state, acc, dt)
    return SimulationResult(
        bodies=state, total_interactions=total_inter, steps=steps
    )


def potential_energy(bodies: Bodies, eps: float = DEFAULT_EPS) -> float:
    """Exact softened pairwise potential (for energy-drift diagnostics)."""
    n = len(bodies)
    total = 0.0
    for i in range(n):
        delta = bodies.pos[i + 1 :] - bodies.pos[i]
        r = np.sqrt((delta * delta).sum(axis=1) + eps * eps)
        total -= float((bodies.mass[i] * bodies.mass[i + 1 :] / r).sum())
    return total


def total_energy(bodies: Bodies, eps: float = DEFAULT_EPS) -> float:
    return bodies.kinetic_energy() + potential_energy(bodies, eps)


def simulate_direct(
    bodies: Bodies,
    steps: int = 1,
    *,
    eps: float = DEFAULT_EPS,
    dt: float = DEFAULT_DT,
) -> SimulationResult:
    """Same integrator with exact O(N²) forces — the accuracy oracle."""
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    state = bodies.subset(np.arange(len(bodies)))
    for _ in range(steps):
        acc = direct_accelerations(state.pos, state.mass, eps=eps)
        step_bodies(state, acc, dt)
    return SimulationResult(
        bodies=state,
        total_interactions=steps * len(bodies) * (len(bodies) - 1),
        steps=steps,
    )
