"""Orthogonal Recursive Bisection (ORB) body partitioning.

The paper "use[s] the ORB partitioning scheme to partition the bodies
among the processors" (Section 3.2), with per-body *work weights* (the
interaction counts of the previous iteration) so that each processor gets
an equal share of force-computation work, not merely an equal body count —
the Warren–Salmon / Liu–Bhatt recipe.

ORB recursively splits the body set at a weighted median along the widest
axis, dividing the processor group proportionally; it handles any
processor count (not just powers of two) by splitting groups ⌊k/2⌋ : ⌈k/2⌉.
"""

from __future__ import annotations

import numpy as np


def orb_partition(
    pos: np.ndarray,
    weights: np.ndarray | None,
    nprocs: int,
) -> np.ndarray:
    """Assign each body an owner in ``range(nprocs)`` by recursive bisection.

    ``weights`` (default: uniform) is the per-body work estimate to
    balance.  Deterministic: ties split by position order.
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = len(pos)
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    if pos.ndim != 2:
        raise ValueError("pos must be 2-D")
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError("weights must be one per body")
        if n and weights.min() < 0:
            raise ValueError("weights must be non-negative")
    owner = np.zeros(n, dtype=np.int64)
    if nprocs == 1 or n == 0:
        return owner
    _bisect(pos, weights, np.arange(n), 0, nprocs, owner)
    return owner


def _bisect(
    pos: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    proc_lo: int,
    proc_hi: int,
    owner: np.ndarray,
) -> None:
    nproc = proc_hi - proc_lo
    if nproc == 1 or len(index) == 0:
        owner[index] = proc_lo
        return
    left_procs = nproc // 2
    frac = left_procs / nproc
    spread = pos[index].max(axis=0) - pos[index].min(axis=0) if len(index) else 0
    axis = int(np.argmax(spread))
    order = index[np.argsort(pos[index, axis], kind="stable")]
    cumw = np.cumsum(weights[order])
    total = cumw[-1]
    if total <= 0:
        split = int(round(len(order) * frac))
    else:
        split = int(np.searchsorted(cumw, frac * total, side="left")) + 1
    # Keep both sides non-empty whenever possible.
    split = max(1, min(split, len(order) - 1)) if len(order) > 1 else len(order)
    _bisect(pos, weights, order[:split], proc_lo, proc_lo + left_procs, owner)
    _bisect(pos, weights, order[split:], proc_lo + left_procs, proc_hi, owner)


def load_imbalance(loads: np.ndarray) -> float:
    """max/mean − 1 over per-processor loads; 0.0 is perfect balance."""
    loads = np.asarray(loads, dtype=np.float64)
    mean = loads.mean()
    if mean <= 0:
        return 0.0
    return float(loads.max() / mean - 1.0)
