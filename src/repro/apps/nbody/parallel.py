"""The BSP Barnes–Hut N-body program (paper Section 3.2, Figure C.4).

Per time step the program executes exactly **six supersteps**, the paper's
per-iteration count:

1. *Geometry* — all-gather each processor's current bounding box (bodies
   drift between repartitions, so the advertised boxes are the actual
   extents, keeping the essential-tree guarantee sound).
2. *Essential trees* — each processor builds its local BH tree and sends
   every peer the pruned view sufficient for that peer's box; ``h`` is two
   16-byte packets per (mass, com) record, the quantity the paper
   minimized.
3. *Load report* — after computing forces (local tree + foreign essential
   records) and integrating, all-gather per-processor interaction counts.
4. *Repartition gather* — when the measured imbalance exceeds the
   threshold (the Liu–Bhatt trigger the paper adopts instead of
   repartitioning every step), positions/weights/ids go to processor 0,
   which reruns ORB; otherwise the superstep is an empty barrier.
5. *Assignment scatter* — processor 0 scatters the new owner of each
   body; empty barrier when not repartitioning.
6. *Migration* — bodies move to their new owners; empty barrier when not
   repartitioning.

The six-superstep shape is what makes the program "efficient even on
fairly small problem sizes and high-latency platforms" (Section 3.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ... import kernels
from ...collectives import allgather, barrier, gather, scatter
from ...core.api import Bsp
from ...core.runtime import bsp_run
from ...core.stats import ProgramStats
from .bhtree import (
    DEFAULT_EPS,
    DEFAULT_THETA,
    BHTree,
)
from .bodies import Bodies
from .orb import load_imbalance, orb_partition
from .simulation import DEFAULT_DT, step_bodies

#: Essential record = (mass, com): 32 bytes = two 16-byte packets.
H_RECORD = 2

#: Repartition when max/mean − 1 exceeds this (paper: "only ... if the
#: load imbalance reaches a certain threshold, as suggested in [23]").
DEFAULT_REBALANCE_THRESHOLD = 0.20


def nbody_program(
    bsp: Bsp,
    parts: list[Bodies],
    steps: int,
    theta: float,
    eps: float,
    dt: float,
    leaf_size: int,
    rebalance_threshold: float,
    warmup: int = 0,
) -> Bodies:
    """BSP program: evolves this processor's bodies; returns final locals.

    The first ``warmup`` steps rebalance eagerly (threshold 0) so the
    *measured* steps run with the settled load distribution of an ongoing
    simulation; the driver trims their supersteps from the statistics.
    """
    with bsp.off_clock():
        mine = parts[bsp.pid].subset(np.arange(len(parts[bsp.pid])))
    p = bsp.nprocs
    nrepartitions = 0

    start_index = 0
    restored = bsp.resume_state()
    if restored is not None:
        # Bodies migrate between processors, so the snapshot carries the
        # full local body set (not indices into the initial partition).
        start_index, pos, vel, mass, ident, nrepartitions = restored
        mine = Bodies(pos=pos, vel=vel, mass=mass, ident=ident)

    for step_index in range(start_index, warmup + steps):
        bsp.checkpoint(lambda: (step_index, mine.pos.copy(),
                                mine.vel.copy(), mine.mass.copy(),
                                mine.ident.copy(), nrepartitions))
        threshold = 0.0 if step_index < warmup else rebalance_threshold
        # -- Superstep 1: geometry exchange.
        lo, hi = mine.aabb()
        boxes = allgather(bsp, (lo, hi))

        # -- Superstep 2: essential-tree exchange.
        tree = (
            BHTree(mine.pos, mine.mass, leaf_size=leaf_size)
            if len(mine)
            else None
        )
        # Abstract work: tree construction is n log n inserts.  Charged
        # units model load on hardware where the arithmetic (not Python
        # interpreter overhead) dominates; the harness normalizes them to
        # the paper's measured one-processor seconds.
        if len(mine):
            bsp.charge(len(mine) * max(1.0, np.log2(len(mine))))
        for q in range(p):
            if q == bsp.pid:
                continue
            if tree is None:
                rec_m = np.zeros(0)
                rec_p = np.zeros((0, 3))
            else:
                rec_m, rec_p = tree.essential_records(
                    boxes[q][0], boxes[q][1], theta
                )
            bsp.send(q, (rec_m, rec_p), h=max(1, H_RECORD * len(rec_m)))
            bsp.charge(float(len(rec_m)))
        bsp.sync()
        foreign_m: list[np.ndarray] = []
        foreign_p: list[np.ndarray] = []
        for pkt in bsp.packets():
            rec_m, rec_p = pkt.payload
            if len(rec_m):
                foreign_m.append(rec_m)
                foreign_p.append(rec_p)
        far_m = np.concatenate(foreign_m) if foreign_m else np.zeros(0)
        far_p = np.vstack(foreign_p) if foreign_p else np.zeros((0, 3))
        # Merge the essential records into a tree of their own and
        # traverse it per body — the message-passing analogue of the
        # paper's "local BH tree that contains all the data needed":
        # without it every body would touch every foreign record and the
        # total interaction count (hence work) would grow with p.
        far_tree = (
            BHTree(far_p, far_m, leaf_size=leaf_size) if len(far_m) else None
        )

        # Force evaluation: local tree + merged foreign-record tree, via
        # the selected walk kernel (vectorized by default; the per-body
        # reference traversal under REPRO_KERNELS=reference).
        walk = kernels.get("bh_walk")
        n_local = len(mine)
        acc = np.zeros((n_local, 3))
        inter = np.zeros(n_local, dtype=np.int64)
        if tree is not None and n_local:
            a, c = walk(tree, mine.pos, theta, eps,
                        np.arange(n_local, dtype=np.int64))
            acc += a
            inter += c
        if far_tree is not None and n_local:
            a, c = walk(far_tree, mine.pos, theta, eps, None)
            acc += a
            inter += c
        step_bodies(mine, acc, dt)
        # The dominant charge: one unit per body-cell interaction (the
        # quantity the paper's 97%-of-runtime force phase scales with).
        bsp.charge(float(inter.sum()) + len(mine))

        # -- Superstep 3: load report.
        loads = allgather(bsp, float(inter.sum()))
        imbalance = load_imbalance(np.array(loads))
        rebalance = p > 1 and imbalance > threshold

        if rebalance:
            nrepartitions += 1
            # -- Superstep 4: gather geometry + weights at processor 0.
            body_weights = np.maximum(inter, 1).astype(np.float64)
            per_proc = gather(bsp, (mine.pos, body_weights), root=0)
            # -- Superstep 5: scatter new owners, aligned with each
            #    processor's current body order.
            if bsp.pid == 0:
                assert per_proc is not None
                counts = [len(part[1]) for part in per_proc]
                all_pos = np.vstack([part[0] for part in per_proc])
                all_w = np.concatenate([part[1] for part in per_proc])
                owner = orb_partition(all_pos, all_w, p)
                bounds = np.concatenate([[0], np.cumsum(counts)])
                assignments = [
                    owner[bounds[q] : bounds[q + 1]] for q in range(p)
                ]
            else:
                assignments = None
            my_owner = scatter(bsp, assignments, root=0)
            # -- Superstep 6: migrate bodies to their new owners.
            for q in range(p):
                if q == bsp.pid:
                    continue
                moving = np.flatnonzero(my_owner == q)
                if len(moving):
                    sub = mine.subset(moving)
                    bsp.send(
                        q,
                        (sub.pos, sub.vel, sub.mass, sub.ident),
                        h=max(1, 4 * len(moving)),
                    )
            keep = mine.subset(np.flatnonzero(my_owner == bsp.pid))
            bsp.sync()
            arrived = [keep]
            for pkt in bsp.packets():
                pos, vel, mass, ident = pkt.payload
                arrived.append(Bodies(pos=pos, vel=vel, mass=mass, ident=ident))
            mine = Bodies.concatenate(
                [b for b in arrived if len(b)] or [keep]
            )
        else:
            # Keep the six-superstep iteration shape: empty barriers.
            barrier(bsp)
            barrier(bsp)
            barrier(bsp)

    return mine


@dataclass(frozen=True)
class NBodyRun:
    """Final merged body state plus BSP accounting."""

    bodies: Bodies
    stats: ProgramStats


def bsp_nbody(
    bodies: Bodies,
    nprocs: int,
    steps: int = 1,
    *,
    theta: float = DEFAULT_THETA,
    eps: float = DEFAULT_EPS,
    dt: float = DEFAULT_DT,
    leaf_size: int = 8,
    rebalance_threshold: float = DEFAULT_REBALANCE_THRESHOLD,
    backend: str = "simulator",
    balance: bool = True,
    warmup_steps: int = 0,
    checkpoint: Any = None,
    retries: int = 0,
    sync: str = "strict",
) -> NBodyRun:
    """Evolve ``bodies`` for ``steps`` BH time steps on ``nprocs`` processors.

    The initial distribution is an ORB partition weighted by estimated
    per-body interaction counts (``balance=False`` for uniform weights);
    thereafter the program repartitions itself only when the
    interaction-count imbalance crosses ``rebalance_threshold``.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    if warmup_steps < 0:
        raise ValueError(f"warmup_steps must be >= 0, got {warmup_steps}")
    # The paper partitions by the *previous iteration's* load; for a fresh
    # start we estimate per-body interaction counts with one untimed
    # sequential BH pass (the central bodies of a Plummer sphere interact
    # with far more cells than the halo — uniform weights would leave the
    # inner processors ~2x overloaded).
    if balance and len(bodies) > 1:
        tree = BHTree(bodies.pos, bodies.mass, leaf_size=leaf_size)
        _, counts = kernels.get("bh_walk")(
            tree, bodies.pos, theta, eps,
            np.arange(len(bodies), dtype=np.int64),
        )
        weights = np.maximum(counts.astype(np.float64), 1.0)
    else:
        weights = None
    owner = orb_partition(bodies.pos, weights, nprocs)
    parts = [bodies.subset(np.flatnonzero(owner == q)) for q in range(nprocs)]
    run = bsp_run(
        nbody_program,
        nprocs,
        backend=backend,
        args=(
            parts,
            steps,
            theta,
            eps,
            dt,
            leaf_size,
            rebalance_threshold,
            warmup_steps,
        ),
        checkpoint=checkpoint,
        retries=retries,
        sync=sync,
    )
    merged = Bodies.concatenate([b for b in run.results if len(b)])
    stats = run.stats
    if warmup_steps and steps:
        stats = stats.trimmed(6 * warmup_steps)
    return NBodyRun(bodies=merged.ordered_by_ident(), stats=stats)
