"""Barnes–Hut N-body simulation with ORB partitioning and essential-tree
exchange (paper Section 3.2, Figure C.4)."""

from .bhtree import (
    DEFAULT_EPS,
    DEFAULT_THETA,
    BHTree,
    accelerations,
    direct_accelerations,
    pairwise_acceleration,
)
from .bodies import Bodies, box_min_distance
from .orb import load_imbalance, orb_partition
from .parallel import (
    DEFAULT_REBALANCE_THRESHOLD,
    NBodyRun,
    bsp_nbody,
    nbody_program,
)
from .plummer import plummer, uniform_cube
from .simulation import (
    DEFAULT_DT,
    SimulationResult,
    potential_energy,
    simulate,
    simulate_direct,
    total_energy,
)

__all__ = [
    "BHTree",
    "Bodies",
    "DEFAULT_DT",
    "DEFAULT_EPS",
    "DEFAULT_REBALANCE_THRESHOLD",
    "DEFAULT_THETA",
    "NBodyRun",
    "SimulationResult",
    "accelerations",
    "box_min_distance",
    "bsp_nbody",
    "direct_accelerations",
    "load_imbalance",
    "nbody_program",
    "orb_partition",
    "pairwise_acceleration",
    "plummer",
    "potential_energy",
    "simulate",
    "simulate_direct",
    "total_energy",
    "uniform_cube",
]
