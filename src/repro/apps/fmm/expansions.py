"""Complex-variable expansions for the 2-D FMM (Greengard–Rokhlin).

The 2-D Coulomb/gravity potential of charges :math:`q_i` at
:math:`z_i ∈ ℂ` is :math:`φ(z) = Σ_i q_i · \\mathrm{Re}\\,\\log(z−z_i)`;
the (complexified) field is :math:`φ'(z) = Σ_i q_i/(z−z_i)`.

All five FMM operators live here, each directly testable against brute
force:

* :func:`p2m` — particles → multipole about a centre,
* :func:`m2m` — shift a multipole to a new (parent) centre,
* :func:`m2l` — convert a well-separated multipole to a local expansion,
* :func:`l2l` — shift a local expansion to a (child) centre,
* :func:`l2p` / :func:`eval_multipole` — evaluate expansions,
* :func:`p2p` — direct near-field sum.

Conventions: a multipole is the coefficient vector ``a[0..P]`` of
:math:`φ(z) = a_0 \\log(z−z_c) + Σ_{k≥1} a_k/(z−z_c)^k`; a local
expansion is ``b[0..P]`` of :math:`φ(z) = Σ_l b_l (z−z_c)^l`.  The
*real part* is the physical potential (imaginary parts differ by log
branch choices); derivatives are branch-free and compare exactly.
"""

from __future__ import annotations

import numpy as np
from scipy.special import comb


def p2m(z: np.ndarray, q: np.ndarray, center: complex, terms: int
        ) -> np.ndarray:
    """Multipole coefficients (length terms+1) of charges about center."""
    a = np.zeros(terms + 1, dtype=np.complex128)
    d = z - center
    a[0] = q.sum()
    power = np.ones_like(d)
    for k in range(1, terms + 1):
        power = power * d
        a[k] = -(q * power).sum() / k
    return a


def eval_multipole(a: np.ndarray, center: complex, z: np.ndarray
                   ) -> np.ndarray:
    """Evaluate a multipole expansion at (well-separated) targets."""
    d = z - center
    out = a[0] * np.log(d)
    inv = 1.0 / d
    power = np.ones_like(d)
    for k in range(1, len(a)):
        power = power * inv
        out = out + a[k] * power
    return out


def eval_multipole_deriv(a: np.ndarray, center: complex, z: np.ndarray
                         ) -> np.ndarray:
    """d/dz of the multipole expansion (the complexified field)."""
    d = z - center
    out = a[0] / d
    inv = 1.0 / d
    power = inv
    for k in range(1, len(a)):
        power = power * inv
        out = out - k * a[k] * power
    return out


def m2m(a: np.ndarray, shift: complex) -> np.ndarray:
    """Shift a multipole from centre ``z0`` to ``z0 − shift``.

    ``shift = child_center − parent_center``; Greengard's Lemma 2.3:
    ``b_l = −a_0 shift^l/l + Σ_{k=1}^{l} a_k shift^{l−k} C(l−1, k−1)``.
    """
    terms = len(a) - 1
    b = np.zeros_like(a)
    b[0] = a[0]
    for l in range(1, terms + 1):
        total = -a[0] * shift**l / l
        for k in range(1, l + 1):
            total += a[k] * shift ** (l - k) * comb(l - 1, k - 1, exact=True)
        b[l] = total
    return b


def m2l(a: np.ndarray, d: complex) -> np.ndarray:
    """Convert a multipole about ``z_m`` to a local about ``z_l``.

    ``d = z_m − z_l`` with the cells well separated; Greengard's
    Lemma 2.4:
    ``b_0 = a_0 log(−d) + Σ_k a_k (−1)^k / d^k``
    ``b_l = −a_0/(l d^l) + d^{−l} Σ_k a_k (−1)^k C(l+k−1, k−1)/d^k``.
    """
    terms = len(a) - 1
    b = np.zeros_like(a)
    inv = 1.0 / d
    signs = (-1.0) ** np.arange(terms + 1)
    powers = inv ** np.arange(terms + 1)
    b[0] = a[0] * np.log(-d) + (a[1:] * signs[1:] * powers[1:]).sum()
    for l in range(1, terms + 1):
        total = -a[0] / l
        for k in range(1, terms + 1):
            total += (
                a[k] * signs[k] * powers[k]
                * comb(l + k - 1, k - 1, exact=True)
            )
        b[l] = total * powers[l]
    return b


def l2l(b: np.ndarray, shift: complex) -> np.ndarray:
    """Re-centre a local expansion: coefficients about ``z_c + shift``
    become coefficients about ``z_c`` ... precisely: given φ(z) =
    Σ b_l (z − z_old)^l, return c with φ(z) = Σ c_j (z − z_new)^j where
    ``shift = z_new − z_old`` (plain binomial re-expansion)."""
    terms = len(b) - 1
    c = np.zeros_like(b)
    for j in range(terms + 1):
        total = 0.0 + 0.0j
        for l in range(j, terms + 1):
            total += b[l] * comb(l, j, exact=True) * shift ** (l - j)
        c[j] = total
    return c


def l2p(b: np.ndarray, center: complex, z: np.ndarray) -> np.ndarray:
    """Evaluate a local expansion at targets (Horner)."""
    d = z - center
    out = np.full_like(d, b[-1])
    for l in range(len(b) - 2, -1, -1):
        out = out * d + b[l]
    return out


def l2p_deriv(b: np.ndarray, center: complex, z: np.ndarray) -> np.ndarray:
    """d/dz of a local expansion at targets."""
    if len(b) < 2:
        return np.zeros_like(z)
    d = z - center
    out = np.full_like(d, (len(b) - 1) * b[-1])
    for l in range(len(b) - 2, 0, -1):
        out = out * d + l * b[l]
    return out


def p2p(z_targets: np.ndarray, z_sources: np.ndarray, q: np.ndarray,
        *, skip_self: bool = False) -> np.ndarray:
    """Direct potential (complex log-sum) of sources at targets.

    ``skip_self`` drops zero-distance pairs (self-interaction) instead of
    producing infinities.
    """
    d = z_targets[:, None] - z_sources[None, :]
    if skip_self:
        mask = d == 0
        d = np.where(mask, 1.0, d)
        vals = np.log(d) * q[None, :]
        vals = np.where(mask, 0.0, vals)
        return vals.sum(axis=1)
    return (np.log(d) * q[None, :]).sum(axis=1)


def p2p_deriv(z_targets: np.ndarray, z_sources: np.ndarray, q: np.ndarray,
              *, skip_self: bool = False) -> np.ndarray:
    """Direct field Σ q/(z−z_i) at targets."""
    d = z_targets[:, None] - z_sources[None, :]
    if skip_self:
        mask = d == 0
        d = np.where(mask, 1.0, d)
        vals = q[None, :] / d
        vals = np.where(mask, 0.0, vals)
        return vals.sum(axis=1)
    return (q[None, :] / d).sum(axis=1)
