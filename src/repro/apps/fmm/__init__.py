"""2-D Fast Multipole Method (paper Section 5's named future work).

The uniform-quadtree FMM — the full O(N) machinery (P2M/M2M upward, M2L
interaction lists, L2L downward, near-field direct sums) that the
*adaptive* method of [7] refines with non-uniform trees.  The BSP version
runs in a **constant** number of supersteps (one multipole exchange, one
near-field particle exchange): the strongest possible instance of the
paper's small-S design rule.
"""

from .expansions import (
    eval_multipole,
    eval_multipole_deriv,
    l2l,
    l2p,
    l2p_deriv,
    m2l,
    m2m,
    p2m,
    p2p,
    p2p_deriv,
)
from .parallel import FmmRun, bsp_fmm, fmm_program
from .quadtree import (
    cell_center,
    cell_width,
    cells_at,
    children,
    demorton,
    interaction_list,
    leaf_owner_ranges,
    morton,
    neighbors,
    parent,
)
from .sequential import (
    FmmResult,
    default_depth,
    direct_evaluate,
    fmm_evaluate,
)

__all__ = [
    "FmmResult",
    "FmmRun",
    "bsp_fmm",
    "cell_center",
    "cell_width",
    "cells_at",
    "children",
    "default_depth",
    "demorton",
    "direct_evaluate",
    "eval_multipole",
    "eval_multipole_deriv",
    "fmm_evaluate",
    "fmm_program",
    "interaction_list",
    "l2l",
    "l2p",
    "l2p_deriv",
    "leaf_owner_ranges",
    "m2l",
    "m2m",
    "morton",
    "neighbors",
    "p2m",
    "p2p",
    "p2p_deriv",
    "parent",
]
