"""Uniform quadtree geometry for the 2-D Fast Multipole Method.

Cells at level ℓ form a 2^ℓ × 2^ℓ grid over the unit square; a cell is
addressed by ``(ix, iy)`` or by its Morton (z-order) index, which is also
the parallel decomposition order (contiguous Morton ranges make each
processor's subtree boundary short).  This module is pure geometry:
parent/child maps, neighbor sets, and the classic *interaction list* —
children of the parent's neighbors that are not the cell's own neighbors,
i.e. the well-separated cells whose multipoles convert to this cell's
local expansion.
"""

from __future__ import annotations

import numpy as np


def cells_at(level: int) -> int:
    """Number of cells per side at ``level``."""
    if level < 0:
        raise ValueError(f"level must be >= 0, got {level}")
    return 1 << level


def cell_center(level: int, ix: int, iy: int) -> complex:
    """Centre of cell (ix, iy) at ``level`` as a complex coordinate."""
    w = 1.0 / cells_at(level)
    return complex((ix + 0.5) * w, (iy + 0.5) * w)


def cell_width(level: int) -> float:
    return 1.0 / cells_at(level)


def morton(ix: int, iy: int) -> int:
    """Interleave bits: z-order index of (ix, iy)."""
    code = 0
    for bit in range(max(ix.bit_length(), iy.bit_length(), 1)):
        code |= ((ix >> bit) & 1) << (2 * bit)
        code |= ((iy >> bit) & 1) << (2 * bit + 1)
    return code


def demorton(code: int) -> tuple[int, int]:
    """Inverse of :func:`morton`."""
    ix = iy = 0
    bit = 0
    while code:
        ix |= (code & 1) << bit
        code >>= 1
        iy |= (code & 1) << bit
        code >>= 1
        bit += 1
    return ix, iy


def morton_of_points(points: np.ndarray, level: int) -> np.ndarray:
    """Morton index of the leaf cell containing each (x, y) point."""
    n = cells_at(level)
    ix = np.clip((points[:, 0] * n).astype(np.int64), 0, n - 1)
    iy = np.clip((points[:, 1] * n).astype(np.int64), 0, n - 1)
    return np.array(
        [morton(int(a), int(b)) for a, b in zip(ix, iy)], dtype=np.int64
    )


def parent(ix: int, iy: int) -> tuple[int, int]:
    return ix // 2, iy // 2


def children(ix: int, iy: int) -> list[tuple[int, int]]:
    return [
        (2 * ix + dx, 2 * iy + dy) for dx in (0, 1) for dy in (0, 1)
    ]


def neighbors(level: int, ix: int, iy: int) -> list[tuple[int, int]]:
    """The ≤8 adjacent cells at the same level (excluding the cell)."""
    n = cells_at(level)
    out = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx == dy == 0:
                continue
            jx, jy = ix + dx, iy + dy
            if 0 <= jx < n and 0 <= jy < n:
                out.append((jx, jy))
    return out


def interaction_list(level: int, ix: int, iy: int
                     ) -> list[tuple[int, int]]:
    """Well-separated same-level cells: children of the parent's
    neighborhood, minus the cell's own 3×3 neighborhood (≤ 27 cells)."""
    if level == 0:
        return []
    out = []
    px, py = parent(ix, iy)
    candidates = set()
    for qx, qy in neighbors(level - 1, px, py) + [(px, py)]:
        candidates.update(children(qx, qy))
    near = set(neighbors(level, ix, iy)) | {(ix, iy)}
    n = cells_at(level)
    for jx, jy in candidates:
        if (jx, jy) not in near and 0 <= jx < n and 0 <= jy < n:
            out.append((jx, jy))
    return sorted(out)


def leaf_owner_ranges(depth: int, nprocs: int) -> list[tuple[int, int]]:
    """Contiguous Morton ranges of leaf cells per processor.

    Returns ``[(start, stop), ...]`` over ``4**depth`` leaves; balanced to
    ±1 leaf.  Coarser-level ownership derives from it: a cell belongs to
    the owner of its first descendant leaf.
    """
    total = 4**depth
    return [
        ((q * total) // nprocs, ((q + 1) * total) // nprocs)
        for q in range(nprocs)
    ]


def owner_of_cell(level: int, ix: int, iy: int, depth: int,
                  ranges: list[tuple[int, int]]) -> int:
    """Owner of a cell = owner of its first descendant leaf's Morton id."""
    first_leaf = morton(ix, iy) << (2 * (depth - level))
    for q, (start, stop) in enumerate(ranges):
        if start <= first_leaf < stop:
            return q
    raise ValueError(f"leaf {first_leaf} outside every range")
