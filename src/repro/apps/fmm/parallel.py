"""BSP-parallel Fast Multipole Method — three supersteps, total.

The parallel decomposition exploits two linearities:

* the **upward pass is linear in the sources**, so each processor runs
  P2M/M2M over *its own* particles only, producing a partial multipole
  for every tree cell its Morton leaf range touches;
* the **downward pass is a function of complete multipoles**, so once a
  processor holds the complete multipole of every cell in the
  interaction lists of its own cells, the entire M2L + L2L cascade is
  local (shared ancestors are recomputed redundantly — identical inputs,
  identical arithmetic).

That yields a *constant* superstep count, independent of depth and
processor count:

1. **multipole exchange** — each processor ships its partial multipoles
   of exactly the cells its peers' interaction lists need (need-sets are
   pure geometry, computed from the shared Morton partition);
   receivers sum partials into complete multipoles;
2. **near-field exchange** — boundary leaves' particles go to the owners
   of neighbouring leaves for the direct sums;
3. final segment (local downward pass + evaluation).

h is dominated by the boundary multipoles — O(boundary cells · (P+1))
records — the FMM analogue of the N-body essential trees, and the
constant S is the property the paper's Section 3.2.1 prizes: efficiency
on small problems and high-latency machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ...core.api import Bsp
from ...core.runtime import bsp_run
from ...core.stats import ProgramStats
from .expansions import l2p, l2p_deriv, p2m, p2p, p2p_deriv
from .quadtree import cell_center, cells_at, leaf_owner_ranges, morton
from .sequential import (
    _il_offsets,
    _l2l_matrices,
    _m2l_matrix,
    _m2m_matrices,
    default_depth,
)

#: An exchanged multipole record ≈ (cell id + P+1 complex coefficients);
#: charge 16-byte packets accordingly (one per coefficient).
def _h_of_mult(ncells: int, terms: int) -> int:
    return max(1, ncells * (terms + 1))


@lru_cache(maxsize=None)
def _level_morton(level: int) -> np.ndarray:
    """Morton code of every (ix, iy) at a level, shaped (n, n)."""
    n = cells_at(level)
    out = np.zeros((n, n), dtype=np.int64)
    for ix in range(n):
        for iy in range(n):
            out[ix, iy] = morton(ix, iy)
    return out


def _overlap_mask(level: int, depth: int, start: int, stop: int
                  ) -> np.ndarray:
    """Cells at ``level`` whose descendant-leaf range meets [start, stop)."""
    shift = 2 * (depth - level)
    codes = _level_morton(level)
    lo = codes << shift
    hi = (codes + 1) << shift
    return (lo < stop) & (hi > start)


def _need_mask(level: int, depth: int, start: int, stop: int) -> np.ndarray:
    """Cells whose multipoles the owner of [start, stop) consumes:
    union of interaction lists over its overlapping cells."""
    own = _overlap_mask(level, depth, start, stop)
    n = cells_at(level)
    need = np.zeros_like(own)
    for ix, iy in zip(*np.nonzero(own)):
        px, py = int(ix) % 2, int(iy) % 2
        for dx, dy in _il_offsets(px, py):
            jx, jy = int(ix) + dx, int(iy) + dy
            if 0 <= jx < n and 0 <= jy < n:
                need[jx, jy] = True
    return need


def _partial_upward(z, q, leaf_of, depth, terms, start, stop):
    """Local P2M + M2M over this processor's particles only."""
    mult = [None] * (depth + 1)
    n = cells_at(depth)
    mult[depth] = np.zeros((n, n, terms + 1), dtype=np.complex128)
    if len(z):
        flat = leaf_of[:, 0] * n + leaf_of[:, 1]
        order = np.argsort(flat, kind="stable")
        sflat = flat[order]
        bounds_l = np.searchsorted(sflat, np.arange(n * n), side="left")
        bounds_r = np.searchsorted(sflat, np.arange(n * n), side="right")
        for cell in np.unique(sflat):
            idx = order[bounds_l[cell] : bounds_r[cell]]
            ix, iy = divmod(int(cell), n)
            mult[depth][ix, iy] = p2m(
                z[idx], q[idx], cell_center(depth, ix, iy), terms
            )
    for level in range(depth - 1, -1, -1):
        m = cells_at(level)
        mult[level] = np.zeros((m, m, terms + 1), dtype=np.complex128)
        mats = _m2m_matrices(level, terms)
        child = mult[level + 1]
        for cx in (0, 1):
            for cy in (0, 1):
                mult[level] += child[cx::2, cy::2] @ mats[(cx, cy)].T
    return mult


def fmm_program(
    bsp: Bsp,
    parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    depth: int,
    terms: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """BSP program.  ``parts[pid] = (points, charges, idents)``.

    Returns (idents, potential, field) for this processor's particles.
    """
    with bsp.off_clock():
        pts, q, idents = parts[bsp.pid]
    p = bsp.nprocs
    ranges = leaf_owner_ranges(depth, p)
    start, stop = ranges[bsp.pid]
    n = cells_at(depth)
    z = pts[:, 0] + 1j * pts[:, 1] if len(pts) else np.zeros(
        0, dtype=np.complex128
    )
    leaf_of = np.column_stack([
        np.clip((pts[:, 0] * n).astype(np.int64), 0, n - 1),
        np.clip((pts[:, 1] * n).astype(np.int64), 0, n - 1),
    ]) if len(pts) else np.zeros((0, 2), dtype=np.int64)

    mult = _partial_upward(z, q, leaf_of, depth, terms, start, stop)
    bsp.charge(float(len(pts)) * terms + 4.0 ** depth * terms)

    # -- Superstep 1: route partial multipoles to their consumers, plus
    # boundary-leaf particles for the near field (shared superstep).
    for dest in range(p):
        if dest == bsp.pid:
            continue
        d_start, d_stop = ranges[dest]
        payload_levels = []
        count = 0
        for level in range(2, depth + 1):
            need = _need_mask(level, depth, d_start, d_stop)
            mine = _overlap_mask(level, depth, start, stop)
            send_cells = need & mine
            # Only cells with an actual contribution travel.
            nz = np.abs(mult[level]).sum(axis=2) > 0
            send_cells &= nz
            xs, ys = np.nonzero(send_cells)
            payload_levels.append(
                (level, xs.astype(np.int16), ys.astype(np.int16),
                 mult[level][xs, ys])
            )
            count += len(xs)
        # Near-field particles: my particles in leaves adjacent to dest's.
        if len(pts):
            near = _need_near(leaf_of, depth, d_start, d_stop)
        else:
            near = np.zeros(0, dtype=np.int64)
        bsp.send(
            dest,
            ("fmm", payload_levels, z[near], q[near]),
            h=_h_of_mult(count, terms) + 2 * len(near) + 1,
        )
    bsp.sync()

    ghost_z = [np.zeros(0, dtype=np.complex128)]
    ghost_q = [np.zeros(0)]
    for pkt in bsp.packets():
        _, payload_levels, gz, gq = pkt.payload
        for level, xs, ys, coeffs in payload_levels:
            mult[level][xs.astype(np.int64), ys.astype(np.int64)] += coeffs
        ghost_z.append(gz)
        ghost_q.append(gq)
    all_ghost_z = np.concatenate(ghost_z)
    all_ghost_q = np.concatenate(ghost_q)

    # -- Local downward pass over cells overlapping my range.
    local = np.zeros((1, 1, terms + 1), dtype=np.complex128)
    for level in range(1, depth + 1):
        m = cells_at(level)
        mats = _l2l_matrices(level - 1, terms)
        finer = np.zeros((m, m, terms + 1), dtype=np.complex128)
        for cx in (0, 1):
            for cy in (0, 1):
                finer[cx::2, cy::2] = local @ mats[(cx, cy)].T
        local = finer
        src = mult[level]
        relevant = _overlap_mask(level, depth, start, stop)
        for px in (0, 1):
            for py in (0, 1):
                for dx, dy in _il_offsets(px, py):
                    mat_t = _m2l_matrix(level, dx, dy, terms).T
                    txs = np.arange(px, m, 2)
                    tys = np.arange(py, m, 2)
                    keep_x = (txs + dx >= 0) & (txs + dx < m)
                    keep_y = (tys + dy >= 0) & (tys + dy < m)
                    txs, tys = txs[keep_x], tys[keep_y]
                    if not len(txs) or not len(tys):
                        continue
                    sub = relevant[np.ix_(txs, tys)]
                    if not sub.any():
                        continue
                    block = src[np.ix_(txs + dx, tys + dy)]
                    contrib = block @ mat_t
                    contrib[~sub] = 0
                    local[np.ix_(txs, tys)] += contrib
        bsp.charge(float(relevant.sum()) * terms * 8)

    # -- Evaluation: far field from locals, near field direct.
    potential = np.zeros(len(pts))
    fieldv = np.zeros(len(pts), dtype=np.complex128)
    if len(pts):
        src_z = np.concatenate([z, all_ghost_z])
        src_q = np.concatenate([q, all_ghost_q])
        src_leaf = np.column_stack([
            np.clip((src_z.real * n).astype(np.int64), 0, n - 1),
            np.clip((src_z.imag * n).astype(np.int64), 0, n - 1),
        ])
        flat = leaf_of[:, 0] * n + leaf_of[:, 1]
        sflat = src_leaf[:, 0] * n + src_leaf[:, 1]
        for cell in np.unique(flat):
            tgt = np.flatnonzero(flat == cell)
            ix, iy = divmod(int(cell), n)
            center = cell_center(depth, ix, iy)
            potential[tgt] += l2p(local[ix, iy], center, z[tgt]).real
            fieldv[tgt] += l2p_deriv(local[ix, iy], center, z[tgt])
            near_mask = (
                (np.abs(src_leaf[:, 0] - ix) <= 1)
                & (np.abs(src_leaf[:, 1] - iy) <= 1)
            )
            srcs = np.flatnonzero(near_mask)
            potential[tgt] += p2p(
                z[tgt], src_z[srcs], src_q[srcs], skip_self=True
            ).real
            fieldv[tgt] += p2p_deriv(
                z[tgt], src_z[srcs], src_q[srcs], skip_self=True
            )
        bsp.charge(float(len(pts)) * terms)
    return idents, potential, fieldv


def _need_near(leaf_of: np.ndarray, depth: int, d_start: int, d_stop: int
               ) -> np.ndarray:
    """Indices of my particles living in leaves adjacent to the
    destination's Morton leaf range."""
    n = cells_at(depth)
    codes = _level_morton(depth)
    dest_cells = (codes >= d_start) & (codes < d_stop)
    # 8-neighborhood dilation of the destination's leaf region.
    dil = dest_cells.copy()
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            view = np.zeros_like(dest_cells)
            xs = slice(max(dx, 0), n + min(dx, 0))
            xd = slice(max(-dx, 0), n + min(-dx, 0))
            ys = slice(max(dy, 0), n + min(dy, 0))
            yd = slice(max(-dy, 0), n + min(-dy, 0))
            view[xd, yd] = dest_cells[xs, ys]
            dil |= view
    halo = dil & ~dest_cells
    mask = halo[leaf_of[:, 0], leaf_of[:, 1]]
    return np.flatnonzero(mask)


@dataclass(frozen=True)
class FmmRun:
    """Per-particle results (ident order) plus BSP accounting."""

    potential: np.ndarray
    field: np.ndarray
    stats: ProgramStats


def bsp_fmm(
    points: np.ndarray,
    charges: np.ndarray,
    nprocs: int,
    *,
    terms: int = 16,
    depth: int | None = None,
    backend: str = "simulator",
) -> FmmRun:
    """Distributed FMM over Morton-partitioned leaves."""
    points = np.asarray(points, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    if depth is None:
        depth = default_depth(len(points))
    ranges = leaf_owner_ranges(depth, nprocs)
    n = cells_at(depth)
    codes = np.array(
        [
            morton(
                int(np.clip(x * n, 0, n - 1)), int(np.clip(y * n, 0, n - 1))
            )
            for x, y in points
        ],
        dtype=np.int64,
    )
    parts = []
    for start, stop in ranges:
        idx = np.flatnonzero((codes >= start) & (codes < stop))
        parts.append((points[idx], charges[idx], idx.astype(np.int64)))
    run = bsp_run(fmm_program, nprocs, backend=backend,
                  args=(parts, depth, terms))
    potential = np.zeros(len(points))
    fieldv = np.zeros(len(points), dtype=np.complex128)
    for idents, pot, fld in run.results:
        potential[idents] = pot
        fieldv[idents] = fld
    return FmmRun(potential=potential, field=fieldv, stats=run.stats)
