"""Sequential 2-D Fast Multipole Method on a uniform quadtree.

The paper's first-named piece of future work (Section 5): "the adaptive
Fast Multipole Method [7]".  This is the uniform (non-adaptive) FMM that
the adaptive method refines — already the full O(N) machinery: upward
P2M/M2M pass, per-level M2L over interaction lists, downward L2L pass,
and near-field direct sums over leaf neighborhoods.

Everything per level is vectorized: the three translations are linear
maps, so each distinct geometric shift becomes one (P+1)×(P+1) matrix —
built by applying the unit-tested operator functions to basis vectors,
which keeps the fast path provably consistent with the slow one — and a
level's worth of cells translates in a single matrix product.

Accuracy: with the standard one-cell-separation interaction lists the
error decays like :math:`(\\sqrt{2}/(4-\\sqrt{2}))^{P}` ≈ 0.55^P; P = 16
gives ~1e-4 relative, P = 24 ~1e-6 (the accuracy benchmark measures
exactly this decay).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .expansions import (
    l2l,
    l2p,
    l2p_deriv,
    m2l,
    m2m,
    p2m,
    p2p,
    p2p_deriv,
)
from .quadtree import cell_center, cells_at, interaction_list

#: Offsets (dx, dy) that can appear in an interaction list.
_IL_RANGE = range(-3, 4)


def _operator_matrix(op, arg: complex, terms: int) -> np.ndarray:
    """Matrix of a linear translation operator via its action on the
    standard basis (consistency-by-construction with the tested ops)."""
    eye = np.eye(terms + 1, dtype=np.complex128)
    return np.column_stack([op(eye[:, k], arg) for k in range(terms + 1)])


@lru_cache(maxsize=None)
def _m2m_matrices(level: int, terms: int) -> dict:
    """Child→parent shift matrices for the 4 child positions at level."""
    out = {}
    w = 1.0 / cells_at(level)
    for cx in (0, 1):
        for cy in (0, 1):
            shift = complex((cx - 0.5) * w / 2, (cy - 0.5) * w / 2)
            out[(cx, cy)] = _operator_matrix(m2m, shift, terms)
    return out


@lru_cache(maxsize=None)
def _m2l_matrix(level: int, dx: int, dy: int, terms: int) -> np.ndarray:
    w = 1.0 / cells_at(level)
    d = complex(dx * w, dy * w)  # source center − target center
    return _operator_matrix(m2l, d, terms)


@lru_cache(maxsize=None)
def _l2l_matrices(level: int, terms: int) -> dict:
    """Parent→child shift matrices (children at level+1)."""
    out = {}
    w = 1.0 / cells_at(level)
    for cx in (0, 1):
        for cy in (0, 1):
            shift = complex((cx - 0.5) * w / 2, (cy - 0.5) * w / 2)
            out[(cx, cy)] = _operator_matrix(l2l, shift, terms)
    return out


def _il_offsets(px: int, py: int) -> list[tuple[int, int]]:
    """Interaction-list offsets for a cell of parity (px, py)."""
    out = []
    for dx in _IL_RANGE:
        for dy in _IL_RANGE:
            if max(abs(dx), abs(dy)) < 2:
                continue
            if (px + dx) // 2 in (-1, 0, 1) and (py + dy) // 2 in (-1, 0, 1):
                out.append((dx, dy))
    return out


def default_depth(n: int, leaf_size: int = 16) -> int:
    """Tree depth putting ~leaf_size particles per leaf (min 2)."""
    depth = 2
    while 4 ** (depth + 1) * leaf_size <= max(n, 1):
        depth += 1
    return depth


@dataclass
class FmmPlan:
    """Geometry-only precomputation shared by drivers."""

    depth: int
    terms: int

    def level_centers(self, level: int) -> np.ndarray:
        n = cells_at(level)
        xs = (np.arange(n) + 0.5) / n
        grid = xs[:, None] + 1j * xs[None, :]
        return grid  # [ix, iy]


def multipoles_upward(
    z: np.ndarray,
    q: np.ndarray,
    leaf_of: np.ndarray,
    depth: int,
    terms: int,
) -> list[np.ndarray]:
    """P2M at the leaves + M2M up; returns per-level (n, n, P+1) arrays.

    ``leaf_of`` holds each particle's leaf (ix, iy) as a (n, 2) int array.
    """
    mult: list[np.ndarray] = [None] * (depth + 1)  # type: ignore[list-item]
    n = cells_at(depth)
    mult[depth] = np.zeros((n, n, terms + 1), dtype=np.complex128)
    flat = leaf_of[:, 0] * n + leaf_of[:, 1]
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    starts = np.searchsorted(sorted_flat, np.arange(n * n), side="left")
    ends = np.searchsorted(sorted_flat, np.arange(n * n), side="right")
    for cell in range(n * n):
        if starts[cell] == ends[cell]:
            continue
        idx = order[starts[cell] : ends[cell]]
        ix, iy = divmod(cell, n)
        mult[depth][ix, iy] = p2m(
            z[idx], q[idx], cell_center(depth, ix, iy), terms
        )
    for level in range(depth - 1, -1, -1):
        m = cells_at(level)
        mult[level] = np.zeros((m, m, terms + 1), dtype=np.complex128)
        mats = _m2m_matrices(level, terms)
        child = mult[level + 1]
        for cx in (0, 1):
            for cy in (0, 1):
                block = child[cx::2, cy::2]  # (m, m, P+1)
                mult[level] += block @ mats[(cx, cy)].T
    return mult


def locals_downward(
    mult: list[np.ndarray],
    depth: int,
    terms: int,
) -> np.ndarray:
    """M2L per level + L2L down; returns leaf-level locals (n, n, P+1)."""
    n0 = cells_at(0)
    local = np.zeros((n0, n0, terms + 1), dtype=np.complex128)
    for level in range(1, depth + 1):
        m = cells_at(level)
        # L2L from the parent level.
        mats = _l2l_matrices(level - 1, terms)
        finer = np.zeros((m, m, terms + 1), dtype=np.complex128)
        for cx in (0, 1):
            for cy in (0, 1):
                finer[cx::2, cy::2] = local @ mats[(cx, cy)].T
        local = finer
        # M2L over interaction lists, batched by parity and offset.
        src = mult[level]
        for px in (0, 1):
            for py in (0, 1):
                for dx, dy in _il_offsets(px, py):
                    mat_t = _m2l_matrix(level, dx, dy, terms).T
                    txs = np.arange(px, m, 2)
                    tys = np.arange(py, m, 2)
                    keep_x = (txs + dx >= 0) & (txs + dx < m)
                    keep_y = (tys + dy >= 0) & (tys + dy < m)
                    txs, tys = txs[keep_x], tys[keep_y]
                    if not len(txs) or not len(tys):
                        continue
                    block = src[np.ix_(txs + dx, tys + dy)]
                    local[np.ix_(txs, tys)] += block @ mat_t
    return local


@dataclass(frozen=True)
class FmmResult:
    """Potential (real) and complexified field at every particle."""

    potential: np.ndarray
    field: np.ndarray
    depth: int
    terms: int


def fmm_evaluate(
    points: np.ndarray,
    charges: np.ndarray,
    *,
    terms: int = 16,
    depth: int | None = None,
) -> FmmResult:
    """O(N) potential/field of 2-D charges in the unit square."""
    points = np.asarray(points, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must be (n, 2), got {points.shape}")
    if charges.shape != (len(points),):
        raise ValueError("one charge per point required")
    if len(points) and (
        points.min() < 0 or points.max() >= 1.0
    ):
        raise ValueError("points must lie in [0, 1)²")
    if terms < 2:
        raise ValueError(f"terms must be >= 2, got {terms}")
    if depth is None:
        depth = default_depth(len(points))
    if depth < 2:
        raise ValueError(f"depth must be >= 2, got {depth}")

    z = points[:, 0] + 1j * points[:, 1]
    n = cells_at(depth)
    leaf_of = np.column_stack([
        np.clip((points[:, 0] * n).astype(np.int64), 0, n - 1),
        np.clip((points[:, 1] * n).astype(np.int64), 0, n - 1),
    ])
    mult = multipoles_upward(z, charges, leaf_of, depth, terms)
    local = locals_downward(mult, depth, terms)

    potential = np.zeros(len(points))
    fieldv = np.zeros(len(points), dtype=np.complex128)
    flat = leaf_of[:, 0] * n + leaf_of[:, 1]
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    starts = np.searchsorted(sorted_flat, np.arange(n * n), side="left")
    ends = np.searchsorted(sorted_flat, np.arange(n * n), side="right")

    def members(ix: int, iy: int) -> np.ndarray:
        cell = ix * n + iy
        return order[starts[cell] : ends[cell]]

    for ix in range(n):
        for iy in range(n):
            tgt = members(ix, iy)
            if not len(tgt):
                continue
            center = cell_center(depth, ix, iy)
            potential[tgt] += l2p(local[ix, iy], center, z[tgt]).real
            fieldv[tgt] += l2p_deriv(local[ix, iy], center, z[tgt])
            near = [tgt]
            for jx in range(max(ix - 1, 0), min(ix + 2, n)):
                for jy in range(max(iy - 1, 0), min(iy + 2, n)):
                    if (jx, jy) != (ix, iy):
                        near.append(members(jx, jy))
            src = np.concatenate(near)
            potential[tgt] += p2p(
                z[tgt], z[src], charges[src], skip_self=True
            ).real
            fieldv[tgt] += p2p_deriv(
                z[tgt], z[src], charges[src], skip_self=True
            )
    return FmmResult(potential=potential, field=fieldv, depth=depth,
                     terms=terms)


def direct_evaluate(points: np.ndarray, charges: np.ndarray) -> FmmResult:
    """O(N²) reference: exact potential and field."""
    z = points[:, 0] + 1j * points[:, 1]
    return FmmResult(
        potential=p2p(z, z, charges, skip_self=True).real,
        field=p2p_deriv(z, z, charges, skip_self=True),
        depth=0,
        terms=0,
    )
