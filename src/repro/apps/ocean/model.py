"""Sequential ocean-eddy model (the Ocean application's physics driver).

A simplified barotropic vorticity model of the wind-driven double gyre —
the phenomenon SPLASH Ocean simulates [Singh 1991]: on the unit square
with stream function ψ and vorticity ζ,

    ∂ζ/∂t = −J(ψ, ζ) − β ∂ψ/∂x + ν ∇²ζ + F(y)        (explicit step)
    ∇²ψ = ζ                                            (multigrid solve)

with ψ = ζ = 0 on the boundary and the classic double-gyre wind forcing
``F(y) = −W sin(2πy)``.  Each time step is one explicit stencil update
plus one warm-started multigrid solve — the same work/communication
structure as the SPLASH original (stencil sweeps + a multigrid ψ solver
per step), which is what the BSP conversion in
:mod:`repro.apps.ocean.parallel` distributes.

The paper's problem sizes 66/130/258/514 are ``m + 2`` for interior sizes
``m = 64 .. 512`` — powers of two, as multigrid wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .multigrid import apply_reflection, check_power_of_two, solve_poisson


@dataclass(frozen=True)
class OceanParams:
    """Physical and numerical parameters of the ocean model."""

    nu: float = 0.02       # lateral friction (viscosity)
    beta: float = 0.8      # planetary vorticity gradient
    wind: float = 1.0      # wind-stress curl amplitude
    dt: float = 0.02       # time step
    tol: float = 1e-6      # relative multigrid tolerance
    max_cycles: int = 40   # V-cycle cap per solve


@dataclass
class OceanState:
    """Fields plus per-step multigrid cycle counts."""

    psi: np.ndarray
    zeta: np.ndarray
    cycles: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.psi.shape[0]


def interior_of(size: int) -> int:
    """Interior grid dimension m for a paper problem ``size`` (= m + 2)."""
    m = size - 2
    check_power_of_two(m)
    return m


def wind_forcing(m: int, wind: float) -> np.ndarray:
    """Double-gyre forcing −W·sin(2πy) at the cell centres y=(j−½)/m."""
    f = np.zeros((m + 2, m + 2))
    y = (np.arange(1, m + 1) - 0.5) / m
    f[1:-1, 1:-1] = -wind * np.sin(2.0 * np.pi * y)[None, :]
    return f


def explicit_update(
    psi: np.ndarray,
    zeta: np.ndarray,
    forcing: np.ndarray,
    h: float,
    params: OceanParams,
) -> None:
    """One explicit vorticity step, in place on ``zeta``'s interior.

    Centered differences throughout; identical arithmetic runs per row
    block in the distributed version (the stencil only needs one ghost
    row, exchanged beforehand).  Ghost walls of both fields are reflected
    first so the stencils see the boundary condition.
    """
    apply_reflection(psi)
    apply_reflection(zeta)
    zeta[1:-1, 1:-1] += params.dt * explicit_tendency(
        psi, zeta, forcing, h, params
    )


def explicit_tendency(
    psi: np.ndarray,
    zeta: np.ndarray,
    forcing: np.ndarray,
    h: float,
    params: OceanParams,
) -> np.ndarray:
    """Interior tendency −J(ψ,ζ) − β ψ_x + ν ∇²ζ + F, shape (m, m).

    Rows are the x direction (index i), columns y (index j).
    """
    inv2h = 1.0 / (2.0 * h)
    invh2 = 1.0 / (h * h)
    psi_x = (psi[2:, 1:-1] - psi[:-2, 1:-1]) * inv2h
    psi_y = (psi[1:-1, 2:] - psi[1:-1, :-2]) * inv2h
    zeta_x = (zeta[2:, 1:-1] - zeta[:-2, 1:-1]) * inv2h
    zeta_y = (zeta[1:-1, 2:] - zeta[1:-1, :-2]) * inv2h
    lap_zeta = (
        zeta[2:, 1:-1] + zeta[:-2, 1:-1] + zeta[1:-1, 2:] + zeta[1:-1, :-2]
        - 4.0 * zeta[1:-1, 1:-1]
    ) * invh2
    jac = psi_x * zeta_y - psi_y * zeta_x
    return (
        -jac
        - params.beta * psi_x
        + params.nu * lap_zeta
        + forcing[1:-1, 1:-1]
    )


def ocean_sequential(
    size: int,
    steps: int,
    params: OceanParams | None = None,
) -> OceanState:
    """Run the ocean model from rest for ``steps`` time steps."""
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    params = params or OceanParams()
    m = interior_of(size)
    h = 1.0 / m
    psi = np.zeros((m + 2, m + 2))
    zeta = np.zeros((m + 2, m + 2))
    forcing = wind_forcing(m, params.wind)
    state = OceanState(psi=psi, zeta=zeta)
    for _ in range(steps):
        explicit_update(state.psi, state.zeta, forcing, h, params)
        state.psi, info = solve_poisson(
            state.zeta,
            h,
            tol=params.tol,
            max_cycles=params.max_cycles,
            u0=state.psi,
        )
        state.cycles.append(info.cycles)
    return state
