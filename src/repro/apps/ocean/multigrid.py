"""Sequential multigrid Poisson solver (the Ocean app's numerical core).

The SPLASH Ocean code computes eddy currents "using a multigrid technique
on an underlying grid" (Section 3.1).  The paper's problem sizes 66, 130,
258, 514 are ``n + 2`` for ``n = 64 .. 512`` — powers of two — so the
discretization here is **cell-centered**: ``n × n`` unknowns at cell
centres ``((i−½)h, (j−½)h)`` with ``h = 1/n``, held in ``(n+2)²`` arrays
whose outer ring stores ghost cells.  Homogeneous Dirichlet walls are the
reflection condition ``u_ghost = −u_adjacent`` (zero at the cell face),
which keeps every grid level geometrically aligned with the same unit
square — the property that gives multigrid its level-independent
convergence rate (a vertex-centred hierarchy on 2^k interiors would place
coarse walls *outside* the domain and stall the coarse correction).

Components: red-black Gauss–Seidel relaxation, 2×2-average restriction,
piecewise-constant prolongation, V(2,2) cycles, and an agglomerated dense
sweep on the coarsest level — the exact code path the distributed solver
(:mod:`repro.apps.ocean.parallel`) runs per row block, so sequential and
distributed iterates agree bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Interior size at which coarsening stops and dense sweeping takes over.
COARSEST = 4
#: Relaxation sweeps on the coarsest grid (effectively an exact solve).
COARSE_SWEEPS = 60
#: Pre-/post-smoothing sweeps per level.
NU1 = 2
NU2 = 2


def interior_size(array: np.ndarray) -> int:
    """n for an (n+2)×(n+2) grid array; validates shape."""
    rows, cols = array.shape
    if rows != cols or rows < 3:
        raise ValueError(f"grid must be square and >= 3x3, got {array.shape}")
    return rows - 2


def check_power_of_two(n: int) -> None:
    if n < COARSEST or n & (n - 1):
        raise ValueError(
            f"interior size must be a power of two >= {COARSEST}, got {n}"
        )


def apply_reflection(u: np.ndarray) -> None:
    """Set all four ghost walls to the Dirichlet reflection −u (in place)."""
    u[0, :] = -u[1, :]
    u[-1, :] = -u[-2, :]
    u[:, 0] = -u[:, 1]
    u[:, -1] = -u[:, -2]


def reflect_columns(u: np.ndarray) -> None:
    """Left/right ghost columns only (every row block owns full rows)."""
    u[:, 0] = -u[:, 1]
    u[:, -1] = -u[:, -2]


def relax_red_black(u: np.ndarray, f: np.ndarray, h: float,
                    sweeps: int = 1) -> None:
    """In-place red-black Gauss–Seidel sweeps for ``∇²u = f``.

    Ghost walls are re-reflected before each colour pass; the update order
    within a colour is data-independent, so any row decomposition that
    refreshes ghosts between colours reproduces these exact iterates.
    """
    h2 = h * h
    for _ in range(sweeps):
        for parity in (0, 1):
            apply_reflection(u)
            relax_color_block(u, f, h2, parity, first_global_row=1)


def relax_color_block(
    u: np.ndarray,
    f: np.ndarray,
    h2: float,
    parity: int,
    first_global_row: int,
) -> None:
    """Relax all interior cells of one checkerboard colour, in place.

    Works on any row block: ``u``/``f`` hold local rows 1..R (0 and R+1
    are ghosts) whose *global* row indices start at ``first_global_row``.
    Colour of global cell (i, j) is ``(i+j) % 2``.  The sequential solver
    and every processor of the distributed solver call this same kernel,
    so their iterates agree bit for bit.
    """
    rows = u.shape[0] - 2
    cols = u.shape[1] - 2
    for phase in (0, 1):
        i0 = 1 + phase
        if i0 > rows:
            continue
        row_parity = (first_global_row + phase) % 2
        col_parity = (parity - row_parity) % 2
        j0 = 1 if col_parity == 1 else 2
        if j0 > cols:
            continue
        rs = slice(i0, rows + 1, 2)
        cs = slice(j0, cols + 1, 2)
        u[rs, cs] = 0.25 * (
            u[i0 - 1 : rows : 2, cs]
            + u[i0 + 1 : rows + 2 : 2, cs]
            + u[rs, j0 - 1 : cols : 2]
            + u[rs, j0 + 1 : cols + 2 : 2]
            - h2 * f[rs, cs]
        )


def residual(u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
    """r = f − ∇²u on the interior (ghost ring zero).

    Reflects the ghost walls of ``u`` first so the operator sees the
    boundary condition.
    """
    apply_reflection(u)
    r = np.zeros_like(u)
    h2 = h * h
    r[1:-1, 1:-1] = f[1:-1, 1:-1] - (
        u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
        - 4.0 * u[1:-1, 1:-1]
    ) / h2
    return r


def restrict(r: np.ndarray) -> np.ndarray:
    """2×2 cell averaging to the next-coarser grid (no ghosts needed)."""
    n = interior_size(r)
    nc = n // 2
    coarse = np.zeros((nc + 2, nc + 2))
    inner = r[1:-1, 1:-1]
    coarse[1:-1, 1:-1] = 0.25 * (
        inner[0::2, 0::2] + inner[0::2, 1::2]
        + inner[1::2, 0::2] + inner[1::2, 1::2]
    )
    return coarse


def prolong(e: np.ndarray, n_fine: int) -> np.ndarray:
    """Piecewise-constant prolongation: each coarse cell fills its 2×2
    fine children (no ghosts needed)."""
    nc = interior_size(e)
    if n_fine != 2 * nc:
        raise ValueError(f"fine size {n_fine} is not twice coarse {nc}")
    fine = np.zeros((n_fine + 2, n_fine + 2))
    inner = np.repeat(np.repeat(e[1:-1, 1:-1], 2, axis=0), 2, axis=1)
    fine[1:-1, 1:-1] = inner
    return fine


def v_cycle(u: np.ndarray, f: np.ndarray, h: float) -> None:
    """One V(NU1, NU2) cycle in place."""
    n = interior_size(u)
    if n <= COARSEST:
        relax_red_black(u, f, h, sweeps=COARSE_SWEEPS)
        return
    relax_red_black(u, f, h, sweeps=NU1)
    r = residual(u, f, h)
    rc = restrict(r)
    ec = np.zeros_like(rc)
    v_cycle(ec, rc, 2.0 * h)
    u[1:-1, 1:-1] += prolong(ec, n)[1:-1, 1:-1]
    relax_red_black(u, f, h, sweeps=NU2)


@dataclass(frozen=True)
class SolveInfo:
    """Convergence record of a multigrid solve."""

    cycles: int
    residual_norm: float
    converged: bool


def solve_poisson(
    f: np.ndarray,
    h: float,
    *,
    tol: float = 1e-6,
    max_cycles: int = 50,
    u0: np.ndarray | None = None,
) -> tuple[np.ndarray, SolveInfo]:
    """Solve ``∇²u = f`` (Dirichlet u=0) to ``‖r‖₂ ≤ tol·max(‖f‖₂, 1)``.

    ``u0`` warm-starts the iteration — in the ocean time-stepper the
    previous step's field, which cuts the cycle count sharply once the
    flow approaches quasi-steady evolution.
    """
    n = interior_size(f)
    check_power_of_two(n)
    u = np.zeros_like(f) if u0 is None else u0.copy()
    target = tol * max(float(np.linalg.norm(f[1:-1, 1:-1])), 1.0)
    cycles = 0
    rnorm = float(np.linalg.norm(residual(u, f, h)[1:-1, 1:-1]))
    while rnorm > target and cycles < max_cycles:
        v_cycle(u, f, h)
        cycles += 1
        rnorm = float(np.linalg.norm(residual(u, f, h)[1:-1, 1:-1]))
    return u, SolveInfo(cycles=cycles, residual_norm=rnorm,
                        converged=rnorm <= target)
