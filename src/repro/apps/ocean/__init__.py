"""Ocean eddy simulation: multigrid + double-gyre vorticity model
(paper Section 3.1, Figures 1.1 and C.1)."""

from .model import (
    OceanParams,
    OceanState,
    explicit_tendency,
    interior_of,
    ocean_sequential,
    wind_forcing,
)
from .multigrid import (
    SolveInfo,
    prolong,
    relax_red_black,
    residual,
    restrict,
    solve_poisson,
    v_cycle,
)
from .parallel import (
    LocalBlock,
    OceanRun,
    RowPartition,
    bsp_ocean,
    build_partitions,
    ocean_program,
    solve_poisson_distributed,
)

__all__ = [
    "LocalBlock",
    "OceanParams",
    "OceanRun",
    "OceanState",
    "RowPartition",
    "SolveInfo",
    "bsp_ocean",
    "build_partitions",
    "explicit_tendency",
    "interior_of",
    "ocean_program",
    "ocean_sequential",
    "prolong",
    "relax_red_black",
    "residual",
    "restrict",
    "solve_poisson",
    "solve_poisson_distributed",
    "v_cycle",
    "wind_forcing",
]
