"""Distributed ocean model on the Green BSP library (paper Section 3.1).

The SPLASH code "was basically already in a BSP style", and so is this
conversion: the grid is split into contiguous *row blocks*, every stencil
operation runs locally on a block, and each data dependence on neighbour
rows becomes one ghost-row exchange superstep:

* red-black relaxation — one exchange per colour per sweep;
* residual restriction — one exchange of the residual's ghost rows;
* prolongation — one exchange of the coarse correction's ghost rows;
* the coarsest grid — gathered to processor 0, swept densely, scattered
  back (two supersteps);
* convergence tests — one all-reduce superstep per V-cycle;
* the explicit vorticity step — one exchange of ψ and ζ ghosts.

Every processor runs the *same* arithmetic kernels as the sequential
solver (:func:`relax_color_block` etc.), so the distributed iterates match
the sequential ones bit for bit; only the summation order inside the
convergence norm differs.

Row partitions at coarser levels are derived from the fine partition
(coarse row ``I`` lives where fine row ``2I`` lives), which keeps every
restriction/prolongation stencil within one ghost row — no redistribution
supersteps are needed between levels.

The h-relation of a ghost exchange is one 16-byte packet per two doubles
of a grid row — for size 514 that is ≈ 258 packets per superstep,
matching the scale of Figure C.1's H column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ...collectives import allreduce, gather, scatter
from ...core.api import Bsp
from ...core.runtime import bsp_run
from ...core.stats import ProgramStats
from .model import OceanParams, OceanState, explicit_tendency, wind_forcing
from .multigrid import (
    COARSE_SWEEPS,
    COARSEST,
    NU1,
    NU2,
    check_power_of_two,
    relax_color_block,
    relax_red_black,
)


@dataclass(frozen=True)
class RowPartition:
    """Block partition of global interior rows 1..m over p processors."""

    m: int
    bounds: tuple[int, ...]  # length p+1; proc q owns [bounds[q], bounds[q+1])

    @classmethod
    def block(cls, m: int, nprocs: int) -> "RowPartition":
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        bounds = tuple(1 + (q * m) // nprocs for q in range(nprocs + 1))
        return cls(m=m, bounds=bounds)

    @property
    def nprocs(self) -> int:
        return len(self.bounds) - 1

    def range_of(self, pid: int) -> tuple[int, int]:
        return self.bounds[pid], self.bounds[pid + 1]

    def owner(self, row: int) -> int:
        """Owning processor of interior row ``row`` (1-based)."""
        if not 1 <= row <= self.m:
            raise ValueError(f"row {row} outside interior 1..{self.m}")
        for q in range(self.nprocs):
            if self.bounds[q] <= row < self.bounds[q + 1]:
                return q
        raise AssertionError("partition bounds do not cover the interior")

    def coarsen(self) -> "RowPartition":
        """Partition of the next-coarser grid, aligned with this one.

        Coarse row I sits at fine row 2I, so I belongs to the owner of
        fine row 2I: bounds'_q = ceil(bounds_q / 2).
        """
        return RowPartition(
            m=self.m // 2,
            bounds=tuple((b + 1) // 2 for b in self.bounds),
        )


class LocalBlock:
    """One processor's row block of an (m+2)×(m+2) field, with ghosts.

    ``data[1:k+1]`` are owned global rows lo..hi−1; ``data[0]`` and
    ``data[k+1]`` are the ghost/boundary rows lo−1 and hi.
    """

    __slots__ = ("part", "pid", "lo", "hi", "data")

    def __init__(self, part: RowPartition, pid: int,
                 data: np.ndarray | None = None):
        self.part = part
        self.pid = pid
        self.lo, self.hi = part.range_of(pid)
        k = self.hi - self.lo
        if data is None:
            data = np.zeros((k + 2, part.m + 2))
        if data.shape != (k + 2, part.m + 2):
            raise ValueError(
                f"block shape {data.shape} != {(k + 2, part.m + 2)}"
            )
        self.data = data

    @property
    def k(self) -> int:
        return self.hi - self.lo

    def owned(self) -> np.ndarray:
        """View of the owned rows (no ghosts)."""
        return self.data[1 : self.k + 1]


def exchange_ghosts(bsp: Bsp, blocks: list[LocalBlock],
                    reflect: bool = True) -> None:
    """One superstep refreshing ghost rows *and* boundary reflections.

    Interior ghost rows come from the neighbouring processors; the four
    domain walls are the local reflection ``ghost = −interior`` (the
    cell-centred Dirichlet condition).  Fields that need ghosts at the
    same point in the algorithm share the superstep, as the SPLASH
    conversion would batch them.  ``reflect=False`` skips the wall
    reflection for blocks that are not Dirichlet fields (e.g. the plasma
    application's electric-field rows, whose ghost ring stays zero).
    """
    for idx, blk in enumerate(blocks):
        if blk.k == 0:
            continue
        part = blk.part
        # Need-driven: every processor whose ghost row lies in my owned
        # range gets it — including processors that own zero rows at this
        # level (their prolongation still reads a "ghost" row).
        for q in range(part.nprocs):
            if q == bsp.pid:
                continue
            qlo, qhi = part.range_of(q)
            top_ghost = qlo - 1
            if top_ghost >= 1 and blk.lo <= top_ghost < blk.hi:
                bsp.send(
                    q, ("gt", idx, blk.data[top_ghost - blk.lo + 1].copy())
                )
            bottom_ghost = qhi
            if bottom_ghost <= part.m and blk.lo <= bottom_ghost < blk.hi:
                bsp.send(
                    q, ("gb", idx, blk.data[bottom_ghost - blk.lo + 1].copy())
                )
    bsp.sync()
    for pkt in bsp.packets():
        tag, idx, row = pkt.payload
        blk = blocks[idx]
        if tag == "gt":  # from the processor above: my top ghost
            blk.data[0] = row
        else:            # "gb": from below, my bottom ghost
            blk.data[blk.k + 1] = row
    if not reflect:
        return
    for blk in blocks:
        if blk.k == 0:
            continue
        if blk.lo == 1:
            blk.data[0] = -blk.data[1]
        if blk.hi == blk.part.m + 1:
            blk.data[blk.k + 1] = -blk.data[blk.k]
        blk.data[:, 0] = -blk.data[:, 1]
        blk.data[:, -1] = -blk.data[:, -2]


def relax_distributed(
    bsp: Bsp,
    u: LocalBlock,
    f: LocalBlock,
    h: float,
    sweeps: int,
) -> None:
    """Red-black sweeps with a ghost exchange before each colour.

    Mirrors the sequential relax (reflect, relax colour, reflect, ...);
    a trailing exchange leaves ghosts current for the next consumer.
    2 supersteps per sweep plus one.
    """
    h2 = h * h
    for _ in range(sweeps):
        for parity in (0, 1):
            exchange_ghosts(bsp, [u])
            if u.k > 0:
                relax_color_block(u.data, f.data, h2, parity,
                                  first_global_row=u.lo)
                # Abstract work: half the owned cells, ~6 ops each.  The
                # charged ledger models load on 1996-scale hardware, where
                # the stencil math (not Python call overhead) dominates.
                bsp.charge(3.0 * u.k * u.part.m)
    exchange_ghosts(bsp, [u])


def residual_block(u: LocalBlock, f: LocalBlock, h: float) -> LocalBlock:
    """r = f − ∇²u on owned rows; ghost rows zero until exchanged."""
    r = LocalBlock(u.part, u.pid)
    if u.k:
        invh2 = 1.0 / (h * h)
        a, b = u.data, f.data
        r.data[1:-1, 1:-1] = b[1:-1, 1:-1] - (
            a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
            - 4.0 * a[1:-1, 1:-1]
        ) * invh2
    return r


def restrict_block(r: LocalBlock, coarse_part: RowPartition,
                   pid: int) -> LocalBlock:
    """2×2 cell-average restriction of a residual block.

    Coarse row I averages fine rows 2I−1 and 2I; row 2I−1 may be the
    (exchanged) top ghost when the fine partition boundary is even.
    Column pairing matches the sequential :func:`~.multigrid.restrict`
    term order exactly.
    """
    rc = LocalBlock(coarse_part, pid)
    for ci, gi_c in enumerate(range(rc.lo, rc.hi), start=1):
        row_a = r.data[2 * gi_c - 1 - r.lo + 1][1:-1]  # fine row 2I−1
        row_b = r.data[2 * gi_c - r.lo + 1][1:-1]      # fine row 2I
        rc.data[ci, 1:-1] = 0.25 * (
            row_a[0::2] + row_a[1::2] + row_b[0::2] + row_b[1::2]
        )
    return rc


def prolong_block(ec: LocalBlock, fine_part: RowPartition,
                  pid: int) -> np.ndarray:
    """Piecewise-constant prolongation to owned fine rows.

    Fine row ``gi`` copies coarse row ``⌈gi/2⌉`` (a ghost row at the
    lower partition seam, hence the prior coarse ghost exchange); each
    coarse cell fills two fine columns.  Returns an array of shape
    ``(k_fine, m_fine + 2)`` to add to the fine block's owned rows.
    """
    lo, hi = fine_part.range_of(pid)
    m_fine = fine_part.m
    out = np.zeros((hi - lo, m_fine + 2))
    for oi, gi in enumerate(range(lo, hi)):
        crow = ec.data[(gi + 1) // 2 - ec.lo + 1]
        out[oi, 1:-1] = np.repeat(crow[1:-1], 2)
    return out


def _coarse_solve(bsp: Bsp, u: LocalBlock, f: LocalBlock, h: float) -> None:
    """Bottom of the V-cycle: agglomerate on processor 0, sweep, scatter."""
    part = u.part
    p = bsp.nprocs
    rows = gather(bsp, (u.owned().copy(), f.owned().copy()), root=0)
    if bsp.pid == 0:
        assert rows is not None
        mu = np.zeros((part.m + 2, part.m + 2))
        mf = np.zeros((part.m + 2, part.m + 2))
        for q in range(p):
            qlo, qhi = part.range_of(q)
            mu[qlo:qhi] = rows[q][0]
            mf[qlo:qhi] = rows[q][1]
        relax_red_black(mu, mf, h, sweeps=COARSE_SWEEPS)
        # The agglomerated bottom solve is serial work on processor 0.
        bsp.charge(6.0 * COARSE_SWEEPS * part.m * part.m)
        pieces = [mu[part.range_of(q)[0] : part.range_of(q)[1]].copy()
                  for q in range(p)]
    else:
        pieces = None
    mine = scatter(bsp, pieces, root=0)
    if u.k:
        u.data[1 : u.k + 1] = mine
    exchange_ghosts(bsp, [u])


def v_cycle_distributed(
    bsp: Bsp,
    parts: list[RowPartition],
    level: int,
    u: LocalBlock,
    f: LocalBlock,
    h: float,
) -> None:
    """One V(NU1, NU2) cycle; ``u``'s ghosts current on entry and exit."""
    part = parts[level]
    if part.m <= COARSEST:
        _coarse_solve(bsp, u, f, h)
        return
    relax_distributed(bsp, u, f, h, NU1)
    r = residual_block(u, f, h)
    bsp.charge(6.0 * u.k * part.m)
    exchange_ghosts(bsp, [r])
    coarse = parts[level + 1]
    rc = restrict_block(r, coarse, bsp.pid)
    bsp.charge(2.0 * rc.k * part.m)
    ec = LocalBlock(coarse, bsp.pid)
    v_cycle_distributed(bsp, parts, level + 1, ec, rc, 2.0 * h)
    # ec ghosts are current (post-smoothing exchanged them); prolong+add.
    if u.k:
        u.owned()[:, :] += prolong_block(ec, part, bsp.pid)
        bsp.charge(2.0 * u.k * part.m)
    relax_distributed(bsp, u, f, h, NU2)


def _norm_interior(bsp: Bsp, blk: LocalBlock) -> float:
    """Global 2-norm over interior cells (one all-reduce superstep)."""
    local = float((blk.data[1 : blk.k + 1, 1:-1] ** 2).sum()) if blk.k else 0.0
    bsp.charge(2.0 * blk.k * blk.part.m)
    return float(np.sqrt(allreduce(bsp, local, lambda a, b: a + b)))


def solve_poisson_distributed(
    bsp: Bsp,
    parts: list[RowPartition],
    u: LocalBlock,
    f: LocalBlock,
    h: float,
    *,
    tol: float,
    max_cycles: int,
) -> int:
    """Distributed counterpart of :func:`~.multigrid.solve_poisson`.

    Returns the number of V-cycles run.  ``u`` is updated in place and
    its ghosts are current on return.
    """
    exchange_ghosts(bsp, [u])
    fnorm = _norm_interior(bsp, f)
    target = tol * max(fnorm, 1.0)
    cycles = 0
    rnorm = _norm_interior(bsp, residual_block(u, f, h))
    while rnorm > target and cycles < max_cycles:
        v_cycle_distributed(bsp, parts, 0, u, f, h)
        cycles += 1
        rnorm = _norm_interior(bsp, residual_block(u, f, h))
    return cycles


def build_partitions(m: int, nprocs: int) -> list[RowPartition]:
    """The aligned partition hierarchy from fine grid down to COARSEST."""
    parts = [RowPartition.block(m, nprocs)]
    while parts[-1].m > COARSEST:
        parts.append(parts[-1].coarsen())
    return parts


def ocean_program(
    bsp: Bsp,
    size: int,
    steps: int,
    params: OceanParams,
) -> tuple[int, int, np.ndarray, np.ndarray, list[int]]:
    """BSP program: returns (lo, hi, psi rows, zeta rows, cycle counts)."""
    m = size - 2
    h = 1.0 / m
    # The ghost exchanges are nearest-neighbour, but the coarse-grid
    # agglomeration (gather/scatter to processor 0) and the convergence
    # all-reduce touch every pair, so ocean's honest static pattern is
    # the complete graph — ``elide`` degenerates to ``relaxed`` here,
    # and the declaration buys out-of-pattern send validation instead.
    bsp.pattern(range(bsp.nprocs))
    parts = build_partitions(m, bsp.nprocs)
    psi = LocalBlock(parts[0], bsp.pid)
    zeta = LocalBlock(parts[0], bsp.pid)
    with bsp.off_clock():
        forcing_full = wind_forcing(m, params.wind)
    forcing = LocalBlock(
        parts[0], bsp.pid,
        forcing_full[psi.lo - 1 : psi.hi + 1].copy(),
    )
    cycles: list[int] = []
    t0 = 0
    restored = bsp.resume_state()
    if restored is not None:
        # The snapshot carries the evolving fields (ghosts included —
        # they were current at the captured boundary); the forcing and
        # partition hierarchy above are deterministic recomputations.
        t0, psi_data, zeta_data, cycles = restored
        psi.data[:] = psi_data
        zeta.data[:] = zeta_data
        cycles = list(cycles)
    for t in range(t0, steps):
        bsp.checkpoint(lambda: (t, psi.data.copy(), zeta.data.copy(),
                                list(cycles)))
        exchange_ghosts(bsp, [psi, zeta])
        if zeta.k:
            zeta.owned()[:, 1:-1] += params.dt * explicit_tendency(
                psi.data, zeta.data, forcing.data, h, params
            )
            bsp.charge(14.0 * zeta.k * m)
        cycles.append(
            solve_poisson_distributed(
                bsp, parts, psi, zeta, h,
                tol=params.tol, max_cycles=params.max_cycles,
            )
        )
    return psi.lo, psi.hi, psi.owned().copy(), zeta.owned().copy(), cycles


@dataclass(frozen=True)
class OceanRun:
    """Assembled fields plus BSP accounting."""

    state: OceanState
    stats: ProgramStats


def bsp_ocean(
    size: int,
    steps: int,
    nprocs: int,
    *,
    params: OceanParams | None = None,
    backend: str = "simulator",
    checkpoint: Any = None,
    retries: int = 0,
    sync: str = "strict",
) -> OceanRun:
    """Run the distributed ocean model (paper sizes: 66, 130, 258, 514).

    ``checkpoint``/``retries`` are forwarded to
    :func:`~repro.core.runtime.bsp_run`; the program snapshots its fields
    at the top of every time step, so a crashed run resumes from the
    last completed time-step boundary.  ``sync`` selects the
    synchronization mode (``"strict"``/``"relaxed"``/``"elide"``) —
    ocean's many small ghost-exchange supersteps are nearly pure
    barrier, which is exactly where relaxed sync pays.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    m = size - 2
    check_power_of_two(m)
    params = params or OceanParams()
    run = bsp_run(
        ocean_program, nprocs, backend=backend, args=(size, steps, params),
        checkpoint=checkpoint, retries=retries, sync=sync,
    )
    psi = np.zeros((m + 2, m + 2))
    zeta = np.zeros((m + 2, m + 2))
    cycles: list[int] = run.results[0][4]
    for lo, hi, psi_rows, zeta_rows, _ in run.results:
        psi[lo:hi] = psi_rows
        zeta[lo:hi] = zeta_rows
    return OceanRun(
        state=OceanState(psi=psi, zeta=zeta, cycles=cycles),
        stats=run.stats,
    )
