"""Parallel sorting by regular sampling on the Green BSP library.

The classic one-round BSP sort (Shi & Schaeffer's PSRS, the standard BSP
example of the era):

1. each processor sorts its local block and picks ``p`` regular samples
   — one superstep to gather the samples at processor 0;
2. processor 0 sorts the ``p²`` samples and broadcasts ``p − 1``
   splitters — one superstep;
3. every processor partitions its sorted block by the splitters and
   routes each bucket to its owner — one superstep of total exchange;
4. each processor merges what it received.

BSP shape: ``S = 4`` (three communication supersteps + the final merge
segment), ``H ≈ max_j received_j ≈ n/p`` packets for random inputs —
cheap, regular, and exactly the profile the cost model "curve fits" well
(the point of ``benchmarks/bench_sort_prediction.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import kernels
from ...core.api import Bsp
from ...core.runtime import bsp_run
from ...core.stats import ProgramStats

#: 16-byte packet per key record (8-byte key + 8-byte tag), paper-style.
H_KEY = 1


def sample_sort_program(bsp: Bsp, data: np.ndarray) -> np.ndarray:
    """BSP program: returns this processor's sorted slice of the result.

    ``data`` is the full input; each processor takes its block slice off
    the work clock (the paper's "initially partitioned" convention).
    Concatenating the per-processor results in pid order yields the
    sorted array.
    """
    me, p = bsp.pid, bsp.nprocs
    with bsp.off_clock():
        lo = len(data) * me // p
        hi = len(data) * (me + 1) // p
        mine = np.array(data[lo:hi], dtype=np.float64)

    # Phase 1: local sort + regular samples to processor 0.
    mine.sort(kind="mergesort")
    bsp.charge(max(1.0, len(mine) * np.log2(max(len(mine), 2))))
    if len(mine):
        idx = (np.arange(1, p + 1) * len(mine)) // (p + 1)
        samples = mine[np.minimum(idx, len(mine) - 1)]
    else:
        samples = np.zeros(0)
    bsp.send(0, (me, samples), h=max(1, H_KEY * len(samples)))
    bsp.sync()

    # Phase 2: processor 0 sorts the sample pool, broadcasts splitters.
    if me == 0:
        pool = np.concatenate([pkt.payload[1] for pkt in bsp.packets()])
        pool.sort(kind="mergesort")
        bsp.charge(max(1.0, len(pool) * np.log2(max(len(pool), 2))))
        if len(pool) >= p - 1 and p > 1:
            idx = (np.arange(1, p) * len(pool)) // p
            splitters = pool[idx]
        else:
            splitters = np.zeros(max(p - 1, 0))
        for q in range(p):
            if q != 0:
                bsp.send(q, splitters, h=max(1, H_KEY * len(splitters)))
    else:
        list(bsp.packets())
        splitters = None
    bsp.sync()
    if me != 0:
        (pkt,) = list(bsp.packets())
        splitters = pkt.payload
    else:
        list(bsp.packets())
    assert splitters is not None

    # Phase 3: route buckets to their owners (total exchange).
    cuts = kernels.get("sort_partition")(mine, splitters)
    for q in range(p):
        bucket = mine[cuts[q] : cuts[q + 1]]
        if q == me:
            kept = bucket
        else:
            bsp.send(q, bucket, h=max(1, H_KEY * len(bucket)))
    bsp.sync()
    pieces = [kept]
    for pkt in bsp.packets():
        pieces.append(pkt.payload)

    # Phase 4: merge the (already sorted) pieces.
    merged = np.concatenate([x for x in pieces if len(x)]) if any(
        len(x) for x in pieces
    ) else np.zeros(0)
    merged.sort(kind="mergesort")  # k-way merge; sort of mostly-sorted data
    bsp.charge(max(1.0, len(merged) * np.log2(max(len(merged), 2))))
    return merged


@dataclass(frozen=True)
class SortRun:
    """Sorted output plus BSP accounting.

    ``bucket_sizes`` are the final per-processor bucket sizes; regular
    sampling bounds the largest at ~2n/p.
    """

    data: np.ndarray
    stats: ProgramStats
    bucket_sizes: tuple[int, ...]


def bsp_sample_sort(
    data: np.ndarray,
    nprocs: int,
    *,
    backend: str = "simulator",
) -> SortRun:
    """Sort ``data`` (1-D numeric) on ``nprocs`` BSP processors."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 1:
        raise ValueError("sample sort expects a 1-D array")
    run = bsp_run(sample_sort_program, nprocs, backend=backend, args=(data,))
    merged = (
        np.concatenate([r for r in run.results if len(r)])
        if any(len(r) for r in run.results)
        else np.zeros(0)
    )
    return SortRun(
        data=merged,
        stats=run.stats,
        bucket_sizes=tuple(len(r) for r in run.results),
    )
