"""BSP sample sort (the paper's Section 4 "simple subroutine").

The paper's conclusions single out sorting as the kind of simple
subroutine where the cost model's "curve fitting" of running times is
realistic.  This package supplies that subroutine — the classic
one-round BSP sample sort (regular sampling) — so the claim can be
tested: ``benchmarks/bench_sort_prediction.py`` fits predicted against
measured shapes across sizes and processor counts.
"""

from .samplesort import SortRun, bsp_sample_sort, sample_sort_program

__all__ = ["SortRun", "bsp_sample_sort", "sample_sort_program"]
