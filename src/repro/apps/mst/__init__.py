"""Minimum spanning tree: sequential baselines + the conservative
parallel algorithm (paper Section 3.3, Figure C.2)."""

from .parallel import ParallelMstResult, bsp_mst, mst_program
from .sequential import MstResult, kruskal, prim

__all__ = [
    "MstResult",
    "ParallelMstResult",
    "bsp_mst",
    "kruskal",
    "mst_program",
    "prim",
]
