"""Parallel MST on the Green BSP library (paper Section 3.3).

Three phases, as in the paper:

1. **Local phase** (no communication): each processor grows MST fragments
   from its home-home edges with a *guarded* Kruskal: an edge ``e=(a, b)``
   is added only when, at that moment, ``e`` is no heavier than the
   lightest cut edge incident to ``a``'s or ``b``'s fragment.  That makes
   ``e`` the minimum outgoing edge of that fragment (any lighter home-home
   edge was already processed, and skipped edges are provably heavier than
   the fragment's cut minimum), so by the cut property ``e`` is a global
   MST edge.  Edges that fail the guard are decided later.
2. **Parallel phase** — a simplification of the conservative DRAM
   algorithm of Leiserson & Maggs: Borůvka rounds over *component labels*.
   Fragments carry globally unique labels (minimum member id).  One
   conservative superstep tells each border-watcher the initial labels of
   the boundary home nodes; from then on every processor maintains an
   identical replicated union-find over labels, so border labels never
   need per-node refresh.  Each round all-gathers per-component candidate
   minima and merges every component along its *global* minimum outgoing
   edge (exact Borůvka; ties broken on the total order (w, u, v)).
3. **Mixed parallel/sequential phase**: at ``switch_threshold`` components,
   every processor ships its lightest edge per component pair to processor
   0, which finishes sequentially with Kruskal over the contracted
   multigraph — the paper's "uses a single processor to assemble the
   forests into components".

The algorithm is *conservative*: per-node traffic is exactly one label per
(boundary node, watcher) pair; everything else is per-component or
per-component-pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import kernels
from ...collectives import allgather, allreduce, gather
from ...core.api import Bsp
from ...core.runtime import bsp_run
from ...core.stats import ProgramStats
from ...graphs.distributed import LocalGraph
from ...graphs.graph import Graph
from ...graphs.unionfind import UnionFind

#: h-unit charges: a (node, label) record packs into one 16-byte packet;
#: an edge record (label/pair tag + endpoints + weight) into two.
H_LABEL = 1
H_EDGE = 2

#: Lexicographic edge key; makes equal weights behave as distinct.
EdgeKey = tuple[float, int, int]
_INF_KEY: EdgeKey = (float("inf"), -1, -1)


def _edge_key(w: float, a: int, b: int) -> EdgeKey:
    return (w, a, b) if a < b else (w, b, a)


def _local_phase(
    lg: LocalGraph,
) -> tuple[list[tuple[int, int, float]], np.ndarray, UnionFind]:
    """Local fragment growth.  Returns (edges, labels, node union-find).

    Classic safe rule, processing *all* locally visible edges (home-home
    and cut) in ascending (w, u, v) order: a cut edge **freezes** the
    fragment of its home endpoint (the fragment's next MST edge leaves the
    processor, so it is decided in phase 2); a home-home edge is added iff
    its endpoints lie in different fragments and at least one of them is
    unfrozen — then every lighter edge incident to that fragment was
    internal, so this edge is the fragment's minimum outgoing edge and by
    the cut property a global MST edge.  A merge inherits frozenness.

    Labels are global node ids (minimum member); valid for home nodes.
    """
    hu, hv, hw = lg.home_edges()
    cu, cv, cw = lg.cut_edges()
    items: list[tuple[EdgeKey, bool, int, int]] = [
        (_edge_key(float(hw[k]), int(hu[k]), int(hv[k])), False,
         int(hu[k]), int(hv[k]))
        for k in range(len(hu))
    ]
    items += [
        (_edge_key(float(cw[k]), int(cu[k]), int(cv[k])), True,
         int(cu[k]), int(cv[k]))
        for k in range(len(cu))
    ]
    items.sort()

    uf = UnionFind(lg.n_global)
    frozen: set[int] = set()
    edges: list[tuple[int, int, float]] = []
    for key, is_cut, a, b in items:
        if is_cut:
            frozen.add(uf.find(a))
            continue
        ra, rb = uf.find(a), uf.find(b)
        if ra == rb:
            continue
        if ra in frozen and rb in frozen:
            continue  # both fragments already have lighter outgoing edges
        was_frozen = ra in frozen or rb in frozen
        frozen.discard(ra)
        frozen.discard(rb)
        uf.union(ra, rb)
        if was_frozen:
            frozen.add(uf.find(a))
        edges.append((a, b, key[0]))

    # Fragment labels (minimum member id per fragment) for home nodes —
    # the kernel vectorizes the root gather and per-fragment minima.
    label = kernels.get("mst_labels")(uf, lg.home, lg.n_global)
    return edges, label, uf


def mst_program(
    bsp: Bsp,
    lg_all: list[LocalGraph],
    switch_threshold: int,
) -> dict:
    """BSP program; returns this processor's contribution to the forest."""
    with bsp.off_clock():
        lg = lg_all[bsp.pid]

    # -- Phase 1: guarded local Kruskal (no communication).
    local_edges, label, _ = _local_phase(lg)
    nedges_local = (lg.indptr[-1] if len(lg.indptr) else 0)
    bsp.charge(
        float(nedges_local) * max(1.0, np.log2(max(nedges_local, 2)))
    )

    # Conservative label exchange: boundary home nodes tell their watchers.
    outgoing: dict[int, list[tuple[int, int]]] = {}
    for gid in lg.home.tolist():
        watchers = lg.watchers(gid)
        if len(watchers):
            record = (gid, int(label[gid]))
            for q in watchers.tolist():
                outgoing.setdefault(q, []).append(record)
    for q, records in outgoing.items():
        bsp.send(q, ("labels", records), h=H_LABEL * len(records))
    bsp.charge(float(lg.nhome + lg.nborder))
    bsp.sync()
    for pkt in bsp.packets():
        _, records = pkt.payload
        for gid, lab in records:
            label[gid] = lab

    # Replicated component structure over labels.
    comp = UnionFind(lg.n_global)
    nlocal = len(np.unique(label[lg.home])) if len(lg.home) else 0
    ncomp = allreduce(bsp, nlocal, lambda a, b: a + b)

    cu, cv, cw = lg.cut_edges()
    hu, hv, hw = lg.home_edges()
    merge_edges: list[tuple[int, int, float]] = []

    # Locally visible crossing-edge candidates, pre-sorted by the global
    # tie-break key (w, min(u,v), max(u,v)); each Borůvka round compacts
    # away edges that became internal, so total scan work across rounds
    # stays near-linear instead of rounds × edges.
    eu = np.concatenate([cu, hu]).astype(np.int64)
    ev = np.concatenate([cv, hv]).astype(np.int64)
    ew = np.concatenate([cw, hw])
    lo_id, hi_id = np.minimum(eu, ev), np.maximum(eu, ev)
    order = np.lexsort((hi_id, lo_id, ew))
    eu, ev, ew = eu[order], ev[order], ew[order]
    lo_id, hi_id = lo_id[order], hi_id[order]
    lab_u, lab_v = label[eu], label[ev]
    active = np.arange(len(eu))

    # A candidate carries the edge key *and* the component labels of its
    # endpoints: node labels are only known near their owners, but label
    # ids are global, so replicas can replay merges identically.
    Candidate = tuple[EdgeKey, int, int]  # (key, label_a, label_b)
    component_minima = kernels.get("mst_component_minima")

    def proposals() -> dict[int, Candidate]:
        """Per-current-component minimum crossing edge, from this view.

        Also compacts ``active`` down to still-crossing edges.  ``active``
        preserves key order, so the first edge seen per component id is
        its minimum; the kernel performs that selection.
        """
        nonlocal active
        roots = comp.roots()
        la = roots[lab_u[active]]
        lb = roots[lab_v[active]]
        crossing = la != lb
        bsp.charge(float(len(active)))
        active = active[crossing]
        la, lb = la[crossing], lb[crossing]
        return component_minima(active, ew, lo_id, hi_id, la, lb, lg.n_global)

    # -- Phase 2: exact Borůvka over components.
    while ncomp > max(1, switch_threshold):
        mine = sorted(proposals().items())
        rounds = allgather(bsp, mine)
        best: dict[int, Candidate] = {}
        for part in rounds:
            for comp_id, cand in part:
                if comp_id not in best or cand[0] < best[comp_id][0]:
                    best[comp_id] = cand
        merged = 0
        bsp.charge(float(max(len(best), 1)))
        for comp_id in sorted(best):
            (wt, a, b), la, lb = best[comp_id]
            ra, rb = comp.find(la), comp.find(lb)
            if ra != rb:
                comp.union(ra, rb)
                merged += 1
                merge_edges.append((a, b, wt))
        ncomp -= merged
        if merged == 0:
            break  # disconnected input: nothing joins the leftovers

    # -- Phase 3: sequential finish of the contracted graph on processor 0.
    final_edges: list[tuple[int, int, float]] = []
    if ncomp > 1:
        roots = comp.roots()
        la = roots[lab_u[active]]
        lb = roots[lab_v[active]]
        crossing = la != lb
        bsp.charge(float(len(active)))
        active = active[crossing]
        la, lb = la[crossing], lb[crossing]
        # Lightest surviving edge per component pair, via the kernel.
        mine_tail = kernels.get("mst_pair_minima")(
            active, ew, lo_id, hi_id, la, lb, lg.n_global
        )
        per_proc = gather(bsp, mine_tail, root=0)
        if bsp.pid == 0:
            assert per_proc is not None
            tail_total = sum(len(part) for part in per_proc)
            bsp.charge(
                float(tail_total) * max(1.0, np.log2(max(tail_total, 2)))
            )
            for (wt, a, b), la, lb in sorted(
                {c for part in per_proc for c in part}
            ):
                ra, rb = comp.find(la), comp.find(lb)
                if ra != rb:
                    comp.union(ra, rb)
                    final_edges.append((a, b, wt))
                    ncomp -= 1
    ncomp = allreduce(bsp, ncomp if bsp.pid == 0 else lg.n_global, min)

    # Merge edges are replicated everywhere; report them from pid 0 only.
    return {
        "local": local_edges,
        "merge": merge_edges if bsp.pid == 0 else [],
        "final": final_edges,
        "ncomp": ncomp,
    }


@dataclass(frozen=True)
class ParallelMstResult:
    """Forest edges, total weight, component count, and BSP accounting."""

    edges: list[tuple[int, int, float]]
    weight: float
    ncomponents: int
    stats: ProgramStats


def bsp_mst(
    graph: Graph,
    owner: np.ndarray,
    nprocs: int,
    *,
    backend: str = "simulator",
    switch_threshold: int | None = None,
    sync: str = "strict",
) -> ParallelMstResult:
    """Compute the MST of ``graph`` partitioned by ``owner`` on ``nprocs``.

    ``switch_threshold`` is the component count at which the Borůvka phase
    hands over to the sequential finish (the paper switches "once the
    number of components becomes small"); default ``4 * nprocs``.
    Setting it to 1 disables the sequential finish (pure Borůvka), setting
    it very large disables the Borůvka phase — both ends are exercised by
    the ablation benchmark.
    """
    if switch_threshold is None:
        switch_threshold = 4 * nprocs
    lg_all = [LocalGraph.build(graph, owner, pid, nprocs) for pid in range(nprocs)]
    run = bsp_run(
        mst_program, nprocs, backend=backend,
        args=(lg_all, switch_threshold), sync=sync,
    )
    edges: list[tuple[int, int, float]] = []
    for part in run.results:
        edges.extend(part["local"])
        edges.extend(part["merge"])
        edges.extend(part["final"])
    weight = float(sum(w for _, _, w in edges))
    return ParallelMstResult(
        edges=edges,
        weight=weight,
        ncomponents=run.results[0]["ncomp"],
        stats=run.stats,
    )
