"""Sequential minimum-spanning-tree baselines.

The paper benchmarks its parallel MST against "a sequential implementation
of Kruskal's algorithm" (within 5% on 10K-node G(δ) graphs).  Kruskal is
the primary baseline; Prim is included as an independent oracle so tests
can cross-check the two (equal weight on any input, equal edge sets when
weights are distinct).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ...graphs.graph import Graph
from ...graphs.unionfind import UnionFind


@dataclass(frozen=True)
class MstResult:
    """A minimum spanning forest: edges (u, v, w) and total weight."""

    edges: list[tuple[int, int, float]]
    weight: float
    ncomponents: int  # 1 for connected inputs

    @property
    def nedges(self) -> int:
        return len(self.edges)


def kruskal(graph: Graph) -> MstResult:
    """Kruskal's algorithm (sort + union-find).  Works on forests too."""
    u, v, w = graph.edge_list()
    order = np.argsort(w, kind="stable")
    uf = UnionFind(graph.n)
    edges: list[tuple[int, int, float]] = []
    total = 0.0
    for k in order:
        a, b = int(u[k]), int(v[k])
        if uf.union(a, b):
            edges.append((a, b, float(w[k])))
            total += float(w[k])
            if uf.ncomponents == 1:
                break
    return MstResult(edges=edges, weight=total, ncomponents=uf.ncomponents)


def prim(graph: Graph) -> MstResult:
    """Prim's algorithm with a binary heap; independent oracle for tests.

    Restarts from every unvisited node, so disconnected inputs yield the
    minimum spanning forest, like :func:`kruskal`.
    """
    n = graph.n
    visited = np.zeros(n, dtype=bool)
    edges: list[tuple[int, int, float]] = []
    total = 0.0
    ncomp = 0
    for start in range(n):
        if visited[start]:
            continue
        ncomp += 1
        visited[start] = True
        heap: list[tuple[float, int, int]] = []
        nbrs, ws = graph.neighbors(start)
        for b, wt in zip(nbrs.tolist(), ws.tolist()):
            heapq.heappush(heap, (wt, start, b))
        while heap:
            wt, a, b = heapq.heappop(heap)
            if visited[b]:
                continue
            visited[b] = True
            edges.append((min(a, b), max(a, b), wt))
            total += wt
            nbrs, ws = graph.neighbors(b)
            for c, wc in zip(nbrs.tolist(), ws.tolist()):
                if not visited[c]:
                    heapq.heappush(heap, (wc, b, c))
    return MstResult(edges=edges, weight=total, ncomponents=ncomp)
