"""The paper's six applications, each a BSP program over the core library."""
