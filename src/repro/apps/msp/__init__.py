"""Multiple simultaneous shortest paths (paper Section 3.5, Figure C.6).

The application shares its engine with :mod:`repro.apps.sssp`: one
read-only distributed graph, ``K`` independent label arrays and queues
(the paper's "three integers and one double per node" of read-write state
per computation), and updates tagged with the source index.  The paper's
experiments run 25 computations simultaneously with the Section-3.4 work
factor; :func:`default_sources` reproduces that setup.
"""

from __future__ import annotations

import numpy as np

from ..sssp.parallel import DEFAULT_WORK_FACTOR, SsspResult, bsp_msp
from ..sssp.sequential import dijkstra_many

#: Number of simultaneous computations in the paper's MSP experiments.
PAPER_NSOURCES = 25


def default_sources(n: int, nsources: int = PAPER_NSOURCES, seed: int = 0
                    ) -> list[int]:
    """``nsources`` distinct source nodes, uniform over the graph."""
    if nsources > n:
        raise ValueError(f"cannot draw {nsources} distinct sources from {n}")
    rng = np.random.default_rng(seed)
    return sorted(rng.choice(n, size=nsources, replace=False).tolist())


__all__ = [
    "DEFAULT_WORK_FACTOR",
    "PAPER_NSOURCES",
    "SsspResult",
    "bsp_msp",
    "default_sources",
    "dijkstra_many",
]
