"""Sequential dense matrix multiplication baselines.

The paper's parallel code multiplies local blocks with "a sequential
blocked matrix multiplication algorithm"; :func:`blocked_matmul` is that
kernel, exposed standalone as the single-processor comparison point.  The
paper's caveat (Section 1.2) that highly optimized sequential matmuls
exist applies here too: :func:`reference_matmul` (BLAS via ``@``) is the
honest fast baseline, and speed-ups against :func:`blocked_matmul` should
be read with the same caution the paper asks for.
"""

from __future__ import annotations

import numpy as np


def blocked_matmul(a: np.ndarray, b: np.ndarray, block: int = 64) -> np.ndarray:
    """Cache-blocked C = A @ B with an explicit block loop.

    Operates on ``block``-sized panels so the working set stays cache
    resident; the per-panel products use the vectorized kernel, as the
    paper's per-processor code used its platform's best inner kernel.
    """
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("inputs must be 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    n, k = a.shape
    _, m = b.shape
    c = np.zeros((n, m), dtype=np.float64)
    for i0 in range(0, n, block):
        i1 = min(i0 + block, n)
        for k0 in range(0, k, block):
            k1 = min(k0 + block, k)
            a_panel = a[i0:i1, k0:k1]
            for j0 in range(0, m, block):
                j1 = min(j0 + block, m)
                c[i0:i1, j0:j1] += a_panel @ b[k0:k1, j0:j1]
    return c


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The platform's optimized matmul (BLAS); correctness oracle."""
    return np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64)
