"""Cannon's algorithm on the Green BSP library (paper Section 3.6).

Layout: the ``p`` processors form a ``√p × √p`` grid; processor
``i = x·√p + y`` initially holds block ``(x, (x+y) mod √p)`` of A and
block ``((x+y) mod √p, y)`` of B.  The algorithm runs ``√p`` iterations:
multiply the two local blocks into the local C block, then send the A
block to the processor on the *right* and the B block to the processor
*below* (both modulo √p) — the paper's exact shift directions, which
deliver the ``k−1`` diagonal blocks from the left/above.

BSP shape (matches Figure C.3):

* ``S = 2√p − 1`` — A and B shift in *separate* supersteps, and the last
  iteration does not shift;
* ``h`` per shift superstep = ``(n/√p)²`` — one 16-byte packet per matrix
  element (8-byte label + 8-byte double), the paper's packet discipline;
* work depth ≈ ``√p`` local block multiplies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...core.api import Bsp
from ...core.runtime import bsp_run
from ...core.stats import ProgramStats


def grid_side(nprocs: int) -> int:
    """√p for a perfect-square processor count (else ValueError)."""
    q = math.isqrt(nprocs)
    if q * q != nprocs:
        raise ValueError(
            f"Cannon's algorithm needs a square processor count, got {nprocs}"
        )
    return q


def initial_blocks(
    a: np.ndarray, b: np.ndarray, pid: int, q: int
) -> tuple[np.ndarray, np.ndarray]:
    """This processor's skewed starting blocks of A and B."""
    bs = a.shape[0] // q
    x, y = divmod(pid, q)
    k = (x + y) % q
    a_blk = a[x * bs : (x + 1) * bs, k * bs : (k + 1) * bs].copy()
    b_blk = b[k * bs : (k + 1) * bs, y * bs : (y + 1) * bs].copy()
    return a_blk, b_blk


def cannon_program(bsp: Bsp, a: np.ndarray, b: np.ndarray
                   ) -> tuple[int, int, np.ndarray]:
    """BSP program: returns ``(x, y, C_block)`` for this processor.

    The global matrices are only consulted (off the work clock) to carve
    out this processor's initial blocks — the paper likewise assumes the
    input "initially partitioned" and excludes distribution from W.
    """
    q = grid_side(bsp.nprocs)
    with bsp.off_clock():
        x, y = divmod(bsp.pid, q)
        a_blk, b_blk = initial_blocks(a, b, bsp.pid, q)
    right = x * q + (y + 1) % q
    down = ((x + 1) % q) * q + y
    left = x * q + (y - 1) % q
    up = ((x - 1) % q) * q + y
    # Cannon's shifts are a static torus: A goes right, B goes down,
    # inbound blocks arrive from left/above.  Declaring it lets
    # ``sync="elide"`` skip every non-neighbour link at each barrier
    # (O(1) completion frames per boundary instead of O(p)).
    bsp.pattern({right, down}, {left, up})
    bs = a_blk.shape[0]
    # Charged work: 2·bs³ flops per block multiply (+bs² accumulate) —
    # the abstract load the harness maps onto 1996-era hardware.
    c_blk = a_blk @ b_blk
    bsp.charge(2.0 * bs**3)
    for _ in range(q - 1):
        bsp.send(right, a_blk, h=a_blk.size)
        bsp.sync()
        (pkt,) = bsp.packets()
        a_blk = pkt.payload
        bsp.send(down, b_blk, h=b_blk.size)
        bsp.sync()
        (pkt,) = bsp.packets()
        b_blk = pkt.payload
        c_blk += a_blk @ b_blk
        bsp.charge(2.0 * bs**3 + bs * bs)
    return x, y, c_blk


@dataclass(frozen=True)
class MatmulRun:
    """Assembled product plus the run's BSP accounting."""

    c: np.ndarray
    stats: ProgramStats


def cannon_matmul(
    a: np.ndarray,
    b: np.ndarray,
    nprocs: int,
    *,
    backend: str = "simulator",
    sync: str = "strict",
) -> MatmulRun:
    """Multiply dense square A and B on ``nprocs`` BSP processors.

    ``nprocs`` must be a perfect square dividing the matrix order.
    ``sync`` selects the synchronization mode; under ``"elide"`` the
    declared torus pattern reduces every barrier to its four links.
    """
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(
            f"Cannon multiply needs equal square matrices, got {a.shape} and "
            f"{b.shape}"
        )
    q = grid_side(nprocs)
    n = a.shape[0]
    if n % q != 0:
        raise ValueError(f"matrix order {n} not divisible by grid side {q}")
    run = bsp_run(cannon_program, nprocs, backend=backend, args=(a, b),
                  sync=sync)
    bs = n // q
    c = np.empty((n, n), dtype=np.float64)
    for x, y, block in run.results:
        c[x * bs : (x + 1) * bs, y * bs : (y + 1) * bs] = block
    return MatmulRun(c=c, stats=run.stats)


def expected_shape(n: int, nprocs: int) -> tuple[int, int]:
    """Paper-formula (S, H) for an n×n multiply on ``nprocs`` processors.

    ``S = 2√p − 1``; ``H = (2√p − 2) · (n/√p)²`` (one packet per element,
    one block per shift superstep).  Matches every Figure C.3 row.
    """
    q = grid_side(nprocs)
    s = 2 * q - 1
    h = (2 * q - 2) * (n // q) ** 2
    return s, h
