"""Dense matrix multiplication: Cannon's algorithm + sequential baselines
(paper Section 3.6, Figure C.3)."""

from .cannon import (
    MatmulRun,
    cannon_matmul,
    cannon_program,
    expected_shape,
    grid_side,
    initial_blocks,
)
from .sequential import blocked_matmul, reference_matmul

__all__ = [
    "MatmulRun",
    "blocked_matmul",
    "cannon_matmul",
    "cannon_program",
    "expected_shape",
    "grid_side",
    "initial_blocks",
    "reference_matmul",
]
