"""Sequential 2-D electrostatic particle-in-cell plasma simulation.

The paper's related work (Section 1.3) points to plasma simulation as an
early BSP success on networks of workstations [Nibhanupudi, Norton &
Szymanski 1995]; this package reproduces that workload class on our
substrate.  The model is the standard electrostatic PIC cycle on a
grounded square box (φ = 0 walls, the same cell-centred grid and
multigrid solver as the ocean application):

1. **deposit** — cloud-in-cell (bilinear) weighting of electron charge
   onto the grid, plus a uniform neutralizing ion background;
2. **solve** — ``∇²φ = −ρ`` by multigrid (normalized units:
   ε₀ = 1, electron charge −1, mass 1);
3. **gather/push** — central-difference field at cell centres, bilinear
   field at particles, leapfrog velocity/position update, specular
   reflection at the walls.

The classic validation is the cold Langmuir oscillation: a sinusoidal
density perturbation of amplitude ε oscillates at the plasma frequency
``ω_p = sqrt(ρ₀)`` (normalized); the tests measure the field-energy
period against that dispersion relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ocean.multigrid import check_power_of_two, solve_poisson

#: Electron charge and mass in normalized units.
CHARGE = -1.0
MASS = 1.0


@dataclass
class Particles:
    """Electron macro-particles: positions in [0, 1)², velocities, weight.

    ``weight`` is the charge carried by each macro-particle (all equal),
    chosen so the mean charge density is ``−rho0``.
    """

    pos: np.ndarray
    vel: np.ndarray
    weight: float
    ident: np.ndarray

    @classmethod
    def create(cls, pos: np.ndarray, vel: np.ndarray, rho0: float
               ) -> "Particles":
        pos = np.ascontiguousarray(pos, dtype=np.float64)
        vel = np.ascontiguousarray(vel, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError(f"pos must be (n, 2), got {pos.shape}")
        if vel.shape != pos.shape:
            raise ValueError("vel shape must match pos")
        if len(pos) == 0:
            raise ValueError("need at least one particle")
        if rho0 <= 0:
            raise ValueError(f"rho0 must be positive, got {rho0}")
        weight = CHARGE * rho0 / len(pos)  # total charge = -rho0 * area(=1)
        return cls(pos=pos, vel=vel, weight=weight,
                   ident=np.arange(len(pos), dtype=np.int64))

    def __len__(self) -> int:
        return len(self.pos)

    def subset(self, index: np.ndarray) -> "Particles":
        return Particles(
            pos=self.pos[index].copy(),
            vel=self.vel[index].copy(),
            weight=self.weight,
            ident=self.ident[index].copy(),
        )

    @staticmethod
    def concatenate(parts: list["Particles"]) -> "Particles":
        parts = [p for p in parts if len(p)]
        if not parts:
            raise ValueError("nothing to concatenate")
        return Particles(
            pos=np.vstack([p.pos for p in parts]),
            vel=np.vstack([p.vel for p in parts]),
            weight=parts[0].weight,
            ident=np.concatenate([p.ident for p in parts]),
        )

    def ordered_by_ident(self) -> "Particles":
        return self.subset(np.argsort(self.ident, kind="stable"))


def perturbed_lattice(
    nside: int,
    *,
    amplitude: float = 0.05,
    mode: int = 1,
    rho0: float = 1.0,
    seed: int | None = None,
) -> Particles:
    """Cold electron lattice with a sinusoidal x-displacement.

    The textbook Langmuir-oscillation initial condition: ``nside²``
    particles on a regular lattice, displaced by
    ``amplitude·sin(mode·π·x)/…`` so the density perturbation excites the
    box's ``sin`` eigenmode; zero initial velocities.  ``seed`` adds a
    tiny jitter to avoid exact grid degeneracies when set.
    """
    if nside < 2:
        raise ValueError(f"nside must be >= 2, got {nside}")
    coords = (np.arange(nside) + 0.5) / nside
    x, y = np.meshgrid(coords, coords, indexing="ij")
    pos = np.column_stack([x.ravel(), y.ravel()])
    if seed is not None:
        rng = np.random.default_rng(seed)
        pos += rng.uniform(-1e-4, 1e-4, size=pos.shape)
    pos[:, 0] += amplitude / (np.pi * mode) * np.sin(
        np.pi * mode * pos[:, 0]
    )
    pos = np.clip(pos, 1e-9, 1 - 1e-9)
    vel = np.zeros_like(pos)
    return Particles.create(pos, vel, rho0=rho0)


# --------------------------------------------------------------------------
# Grid operations (cell-centred n×n interior in an (n+2)² array).
# --------------------------------------------------------------------------


def cic_indices(pos: np.ndarray, n: int
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Cloud-in-cell cells and weights for each particle.

    Returns ``(i0, j0, fx, fy)``: the lower-left *cell index* (0-based
    over an (n+1)-wide dual grid; cell centres sit at ((i+½)h, (j+½)h))
    and the fractional offsets.  Particles between the wall and the first
    cell centre weight partly onto the ghost ring, which the Dirichlet
    reflection discards — physically, image charges in the grounded wall.
    """
    h = 1.0 / n
    gx = pos[:, 0] / h - 0.5
    gy = pos[:, 1] / h - 0.5
    i0 = np.floor(gx).astype(np.int64)
    j0 = np.floor(gy).astype(np.int64)
    fx = gx - i0
    fy = gy - j0
    return i0, j0, fx, fy


def deposit(pos: np.ndarray, weight: float, n: int,
            rho0: float) -> np.ndarray:
    """Charge density ρ on the (n+2)² grid: CIC electrons + ion background.

    Ghost-ring deposits (image-charge shares) are dropped, matching the
    grounded-wall boundary condition.
    """
    check_power_of_two(n)
    h = 1.0 / n
    rho = np.zeros((n + 2, n + 2))
    i0, j0, fx, fy = cic_indices(pos, n)
    per_cell = weight / (h * h)  # charge -> density
    for di, dj, w in (
        (0, 0, (1 - fx) * (1 - fy)),
        (1, 0, fx * (1 - fy)),
        (0, 1, (1 - fx) * fy),
        (1, 1, fx * fy),
    ):
        ii = i0 + di + 1  # +1: ghost ring offset
        jj = j0 + dj + 1
        keep = (ii >= 1) & (ii <= n) & (jj >= 1) & (jj <= n)
        np.add.at(rho, (ii[keep], jj[keep]), per_cell * w[keep])
    rho[1:-1, 1:-1] += rho0  # neutralizing ions
    return rho


def solve_field(rho: np.ndarray, *, tol: float = 1e-8,
                u0: np.ndarray | None = None
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """(φ, Ex, Ey, cycles): multigrid solve of ∇²φ = −ρ and its field.

    E = −∇φ by central differences at cell centres; the ghost ring is
    reflected (φ = 0 walls) before differencing.
    """
    n = rho.shape[0] - 2
    h = 1.0 / n
    f = -rho
    phi, info = solve_poisson(f, h, tol=tol, u0=u0)
    ex, ey = field_from_phi(phi, h)
    return phi, ex, ey, info.cycles


def field_from_phi(phi: np.ndarray, h: float
                   ) -> tuple[np.ndarray, np.ndarray]:
    """E = −∇φ on the interior, ghosts filled by reflection first."""
    from ..ocean.multigrid import apply_reflection

    apply_reflection(phi)
    inv2h = 1.0 / (2.0 * h)
    ex = np.zeros_like(phi)
    ey = np.zeros_like(phi)
    ex[1:-1, 1:-1] = -(phi[2:, 1:-1] - phi[:-2, 1:-1]) * inv2h
    ey[1:-1, 1:-1] = -(phi[1:-1, 2:] - phi[1:-1, :-2]) * inv2h
    return ex, ey


def gather(ex: np.ndarray, ey: np.ndarray, pos: np.ndarray, n: int
           ) -> np.ndarray:
    """Bilinear field at each particle (same CIC weights as deposit)."""
    i0, j0, fx, fy = cic_indices(pos, n)
    out = np.zeros_like(pos)
    for di, dj, w in (
        (0, 0, (1 - fx) * (1 - fy)),
        (1, 0, fx * (1 - fy)),
        (0, 1, (1 - fx) * fy),
        (1, 1, fx * fy),
    ):
        ii = np.clip(i0 + di + 1, 0, n + 1)
        jj = np.clip(j0 + dj + 1, 0, n + 1)
        out[:, 0] += w * ex[ii, jj]
        out[:, 1] += w * ey[ii, jj]
    return out


def push(particles: Particles, efield: np.ndarray, dt: float) -> None:
    """Leapfrog kick+drift with specular wall reflection, in place."""
    particles.vel += (CHARGE / MASS) * efield * dt
    particles.pos += particles.vel * dt
    for axis in range(2):
        x = particles.pos[:, axis]
        v = particles.vel[:, axis]
        low = x < 0
        x[low] = -x[low]
        v[low] = -v[low]
        high = x > 1
        x[high] = 2.0 - x[high]
        v[high] = -v[high]
        np.clip(x, 1e-12, 1 - 1e-12, out=x)


# --------------------------------------------------------------------------
# Driver + diagnostics.
# --------------------------------------------------------------------------


@dataclass
class PicHistory:
    """Per-step diagnostics of a PIC run."""

    field_energy: list[float] = field(default_factory=list)
    kinetic_energy: list[float] = field(default_factory=list)
    cycles: list[int] = field(default_factory=list)


@dataclass(frozen=True)
class PicResult:
    particles: Particles
    history: PicHistory


def field_energy(ex: np.ndarray, ey: np.ndarray, n: int) -> float:
    """½∫|E|² over the box (cell-centred quadrature)."""
    h2 = (1.0 / n) ** 2
    return 0.5 * h2 * float(
        (ex[1:-1, 1:-1] ** 2 + ey[1:-1, 1:-1] ** 2).sum()
    )


def kinetic_energy(particles: Particles) -> float:
    # Macro-particle mass is |weight| * MASS / |CHARGE| per unit charge.
    m = MASS * abs(particles.weight / CHARGE)
    return 0.5 * m * float((particles.vel**2).sum())


def simulate_pic(
    particles: Particles,
    n: int,
    steps: int,
    *,
    dt: float = 0.05,
    rho0: float = 1.0,
    tol: float = 1e-8,
) -> PicResult:
    """Run the sequential PIC cycle for ``steps`` steps on an n×n grid."""
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    check_power_of_two(n)
    state = particles.subset(np.arange(len(particles)))
    history = PicHistory()
    phi = None
    for _ in range(steps):
        rho = deposit(state.pos, state.weight, n, rho0)
        phi, ex, ey, cycles = solve_field(rho, tol=tol, u0=phi)
        efield = gather(ex, ey, state.pos, n)
        history.field_energy.append(field_energy(ex, ey, n))
        history.kinetic_energy.append(kinetic_energy(state))
        history.cycles.append(cycles)
        push(state, efield, dt)
    return PicResult(particles=state, history=history)


def plasma_frequency(rho0: float = 1.0) -> float:
    """ω_p = sqrt(ρ₀ q²/(ε₀ m)) in normalized units."""
    return float(np.sqrt(rho0 * CHARGE * CHARGE / MASS))


def oscillation_period(energies: list[float], dt: float) -> float | None:
    """Estimated period from successive minima of the field energy.

    The field energy of a Langmuir oscillation dips twice per plasma
    period, so the period is twice the mean minima spacing.  Returns
    ``None`` when fewer than two interior minima exist.
    """
    e = np.asarray(energies)
    if len(e) < 5:
        return None
    interior = np.flatnonzero(
        (e[1:-1] <= e[:-2]) & (e[1:-1] <= e[2:])
    ) + 1
    if len(interior) < 2:
        return None
    spacing = np.diff(interior).mean()
    return float(2.0 * spacing * dt)
