"""Electrostatic particle-in-cell plasma simulation (Related Work [28]:
BSP plasma codes on networks of workstations)."""

from .parallel import PicRun, bsp_pic, pic_program, split_particles
from .pic import (
    Particles,
    PicHistory,
    PicResult,
    deposit,
    field_energy,
    gather,
    kinetic_energy,
    oscillation_period,
    perturbed_lattice,
    plasma_frequency,
    push,
    simulate_pic,
    solve_field,
)

__all__ = [
    "Particles",
    "PicHistory",
    "PicResult",
    "PicRun",
    "bsp_pic",
    "deposit",
    "field_energy",
    "gather",
    "kinetic_energy",
    "oscillation_period",
    "perturbed_lattice",
    "pic_program",
    "plasma_frequency",
    "push",
    "simulate_pic",
    "solve_field",
    "split_particles",
]
