"""BSP-parallel particle-in-cell plasma simulation.

The workload of [28] (plasma simulation under BSP on a network of
workstations), built from the substrates this repository already has: the
grid is row-block partitioned exactly like the ocean application, the
Poisson solve *is* the ocean's distributed multigrid, and particles live
with the processor owning their strip.  Per time step:

1. *Deposit* — each processor accumulates CIC charge from its particles
   into its rows plus two spill rows; one superstep ships the spill rows
   to their owners (charge conservation is exact: every fraction lands
   somewhere, wall spill excepted — image charges, as sequentially).
2. *Field solve* — ``∇²φ = −ρ`` via
   :func:`repro.apps.ocean.parallel.solve_poisson_distributed` (warm
   started with the previous φ), many small supersteps.
3. *Gather/push* — E rows from local φ (ghosts current after the
   solve), one superstep to refresh E's neighbour ghost rows (no wall
   reflection: E's ghost ring is zero, as in the sequential gather),
   then leapfrog.
4. *Migrate* — particles that crossed a strip boundary move to their
   new owner; one superstep.
5. *Diagnostics* — field/kinetic energies all-reduced; one superstep.

Like the N-body code, the particle phases add only a handful of
supersteps per step; the solver dominates S, the deposit/migration
traffic dominates H at large particle counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...collectives import allreduce
from ...core.api import Bsp
from ...core.runtime import bsp_run
from ...core.stats import ProgramStats
from ..ocean.multigrid import check_power_of_two
from ..ocean.parallel import (
    LocalBlock,
    RowPartition,
    build_partitions,
    exchange_ghosts,
    solve_poisson_distributed,
)
from .pic import (
    CHARGE,
    MASS,
    Particles,
    PicHistory,
    cic_indices,
    kinetic_energy,
    push,
)


def _row_of_x(x: np.ndarray, n: int) -> np.ndarray:
    """Grid row (1..n) containing each particle's x coordinate."""
    return np.clip((x * n).astype(np.int64) + 1, 1, n)


def split_particles(
    particles: Particles, part: RowPartition
) -> list[Particles]:
    """Assign particles to the owners of their grid rows."""
    rows = _row_of_x(particles.pos[:, 0], part.m)
    owners = np.array([part.owner(int(r)) for r in rows], dtype=np.int64)
    return [
        particles.subset(np.flatnonzero(owners == q))
        for q in range(part.nprocs)
    ]


def _deposit_local(
    particles: Particles, blk: LocalBlock, rho0: float
) -> None:
    """CIC deposit of this strip's particles into ``blk`` (incl. spill).

    The block's ghost rows receive the spill destined for the
    neighbours; the caller exchanges and adds them.
    """
    n = blk.part.m
    h = 1.0 / n
    per_cell = particles.weight / (h * h)
    i0, j0, fx, fy = cic_indices(particles.pos, n)
    for di, dj, w in (
        (0, 0, (1 - fx) * (1 - fy)),
        (1, 0, fx * (1 - fy)),
        (0, 1, (1 - fx) * fy),
        (1, 1, fx * fy),
    ):
        ii = i0 + di + 1
        jj = j0 + dj + 1
        keep = (ii >= blk.lo - 1) & (ii <= blk.hi) & (jj >= 1) & (jj <= n)
        np.add.at(
            blk.data,
            (ii[keep] - blk.lo + 1, jj[keep]),
            per_cell * w[keep],
        )


def _exchange_spill(bsp: Bsp, blk: LocalBlock) -> None:
    """Ship ghost-row deposits to their owners and add arrivals (1 step)."""
    part = blk.part
    if blk.k:
        if blk.lo > 1:
            bsp.send(part.owner(blk.lo - 1), ("spill", blk.lo - 1,
                                              blk.data[0].copy()))
        if blk.hi <= part.m:
            bsp.send(part.owner(blk.hi), ("spill", blk.hi,
                                          blk.data[blk.k + 1].copy()))
        blk.data[0] = 0.0
        blk.data[blk.k + 1] = 0.0
    bsp.sync()
    for pkt in bsp.packets():
        _, row, values = pkt.payload
        blk.data[row - blk.lo + 1] += values


def _field_rows(phi: LocalBlock, ex: LocalBlock, ey: LocalBlock) -> None:
    """E = −∇φ on owned rows (φ ghosts must be current)."""
    if phi.k == 0:
        return
    n = phi.part.m
    inv2h = n / 2.0
    a = phi.data
    ex.data[1:-1, 1:-1] = -(a[2:, 1:-1] - a[:-2, 1:-1]) * inv2h
    ey.data[1:-1, 1:-1] = -(a[1:-1, 2:] - a[1:-1, :-2]) * inv2h


def _gather_local(
    ex: LocalBlock, ey: LocalBlock, pos: np.ndarray
) -> np.ndarray:
    """Bilinear field at this strip's particles (E ghosts current)."""
    n = ex.part.m
    i0, j0, fx, fy = cic_indices(pos, n)
    out = np.zeros_like(pos)
    for di, dj, w in (
        (0, 0, (1 - fx) * (1 - fy)),
        (1, 0, fx * (1 - fy)),
        (0, 1, (1 - fx) * fy),
        (1, 1, fx * fy),
    ):
        ii = np.clip(i0 + di + 1, 0, n + 1) - ex.lo + 1
        jj = np.clip(j0 + dj + 1, 0, n + 1)
        ii = np.clip(ii, 0, ex.k + 1)  # spill row reads hit the ghosts
        out[:, 0] += w * ex.data[ii, jj]
        out[:, 1] += w * ey.data[ii, jj]
    return out


def pic_program(
    bsp: Bsp,
    parts: list[Particles],
    n: int,
    steps: int,
    dt: float,
    rho0: float,
    tol: float,
) -> tuple[Particles | None, PicHistory]:
    """BSP program: evolves this strip's particles; returns them + history."""
    with bsp.off_clock():
        mine = (
            parts[bsp.pid].subset(np.arange(len(parts[bsp.pid])))
            if len(parts[bsp.pid])
            else parts[bsp.pid]
        )
    grid_parts = build_partitions(n, bsp.nprocs)
    top = grid_parts[0]
    phi = LocalBlock(top, bsp.pid)
    history = PicHistory()
    h2 = (1.0 / n) ** 2

    for _ in range(steps):
        # -- 1. Deposit + spill exchange.
        rho = LocalBlock(top, bsp.pid)
        if len(mine):
            _deposit_local(mine, rho, rho0)
        bsp.charge(4.0 * len(mine))
        _exchange_spill(bsp, rho)
        if rho.k:
            rho.owned()[:, 1:-1] += rho0
        f = LocalBlock(top, bsp.pid)
        f.data[:] = -rho.data

        # -- 2. Distributed multigrid field solve (warm started).
        cycles = solve_poisson_distributed(
            bsp, grid_parts, phi, f, 1.0 / n, tol=tol, max_cycles=50
        )

        # -- 3. Field rows, E ghost refresh, gather, push.
        ex = LocalBlock(top, bsp.pid)
        ey = LocalBlock(top, bsp.pid)
        _field_rows(phi, ex, ey)
        bsp.charge(6.0 * phi.k * n)
        exchange_ghosts(bsp, [ex, ey], reflect=False)
        efield = (
            _gather_local(ex, ey, mine.pos) if len(mine) else
            np.zeros((0, 2))
        )

        # Diagnostics before the push (E and v are in phase here).
        fe_local = 0.5 * h2 * float(
            (ex.owned()[:, 1:-1] ** 2 + ey.owned()[:, 1:-1] ** 2).sum()
        )
        ke_local = kinetic_energy(mine) if len(mine) else 0.0
        totals = allreduce(bsp, (fe_local, ke_local),
                           lambda a, b: (a[0] + b[0], a[1] + b[1]))
        history.field_energy.append(totals[0])
        history.kinetic_energy.append(totals[1])
        history.cycles.append(cycles)

        if len(mine):
            push(mine, efield, dt)
            bsp.charge(6.0 * len(mine))

        # -- 4. Migration.
        if len(mine):
            rows = _row_of_x(mine.pos[:, 0], n)
            owners = np.array(
                [top.owner(int(r)) for r in rows], dtype=np.int64
            )
        else:
            owners = np.zeros(0, dtype=np.int64)
        for q in range(bsp.nprocs):
            if q == bsp.pid:
                continue
            moving = np.flatnonzero(owners == q)
            if len(moving):
                sub = mine.subset(moving)
                bsp.send(q, (sub.pos, sub.vel, sub.ident),
                         h=max(1, 3 * len(moving)))
        keep_idx = np.flatnonzero(owners == bsp.pid)
        kept = mine.subset(keep_idx) if len(mine) else mine
        bsp.sync()
        arrived = [kept] if len(kept) else []
        for pkt in bsp.packets():
            pos, vel, ident = pkt.payload
            arrived.append(
                Particles(pos=pos, vel=vel, weight=parts_weight(parts),
                          ident=ident)
            )
        mine = (
            Particles.concatenate(arrived) if arrived else kept
        )

    return (mine if len(mine) else None), history


def parts_weight(parts: list[Particles]) -> float:
    for part in parts:
        if len(part):
            return part.weight
    raise ValueError("no particles anywhere")


@dataclass(frozen=True)
class PicRun:
    """Merged final particles, diagnostics, and BSP accounting."""

    particles: Particles
    history: PicHistory
    stats: ProgramStats


def bsp_pic(
    particles: Particles,
    n: int,
    nprocs: int,
    steps: int,
    *,
    dt: float = 0.05,
    rho0: float = 1.0,
    tol: float = 1e-8,
    backend: str = "simulator",
) -> PicRun:
    """Run the distributed PIC cycle (grid n×n, strip-partitioned)."""
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    check_power_of_two(n)
    top = RowPartition.block(n, nprocs)
    parts = split_particles(particles, top)
    run = bsp_run(
        pic_program,
        nprocs,
        backend=backend,
        args=(parts, n, steps, dt, rho0, tol),
    )
    merged = Particles.concatenate(
        [res[0] for res in run.results if res[0] is not None]
    ).ordered_by_ident()
    history = run.results[0][1]
    return PicRun(particles=merged, history=history, stats=run.stats)
