"""Sequential single-source shortest paths (Dijkstra) baseline."""

from __future__ import annotations

import heapq

import numpy as np

from ...graphs.graph import Graph


def dijkstra(graph: Graph, source: int) -> np.ndarray:
    """Distance labels from ``source`` (``inf`` for unreachable nodes).

    Binary-heap Dijkstra with lazy deletion — the sequential program the
    paper's naive parallelization starts from.  Requires non-negative
    weights.
    """
    if not 0 <= source < graph.n:
        raise ValueError(f"source {source} out of range({graph.n})")
    if len(graph.weights) and graph.weights.min() < 0:
        raise ValueError("Dijkstra requires non-negative edge weights")
    dist = np.full(graph.n, np.inf)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        lo, hi = indptr[u], indptr[u + 1]
        for k in range(lo, hi):
            v = indices[k]
            nd = d + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    return dist


def dijkstra_many(graph: Graph, sources: list[int]) -> np.ndarray:
    """One Dijkstra per source; rows follow ``sources`` order.

    The sequential baseline for the multiple-shortest-paths application
    (Section 3.5): same read-only graph, independent label arrays.
    """
    return np.vstack([dijkstra(graph, s) for s in sources])
