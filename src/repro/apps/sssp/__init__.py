"""Single-source shortest paths: sequential Dijkstra + the BSP
work-factor algorithm (paper Section 3.4, Figure C.5)."""

from .parallel import (
    DEFAULT_WORK_FACTOR,
    SsspResult,
    bsp_msp,
    bsp_sssp,
    sssp_program,
)
from .sequential import dijkstra, dijkstra_many

__all__ = [
    "DEFAULT_WORK_FACTOR",
    "SsspResult",
    "bsp_msp",
    "bsp_sssp",
    "dijkstra",
    "dijkstra_many",
    "sssp_program",
]
