"""BSP shortest paths with a *work factor* (paper Sections 3.4 and 3.5).

The paper first tried the naive parallel Dijkstra — every processor drains
its priority queue completely before communicating — and found it poor.
The redesign "allowed a processor to communicate and end its superstep
whenever it had worked on its local piece of the graph for some period of
time called the *work factor*", trading more supersteps for better load
balance and faster convergence.  Both variants live here; the ablation
benchmark compares them.

Engine (one superstep iteration):

1. apply incoming border updates ``(k, u, d)`` — a watcher learned that
   border node ``u``'s label dropped to ``d`` in computation ``k`` — by
   relaxing ``u``'s edges into home nodes;
2. pop/relax up to ``work_factor`` queue entries per computation
   (``work_factor=None`` reproduces the naive drain-everything variant);
3. for each *home* node whose label changed, send one ``(k, node, label)``
   record to every processor holding it as a border node (the paper's
   conservative update rule), plus one activity bit to every processor.

Termination: a superstep in which every processor was idle (empty queues,
nothing sent) implies no messages are in flight, so when all activity bits
read false, everyone stops — in the same superstep, since the bits are
globally replicated.

The same engine runs ``K`` simultaneous computations over one read-only
graph — the multiple-shortest-paths application (Section 3.5).  Per-source
read-write state is one distance row and one queue; update records carry
the source index ``k`` (packed with the node id into the label half of a
16-byte packet, so h = 1 per record, the paper's packet discipline).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ... import kernels
from ...core.api import Bsp
from ...core.runtime import bsp_run
from ...core.stats import ProgramStats
from ...graphs.distributed import LocalGraph
from ...graphs.graph import Graph

#: One 16-byte packet per (source, node, distance) record.
H_UPDATE = 1
#: Activity bits are single packets.
H_FLAG = 1

#: Default work factor: queue pops per computation per superstep.  One
#: value for every machine profile, as the paper "chose one work factor to
#: optimize performance across our platforms".
DEFAULT_WORK_FACTOR = 400


def sssp_program(
    bsp: Bsp,
    lg_all: list[LocalGraph],
    sources: Sequence[int],
    work_factor: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """BSP program: returns (home node ids, dist rows for home nodes).

    The returned array has shape ``(len(sources), nhome)``; the driver
    assembles the global distance matrix, so no result-gathering superstep
    inflates H (the paper's tables likewise leave labels distributed).
    """
    with bsp.off_clock():
        lg = lg_all[bsp.pid]
    nsrc = len(sources)
    # Kernel selection: the border adjacency layout is mode-specific
    # (dict for the reference scan, CSR for the vectorized batch), so all
    # three kernels are resolved once, under one mode.
    mode = kernels.current_mode()
    border_adj = kernels.get("sssp_border_adjacency", mode)(lg)
    apply_updates = kernels.get("sssp_apply_updates", mode)
    relax_queues = kernels.get("sssp_relax", mode)
    # Labels for home and border nodes of every computation.
    dist = np.full((nsrc, lg.n_global), np.inf)
    queues: list[list[tuple[float, int]]] = [[] for _ in range(nsrc)]
    changed: set[tuple[int, int]] = set()  # (source k, home node)

    for k, src in enumerate(sources):
        if lg.is_home(src):
            dist[k, src] = 0.0
            heapq.heappush(queues[k], (0.0, src))
            changed.add((k, src))

    # True until the first superstep completes: everyone must take part in
    # at least one exchange so the source's initial work is visible.
    my_active = True
    first = True
    restored = bsp.resume_state()
    if restored is not None:
        # The graph/kernels above are deterministic recomputations; the
        # snapshot holds only the evolving state.  ``changed`` was
        # captured sorted so set insertion order — and therefore the
        # outgoing-record order below — replays identically.
        dist_r, queues_r, changed_r, my_active, first = restored
        dist = dist_r
        queues = [list(q) for q in queues_r]
        changed = set(changed_r)
    while True:
        # Captured before the inbox drain: update records delivered at
        # the barrier but not yet applied ride along in the runtime's
        # inbox snapshot, keeping the cut consistent.
        bsp.checkpoint(lambda: (dist.copy(), [list(q) for q in queues],
                                sorted(changed), my_active, first))
        # 1. Incoming border updates and peers' activity bits, both sent at
        #    the end of the previous superstep.  Update records are
        #    batched and applied by the kernel, which returns the
        #    border-scan work count to charge.
        peer_active = False
        batches: list[list[tuple[int, int, float]]] = []
        for pkt in bsp.packets():
            tag = pkt.payload[0]
            if tag == "act":
                peer_active = peer_active or pkt.payload[1]
            else:
                batches.append(pkt.payload[1])
        border_scans = apply_updates(border_adj, dist, queues, changed,
                                     batches)
        bsp.charge(float(border_scans))
        # Terminate exactly when the superstep that just ended was globally
        # idle: nobody held queued work or sent updates, so nothing can be
        # in flight.  Every processor reads the same bits, so all stop in
        # the same superstep.
        if not first and not my_active and not peer_active:
            break
        first = False

        # 2. Local relaxation, bounded by the work factor.
        scanned = relax_queues(lg, dist, queues, changed, work_factor)
        bsp.charge(float(scanned))

        # 3. Conservative outgoing updates + activity bit.
        outgoing: dict[int, list[tuple[int, int, float]]] = {}
        for k, u in changed:
            for q in lg.watchers(u).tolist():
                outgoing.setdefault(q, []).append((k, u, float(dist[k, u])))
        changed.clear()
        for q, records in outgoing.items():
            bsp.send(q, ("upd", records), h=H_UPDATE * len(records))
        my_active = bool(outgoing) or any(queues)
        for q in range(bsp.nprocs):
            if q != bsp.pid:
                bsp.send(q, ("act", my_active), h=H_FLAG)
        bsp.sync()

    rows = dist[:, lg.home] if len(lg.home) else dist[:, :0]
    return lg.home, rows


@dataclass(frozen=True)
class SsspResult:
    """Distance labels plus the run's BSP accounting."""

    dist: np.ndarray  # shape (n,) for SSSP, (K, n) for MSP
    stats: ProgramStats


def _run_engine(
    graph: Graph,
    owner: np.ndarray,
    nprocs: int,
    sources: Sequence[int],
    work_factor: int | None,
    backend: str,
    checkpoint: Any = None,
    retries: int = 0,
    sync: str = "strict",
) -> tuple[np.ndarray, ProgramStats]:
    for src in sources:
        if not 0 <= src < graph.n:
            raise ValueError(f"source {src} out of range({graph.n})")
    if work_factor is not None and work_factor < 1:
        raise ValueError(f"work_factor must be >= 1 or None, got {work_factor}")
    lg_all = [LocalGraph.build(graph, owner, pid, nprocs) for pid in range(nprocs)]
    run = bsp_run(
        sssp_program,
        nprocs,
        backend=backend,
        args=(lg_all, list(sources), work_factor),
        checkpoint=checkpoint,
        retries=retries,
        sync=sync,
    )
    dist = np.full((len(sources), graph.n), np.inf)
    for home, rows in run.results:
        if len(home):
            dist[:, home] = rows
    return dist, run.stats


def bsp_sssp(
    graph: Graph,
    owner: np.ndarray,
    nprocs: int,
    source: int = 0,
    *,
    work_factor: int | None = DEFAULT_WORK_FACTOR,
    backend: str = "simulator",
    checkpoint: Any = None,
    retries: int = 0,
    sync: str = "strict",
) -> SsspResult:
    """Single-source shortest paths (Section 3.4).

    ``work_factor=None`` selects the paper's rejected naive variant
    (drain the queue completely each superstep).  ``checkpoint`` /
    ``retries`` enable per-superstep snapshots and crash resume (see
    :func:`~repro.core.runtime.bsp_run`).
    """
    dist, stats = _run_engine(
        graph, owner, nprocs, [source], work_factor, backend,
        checkpoint=checkpoint, retries=retries, sync=sync,
    )
    return SsspResult(dist=dist[0], stats=stats)


def bsp_msp(
    graph: Graph,
    owner: np.ndarray,
    nprocs: int,
    sources: Sequence[int],
    *,
    work_factor: int | None = DEFAULT_WORK_FACTOR,
    backend: str = "simulator",
    checkpoint: Any = None,
    retries: int = 0,
    sync: str = "strict",
) -> SsspResult:
    """Multiple simultaneous shortest paths (Section 3.5).

    The paper's experiments use 25 sources on the same G(δ) inputs as
    Section 3.4; the graph is shared read-only state, and per-source
    read-write state is O(|V|).
    """
    if not sources:
        raise ValueError("msp needs at least one source")
    dist, stats = _run_engine(
        graph, owner, nprocs, list(sources), work_factor, backend,
        checkpoint=checkpoint, retries=retries, sync=sync,
    )
    return SsspResult(dist=dist, stats=stats)
