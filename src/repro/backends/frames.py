"""Batched zero-copy boundary frames for the process backend.

The paper's central claim about superstep discipline is that it lets the
library "combine messages and schedule the total exchange" (Section 1).
This module is that combining layer for the process backend: instead of
pickling a Python ``list[Packet]`` per peer — one reduce call and one
payload copy per packet — each per-destination bucket crosses the process
boundary as **one frame**:

* a small pickled *header* ``(tag, run_id, step, src, mode, buffer
  lengths, slab offset, meta, more, extra)`` — one pipe message per
  frame; ``extra`` carries the zero-copy plane's lease entries and
  piggybacked lease releases (``None`` for purely small frames);
* the *meta* blob riding the header: the packets' ``seq``/``h`` arrays
  plus their payloads, serialized once with pickle protocol 5 so that
  large contiguous buffers (NumPy halos, Cannon blocks, essential trees)
  are split out as out-of-band buffers instead of being copied into the
  pickle stream;
* the out-of-band *buffers* themselves, which travel through a
  fork-shared anonymous ``mmap`` ring (the *slab*) — sender memcpys each
  buffer into the destination's slab, receiver copies it back out into a
  writable ``bytearray`` and reconstructs the arrays over it with
  ``pickle.loads(meta, buffers=...)``.  Two memcpys total, no pickle
  stream ever contains the payload bytes, and no pipe write is ever
  larger than the metadata.

Buffers at or above the zero-copy threshold (default 64 KiB, see
:mod:`repro.backends.shm`) skip the slab entirely: the sender memcpys
them into a leased shared-memory segment region and the receiver's
payload is reconstructed directly over the shared pages — one copy end
to end, and the receive-side copy of the slab path disappears.  The
slab/pipe machinery below still moves the (small) remainder of such
frames.

Frames whose buffers total more than **half** the slab capacity fall back
to dedicated pipe messages (``Connection.send_bytes`` straight from the
source memoryview), which is still copy-minimal, just slower than shared
memory.  Half, not all: allocations never straddle the wrap point, so a
frame needs up to ``nbytes`` of wasted padding in the worst case — only
``nbytes <= capacity // 2`` guarantees the ring can always satisfy the
request once the receiver drains.

The slab is a single-consumer ring: 8-byte *logical* head/tail counters
live in the first cache line of the mapping (head advanced only by the
owning receiver, tail only by senders holding the destination's lock, so
each word has exactly one writer; aligned 8-byte loads/stores are atomic
on every platform we fork on).  Because slab regions are allocated under
the same per-destination lock that orders the pipe messages, frames are
consumed in exactly allocation order and the receiver frees by bumping
head past each consumed frame — padding skipped at the wrap point is
reclaimed implicitly.

Everything here is transport: h-unit accounting is carried through
byte-for-byte (``seq`` and ``h`` ride the frame metadata), so ledgers are
identical to the per-packet implementation's.
"""

from __future__ import annotations

import mmap
import pickle
import sys
import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from .. import faults
from ..core.errors import SynchronizationError
from ..core.packets import Packet
from . import shm

#: Frame tags.  TAG_RELEASE carries zero-copy lease ids back to the
#: segment owner when no data frame is owed to piggyback them on.
TAG_PKT, TAG_LEFT, TAG_DEAD, TAG_FENCE, TAG_RELEASE = 0, 1, 2, 3, 4

#: Buffer transport modes.
_MODE_SLAB, _MODE_PIPE = 0, 1

#: Slab buffer alignment (one cache line).
_ALIGN = 64

#: Offset of the data region (head/tail counters live below).
_DATA_OFF = 64

#: Default slab capacity per destination processor.
DEFAULT_SLAB_BYTES = 64 << 20


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class _RecvPool:
    """Recycled receive buffers, reclaimed once every consumer drops them.

    Each received out-of-band buffer becomes the backing store of the
    reconstructed payload (e.g. a NumPy array's base), so it cannot be
    reused while the program still holds that payload.  The pool therefore
    keeps a permanent reference to every buffer it hands out and recycles
    one only when its refcount shows no outside holders — repeated
    steady-state exchanges then stop paying the allocator's page-fault
    churn for multi-megabyte buffers (~3x on the receive copy).
    """

    _MAX_BUFS = 64
    _MAX_BYTES = 256 << 20

    __slots__ = ("_bufs", "_bytes")

    def __init__(self) -> None:
        self._bufs: list[bytearray] = []
        self._bytes = 0

    def take(self, nbytes: int) -> bytearray:
        if nbytes:
            for buf in self._bufs:
                # pool list + loop variable + getrefcount argument == 3 on
                # refcounting CPython: nothing else (no memoryview export,
                # no array base) holds the buffer, so its bytes may be
                # overwritten.  ``<=`` (not ``==``) so interpreters where
                # getrefcount reports something larger — free-threaded
                # builds, immortalization — merely disable recycling and
                # fall through to a fresh allocation, never corrupt a
                # buffer a consumer still holds.
                if len(buf) == nbytes and sys.getrefcount(buf) <= 3:
                    return buf
        buf = bytearray(nbytes)
        if nbytes and len(self._bufs) < self._MAX_BUFS \
                and self._bytes + nbytes <= self._MAX_BYTES:
            self._bufs.append(buf)
            self._bytes += nbytes
        return buf


class Slab:
    """Fork-shared single-consumer ring buffer for frame payloads.

    ``alloc``/``write`` are the sender side and must be called holding the
    destination's transport lock; ``read_copy``/``free_to`` are the
    receiver side and need no lock (one consumer per slab).  Offsets are
    *logical* (monotonically increasing); the physical position is
    ``offset % capacity`` and allocations never straddle the wrap point.
    """

    def __init__(self, capacity: int = DEFAULT_SLAB_BYTES, *,
                 spin_timeout: float = 120.0):
        if capacity % mmap.PAGESIZE:
            capacity = _aligned(capacity) + mmap.PAGESIZE - (
                _aligned(capacity) % mmap.PAGESIZE or mmap.PAGESIZE)
        self.capacity = capacity
        #: Largest frame alloc() is guaranteed to eventually satisfy:
        #: wrap padding can cost up to another ``nbytes``, so anything
        #: over half the ring may exceed capacity depending on where the
        #: tail sits.  Callers route bigger frames through the pipe path.
        self.max_frame = capacity // 2
        self._spin_timeout = spin_timeout
        self._mm = mmap.mmap(-1, _DATA_OFF + capacity)
        self._view = memoryview(self._mm)
        #: [0] = head (receiver-owned), [1] = tail (sender-owned, locked).
        self._ctrl = self._view[:16].cast("Q")
        self._data = self._view[_DATA_OFF:]

    # -- sender side (destination lock held) -------------------------------

    def alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes`` contiguous bytes; returns the logical offset.

        Spin-waits (with backoff) while the ring lacks room — the receiver
        frees space as it drains its pipe, which it is guaranteed to be
        doing whenever senders are pushing boundary frames.
        """
        tail = self._ctrl[1]
        room_to_end = self.capacity - (tail % self.capacity)
        pad = 0 if nbytes <= room_to_end else room_to_end
        need = nbytes + pad
        if need > self.capacity:
            # Even a fully drained ring holds at most ``capacity`` bytes,
            # so waiting could never succeed: fail fast instead of
            # spinning out the whole timeout.  send_packets() keeps this
            # unreachable by capping slab frames at ``max_frame``.
            raise ValueError(
                f"frame of {nbytes} bytes (+{pad} wrap padding) can never "
                f"fit the {self.capacity}-byte slab; frames over "
                f"max_frame={self.max_frame} bytes must use the pipe path")
        deadline = None
        spins = 0
        while self._ctrl[0] + self.capacity - tail < need:
            if deadline is None:
                deadline = time.monotonic() + self._spin_timeout
            elif time.monotonic() > deadline:
                raise SynchronizationError(
                    "timed out waiting for slab space (receiver not "
                    "draining its boundary exchange?)")
            spins += 1
            time.sleep(0 if spins < 32 else 0.0001)
        self._ctrl[1] = tail + need
        return tail + pad

    def write(self, offset: int, buf: Any) -> None:
        phys = offset % self.capacity
        n = memoryview(buf).nbytes
        self._data[phys:phys + n] = buf

    # -- receiver side ------------------------------------------------------

    def read_copy(self, offset: int, nbytes: int) -> bytearray:
        phys = offset % self.capacity
        return bytearray(self._data[phys:phys + nbytes])

    def read_into(self, offset: int, nbytes: int, out: bytearray) -> None:
        phys = offset % self.capacity
        out[:] = self._data[phys:phys + nbytes]

    # -- either side ---------------------------------------------------------

    def prefault(self, max_bytes: int | None = None) -> None:
        """Touch pages so forked children only take minor faults.

        The mapping is shared anonymous memory: pages first touched here
        are the very pages every worker sees, so prefaulting in the parent
        (before forking a pool) moves the zero-fill cost out of the first
        exchange.  ``max_bytes`` bounds how much of the data region is
        committed up-front; pages beyond it fault lazily the first time a
        frame actually lands there, so small-message workloads never pay
        resident memory for ring capacity they never use.
        """
        view = self._view if max_bytes is None else \
            self._view[:min(len(self._view), _DATA_OFF + max_bytes)]
        pages = len(view[::mmap.PAGESIZE])
        view[::mmap.PAGESIZE] = bytes(pages)

    def free_to(self, offset: int) -> None:
        """Mark everything up to logical ``offset`` consumed."""
        self._ctrl[0] = offset

    def reset(self) -> None:
        """Drop all in-ring data (head := tail).

        Only safe when the fabric is quiescent — e.g. right after a
        pool-heal fence, when any region still "allocated" belongs to a
        frame whose header never made it into a pipe (its sender died
        mid-push) and would otherwise leak ring space forever.
        """
        self._ctrl[0] = self._ctrl[1]

    def close(self) -> None:
        self._ctrl.release()
        self._data.release()
        self._view.release()
        self._mm.close()


@dataclass
class Frame:
    """One received boundary frame, payload still undecoded.

    ``more`` is the relaxed-sync piggyback bit: 0 marks the *final*
    frame from ``src`` for this superstep (nothing more is coming on
    this link), 1 means further frames follow.  Strict-mode frames all
    carry 0 — there is exactly one data frame per link per boundary.

    ``seq``/``ack`` are the TCP wire envelope's link-sequencing fields
    (see :mod:`repro.backends.tcp_wire`): ``seq`` is this frame's
    per-link sequence number, ``ack`` the sender's cumulative receive
    position on the reverse direction.  Pipe-fabric frames never set
    them; ``-1`` means "unsequenced".

    ``stale`` is set by ``recv`` when a zero-copy lease in the frame
    predates a reset of its sender's segment pool: the bytes may alias a
    newer lease, so a channel that matches the frame to its current run
    must fail loudly instead of delivering it.
    """

    tag: int
    run_id: int
    step: int
    src: int
    meta: bytes | None
    buffers: list[bytearray] | None
    more: int = 0
    seq: int = -1
    ack: int = -1
    stale: int = 0

    def packets(self, dst: int) -> list[Packet]:
        """Decode into :class:`Packet` objects addressed to ``dst``."""
        assert self.meta is not None
        seqs, hs, payloads = pickle.loads(self.meta, buffers=self.buffers)
        src = self.src
        return [
            Packet(src=src, dst=dst, payload=payload, h=h, seq=seq)
            for seq, h, payload in zip(seqs, hs, payloads)
        ]


def encode_packets(packets: Sequence[Packet]) -> tuple[bytes, list[memoryview]]:
    """Combine one per-destination bucket into (meta, out-of-band buffers).

    ``meta`` is a protocol-5 pickle of ``(seqs, hs, payloads)``; large
    contiguous payload buffers are extracted out-of-band and returned as
    raw memoryviews (no intermediate copy).
    """
    pbufs: list[pickle.PickleBuffer] = []
    meta = pickle.dumps(
        ([p.seq for p in packets], [p.h for p in packets],
         [p.payload for p in packets]),
        protocol=5, buffer_callback=pbufs.append,
    )
    buffers = []
    for pb in pbufs:
        try:
            buffers.append(pb.raw())
        except BufferError:  # non-contiguous exporter: fall back to a copy
            buffers.append(memoryview(memoryview(pb).tobytes()))
    return meta, buffers


def decode_packets(meta: bytes, buffers: list[bytearray] | None,
                   src: int, dst: int) -> list[Packet]:
    """Inverse of :func:`encode_packets` (writable buffers => writable arrays)."""
    return Frame(TAG_PKT, 0, 0, src, meta, buffers).packets(dst)


class FrameTransport:
    """All-to-all frame fabric: per-pid pipe + writer lock + shared slab.

    Created by the parent before forking; every worker inherits the whole
    fabric and uses ``recv_conns[pid]``/``slabs[pid]`` as its inbound side
    and ``send(dst, ...)`` (lock-protected) for outbound frames.
    """

    def __init__(self, nprocs: int, ctx, *,
                 slab_bytes: int = DEFAULT_SLAB_BYTES,
                 spin_timeout: float = 120.0):
        self.nprocs = nprocs
        self._recv_conns = []
        self._send_conns = []
        self._locks = [ctx.Lock() for _ in range(nprocs)]
        self._slabs = [
            Slab(slab_bytes, spin_timeout=spin_timeout) if slab_bytes else None
            for _ in range(nprocs)
        ]
        #: Per-destination receive-buffer recycler (used post-fork, so each
        #: worker only ever touches its own pid's pool).
        self._pools = [_RecvPool() for _ in range(nprocs)]
        #: Fork-shared heartbeat counters, one 8-byte slot per worker,
        #: bumped by its owner at every superstep boundary.  Single writer
        #: per slot; aligned 8-byte stores are atomic on every platform we
        #: fork on.  Supervisors read them to tell "slow but alive" from
        #: "dead" and "deadlocked".
        self._hb_mm = mmap.mmap(-1, max(8 * nprocs, mmap.PAGESIZE))
        self._hb = memoryview(self._hb_mm).cast("Q")
        #: Fork-shared relaxed-sync epochs: one 8-byte slot per worker
        #: holding ``(run_id << 32) | completed_boundaries`` — published by
        #: its owner *after* all its boundary frames for a superstep are
        #: in the pipes, so a peer observing the epoch can drain its pipe
        #: non-blockingly and is guaranteed to find every frame for that
        #: superstep.  Same single-writer atomicity argument as ``_hb``.
        #: Strict-mode runs never touch these slots.
        self._ep_mm = mmap.mmap(-1, max(8 * nprocs, mmap.PAGESIZE))
        self._ep = memoryview(self._ep_mm).cast("Q")
        #: Wakes epoch waiters without polling: publishers notify under
        #: this fork-shared condition, so a boundary wait is a blocking
        #: kernel wait, not a spin — essential on few-core hosts, where
        #: spinning steals the CPU from the very peer being waited for.
        self._ep_cond = ctx.Condition()
        for _ in range(nprocs):
            r, w = ctx.Pipe(duplex=False)
            self._recv_conns.append(r)
            self._send_conns.append(w)
        # -- zero-copy data plane (repro.backends.shm) ----------------------
        # Env knobs are read here, in the parent, before forking, so every
        # worker of one fabric agrees on them.
        self._zc_enabled = shm.zerocopy_enabled()
        self._zc_threshold = shm.zerocopy_threshold()
        self._zc_token = shm.fabric_token()
        #: Fork-shared per-src count of segments ever created: all the
        #: parent needs to sweep a (possibly SIGKILLed) worker's segments
        #: by deterministic name.  Single writer per slot (the owner).
        self._segc_mm = mmap.mmap(-1, max(8 * nprocs, mmap.PAGESIZE))
        self._segc = memoryview(self._segc_mm).cast("Q")
        #: Fork-shared zerocopy telemetry: slot ``2*src`` counts buffers
        #: that took a segment lease, ``2*src + 1`` buffers big enough
        #: but routed through slab/pipe (REPRO_ZEROCOPY=off or a pool
        #: failure).  Surfaced by ``BspPool.health()``.
        self._zc_mm = mmap.mmap(-1, max(16 * nprocs, mmap.PAGESIZE))
        self._zc = memoryview(self._zc_mm).cast("Q")
        #: Post-fork, lazily built, per-process state: each worker only
        #: ever touches its own pid's slot.  ``False`` marks a pool whose
        #: creation failed (no /dev/shm): big buffers then fall back.
        self._seg_pools: list[Any] = [None] * nprocs
        self._seg_maps: list[shm.SegmentMap | None] = [None] * nprocs
        self._lease_tables: list[shm.LeaseTable | None] = [None] * nprocs
        #: Per-src broadcast dedup: ``((run_id, step), {data_ptr: (pin,
        #: name, offset, nbytes, lease_id)})``.  A payload sent to p-1
        #: peers is copied into its segment once; the other p-2 frames
        #: carry aliased leases over the same bytes.  The pinned buffer
        #: keeps the exporting array's memory alive, so a data pointer
        #: cannot be recycled while its cache entry exists.
        self._dedup: list[Any] = [None] * nprocs

    # -- zero-copy data plane ------------------------------------------------

    def _seg_pool(self, src: int) -> shm.SegmentPool | None:
        pool = self._seg_pools[src]
        if pool is None:
            try:
                pool = shm.SegmentPool(self._zc_token, src, self._segc)
            except OSError:  # pragma: no cover - /dev/shm unavailable
                pool = False
            self._seg_pools[src] = pool
        return pool or None

    def _lease_table(self, pid: int) -> shm.LeaseTable:
        table = self._lease_tables[pid]
        if table is None:
            table = self._lease_tables[pid] = shm.LeaseTable()
        return table

    def _seg_map(self, pid: int) -> shm.SegmentMap:
        seg_map = self._seg_maps[pid]
        if seg_map is None:
            seg_map = self._seg_maps[pid] = shm.SegmentMap()
        return seg_map

    def collect_releases(self, pid: int, *,
                         discard: bool = False) -> dict[int, list[int]]:
        """Reap ``pid``'s no-longer-referenced inbound leases, per src.

        Called at each superstep boundary; the ids ride back to their
        segment owners on this boundary's outgoing frames.  ``discard``
        (TORN_LEASE fault) drops them instead — the owner's pool must
        then grow, never corrupt, and teardown's sweep still reclaims
        the segments.
        """
        table = self._lease_tables[pid]
        if table is None:
            return {}
        freed = table.collect_free()
        return {} if discard else freed

    def leak_segment(self, pid: int) -> None:
        """LEAK_SEGMENT fault hook: create a segment only the sweep can
        reclaim."""
        pool = self._seg_pool(pid)
        if pool is not None:
            pool.leak()

    def reset_segments(self, pid: int) -> None:
        """Fence ``pid``'s zero-copy state: rewind the pool (generation
        bump) and forget inbound leases of the dead run."""
        pool = self._seg_pools[pid]
        if pool not in (None, False):
            pool.reset()
        table = self._lease_tables[pid]
        if table is not None:
            table.clear()

    def zerocopy_stats(self) -> tuple[int, int]:
        """Fabric-wide (lease hits, threshold-crossing fallbacks)."""
        hits = sum(self._zc[2 * pid] for pid in range(self.nprocs))
        fallbacks = sum(self._zc[2 * pid + 1] for pid in range(self.nprocs))
        return int(hits), int(fallbacks)

    def segment_counts(self) -> dict[int, int]:
        """Per-src segments ever created (parent-side sweep input)."""
        return {pid: int(self._segc[pid]) for pid in range(self.nprocs)}

    def sweep_segments(self, pids: Sequence[int] | None = None) -> int:
        """Unlink segments created by ``pids`` (default: everyone).

        Parent-side only: on full teardown/rebuild every name goes; on a
        partial heal only the dead workers' — survivors' pools stay
        live.  Unlinking never invalidates a live mapping, so receivers
        still holding views into a dead sender's segment are unaffected.
        """
        counts = self.segment_counts()
        if pids is not None:
            counts = {pid: counts.get(pid, 0) for pid in pids}
        return shm.sweep_segments(self._zc_token, counts)

    # -- supervision ---------------------------------------------------------

    def beat(self, pid: int) -> None:
        """Advance ``pid``'s heartbeat (called by the owning worker only)."""
        self._hb[pid] += 1

    def heartbeat(self, pid: int) -> int:
        """Current heartbeat count of ``pid`` (supervisor side)."""
        return self._hb[pid]

    def heartbeats(self) -> list[int]:
        """Snapshot of every worker's heartbeat counter."""
        return [self._hb[pid] for pid in range(self.nprocs)]

    # -- relaxed-sync epochs -------------------------------------------------

    def set_epoch(self, pid: int, value: int, n: int | None = None, *,
                  notify: bool = False) -> None:
        """Publish ``pid``'s epoch word (owning worker only).

        Must be called only after every boundary frame the worker owed
        for the superstep has been written to the pipes — the store is
        the release that lets peers drain without blocking.

        Waiter wakeups are *completion-triggered*: with ``n`` given,
        waiters are notified only when this store makes every worker in
        ``range(n)`` reach ``value`` — i.e. by the last publisher of a
        boundary — so each waiter wakes once per boundary instead of
        once per publish (p-1 spurious scheduler wakeups per boundary
        otherwise, which on few-core hosts costs more than the barrier
        itself).  ``notify=True`` forces a wakeup regardless (departure
        sentinels, which satisfy waits mid-boundary).
        """
        with self._ep_cond:
            self._ep[pid] = value
            if notify or (n is not None and all(
                    self._ep[q] >= value for q in range(n))):
                self._ep_cond.notify_all()

    def epoch(self, pid: int) -> int:
        """Current epoch word of ``pid`` (any reader)."""
        return self._ep[pid]

    def wait_epochs(self, pids, target: int, departed, timeout: float) -> bool:
        """Block until every ``pid`` in ``pids`` is departed or has an
        epoch word >= ``target``; ``False`` on timeout.

        The satisfied-check runs under the same condition the publishers
        notify, so a store between check and wait cannot be missed.  The
        caller still needs a bounded ``timeout``: departures and aborts
        arrive as pipe frames, which do not notify this condition.
        """
        with self._ep_cond:
            if all(p in departed or self._ep[p] >= target for p in pids):
                return True
            self._ep_cond.wait(timeout)
            return all(p in departed or self._ep[p] >= target for p in pids)

    def locks_free(self, timeout: float = 0.25) -> bool:
        """True when every per-destination writer lock is acquirable.

        A lock that cannot be acquired means some sender — possibly a
        dead one — is wedged mid-frame; partial pool healing is unsafe
        then and the caller must rebuild the whole fabric.
        """
        for lock in self._locks:
            if not lock.acquire(timeout=timeout):
                return False
            lock.release()
        return True

    def reset_slabs(self) -> None:
        """Drop leaked slab regions (safe only on a quiescent fabric)."""
        for slab in self._slabs:
            if slab is not None:
                slab.reset()

    def prefault(self, max_bytes: int | None = None) -> None:
        """Pre-touch slab pages (call in the parent, before forking).

        ``max_bytes`` caps the committed prefix per slab; ``None`` faults
        every page in.
        """
        for slab in self._slabs:
            if slab is not None:
                slab.prefault(max_bytes)

    # -- sending ------------------------------------------------------------

    def send_control(self, dst: int, tag: int, run_id: int, src: int,
                     step: int = -1) -> None:
        header = pickle.dumps(
            (tag, run_id, step, src, _MODE_PIPE, (), 0, None, 0, None))
        with self._locks[dst]:
            self._send_conns[dst].send_bytes(header)

    def send_release(self, dst: int, run_id: int, src: int,
                     lease_ids: Sequence[int]) -> None:
        """Return lease ids to segment owner ``dst`` on a control frame.

        Only used when no data frame to ``dst`` is owed this boundary
        (relaxed sync with an empty bucket); otherwise releases piggyback
        on the boundary frame for free.
        """
        header = pickle.dumps(
            (TAG_RELEASE, run_id, -1, src, _MODE_PIPE, (), 0, None, 0,
             tuple(lease_ids)))
        with self._locks[dst]:
            self._send_conns[dst].send_bytes(header)

    def send_packets(self, dst: int, run_id: int, step: int, src: int,
                     packets: Sequence[Packet], *, more: int = 0,
                     releases: Sequence[int] = ()) -> None:
        # Fault-injection hook: one attribute load + None test per frame
        # (never per packet) when disabled.
        plan = faults._ACTIVE
        if plan is not None:
            if plan.drops_frame(src, step, dst):
                return
            plan.count_frame(src)
        meta, buffers = encode_packets(packets)
        # Zero-copy placement: buffers at or above the threshold go into
        # leased shared-memory regions (one sender memcpy, no receiver
        # copy); the frame carries only (index, name, offset, nbytes,
        # lease id).  Leasing happens before the destination lock — the
        # pool belongs to this sender alone.
        entries: tuple = ()
        rel = tuple(releases)
        extra = None
        if buffers:
            threshold = self._zc_threshold
            big = [i for i, mv in enumerate(buffers)
                   if mv.nbytes >= threshold]
            if big:
                pool = self._seg_pool(src) if self._zc_enabled else None
                if pool is not None:
                    cache = self._dedup[src]
                    if cache is None or cache[0] != (run_id, step):
                        cache = self._dedup[src] = ((run_id, step), {})
                    seen = cache[1]
                    placed = []
                    for i in big:
                        mv = buffers[i]
                        key = (np.frombuffer(mv, np.uint8).ctypes.data,
                               mv.nbytes)
                        hit = seen.get(key)
                        alias = pool.alias(hit[4]) if hit is not None \
                            else None
                        if alias is not None:
                            # Same bytes, another destination: no copy.
                            placed.append((i, hit[1], hit[2], hit[3], alias))
                            continue
                        lease_id, name, offset, region = pool.lease(
                            dst, mv.nbytes)
                        region[:] = mv
                        placed.append((i, name, offset, mv.nbytes, lease_id))
                        seen[key] = (mv, name, offset, mv.nbytes, lease_id)
                    entries = tuple(placed)
                    self._zc[2 * src] += len(big)
                    big_set = set(big)
                    buffers = [mv for i, mv in enumerate(buffers)
                               if i not in big_set]
                else:
                    self._zc[2 * src + 1] += len(big)
        if entries or rel:
            generation = self._seg_pools[src].generation if entries else 0
            extra = (generation, entries, rel)
        lens = tuple(mv.nbytes for mv in buffers)
        total = sum(map(_aligned, lens))
        slab = self._slabs[dst]
        use_slab = slab is not None and 0 < total <= slab.max_frame
        conn = self._send_conns[dst]
        # The header carries the (small) meta blob too: one pipe message —
        # hence one reader wake-up — per slab frame.
        with self._locks[dst]:
            if use_slab:
                start = slab.alloc(total)
                offset = start
                for mv, n in zip(buffers, lens):
                    slab.write(offset, mv)
                    offset += _aligned(n)
                conn.send_bytes(pickle.dumps(
                    (TAG_PKT, run_id, step, src, _MODE_SLAB, lens, start,
                     meta, more, extra)))
            else:
                conn.send_bytes(pickle.dumps(
                    (TAG_PKT, run_id, step, src, _MODE_PIPE, lens, 0, meta,
                     more, extra)))
                for mv in buffers:
                    conn.send_bytes(mv)

    # -- receiving ----------------------------------------------------------

    def try_recv(self, pid: int) -> Frame | None:
        """Non-blocking :meth:`recv`: ``None`` when no frame is ready.

        Used by the relaxed-sync drain loop, which polls its own pipe
        while spinning on peers' epoch words instead of blocking on
        either.
        """
        if not self._recv_conns[pid].poll(0):
            return None
        return self.recv(pid)

    def recv(self, pid: int) -> Frame:
        """Block for the next frame addressed to ``pid``.

        Slab regions are copied out and freed *here*, unconditionally, so
        discarding a stale frame (old ``run_id``) cannot leak ring space.
        """
        conn = self._recv_conns[pid]
        (tag, run_id, step, src, mode, lens, start, meta, more,
         extra) = pickle.loads(conn.recv_bytes())
        if tag == TAG_RELEASE:
            # Lease ids coming home: applied at transport level, whatever
            # run they belong to — ids are monotonic and unknown ids are
            # ignored, so a stale release can never free a live region.
            seg_pool = self._seg_pools[pid]
            if seg_pool not in (None, False) and extra:
                seg_pool.release(extra)
            return Frame(tag, run_id, step, src, None, None, more)
        if tag != TAG_PKT:
            return Frame(tag, run_id, step, src, None, None, more)
        buffers: list[Any] = []
        pool = self._pools[pid]
        if mode == _MODE_SLAB:
            slab = self._slabs[pid]
            assert slab is not None
            offset = start
            for n in lens:
                buf = pool.take(n)
                slab.read_into(offset, n, buf)
                buffers.append(buf)
                offset += _aligned(n)
            slab.free_to(offset)
        else:
            for n in lens:
                buf = pool.take(n)
                if n:
                    conn.recv_bytes_into(buf)
                else:
                    conn.recv_bytes()  # zero-length message, nothing to copy
                buffers.append(buf)
        stale = 0
        if extra is not None:
            generation, entries, rel = extra
            if rel:
                seg_pool = self._seg_pools[pid]
                if seg_pool not in (None, False):
                    seg_pool.release(rel)
            if entries:
                # Zero-copy delivery: map each leased region (attach is
                # cached per segment) and splice the per-lease exporters
                # into the buffer list at their original indices — the
                # reconstructed payloads are then backed by the shared
                # pages themselves, no receive-side copy.
                table = self._lease_table(pid)
                seg_map = self._seg_map(pid)
                full: list[Any] = [None] * (len(lens) + len(entries))
                for index, name, offset, nbytes, lease_id in entries:
                    region = seg_map.region(name, offset, nbytes)
                    if table.register(src, lease_id, generation, region):
                        stale = 1
                    full[index] = region
                small = iter(buffers)
                for j, slot in enumerate(full):
                    if slot is None:
                        full[j] = next(small)
                buffers = full
        return Frame(tag, run_id, step, src, meta, buffers, more,
                     stale=stale)

    def close(self) -> None:
        # Orphan sweep first: whoever closes the fabric (the parent, on
        # teardown/rebuild/KeyboardInterrupt) unlinks every segment any
        # worker ever created — counts survive worker death in the
        # fork-shared counter, so even SIGKILL mid-superstep leaks
        # nothing.  Live mappings elsewhere stay valid; only the names
        # go.
        try:
            self.sweep_segments()
        except (ValueError, OSError):  # pragma: no cover - already closed
            pass
        for seg_pool in self._seg_pools:
            if seg_pool not in (None, False):
                seg_pool.close()
        # Tables before maps: dropping the table's region exporters
        # releases their buffer exports, so the map's segments close
        # cleanly instead of lingering until garbage collection.
        for table in self._lease_tables:
            if table is not None:
                table.clear()
        for seg_map in self._seg_maps:
            if seg_map is not None:
                seg_map.close()
        for conn in (*self._recv_conns, *self._send_conns):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for slab in self._slabs:
            if slab is not None:
                try:
                    slab.close()
                except (BufferError, ValueError):  # pragma: no cover
                    pass
        try:
            self._hb.release()
            self._hb_mm.close()
        except (BufferError, ValueError):  # pragma: no cover
            pass
        try:
            self._ep.release()
            self._ep_mm.close()
        except (BufferError, ValueError):  # pragma: no cover
            pass
        try:
            self._segc.release()
            self._segc_mm.close()
            self._zc.release()
            self._zc_mm.close()
        except (BufferError, ValueError):  # pragma: no cover
            pass
