"""Rendezvous and mesh construction for the TCP backend (Appendix B.3).

The paper's PC-LAN version connects ``p`` processes — one per machine —
in a full TCP mesh before the program starts.  This module builds that
mesh.  Rank 0 is the *coordinator*: every other rank dials its well-known
address, announces the ``(host, port)`` of its own freshly bound listener,
and receives the complete peer table back.  The rendezvous connection
itself is kept as the mesh link ``0 <-> r`` (no reconnect), and the
remaining links follow one fixed rule — for every pair ``i < j``, rank
``j`` connects to rank ``i``'s listener — so each socket exists exactly
once and the handshake cannot deadlock.

Every handshake message carries a *token* chosen by whoever launched the
mesh; a mismatch means a stray client (or a stale mesh from an earlier
launch) dialed the port, and the connection is refused rather than
silently woven into the wrong machine.

Used two ways:

* :class:`~repro.backends.tcp.TcpBackend` forks ``p`` local ranks; the
  parent pre-binds the coordinator listener and rank 0 inherits it, so
  there is no window in which rank 1 can dial a port nobody owns.
* ``python -m repro.harness launch-tcp --rank r --coordinator host:port``
  starts one rank per invocation on real, separate machines; only the
  coordinator address must be known in advance.
"""

from __future__ import annotations

import random
import socket
import time

from ..core.errors import BspConfigError, SynchronizationError
from .tcp_wire import recv_msg, send_msg

#: listen() backlog; must cover every peer dialing at once.
_BACKLOG = 64

#: Message kinds of the (tiny, pickled) rendezvous handshake.
_HELLO = "hello"    # rank r -> coordinator: here is my listener address
_PEERS = "peers"    # coordinator -> rank r: the full rank -> address table
_LINK = "link"      # rank j -> rank i (i < j): mesh link handshake


def bind_listener(host: str, port: int = 0) -> socket.socket:
    """A listening TCP socket on ``(host, port)`` (``port=0``: ephemeral)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(_BACKLOG)
    return sock


def tune_mesh_socket(sock: socket.socket) -> None:
    """Apply the mesh socket options (B.3's latency/liveness knobs).

    ``TCP_NODELAY`` because boundary frames are latency-critical (Nagle
    would serialize the counts/release handshake); ``SO_KEEPALIVE`` so a
    peer whose *machine* vanishes — no FIN, no RST — eventually surfaces
    as a dead socket instead of an eternal stall.
    """
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)


def connect_retry(addr: tuple[str, int], deadline: float, *,
                  what: str = "rank listener") -> socket.socket:
    """Dial ``addr``, retrying refusals until ``deadline`` (monotonic).

    Ranks come up in arbitrary order, so the first dial frequently races
    the target's ``bind``; refusals inside the window are expected, not
    errors.  Backoff is exponential with full jitter — many ranks dial
    one listener at startup, and without jitter their retries stay in
    lockstep and hammer the backlog in bursts.  Past the deadline the
    failure is a :class:`SynchronizationError` naming the unreachable
    endpoint (``what``) and the budget that was spent waiting for it.
    """
    delay = 0.01
    start = time.monotonic()
    while True:
        try:
            sock = socket.create_connection(addr, timeout=max(
                0.1, deadline - time.monotonic()))
            tune_mesh_socket(sock)
            return sock
        except OSError as exc:
            if time.monotonic() + delay >= deadline:
                waited = time.monotonic() - start
                raise SynchronizationError(
                    f"could not reach {what} at {addr[0]}:{addr[1]} after "
                    f"{waited:.1f}s of retries (rendezvous budget spent; "
                    f"last error: {exc})"
                ) from exc
            time.sleep(delay * (0.5 + random.random() * 0.5))
            delay = min(delay * 2, 0.25)


def _accept_handshake(listener: socket.socket, kind: str, token: int,
                      deadline: float) -> tuple[socket.socket, tuple]:
    """Accept one connection whose first message is a valid ``kind``.

    Connections carrying the wrong token or message kind (port scanners,
    stale launches) are closed and the accept loop continues.
    """
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise SynchronizationError(
                f"rendezvous timed out waiting for a {kind!r} connection "
                f"on {listener.getsockname()}")
        listener.settimeout(remaining)
        try:
            sock, _ = listener.accept()
        except socket.timeout:
            continue
        try:
            msg = recv_msg(sock)
        except Exception:
            sock.close()
            continue
        if not (isinstance(msg, tuple) and len(msg) >= 2
                and msg[0] == kind and msg[1] == token):
            sock.close()
            continue
        tune_mesh_socket(sock)
        return sock, msg


def rendezvous_mesh(
    rank: int,
    nprocs: int,
    coordinator: tuple[str, int],
    *,
    token: int = 0,
    bind_host: str | None = None,
    coordinator_listener: socket.socket | None = None,
    timeout: float = 30.0,
) -> dict[int, socket.socket]:
    """Build this rank's side of the full mesh; returns ``peer -> socket``.

    ``coordinator`` is rank 0's well-known listener address.  Rank 0 may
    pass an already-bound ``coordinator_listener`` (the fork launcher
    pre-binds it in the parent); otherwise rank 0 binds it here.
    ``bind_host`` is the address non-coordinator listeners bind — this
    rank's own reachable interface on multi-host runs, defaulting to the
    coordinator's host (right whenever everything is one machine).
    """
    if not 0 <= rank < nprocs:
        raise BspConfigError(f"rank {rank} out of range({nprocs})")
    deadline = time.monotonic() + timeout
    mesh: dict[int, socket.socket] = {}
    if nprocs == 1:
        return mesh

    if rank == 0:
        listener = coordinator_listener or bind_listener(*coordinator)
        try:
            table: dict[int, tuple[str, int]] = {}
            # Phase 1: collect every rank's hello; the connection doubles
            # as the 0 <-> r mesh link.
            while len(mesh) < nprocs - 1:
                sock, msg = _accept_handshake(listener, _HELLO, token,
                                              deadline)
                _, _, peer, addr = msg
                if peer in mesh or not 0 < peer < nprocs:
                    sock.close()
                    continue
                mesh[peer] = sock
                table[peer] = addr
            # Phase 2: broadcast the complete table.
            for peer, sock in mesh.items():
                send_msg(sock, (_PEERS, token, table))
        finally:
            if coordinator_listener is None:
                listener.close()
        return mesh

    # Ranks 1..p-1: own listener for higher ranks, hello to rank 0.
    listener = bind_listener(bind_host if bind_host is not None
                             else coordinator[0])
    try:
        coord = connect_retry(coordinator, deadline,
                              what="coordinator (rank 0)")
        mesh[0] = coord
        send_msg(coord, (_HELLO, token, rank, listener.getsockname()))
        reply = recv_msg(coord)
        if not (isinstance(reply, tuple) and reply[0] == _PEERS
                and reply[1] == token):
            raise SynchronizationError(
                f"rank {rank}: malformed peer table from coordinator")
        table = reply[2]
        # Pair rule: for i < j, j dials i.  Dial the lower ranks...
        for peer in range(1, rank):
            sock = connect_retry(tuple(table[peer]), deadline,
                                 what=f"rank {peer} listener")
            send_msg(sock, (_LINK, token, rank))
            mesh[peer] = sock
        # ...and accept the higher ones.
        while len(mesh) < nprocs - 1:
            sock, msg = _accept_handshake(listener, _LINK, token, deadline)
            peer = msg[2]
            if peer in mesh or not rank < peer < nprocs:
                sock.close()
                continue
            mesh[peer] = sock
    finally:
        listener.close()
    return mesh


def parse_hostport(spec: str, default_port: int) -> tuple[str, int]:
    """``"host[:port]"`` -> ``(host, port)``."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        return spec, default_port
    try:
        return host, int(port)
    except ValueError as exc:
        raise BspConfigError(f"bad host:port spec {spec!r}") from exc
