"""Rendezvous and mesh construction for the TCP backend (Appendix B.3).

The paper's PC-LAN version connects ``p`` processes — one per machine —
in a full TCP mesh before the program starts.  This module builds that
mesh.  Rank 0 is the *coordinator*: every other rank dials its well-known
address, announces the ``(host, port)`` of its own freshly bound listener,
and receives the complete peer table back.  The rendezvous connection
itself is kept as the mesh link ``0 <-> r`` (no reconnect), and the
remaining links follow one fixed rule — for every pair ``i < j``, rank
``j`` connects to rank ``i``'s listener — so each socket exists exactly
once and the handshake cannot deadlock.

Every handshake message carries a *token* chosen by whoever launched the
mesh; a mismatch means a stray client (or a stale mesh from an earlier
launch) dialed the port, and the connection is refused rather than
silently woven into the wrong machine.

Used two ways:

* :class:`~repro.backends.tcp.TcpBackend` forks ``p`` local ranks; the
  parent pre-binds the coordinator listener and rank 0 inherits it, so
  there is no window in which rank 1 can dial a port nobody owns.
* ``python -m repro.harness launch-tcp --rank r --coordinator host:port``
  starts one rank per invocation on real, separate machines; only the
  coordinator address must be known in advance.

Survivable meshes (:func:`rendezvous_fabric`) additionally keep every
listener bound for the life of the mesh and remember the peer address
table, so a link that dies mid-run can be *re-dialed* (``_RELINK``
handshake, same pair rule) instead of tearing the run down.  Each mesh
*generation* — bumped when a dead rank is replaced — folds into the
wire token (:func:`fold_token`), so sockets and handshakes from a
previous generation are refused rather than silently woven back in.
"""

from __future__ import annotations

import dataclasses
import random
import socket
import time

from ..core.errors import BspConfigError, PacketError, SynchronizationError
from .tcp_wire import recv_msg, send_msg

#: listen() backlog; must cover every peer dialing at once.
_BACKLOG = 64

#: Message kinds of the (tiny, pickled) rendezvous handshake.
_HELLO = "hello"    # rank r -> coordinator: here is my listener address
_PEERS = "peers"    # coordinator -> rank r: the full rank -> address table
_LINK = "link"      # rank j -> rank i (i < j): mesh link handshake
_RELINK = "relink"  # rank j -> rank i (i < j): resume a dropped mesh link


def fold_token(token: int, generation: int) -> int:
    """The wire token for mesh ``generation`` under launch ``token``.

    Every handshake of generation ``g`` carries ``fold_token(token, g)``,
    so a straggler from generation ``g-1`` (a rank that missed the remesh,
    a half-open socket replaying old frames) fails the token check and is
    refused instead of silently joining the wrong epoch.  The fold is a
    fixed injective-enough mix — collisions would need a stray launch
    whose token differs by exactly a multiple of the prime, which the
    random launch tokens make vanishingly unlikely.
    """
    return ((token & 0x7FFFFFFF) * 1_000_003 + generation) & 0x7FFFFFFF


def bind_listener(host: str, port: int = 0) -> socket.socket:
    """A listening TCP socket on ``(host, port)`` (``port=0``: ephemeral)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(_BACKLOG)
    return sock


def tune_mesh_socket(sock: socket.socket) -> None:
    """Apply the mesh socket options (B.3's latency/liveness knobs).

    ``TCP_NODELAY`` because boundary frames are latency-critical (Nagle
    would serialize the counts/release handshake); ``SO_KEEPALIVE`` so a
    peer whose *machine* vanishes — no FIN, no RST — eventually surfaces
    as a dead socket instead of an eternal stall.
    """
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)


def connect_retry(addr: tuple[str, int], deadline: float, *,
                  what: str = "rank listener") -> socket.socket:
    """Dial ``addr``, retrying refusals until ``deadline`` (monotonic).

    Ranks come up in arbitrary order, so the first dial frequently races
    the target's ``bind``; refusals inside the window are expected, not
    errors.  Backoff is exponential with full jitter — many ranks dial
    one listener at startup, and without jitter their retries stay in
    lockstep and hammer the backlog in bursts.  Past the deadline the
    failure is a :class:`SynchronizationError` naming the unreachable
    endpoint (``what``) and the budget that was spent waiting for it.
    """
    delay = 0.01
    start = time.monotonic()
    while True:
        try:
            sock = socket.create_connection(addr, timeout=max(
                0.1, deadline - time.monotonic()))
            tune_mesh_socket(sock)
            return sock
        except OSError as exc:
            if time.monotonic() + delay >= deadline:
                waited = time.monotonic() - start
                raise SynchronizationError(
                    f"could not reach {what} at {addr[0]}:{addr[1]} after "
                    f"{waited:.1f}s of retries (rendezvous budget spent; "
                    f"last error: {exc})"
                ) from exc
            time.sleep(delay * (0.5 + random.random() * 0.5))
            delay = min(delay * 2, 0.25)


def _accept_handshake(listener: socket.socket, kind: str, token: int,
                      deadline: float) -> tuple[socket.socket, tuple]:
    """Accept one connection whose first message is a valid ``kind``.

    Connections carrying the wrong token or message kind (port scanners,
    stale launches) are closed and the accept loop continues.
    """
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise SynchronizationError(
                f"rendezvous timed out waiting for a {kind!r} connection "
                f"on {listener.getsockname()}")
        listener.settimeout(remaining)
        try:
            sock, _ = listener.accept()
        except socket.timeout:
            continue
        try:
            msg = recv_msg(sock)
        except Exception:
            sock.close()
            continue
        if not (isinstance(msg, tuple) and len(msg) >= 2
                and msg[0] == kind and msg[1] == token):
            sock.close()
            continue
        tune_mesh_socket(sock)
        return sock, msg


@dataclasses.dataclass
class MeshFabric:
    """One rank's view of a live mesh, with everything needed to heal it.

    Beyond the ``peer -> socket`` map that :func:`rendezvous_mesh`
    returns, the fabric keeps the rank's listener *bound* (so dropped
    links can be re-accepted at the same address), the peer address
    table (so dropped links can be re-dialed under the pair rule), and
    the ``(token, generation)`` pair that scopes every handshake to the
    current mesh epoch.
    """

    rank: int
    nprocs: int
    socks: dict[int, socket.socket]
    listener: socket.socket | None
    table: dict[int, tuple[str, int]]
    coordinator: tuple[str, int]
    token: int
    generation: int = 0
    bind_host: str | None = None

    def wire_token(self) -> int:
        return fold_token(self.token, self.generation)

    def dials(self, peer: int) -> bool:
        """Pair rule: the higher rank of a pair re-dials the lower."""
        return peer < self.rank

    def dial_addr(self, peer: int) -> tuple[str, int]:
        if peer == 0:
            return self.coordinator
        return tuple(self.table[peer])

    def close(self) -> None:
        for sock in self.socks.values():
            try:
                sock.close()
            except OSError:
                pass
        self.socks.clear()
        if self.listener is not None:
            try:
                self.listener.close()
            except OSError:
                pass
            self.listener = None


def relink_dial(fabric: MeshFabric, peer: int, rx_next: int,
                deadline: float) -> tuple[socket.socket, int]:
    """Re-dial ``peer``'s listener to resume a dropped mesh link.

    Sends ``(_RELINK, wire_token, rank, rx_next)`` and waits for the
    mirror reply; returns ``(socket, peer_rx_next)`` so the caller can
    replay its journal from the first frame the peer has not seen.
    """
    sock = connect_retry(fabric.dial_addr(peer), deadline,
                         what=f"rank {peer} listener (relink)")
    try:
        send_msg(sock, (_RELINK, fabric.wire_token(), fabric.rank, rx_next))
        sock.settimeout(max(0.1, deadline - time.monotonic()))
        reply = recv_msg(sock)
        if not (isinstance(reply, tuple) and len(reply) == 4
                and reply[0] == _RELINK
                and reply[1] == fabric.wire_token()
                and reply[2] == peer):
            raise SynchronizationError(
                f"rank {fabric.rank}: bad relink reply from rank {peer}")
        sock.settimeout(None)
        return sock, reply[3]
    except BaseException:
        sock.close()
        raise


def relink_accept(fabric: MeshFabric, sock: socket.socket,
                  rx_next_of, *,
                  handshake_timeout: float = 2.0) -> tuple[int, int] | None:
    """Vet one connection accepted on the fabric listener mid-run.

    Reads the dialer's ``_RELINK`` handshake, answers with this rank's
    own ``rx_next`` for that link, and returns ``(peer, peer_rx_next)``.
    Anything else — wrong token (stale generation), wrong kind, garbage —
    closes the socket and returns ``None``; the mesh loop just moves on.
    """
    try:
        sock.settimeout(handshake_timeout)
        msg = recv_msg(sock)
        if not (isinstance(msg, tuple) and len(msg) == 4
                and msg[0] == _RELINK
                and msg[1] == fabric.wire_token()):
            sock.close()
            return None
        peer = msg[2]
        if not (0 <= peer < fabric.nprocs and peer != fabric.rank
                and fabric.dials(peer) is False):
            # Only a higher rank may dial us (pair rule).
            sock.close()
            return None
        send_msg(sock, (_RELINK, fabric.wire_token(), fabric.rank,
                        rx_next_of(peer)))
        sock.settimeout(None)
        tune_mesh_socket(sock)
        return peer, msg[3]
    except Exception:
        try:
            sock.close()
        except OSError:
            pass
        return None


def rendezvous_fabric(
    rank: int,
    nprocs: int,
    coordinator: tuple[str, int],
    *,
    token: int = 0,
    generation: int = 0,
    bind_host: str | None = None,
    coordinator_listener: socket.socket | None = None,
    timeout: float = 30.0,
) -> MeshFabric:
    """Build this rank's side of the full mesh, keeping the listener.

    ``coordinator`` is rank 0's well-known listener address.  Rank 0 may
    pass an already-bound ``coordinator_listener`` (the fork launcher
    pre-binds it in the parent); otherwise rank 0 binds it here.
    ``bind_host`` is the address non-coordinator listeners bind — this
    rank's own reachable interface on multi-host runs, defaulting to the
    coordinator's host (right whenever everything is one machine).

    Unlike the plain :func:`rendezvous_mesh`, the returned
    :class:`MeshFabric` keeps every listener open so links can be
    re-established mid-run, and stamps the mesh with ``generation``
    (handshakes carry :func:`fold_token`\\ ``(token, generation)``).
    """
    if not 0 <= rank < nprocs:
        raise BspConfigError(f"rank {rank} out of range({nprocs})")
    wire = fold_token(token, generation)
    deadline = time.monotonic() + timeout
    mesh: dict[int, socket.socket] = {}

    if rank == 0:
        listener = coordinator_listener or bind_listener(*coordinator)
        table: dict[int, tuple[str, int]] = {}
        try:
            # Phase 1: collect every rank's hello; the connection doubles
            # as the 0 <-> r mesh link.
            while len(mesh) < nprocs - 1:
                try:
                    sock, msg = _accept_handshake(listener, _HELLO, wire,
                                                  deadline)
                except SynchronizationError as exc:
                    missing = sorted(set(range(1, nprocs)) - set(mesh))
                    raise SynchronizationError(
                        f"rendezvous timed out after {timeout:.1f}s: "
                        f"collected {len(mesh)}/{nprocs - 1} hellos, "
                        f"missing rank(s) {missing} (expected ranks "
                        f"1..{nprocs - 1} to dial "
                        f"{coordinator[0]}:{coordinator[1]})") from exc
                _, _, peer, addr = msg
                if peer in mesh or not 0 < peer < nprocs:
                    sock.close()
                    continue
                mesh[peer] = sock
                table[peer] = tuple(addr)
            # Phase 2: broadcast the complete table.
            for peer, sock in mesh.items():
                send_msg(sock, (_PEERS, wire, table))
        except BaseException:
            for sock in mesh.values():
                sock.close()
            if coordinator_listener is None:
                listener.close()
            raise
        return MeshFabric(rank, nprocs, mesh, listener, table,
                          coordinator, token, generation, bind_host)

    # Ranks 1..p-1: own listener for higher ranks, hello to rank 0.
    listener = bind_listener(bind_host if bind_host is not None
                             else coordinator[0])
    try:
        if nprocs > 1:
            # The hello itself is retried, not just the dial: during an
            # in-run heal the coordinator's listener stays bound across
            # generations, so an early dialer reaches a rank 0 that is
            # still finishing the previous epoch — its mid-run vetting
            # accepts and immediately closes the connection.  Keep
            # re-dialing until rank 0 is in the new rendezvous.
            while True:
                coord = connect_retry(coordinator, deadline,
                                      what="coordinator (rank 0)")
                try:
                    send_msg(coord, (_HELLO, wire, rank,
                                     listener.getsockname()))
                    reply = recv_msg(coord)
                    break
                except (PacketError, OSError) as exc:
                    coord.close()
                    if time.monotonic() + 0.05 >= deadline:
                        raise SynchronizationError(
                            f"rank {rank}: coordinator at "
                            f"{coordinator[0]}:{coordinator[1]} kept "
                            f"refusing the rendezvous hello (last error: "
                            f"{exc})") from exc
                    time.sleep(0.02 + random.random() * 0.03)
            mesh[0] = coord
            if not (isinstance(reply, tuple) and reply[0] == _PEERS
                    and reply[1] == wire):
                raise SynchronizationError(
                    f"rank {rank}: malformed peer table from coordinator")
            table = {peer: tuple(addr) for peer, addr in reply[2].items()}
            # Pair rule: for i < j, j dials i.  Dial the lower ranks...
            for peer in range(1, rank):
                sock = connect_retry(table[peer], deadline,
                                     what=f"rank {peer} listener")
                send_msg(sock, (_LINK, wire, rank))
                mesh[peer] = sock
            # ...and accept the higher ones.
            while len(mesh) < nprocs - 1:
                sock, msg = _accept_handshake(listener, _LINK, wire,
                                              deadline)
                peer = msg[2]
                if peer in mesh or not rank < peer < nprocs:
                    sock.close()
                    continue
                mesh[peer] = sock
        else:
            table = {}
    except BaseException:
        for sock in mesh.values():
            sock.close()
        listener.close()
        raise
    return MeshFabric(rank, nprocs, mesh, listener, table,
                      coordinator, token, generation, bind_host)


def rendezvous_mesh(
    rank: int,
    nprocs: int,
    coordinator: tuple[str, int],
    *,
    token: int = 0,
    bind_host: str | None = None,
    coordinator_listener: socket.socket | None = None,
    timeout: float = 30.0,
) -> dict[int, socket.socket]:
    """Build this rank's side of the full mesh; returns ``peer -> socket``.

    Compatibility wrapper over :func:`rendezvous_fabric` for callers that
    only want the sockets: the listener is closed, the address table
    dropped, and the mesh cannot heal (generation 0 semantics).
    """
    fabric = rendezvous_fabric(
        rank, nprocs, coordinator, token=token, generation=0,
        bind_host=bind_host, coordinator_listener=coordinator_listener,
        timeout=timeout)
    socks = dict(fabric.socks)
    fabric.socks.clear()         # keep the sockets out of fabric.close()
    if coordinator_listener is not None and rank == 0:
        fabric.listener = None   # caller owns the pre-bound listener
    fabric.close()
    return socks


def parse_hostport(spec: str, default_port: int) -> tuple[str, int]:
    """``"host[:port]"`` -> ``(host, port)``."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        return spec, default_port
    try:
        return host, int(port)
    except ValueError as exc:
        raise BspConfigError(f"bad host:port spec {spec!r}") from exc
