"""Backend protocol and shared routing logic.

A *backend* executes one BSP program on ``p`` virtual processors and
returns each processor's result plus its accounting ledger.  Three backends
ship with the library, mirroring the paper's three library versions:

* :mod:`~repro.backends.simulator` — deterministic serialized execution;
  the paper's "IPC single-processor simulation" used to measure work depth.
* :mod:`~repro.backends.threads` — one OS thread per virtual processor
  with double-buffered shared mailboxes (the shared-memory version, B.1).
* :mod:`~repro.backends.processes` — one OS process per virtual processor
  exchanging at superstep boundaries (the MPI/TCP versions, B.2/B.3).

All backends share :func:`route_packets`, so delivery semantics (and the
deterministic delivery order) are identical everywhere; a program debugged
on the simulator behaves bit-for-bit the same on the concurrent backends.
"""

from __future__ import annotations

import signal as _signal
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..core.errors import (
    BspConfigError,
    BspUsageError,
    DeadlockError,
    PoolExhaustedError,
    WorkerCrashError,
)
from ..core.packets import Packet, PacketRuns
from ..core.stats import VPLedger

#: The supervision exception taxonomy, re-exported so backend code (and
#: backend users) can import it from one place alongside the protocol.
__all__ = [
    "Backend",
    "BackendRun",
    "DeadlockError",
    "PoolExhaustedError",
    "Program",
    "SYNC_MODES",
    "WorkerCrashError",
    "WorkerStatus",
    "available_backends",
    "check_pattern_sends",
    "check_sync",
    "describe_workers",
    "get_backend",
    "register_backend",
    "route_packet_runs",
    "route_packets",
]

#: Signature of a user BSP program.
Program = Callable[..., Any]

#: Synchronization modes of the exchange protocol (DESIGN
#: "Synchronization modes").  ``strict`` is the two-phase barrier used
#: everywhere before this layer existed and remains the accounting
#: oracle; ``relaxed`` piggybacks completion on the data frames so a
#: processor passes ``bspSynch`` as soon as its own inbound frames are
#: complete; ``elide`` additionally skips the empty frames of peers
#: outside a declared :class:`~repro.bsplib.CommPattern`.
SYNC_MODES = ("strict", "relaxed", "elide")


def check_sync(sync: str) -> str:
    """Validate a synchronization-mode name; returns it unchanged."""
    if sync not in SYNC_MODES:
        raise BspConfigError(
            f"unknown sync mode {sync!r}; expected one of {SYNC_MODES}")
    return sync


def check_pattern_sends(pid: int, step: int, buckets: Iterable[int],
                        pattern: Any) -> None:
    """Raise when a bucketed boundary send leaves the declared pattern.

    ``buckets`` is the set of destination pids the processor is about to
    address this superstep; self-sends are always local and therefore
    always allowed.  Validation is bucket-granular — one check per
    destination per boundary, never per packet — and only runs when the
    declared pattern asked for it (``validate=True``, the default).
    """
    if pattern is None or not pattern.validate:
        return
    allowed = pattern.sends_to
    bad = sorted(d for d in buckets if d != pid and d not in allowed)
    if bad:
        raise BspUsageError(
            f"pid {pid} sent outside its declared communication pattern "
            f"at superstep {step}: destination(s) {bad} are not in "
            f"sends_to={sorted(allowed)}; fix the pattern declaration or "
            "the sends (or declare the pattern with validate=False)")


@dataclass(frozen=True)
class WorkerStatus:
    """Liveness snapshot of one backend worker, for timeout diagnostics.

    Every timeout path is required to name who is alive, who is dead (and
    how), and who stopped making progress — a bare "deadlocked BSP
    program?" is not attributable and therefore not actionable.
    """

    pid: int
    alive: bool
    os_pid: int | None = None
    exitcode: int | None = None
    heartbeat: int = 0
    last_progress_age: float | None = None
    has_result: bool = False

    def describe(self) -> str:
        if self.has_result:
            state = "finished"
        elif self.alive:
            state = f"alive, {self.heartbeat} heartbeat(s)"
            if self.last_progress_age is not None:
                state += f", last progress {self.last_progress_age:.1f}s ago"
        elif self.exitcode is not None and self.exitcode < 0:
            try:
                name = _signal.Signals(-self.exitcode).name
            except ValueError:  # pragma: no cover - unnamed signal
                name = f"signal {-self.exitcode}"
            state = f"dead (killed by {name})"
        else:
            state = f"dead (exit code {self.exitcode})"
        where = f" [os pid {self.os_pid}]" if self.os_pid is not None else ""
        return f"worker {self.pid}{where}: {state}"


def describe_workers(statuses: Iterable[WorkerStatus]) -> str:
    """One-line per-pid liveness summary for timeout/crash messages."""
    return "; ".join(status.describe() for status in statuses)


@dataclass
class BackendRun:
    """Raw output of one backend execution."""

    results: list[Any]
    ledgers: list[VPLedger]
    wall_seconds: float


class Backend(ABC):
    """Executes BSP programs; one instance may be reused across runs."""

    #: Registry name; subclasses set this.
    name: str = ""

    @abstractmethod
    def run(
        self,
        program: Program,
        nprocs: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
        *,
        sync: str = "strict",
    ) -> BackendRun:
        """Run ``program`` on ``nprocs`` virtual processors.

        ``sync`` selects the synchronization mode (:data:`SYNC_MODES`);
        results and (S, H, h) ledgers are identical across modes — only
        the barrier protocol on the wire differs.
        """

    def health(self):
        """Supervision snapshot for backends that supervise workers.

        Returns a :class:`~repro.backends.processes.PoolHealth` (pool
        generation, restarts, heal kinds, per-link retransmit/reconnect
        counters) for pooled/mesh backends, or ``None`` for backends
        with nothing to supervise (simulator, one-shot forks).  Harness
        ``-v`` output and the resilience benchmarks read this uniformly.
        """
        return None

    @staticmethod
    def check_nprocs(nprocs: int) -> None:
        if not isinstance(nprocs, int) or nprocs < 1:
            raise BspConfigError(f"nprocs must be a positive int, got {nprocs!r}")


def route_packets(
    outboxes: Sequence[Sequence[Packet]], nprocs: int
) -> list[list[Packet]]:
    """Route per-sender outboxes into per-receiver inboxes.

    Validates destinations and preserves per-sender order; receivers later
    apply the canonical (src, seq) delivery order themselves (in
    ``Bsp.sync``), so this helper only needs to bucket.
    """
    inboxes: list[list[Packet]] = [[] for _ in range(nprocs)]
    for outbox in outboxes:
        for pkt in outbox:
            if not 0 <= pkt.dst < nprocs:
                raise BspUsageError(
                    f"packet from pid {pkt.src} addressed to {pkt.dst}, "
                    f"outside range({nprocs})"
                )
            inboxes[pkt.dst].append(pkt)
    return inboxes


def route_packet_runs(
    outboxes: Sequence[Sequence[Packet]], nprocs: int
) -> list[PacketRuns]:
    """Route per-sender outboxes into per-receiver :class:`PacketRuns`.

    Like :func:`route_packets`, but preserves the per-source run structure
    so receivers get their inbox pre-ordered: each sender's packets to one
    destination form a seq-sorted run, and :class:`PacketRuns` concatenates
    runs in src order — the canonical delivery order without a sort.
    """
    per_dst: list[list[tuple[int, list[Packet]]]] = [[] for _ in range(nprocs)]
    for outbox in outboxes:
        if not outbox:
            continue
        buckets: dict[int, list[Packet]] = {}
        for pkt in outbox:
            if not 0 <= pkt.dst < nprocs:
                raise BspUsageError(
                    f"packet from pid {pkt.src} addressed to {pkt.dst}, "
                    f"outside range({nprocs})"
                )
            buckets.setdefault(pkt.dst, []).append(pkt)
        src = outbox[0].src
        for dst, run in buckets.items():
            per_dst[dst].append((src, run))
    return [PacketRuns(runs) for runs in per_dst]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], Backend]] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name`` (used by plugins/tests)."""
    if not name:
        raise BspConfigError("backend name must be non-empty")
    _REGISTRY[name] = factory


def get_backend(name: str) -> Backend:
    """Instantiate a registered backend by name."""
    # Import the built-ins lazily so ``base`` has no heavy dependencies.
    if not _REGISTRY:
        _register_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BspConfigError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available_backends() -> list[str]:
    if not _REGISTRY:
        _register_builtins()
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    from .processes import ProcessBackend
    from .simulator import SimulatorBackend
    from .tcp import TcpBackend
    from .threads import ThreadBackend

    _REGISTRY.setdefault("simulator", SimulatorBackend)
    _REGISTRY.setdefault("threads", ThreadBackend)
    _REGISTRY.setdefault("processes", ProcessBackend)
    _REGISTRY.setdefault("tcp", TcpBackend)
