"""Total-exchange pairing schedules (the TCP version's routing discipline).

The paper's TCP implementation (Appendix B.3) avoids deadlock under
blocking sockets by having "the processors pair off and talk according to a
precomputed p-1 stage total-exchange pattern".  This module computes that
pattern: a decomposition of the complete graph :math:`K_p` into perfect
matchings — the classic round-robin tournament (circle) method.

For even ``p`` there are exactly ``p - 1`` stages and every processor is
busy in every stage; for odd ``p`` there are ``p`` stages and each
processor sits out exactly one (its partner is :data:`IDLE`).

The schedule is used by the process backend to order its sends, and is a
good property-test target: every stage must be a perfect matching, and the
union over stages must cover every unordered pair exactly once.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.errors import BspConfigError

#: Partner value for a processor idle in a stage (odd ``p`` only).
IDLE = -1


@lru_cache(maxsize=None)
def exchange_schedule(nprocs: int) -> tuple[tuple[int, ...], ...]:
    """Pairing schedule for a total exchange among ``nprocs`` processors.

    Returns ``stages``, where ``stages[s][i]`` is the processor that ``i``
    talks to during stage ``s`` (:data:`IDLE` if ``i`` sits out).  Stage
    count is ``nprocs - 1`` for even ``nprocs``, ``nprocs`` for odd, and
    ``0`` for ``nprocs == 1``.

    Circle method: fix processor ``n-1`` (even case) and rotate the rest.
    """
    if nprocs < 1:
        raise BspConfigError(f"nprocs must be >= 1, got {nprocs}")
    if nprocs == 1:
        return ()
    # Odd p: add a phantom; pairing with the phantom means idle.
    n = nprocs if nprocs % 2 == 0 else nprocs + 1
    phantom = n - 1
    stages: list[tuple[int, ...]] = []
    ring = list(range(n - 1))  # rotating players; player n-1 is fixed
    for _ in range(n - 1):
        partner = [IDLE] * nprocs
        # Fixed player vs ring head.
        a, b = phantom, ring[0]
        if a < nprocs and b < nprocs:
            partner[a], partner[b] = b, a
        elif b < nprocs:
            partner[b] = IDLE
        # Remaining players pair symmetrically around the ring.
        for k in range(1, (n - 1) // 2 + 1):
            a, b = ring[k], ring[-k]
            if a < nprocs and b < nprocs:
                partner[a], partner[b] = b, a
            elif a < nprocs:
                partner[a] = IDLE
            elif b < nprocs:
                partner[b] = IDLE
        stages.append(tuple(partner))
        ring = ring[1:] + ring[:1]  # rotate
    return tuple(stages)


def peer_order(nprocs: int, pid: int) -> list[int]:
    """Peers of ``pid`` in schedule order (its column through the stages).

    This is the order in which a processor should address its per-peer
    communication during a total exchange so that, globally, every stage is
    a set of disjoint pairs — the deadlock-freedom argument of B.3.
    """
    if not 0 <= pid < nprocs:
        raise BspConfigError(f"pid {pid} out of range({nprocs})")
    return [
        stage[pid] for stage in exchange_schedule(nprocs) if stage[pid] != IDLE
    ]


def validate_schedule(nprocs: int) -> None:
    """Assert the schedule's matching-decomposition invariants.

    Raises :class:`AssertionError` on violation; used by tests and as a
    self-check hook.
    """
    stages = exchange_schedule(nprocs)
    seen: set[frozenset[int]] = set()
    for stage in stages:
        busy: set[int] = set()
        for i, j in enumerate(stage):
            if j == IDLE:
                continue
            assert 0 <= j < nprocs and j != i, f"bad partner {j} for {i}"
            assert stage[j] == i, f"asymmetric pairing {i}<->{j}"
            busy.add(i)
        pairs = {frozenset((i, j)) for i, j in enumerate(stage) if j != IDLE}
        assert not pairs & seen, "pair repeated across stages"
        seen |= pairs
        # Perfect matching on the busy set.
        assert len(busy) == 2 * len(pairs)
    expected = nprocs * (nprocs - 1) // 2
    assert len(seen) == expected, f"covered {len(seen)} pairs, want {expected}"
