"""Thread backend — the shared-memory library version (Appendix B.1).

One OS thread per virtual processor, all runnable concurrently.  As in the
paper's shared-memory implementation, communication goes through *two
alternating input-buffer sets* indexed by superstep parity: a sender
deposits its packets (pre-bucketed by destination) in its own slot of the
current parity's buffer set, everyone synchronizes, and receivers then read
every sender's slot.  The parity alternation is what lets superstep ``i+1``
writes proceed while stragglers may conceptually still hold superstep ``i``
data — the same trick as the paper's two large input buffers.  Because each
sender writes only its own slot, no locks are needed beyond the barrier
(the paper needed locks only because its processes shared one buffer).

The barrier is a *vanishing* barrier: a processor that returns from its
program leaves the party, so remaining processors can keep synchronizing.
(If they do, the ledgers will disagree on superstep counts and the stats
merge reports the program bug; a correct BSP program has every processor
sync the same number of times.)

CPython's GIL serializes pure-Python compute, so this backend demonstrates
*semantics* and I/O concurrency rather than compute speed-up; NumPy kernels
do release the GIL and overlap.  Performance reproduction uses the cost
model on simulator-measured (W, H, S) — see DESIGN.md.
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import defaultdict
from typing import Any, Sequence

import numpy as np

from ..core.api import Bsp
from ..core.errors import SynchronizationError, VirtualProcessorError
from ..core.packets import Packet, PacketRuns
from ..core.stats import VPLedger
from .base import (
    Backend,
    BackendRun,
    Program,
    check_pattern_sends,
    check_sync,
)
from .shm import zerocopy_enabled


class _Abort(BaseException):
    """Unwinds worker threads after a peer failed."""


class VanishingBarrier:
    """A cyclic barrier whose party count shrinks as members leave.

    ``wait()`` blocks until every *current* party has arrived; ``leave()``
    permanently removes the caller from the party (and releases a waiting
    cohort that is now complete); ``abort()`` breaks the barrier, waking all
    waiters with :class:`SynchronizationError`.
    """

    def __init__(self, parties: int):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self._cond = threading.Condition()
        self._parties = parties
        self._waiting = 0
        self._generation = 0
        self._broken = False

    def wait(self) -> None:
        with self._cond:
            if self._broken:
                raise SynchronizationError("barrier is broken")
            generation = self._generation
            self._waiting += 1
            if self._waiting == self._parties:
                self._release()
                return
            while generation == self._generation and not self._broken:
                self._cond.wait()
            if self._broken:
                raise SynchronizationError("barrier broken while waiting")

    def leave(self) -> None:
        with self._cond:
            self._parties -= 1
            if 0 < self._parties == self._waiting:
                self._release()

    def abort(self) -> None:
        with self._cond:
            self._broken = True
            self._cond.notify_all()

    def _release(self) -> None:
        self._waiting = 0
        self._generation += 1
        self._cond.notify_all()

    @property
    def parties(self) -> int:
        with self._cond:
            return self._parties


#: A sender's deposit: (superstep stamp, {dst: [packets]}).
_Slot = tuple[int, dict[int, list[Packet]]]


class _ThreadShared:
    """Double-buffered mailbox slots + the superstep barrier."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        empty: _Slot = (-1, {})
        self.slots: list[list[_Slot]] = [
            [empty] * nprocs for _ in range(2)
        ]
        self.barrier = VanishingBarrier(nprocs)


class _ThreadChannel:
    """Per-processor view of the shared mailbox structure.

    Payloads cross by *reference* — the Packet objects a receiver reads
    out of a sender's parity slot hold the very objects the sender
    queued, so a NumPy halo costs zero copies and zero pickling.  The
    hazard of by-reference delivery is the send()→sync() window: a
    program that mutates an array *after* sending it would silently
    change what the receiver gets.  :meth:`prepare_payload` guards that
    window by flipping the array's writeable flag off at send time (an
    attempted mutation then raises ``ValueError`` at the faulty line —
    loud, attributable) and restoring it on delivery, i.e. right after
    the barrier that publishes the superstep's sends.  With
    ``REPRO_ZEROCOPY=off`` the guard becomes a documented *copy-on-send*
    fallback: every outgoing array is copied at send time, restoring
    full value semantics for programs that insist on recycling their
    send buffers mid-superstep.
    """

    def __init__(self, shared: _ThreadShared, abort: threading.Event, *,
                 zerocopy: bool = True):
        self._shared = shared
        self._abort = abort
        self._pattern = None
        self._zerocopy = zerocopy
        #: Arrays *this channel* froze at send time, by id — only those
        #: are unfrozen on delivery, so an array the program itself made
        #: read-only stays read-only.
        self._frozen: dict[int, np.ndarray] = {}

    def declare_pattern(self, pattern) -> None:
        """Parity with the real backends: shared memory has no frames to
        elide, but declared patterns are validated identically."""
        self._pattern = pattern

    def prepare_payload(self, payload: Any) -> Any:
        """Apply the by-reference mutation guard to one outgoing payload.

        Zero-copy on: writeable arrays are frozen until delivery.
        Zero-copy off: arrays are copied at send time (copy-on-send).
        Non-array payloads pass through untouched — they are shared by
        reference exactly as this backend always has.
        """
        if isinstance(payload, np.ndarray):
            if not self._zerocopy:
                return payload.copy()
            if payload.flags.writeable and id(payload) not in self._frozen:
                payload.flags.writeable = False
                self._frozen[id(payload)] = payload
        return payload

    def exchange(self, pid: int, step: int, outbox: list[Packet]) -> PacketRuns:
        shared = self._shared
        buckets: dict[int, list[Packet]] = defaultdict(list)
        for pkt in outbox:
            buckets[pkt.dst].append(pkt)
        if self._pattern is not None:
            check_pattern_sends(pid, step, buckets, self._pattern)
        parity = step % 2
        shared.slots[parity][pid] = (step, dict(buckets))
        try:
            shared.barrier.wait()
        except SynchronizationError:
            raise _Abort() from None
        if self._abort.is_set():
            raise _Abort()
        # Delivery: the barrier has published every send of this
        # superstep, so the guarded window is over — restore the
        # writeable flags this channel flipped.  Receivers see writable
        # arrays, as on every other backend.
        if self._frozen:
            for arr in self._frozen.values():
                arr.flags.writeable = True
            self._frozen.clear()
        # Each sender's slot holds its per-destination bucket in send order,
        # i.e. a seq-sorted run; collecting in src order yields the inbox
        # pre-ordered (PacketRuns), so Bsp.sync skips the sort.
        runs: list[tuple[int, list[Packet]]] = []
        for src in range(shared.nprocs):
            stamp, by_dst = shared.slots[parity][src]
            if stamp == step:
                run = by_dst.get(pid)
                if run:
                    runs.append((src, run))
        return PacketRuns(runs)


class ThreadBackend(Backend):
    """Concurrent threads with double-buffered shared mailboxes."""

    name = "threads"

    def run(
        self,
        program: Program,
        nprocs: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
        *,
        sync: str = "strict",
    ) -> BackendRun:
        self.check_nprocs(nprocs)
        # The vanishing barrier synchronizes memory, not messages; there
        # is nothing to piggyback or elide, so all modes share one path
        # (accounting is identical by construction).
        check_sync(sync)
        kwargs = kwargs or {}
        shared = _ThreadShared(nprocs)
        abort = threading.Event()
        zerocopy = zerocopy_enabled()
        results: list[Any] = [None] * nprocs
        ledgers: list[VPLedger | None] = [None] * nprocs
        errors: list[tuple[int, str, BaseException] | None] = [None] * nprocs

        def body(pid: int) -> None:
            channel = _ThreadChannel(shared, abort, zerocopy=zerocopy)
            bsp = Bsp(pid, nprocs, channel)
            try:
                results[pid] = program(bsp, *args, **kwargs)
                ledgers[pid] = bsp._finish()
                shared.barrier.leave()
            except _Abort:
                pass
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors[pid] = (pid, traceback.format_exc(), exc)
                abort.set()
                shared.barrier.abort()

        threads = [
            threading.Thread(target=body, args=(pid,), name=f"bsp-{pid}", daemon=True)
            for pid in range(nprocs)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - t0

        for entry in errors:
            if entry is not None:
                pid, text, exc = entry
                raise VirtualProcessorError(pid, text, exc)
        assert all(ledger is not None for ledger in ledgers)
        return BackendRun(results=results, ledgers=list(ledgers), wall_seconds=wall)
