"""Deterministic serialized backend — the paper's measurement instrument.

The paper measured work depth ``W`` and total work "by simulating the
parallel computation on a single processor using an IPC shared-memory
implementation of our library" (Section 3).  This backend is that
instrument: the ``p`` virtual processors run one at a time, in pid order,
each executing from one superstep boundary to the next before the scheduler
moves on.  Consequences:

* execution is fully deterministic (given deterministic program code), so
  the measured ``H`` and ``S`` are exact and repeatable;
* per-processor work times are uncontended wall-clock on a single core —
  the cleanest available proxy for the paper's per-processor ``w_i``;
* there is no actual parallelism: wall-clock of a simulator run is the
  *total* work, not the work depth.  Speed-ups are obtained by feeding the
  measured (W, H, S) to the cost model, never from simulator wall-clock.

Implementation: each virtual processor runs on its own thread, but a
turn-taking token guarantees exactly one is ever runnable; the scheduler
(on the calling thread) resumes them round-robin within each superstep and
routes packets once all have reached the barrier.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Sequence

from ..core.api import Bsp
from ..core.errors import SynchronizationError, VirtualProcessorError
from ..core.packets import Packet, PacketRuns
from ..core.stats import VPLedger
from .base import (
    Backend,
    BackendRun,
    Program,
    check_pattern_sends,
    check_sync,
    route_packet_runs,
)

_RUNNING = "running"
_SYNCED = "synced"
_DONE = "done"
_FAILED = "failed"


class _Abort(BaseException):
    """Unwinds a virtual-processor thread after another one failed."""


class _SimWorker:
    """One virtual processor: thread + handshake events + mailbox."""

    def __init__(self, pid: int):
        self.pid = pid
        self.go = threading.Event()
        self.outbox: list[Packet] = []
        self.inbox: PacketRuns | list[Packet] = []
        self.state = _RUNNING
        self.result: Any = None
        self.error_text = ""
        self.error: BaseException | None = None
        self.ledger: VPLedger | None = None
        self.thread: threading.Thread | None = None


class _SimChannel:
    """ExchangeChannel wired to the scheduler's turn-taking protocol."""

    def __init__(self, worker: _SimWorker, done: threading.Event, abort: threading.Event):
        self._worker = worker
        self._done = done
        self._abort = abort
        self._pattern = None

    def declare_pattern(self, pattern) -> None:
        """Accepted for parity with the real backends: the simulator has
        no wire to elide, but it validates declared patterns so programs
        debugged here fail the same way they would on processes/tcp."""
        self._pattern = pattern

    def exchange(
        self, pid: int, step: int, outbox: list[Packet]
    ) -> PacketRuns | list[Packet]:
        worker = self._worker
        if self._pattern is not None:
            check_pattern_sends(pid, step, {pkt.dst for pkt in outbox},
                                self._pattern)
        worker.outbox = outbox
        worker.state = _SYNCED
        worker.go.clear()
        self._done.set()          # yield to the scheduler
        worker.go.wait()          # resumed for the next superstep
        if self._abort.is_set():
            raise _Abort()
        worker.state = _RUNNING
        inbox, worker.inbox = worker.inbox, []
        return inbox


class SimulatorBackend(Backend):
    """Serialized deterministic execution of all virtual processors."""

    name = "simulator"

    def run(
        self,
        program: Program,
        nprocs: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
        *,
        sync: str = "strict",
    ) -> BackendRun:
        self.check_nprocs(nprocs)
        # Serialized execution has no barrier to relax: all modes are
        # accounting-identical here by construction, so the mode is only
        # validated (programs can be debugged with their production
        # ``sync=`` argument).
        check_sync(sync)
        kwargs = kwargs or {}
        abort = threading.Event()
        yielded = threading.Event()
        workers = [_SimWorker(pid) for pid in range(nprocs)]

        def body(worker: _SimWorker) -> None:
            worker.go.wait()
            if abort.is_set():
                return
            channel = _SimChannel(worker, yielded, abort)
            bsp = Bsp(worker.pid, nprocs, channel)
            try:
                worker.result = program(bsp, *args, **kwargs)
                worker.ledger = bsp._finish()
                worker.state = _DONE
            except _Abort:
                worker.state = _FAILED
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                worker.error = exc
                worker.error_text = traceback.format_exc()
                worker.state = _FAILED
            finally:
                yielded.set()

        for worker in workers:
            worker.thread = threading.Thread(
                target=body, args=(worker,), name=f"bsp-sim-{worker.pid}", daemon=True
            )
            worker.thread.start()

        t0 = time.perf_counter()
        try:
            self._schedule(workers, yielded, abort, nprocs)
        finally:
            abort.set()
            for worker in workers:
                worker.go.set()
            for worker in workers:
                assert worker.thread is not None
                worker.thread.join()
        wall = time.perf_counter() - t0

        results = [w.result for w in workers]
        ledgers = [w.ledger for w in workers]
        assert all(ledger is not None for ledger in ledgers)
        return BackendRun(results=results, ledgers=ledgers, wall_seconds=wall)

    def _schedule(
        self,
        workers: list[_SimWorker],
        yielded: threading.Event,
        abort: threading.Event,
        nprocs: int,
    ) -> None:
        active = list(workers)
        while active:
            # Run each still-active processor up to its next boundary.
            for worker in active:
                yielded.clear()
                worker.go.set()
                yielded.wait()
                if worker.state == _FAILED:
                    abort.set()
                    raise VirtualProcessorError(
                        worker.pid, worker.error_text, worker.error
                    )
            synced = [w for w in active if w.state == _SYNCED]
            done = [w for w in active if w.state == _DONE]
            if synced and done:
                abort.set()
                raise SynchronizationError(
                    f"processors {[w.pid for w in done]} finished while "
                    f"processors {[w.pid for w in synced]} are waiting at the "
                    "barrier; every processor must call sync() the same "
                    "number of times"
                )
            if not synced:
                return  # all done
            inboxes = route_packet_runs([w.outbox for w in synced], nprocs)
            for worker in synced:
                worker.outbox = []
                worker.inbox = inboxes[worker.pid]
            active = synced
