"""TCP socket backend — the paper's PC-LAN platform (Appendix B.3).

One OS process per virtual processor, connected in a full TCP mesh, so
the same Green BSP programs that run on the shared-memory and process
backends run across *separate machines*.  Communication still happens
only at superstep boundaries: each rank buckets its outgoing packets per
destination during the superstep and, at the boundary, ships **one
combined frame per peer** using the exact pickle-5 out-of-band layout of
:mod:`~repro.backends.frames` — so ``seq``/``h`` accounting (and hence
every ledger) is bit-identical to the other backends.

``bspSynch`` is a two-phase barrier over the mesh:

1. *counts exchange* — in :func:`~repro.backends.exchange.peer_order`
   (B.3's pairing discipline), every rank sends each peer a tiny
   ``TAG_COUNTS`` frame announcing how many data frames follow for this
   superstep (0 or 1, since buckets are combined), then the data frame
   itself.  A rank has "arrived" once every live peer's announced frames
   are in hand.
2. *release* — it then broadcasts ``TAG_RELEASE`` and may pass the
   barrier only after receiving every live peer's release.  This bounds
   run-ahead to one superstep (early frames are stashed by step), and
   gives DROP_FRAME fault injection its honest semantics: a dropped
   frame stalls phase 1 forever, which supervision reports as a
   :class:`~repro.core.errors.DeadlockError`.

That is the **strict** (default) mode.  ``run(..., sync="relaxed")``
drops both control rounds: completion is piggybacked on the data frames
themselves (the wire header's ``more`` bit), every live link carries
exactly one frame per boundary (empty buckets become an empty final
frame), and per-link TCP FIFO bounds run-ahead to one superstep.
``sync="elide"`` additionally uses a declared
:class:`~repro.bsplib.CommPattern` to skip non-neighbour links
entirely.  See :class:`_MeshChannel`.  All modes deliver bit-identical
results and ledgers; checkpoint cuts fence through the strict barrier
in every mode.

All sockets are non-blocking and serviced by one
:mod:`selectors`-based event loop per rank, so serialization, sends, and
receives overlap — the loop *is* Appendix B.3's "receivers actively
empty the pipe" discipline, which is what makes two peers pushing large
boundary frames at each other deadlock-free.

Supervision mirrors the process backend (whose helpers it reuses): every
rank keeps a control connection to its supervisor carrying heartbeat
frames per boundary and the final outcome; the supervisor multiplexes
those sockets with each rank's ``Process.sentinel``, so a SIGKILLed rank
surfaces as :class:`~repro.core.errors.WorkerCrashError` within
milliseconds and flat heartbeats at the deadline become a
:class:`~repro.core.errors.DeadlockError`.  Mesh sockets carry
``SO_KEEPALIVE`` so a vanished *machine* (no FIN, no RST) eventually
dies too.  Peer-death propagates in-band: EOF from a peer that never
sent its departure sentinel aborts the survivor's exchange.

Three execution modes:

* **one-shot** (plain ``TcpBackend()``): ``run()`` forks ``p`` fresh
  ranks on localhost; programs need not be picklable (fork inherits
  them).  The parent pre-binds the rendezvous listener so rank 0 inherits
  it — no port race.
* **persistent** (``TcpBackend.pool(p)`` / :class:`TcpMesh`): ranks and
  mesh stay up across runs; programs are shipped by pickle, so they must
  be module-level callables.  Unlike :class:`~repro.backends.processes.
  BspPool` there is no fence protocol: an aborted boundary can leave a
  half-flushed frame in a socket stream, so **any** failed run marks the
  mesh dirty and the next run rebuilds it.
* **SPMD** (:class:`TcpSpmdBackend`): one already-launched rank per
  machine (``python -m repro.harness launch-tcp --rank r ...``); every
  invocation runs the same program and all-gathers outcomes at the end.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import pickle
import selectors
import socket
import time
import traceback
from collections import deque
from typing import Any, Sequence

from .. import faults
from ..core.api import Bsp
from ..core.errors import (
    BspConfigError,
    BspUsageError,
    SynchronizationError,
    WorkerCrashError,
)
from ..core.packets import Packet, PacketRuns
from .base import (
    Backend,
    BackendRun,
    Program,
    check_pattern_sends,
    check_sync,
    describe_workers,
)
from .exchange import peer_order
from .frames import TAG_DEAD, TAG_LEFT, TAG_PKT, Frame
from .processes import (
    _Abort,
    _CRASH_GRACE,
    _CRASH_GRACE_ABNORMAL,
    _join_escalating,
    _raise_run_failure,
    _timeout_failure,
    _worker_statuses,
    PoolHealth,
)
from . import tcp_wire as wire
from .tcp_launch import (
    bind_listener,
    connect_retry,
    rendezvous_mesh,
    tune_mesh_socket,
)

_TOKEN_COUNTER = itertools.count(1)


def _next_token() -> int:
    """A launch token no stale mesh on this host will guess."""
    return (os.getpid() << 20) ^ next(_TOKEN_COUNTER)


class _PeerLost(BaseException):
    """A mesh peer's stream ended without a departure sentinel."""

    def __init__(self, peer: int):
        super().__init__(f"peer {peer} connection lost mid-run")
        self.peer = peer


# ---------------------------------------------------------------------------
# Rank side: the mesh channel (event loop + two-phase barrier)
# ---------------------------------------------------------------------------


class _MeshChannel:
    """Superstep-boundary exchange over a socket mesh (one rank's view).

    ``sync`` selects the boundary protocol.  **strict** (default): the
    two-phase counts→release barrier described in the module docstring.
    **relaxed**: no TAG_COUNTS round and no TAG_RELEASE broadcast — each
    rank sends exactly one TAG_PKT frame per live link (empty buckets
    become an empty final frame) with the header's ``more`` bit cleared,
    and passes the barrier as soon as its own inbound final frames for
    the step are all in and its outbound queues drained.  Per-link TCP
    FIFO bounds run-ahead to one superstep (a peer cannot start step
    ``s+1`` before our step-``s`` final reached it).  **elide**: like
    relaxed, but with a declared :class:`~repro.bsplib.CommPattern` the
    rank sends finals only along ``sends_to`` links and awaits only
    ``receives_from`` links — non-neighbours exchange nothing at all.
    """

    def __init__(self, rank: int, nprocs: int,
                 socks: dict[int, socket.socket], run_id: int,
                 ctrl: "_CtrlLink | None", *,
                 decoders: dict[int, wire.FrameDecoder] | None = None,
                 sync: str = "strict"):
        self._rank = rank
        self._nprocs = nprocs
        self._socks = dict(socks)
        self._run_id = run_id
        self._ctrl = ctrl
        self._sync = sync
        self._pattern = None
        #: One-shot downgrade to the strict protocol (checkpoint cuts).
        self._fence_strict = False
        #: Heartbeat piggybacking state (relaxed/elide): inbound data
        #: frames since the last control beat, and when that beat was.
        self._data_beats = 0
        self._last_beat = time.monotonic()
        self._peers = peer_order(nprocs, rank)
        self._sel = selectors.DefaultSelector()
        self._dec = decoders if decoders is not None else {
            peer: wire.FrameDecoder() for peer in self._socks}
        self._out: dict[int, deque] = {p: deque() for p in self._socks}
        self._mask: dict[int, int] = {}
        self._departed: set[int] = set()
        self._eof: set[int] = set()
        self._gathering = False
        #: Per-step stashes; TCP per-link ordering bounds them to one
        #: step of run-ahead, but the dicts handle the general case.
        self._counts: dict[int, dict[int, int]] = {}
        self._data: dict[int, dict[int, list[Packet]]] = {}
        self._release: dict[int, set[int]] = {}
        #: Relaxed-sync completion: peers whose final (``more == 0``)
        #: frame for a step has arrived.  Strict-mode data frames also
        #: land here (they carry ``more == 0`` too); both paths pop it.
        self._final: dict[int, set[int]] = {}
        self._results: dict[int, Any] = {}
        for peer, sock in self._socks.items():
            sock.setblocking(False)
            self._sel.register(sock, selectors.EVENT_READ, peer)
            self._mask[peer] = selectors.EVENT_READ
        if ctrl is not None:
            ctrl.beat(-1)  # marks "the run actually started here"

    # -- plumbing ------------------------------------------------------------

    def _enqueue(self, peer: int, chunks: Sequence[Any]) -> None:
        q = self._out.get(peer)
        if q is None:  # peer connection already closed
            return
        for chunk in chunks:
            mv = memoryview(chunk)
            if mv.format != "B" or mv.ndim != 1:
                mv = mv.cast("B")
            if mv.nbytes:
                q.append(mv)
        self._update_mask(peer)

    def _send_now(self, peer: int, chunks: Sequence[Any]) -> None:
        """Send eagerly on the (almost always writable) socket.

        The relaxed boundary sends one small frame per link; pushing it
        straight into the kernel skips the queue's two selector
        re-registrations and one write-ready select round per link per
        step.  On backpressure the unsent tail falls back to the queued
        path, so ordering and the drain invariant are untouched.
        """
        q = self._out.get(peer)
        sock = self._socks.get(peer)
        if q is None or sock is None:
            return
        if q:  # earlier bytes still queued: keep the link FIFO
            self._enqueue(peer, chunks)
            return
        try:
            for i, chunk in enumerate(chunks):
                mv = memoryview(chunk)
                if mv.format != "B" or mv.ndim != 1:
                    mv = mv.cast("B")
                off = 0
                while off < mv.nbytes:
                    try:
                        off += sock.send(mv[off:] if off else mv)
                    except (BlockingIOError, InterruptedError):
                        self._enqueue(
                            peer, [mv[off:]] + list(chunks[i + 1:]))
                        return
        except OSError:
            self._close_peer(peer)
            if peer not in self._departed:
                raise _PeerLost(peer)

    def _update_mask(self, peer: int) -> None:
        sock = self._socks.get(peer)
        if sock is None:
            return
        want = 0 if peer in self._eof else selectors.EVENT_READ
        if self._out.get(peer):
            want |= selectors.EVENT_WRITE
        cur = self._mask.get(peer, 0)
        if want == cur:
            return
        if cur and want:
            self._sel.modify(sock, want, peer)
        elif want:
            self._sel.register(sock, want, peer)
        else:
            self._sel.unregister(sock)
        self._mask[peer] = want

    def _close_peer(self, peer: int) -> None:
        self._eof.add(peer)
        sock = self._socks.pop(peer, None)
        if sock is not None:
            if self._mask.get(peer):
                try:
                    self._sel.unregister(sock)
                except (KeyError, ValueError):
                    pass
            try:
                sock.close()
            except OSError:
                pass
        self._mask[peer] = 0
        self._out.pop(peer, None)

    def _pump(self, timeout: float = 0.05) -> None:
        if not any(self._mask.values()):
            return
        for key, events in self._sel.select(timeout):
            peer = key.data
            if events & selectors.EVENT_WRITE:
                self._flush(peer)
            if events & selectors.EVENT_READ:
                self._read(peer)

    def _flush(self, peer: int) -> None:
        q = self._out.get(peer)
        sock = self._socks.get(peer)
        if q is None or sock is None:
            return
        try:
            while q:
                sent = sock.send(q[0])
                if sent < len(q[0]):
                    q[0] = q[0][sent:]
                    break
                q.popleft()
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._close_peer(peer)
            if peer not in self._departed:
                raise _PeerLost(peer)
            return
        self._update_mask(peer)

    def _read(self, peer: int) -> None:
        sock = self._socks.get(peer)
        if sock is None:
            return
        try:
            data = sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if not data:
            self._close_peer(peer)
            if peer not in self._departed:
                raise _PeerLost(peer)
            return
        for frame in self._dec[peer].feed(data):
            self._handle(frame)

    def _handle(self, frame: Frame) -> None:
        tag = frame.tag
        if tag == TAG_LEFT:
            if frame.run_id == self._run_id:
                self._departed.add(frame.src)
            return
        if tag == TAG_DEAD:
            if frame.run_id == self._run_id and not self._gathering:
                raise _Abort()
            return
        if frame.run_id != self._run_id:
            return  # debris from an earlier, failed run on this mesh
        if tag == TAG_PKT:
            self._data_beats += 1
            self._data.setdefault(frame.step, {})[frame.src] = \
                frame.packets(self._rank)
            if frame.more == 0:
                self._final.setdefault(frame.step, set()).add(frame.src)
        elif tag == wire.TAG_COUNTS:
            self._counts.setdefault(frame.step, {})[frame.src] = \
                pickle.loads(frame.meta)
        elif tag == wire.TAG_RELEASE:
            self._release.setdefault(frame.step, set()).add(frame.src)
        elif tag == wire.TAG_RESULT:
            self._results[frame.src] = wire.frame_object(frame)

    # -- the ExchangeChannel contract ---------------------------------------

    def declare_pattern(self, pattern) -> None:
        """Declare the static communication pattern of this rank.

        In ``elide`` mode the pattern prunes the boundary to its true
        edges; in every mode a declared pattern (with ``validate=True``)
        turns out-of-pattern sends into a
        :class:`~repro.core.errors.BspUsageError` at the next boundary.
        """
        self._pattern = pattern

    def fence_next_sync(self) -> None:
        """Force the *next* boundary through the strict two-phase
        barrier (checkpoint cuts need a full fence in every mode)."""
        self._fence_strict = True

    def _beat(self, step: int) -> None:
        """Heartbeat, piggybacked on data traffic in relaxed/elide.

        Inbound data frames prove the fabric is moving, so a busy rank
        may skip the control-socket beat — but never for longer than
        0.25s, which keeps the supervisor's flat-heartbeat deadlock
        triage valid (its stall window is >= 1s).  A deadlocked rank
        stops reaching boundaries, stops beating either way, and still
        goes flat.
        """
        if self._ctrl is None:
            return
        if self._sync != "strict":
            now = time.monotonic()
            busy = self._data_beats > 0
            self._data_beats = 0
            if busy and now - self._last_beat < 0.25:
                return
            self._last_beat = now
        self._ctrl.beat(step)

    def exchange(self, pid: int, step: int,
                 outbox: list[Packet]) -> PacketRuns:
        self._beat(step)
        # Fault-injection hook — one attribute load + None test when off.
        plan = faults._ACTIVE
        if plan is not None:
            plan.at_boundary(self._rank, step, self._nprocs, outbox)
        buckets: dict[int, list[Packet]] = {}
        for pkt in outbox:
            buckets.setdefault(pkt.dst, []).append(pkt)
        if self._pattern is not None:
            check_pattern_sends(self._rank, step, buckets, self._pattern)
        strict = self._sync == "strict" or self._fence_strict
        self._fence_strict = False
        if not strict:
            return self._exchange_relaxed(step, buckets)
        run_id, rank = self._run_id, self._rank

        # Phase 1 sends, in the total-exchange pairing order (B.3).
        for peer in self._peers:
            if peer in self._departed:
                continue
            if plan is not None and plan.drops_frame(rank, step, peer):
                continue  # lost message: the peer stalls in phase 1
            bucket = buckets.get(peer)
            # Encode the data frame *before* enqueueing anything for this
            # peer: a pickling failure must not leave a counts frame
            # announcing data that will never arrive.
            data_chunks = wire.encode_packet_frame(run_id, step, rank,
                                                   bucket) if bucket else None
            self._enqueue(peer, wire.encode_frame(
                wire.TAG_COUNTS, run_id, step, rank,
                pickle.dumps(1 if bucket else 0)))
            if plan is not None:
                plan.count_frame(rank)
            if data_chunks is not None:
                self._enqueue(peer, data_chunks)
                if plan is not None:
                    plan.count_frame(rank)

        # Event loop: flush our frames while receiving theirs.
        sent_release = False
        while True:
            counts = self._counts.get(step, {})
            data = self._data.get(step, {})
            live = [q for q in self._peers if q not in self._departed]
            if not sent_release and all(
                    q in counts and (counts[q] == 0 or q in data)
                    for q in live):
                for peer in live:
                    self._enqueue(peer, wire.encode_frame(
                        wire.TAG_RELEASE, run_id, step, rank))
                    if plan is not None:
                        plan.count_frame(rank)
                sent_release = True
            if sent_release:
                rel = self._release.get(step, ())
                if all(q in rel or q in self._departed
                       for q in self._peers) \
                        and not any(self._out.values()):
                    break
            self._pump()
        self._counts.pop(step, None)
        self._release.pop(step, None)
        self._final.pop(step, None)
        got = self._data.pop(step, {})
        own = buckets.get(rank)
        if own is not None:
            got[rank] = own
        # One run per source, each seq-sorted: canonical order once
        # concatenated by src.
        return PacketRuns(got.items())

    def _exchange_relaxed(self, step: int,
                          buckets: dict[int, list[Packet]]) -> PacketRuns:
        """One-phase boundary: finals piggybacked on the data frames.

        Exactly one TAG_PKT frame per out-link (an empty bucket becomes
        an empty final frame) with ``more == 0``; the barrier passes as
        soon as every awaited peer's final for this step is in hand and
        our outbound queues are drained (payload memoryviews reference
        live program arrays, so returning earlier would let the program
        mutate bytes still queued on a socket).  Run-ahead is bounded to
        one superstep by per-link TCP FIFO: a peer cannot pass step
        ``s`` before our step-``s`` final, which we only send after
        passing step ``s-1``.
        """
        run_id, rank = self._run_id, self._rank
        plan = faults._ACTIVE
        pattern = self._pattern
        if self._sync == "elide" and pattern is not None:
            out_targets = [q for q in self._peers if q in pattern.sends_to]
            expect = set(pattern.receives_from)
        else:
            out_targets = list(self._peers)
            expect = set(self._peers)
        empty_final = None  # identical for every empty link: encode once
        for peer in out_targets:
            if peer in self._departed:
                continue
            if plan is not None and plan.drops_frame(rank, step, peer):
                continue  # lost message: the peer stalls on our final
            bucket = buckets.get(peer)
            if bucket:
                chunks = wire.encode_packet_frame(run_id, step, rank, bucket)
            else:
                if empty_final is None:
                    empty_final = wire.encode_packet_frame(
                        run_id, step, rank, ())
                chunks = empty_final
            self._send_now(peer, chunks)
            if plan is not None:
                plan.count_frame(rank)
        while True:
            final = self._final.get(step, ())
            if all(q in final or q in self._departed for q in expect) \
                    and not any(self._out.values()):
                break
            self._pump()
        self._final.pop(step, None)
        got = self._data.pop(step, {})
        own = buckets.get(rank)
        if own is not None:
            got[rank] = own
        # Empty finals decoded to empty runs; PacketRuns drops them, so
        # the merged inbox (and every ledger) matches strict mode.
        return PacketRuns(got.items())

    def depart(self) -> None:
        # Note: a peer being in ``_departed`` does NOT mean it stopped
        # reading — in SPMD mode it still pumps this link through the
        # result all-gather, and must see our LEFT before our EOF.  Only
        # an already-dead link is skipped.
        plan = faults._ACTIVE
        for peer in self._peers:
            if peer in self._eof:
                continue
            if plan is not None and plan.drops_depart(self._rank, peer):
                continue
            self._enqueue(peer, wire.encode_frame(
                TAG_LEFT, self._run_id, 0, self._rank))
        self._drain(timeout=30.0)

    def die(self) -> None:
        for peer in self._peers:
            if peer in self._eof:
                continue
            self._enqueue(peer, wire.encode_frame(
                TAG_DEAD, self._run_id, 0, self._rank))
        self._drain(timeout=5.0)

    def _drain(self, timeout: float) -> None:
        """Best-effort flush of every outbound queue."""
        deadline = time.monotonic() + timeout
        while any(self._out.values()) and time.monotonic() < deadline:
            try:
                self._pump()
            except (_Abort, _PeerLost):
                break  # the run is over either way

    # -- SPMD result all-gather ---------------------------------------------

    def broadcast_result(self, outcome: tuple) -> None:
        chunks = wire.encode_object_frame(
            wire.TAG_RESULT, self._run_id, 0, self._rank, outcome)
        for peer in self._peers:
            if peer not in self._eof:
                self._enqueue(peer, chunks)
        self._drain(timeout=30.0)

    def gather_results(self, nprocs: int, timeout: float) -> dict[int, Any]:
        self._gathering = True  # a peer's TAG_DEAD precedes its outcome
        deadline = time.monotonic() + timeout
        want = [q for q in self._peers if q < nprocs]
        while not all(q in self._results for q in want):
            if time.monotonic() > deadline:
                missing = [q for q in want if q not in self._results]
                raise SynchronizationError(
                    f"timed out gathering outcomes from ranks {missing}")
            self._pump(0.1)
        return dict(self._results)

    def shutdown(self, *, close: bool = True) -> None:
        for peer, mask in list(self._mask.items()):
            if mask and peer in self._socks:
                try:
                    self._sel.unregister(self._socks[peer])
                except (KeyError, ValueError):
                    pass
        self._mask.clear()
        self._sel.close()
        if close:
            for sock in self._socks.values():
                try:
                    sock.close()
                except OSError:
                    pass


# ---------------------------------------------------------------------------
# Rank side: control link + rank mains
# ---------------------------------------------------------------------------


class _CtrlLink:
    """A rank's blocking control connection to its supervisor."""

    def __init__(self, sock: socket.socket, rank: int):
        self._sock = sock
        self._rank = rank
        self._dec = wire.FrameDecoder()

    def hello(self) -> None:
        wire.send_chunks(self._sock, wire.encode_object_frame(
            wire.TAG_HELLO, 0, 0, self._rank, self._rank))

    def beat(self, step: int) -> None:
        try:
            wire.send_chunks(self._sock, wire.encode_frame(
                wire.TAG_HB, 0, step, self._rank))
        except OSError:  # supervisor gone; the run is ending anyway
            pass

    def result(self, outcome: tuple) -> None:
        # The stream guarantees this frame precedes our EOF, so the
        # supervisor's "EOF before result" test is exactly "crashed".
        wire.send_chunks(self._sock, wire.encode_object_frame(
            wire.TAG_RESULT, outcome[1], 0, self._rank, outcome))

    def recv(self) -> Frame | None:
        return wire.recv_frame(self._sock, self._dec)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def _run_program(channel: _MeshChannel, rank: int, nprocs: int, run_id: int,
                 program: Program, args: Sequence[Any],
                 kwargs: dict[str, Any]) -> tuple:
    """Run one program instance; returns the rank's outcome tuple."""
    bsp = Bsp(rank, nprocs, channel)
    try:
        result = program(bsp, *args, **kwargs)
        ledger = bsp._finish()
        channel.depart()
        return ("ok", run_id, rank, result, ledger)
    except (_Abort, _PeerLost):
        return ("aborted", run_id, rank, None, None)
    except BaseException:  # noqa: BLE001 - reported to the supervisor
        try:
            channel.die()
        except BaseException:  # pragma: no cover - mesh already gone
            pass
        return ("error", run_id, rank, traceback.format_exc(), None)


def _connect_ctrl(parent_addr: tuple[str, int], rank: int) -> _CtrlLink:
    # Retried with backoff+jitter: a freshly forked rank can dial before
    # the supervisor's accept loop is servicing the listener backlog.
    sock = connect_retry(parent_addr, time.monotonic() + 30.0,
                         what="supervisor control listener")
    ctrl = _CtrlLink(sock, rank)
    ctrl.hello()
    return ctrl


def _oneshot_rank(rank: int, nprocs: int, coord_addr: tuple[str, int],
                  parent_addr: tuple[str, int],
                  coord_listener: socket.socket | None, token: int,
                  program: Program, args: Sequence[Any],
                  kwargs: dict[str, Any], sync: str = "strict") -> None:
    """Forked rank main for a one-shot run (program inherited via fork)."""
    if rank != 0 and coord_listener is not None:
        coord_listener.close()  # inherited fd; only rank 0 may own it
    ctrl = _connect_ctrl(parent_addr, rank)
    socks = rendezvous_mesh(
        rank, nprocs, coord_addr, token=token,
        coordinator_listener=coord_listener if rank == 0 else None)
    channel = _MeshChannel(rank, nprocs, socks, 0, ctrl, sync=sync)
    try:
        outcome = _run_program(channel, rank, nprocs, 0, program, args,
                               kwargs)
    finally:
        channel.shutdown()
    ctrl.result(outcome)
    ctrl.close()


def _pool_rank(rank: int, capacity: int, coord_addr: tuple[str, int],
               parent_addr: tuple[str, int],
               coord_listener: socket.socket | None, token: int) -> None:
    """Persistent rank loop: execute runs shipped over the control link."""
    if rank != 0 and coord_listener is not None:
        coord_listener.close()
    ctrl = _connect_ctrl(parent_addr, rank)
    socks = rendezvous_mesh(
        rank, capacity, coord_addr, token=token,
        coordinator_listener=coord_listener if rank == 0 else None)
    # Decoders persist across runs: they hold per-link stream state, and
    # leftover frames of a failed run are dropped by run_id.
    decoders = {peer: wire.FrameDecoder() for peer in socks}
    while True:
        frame = ctrl.recv()
        if frame is None or frame.tag == wire.TAG_CLOSE:
            break
        if frame.tag != wire.TAG_RUN:
            continue
        run_id, nprocs, blob, sync = wire.frame_object(frame)
        try:
            program, args, kwargs = pickle.loads(blob)
        except BaseException:  # noqa: BLE001 - reported to the supervisor
            ctrl.result(("error", run_id, rank, traceback.format_exc(),
                         None))
            continue
        sub = {q: socks[q] for q in range(nprocs) if q != rank and q in socks}
        channel = _MeshChannel(rank, nprocs, sub, run_id, ctrl,
                               decoders=decoders, sync=sync)
        outcome = _run_program(channel, rank, nprocs, run_id, program, args,
                               kwargs)
        channel.shutdown(close=False)
        ctrl.result(outcome)
    for sock in socks.values():
        try:
            sock.close()
        except OSError:
            pass
    ctrl.close()


# ---------------------------------------------------------------------------
# Supervisor side: control-plane links and supervised collection
# ---------------------------------------------------------------------------


class _Link:
    """Supervisor's view of one rank's control connection."""

    __slots__ = ("sock", "dec", "eof", "rank")

    def __init__(self, sock: socket.socket):
        sock.setblocking(False)
        self.sock = sock
        self.dec = wire.FrameDecoder()
        self.eof = False
        self.rank: int | None = None  # known once TAG_HELLO arrives

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class _HbTable:
    """Adapter giving ``_timeout_failure`` its ``heartbeat(pid)`` probe."""

    def __init__(self, counts: list[int]):
        self._counts = counts

    def heartbeat(self, pid: int) -> int:
        return self._counts[pid]


def _drain_link(link: _Link, handle) -> None:
    """Read everything currently available on a supervisor-side link."""
    while not link.eof:
        try:
            data = link.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if not data:
            link.eof = True
            return
        for frame in link.dec.feed(data):
            handle(link, frame)


def _collect_tcp(nprocs: int, run_id: int, procs: Sequence[Any],
                 links: dict[int, _Link], timeout: float, *,
                 listener: socket.socket | None = None,
                 anon: list[_Link] | None = None) -> list[tuple | None]:
    """Supervised gather of one outcome per rank over the control plane.

    Mirrors ``processes._collect_outcomes``: multiplexes every control
    socket, the hello listener (one-shot mode, where ranks are still
    dialing in) and each missing rank's ``Process.sentinel`` through
    :func:`multiprocessing.connection.wait`.  A control-socket EOF plus a
    dead process and no buffered result is a :class:`WorkerCrashError`
    within the crash-grace window; the expired deadline goes through the
    shared :func:`~repro.backends.processes._timeout_failure` triage
    (crash / deadlock / merely slow).
    """
    start = time.monotonic()
    deadline = start + timeout
    outcomes: list[tuple | None] = [None] * nprocs
    got = 0
    hb_counts = [0] * nprocs
    hb_when = [start] * nprocs
    hbtable = _HbTable(hb_counts)
    anon = anon if anon is not None else []

    def handle(link: _Link, frame: Frame) -> None:
        nonlocal got
        if frame.tag == wire.TAG_HELLO:
            link.rank = wire.frame_object(frame)
            links[link.rank] = link
            if link in anon:
                anon.remove(link)
            return
        rank = link.rank
        if rank is None or rank >= nprocs:
            return  # idle mesh rank of a smaller run
        if frame.tag == wire.TAG_HB:
            hb_counts[rank] += 1
            hb_when[rank] = time.monotonic()
        elif frame.tag == wire.TAG_RESULT:
            outcome = wire.frame_object(frame)
            tag, rid = outcome[0], outcome[1]
            if rid != run_id:
                return  # stray reply from an earlier, failed run
            if outcomes[rank] is None:
                got += 1
            outcomes[rank] = (tag, outcome[3], outcome[4])

    while got < nprocs:
        now = time.monotonic()
        remaining = deadline - now
        if remaining <= 0:
            raise _timeout_failure(nprocs, outcomes, procs, hbtable,
                                   hb_when, timeout)
        missing = [pid for pid in range(nprocs) if outcomes[pid] is None]
        waitables: list[Any] = []
        if listener is not None:
            waitables.append(listener)
        for link in list(links.values()) + list(anon):
            if link.eof:
                continue
            if link.rank is not None and (link.rank >= nprocs
                                          or outcomes[link.rank] is not None):
                continue
            waitables.append(link.sock)
        waitables += [procs[pid].sentinel for pid in missing]
        mp_connection.wait(waitables, timeout=min(remaining, 0.25))
        if listener is not None:
            while True:
                try:
                    sock, _ = listener.accept()
                except (BlockingIOError, socket.timeout, OSError):
                    break
                anon.append(_Link(sock))
        for link in list(anon) + list(links.values()):
            _drain_link(link, handle)
        crashed = [pid for pid in missing
                   if outcomes[pid] is None and not procs[pid].is_alive()]
        if not crashed:
            continue
        for pid in crashed:
            procs[pid].join(timeout=1.0)  # reap, so exitcode is final
        # The victim's result may still be in its socket buffer (an exit
        # right after reporting): TCP keeps buffered bytes readable after
        # death, so one short grace drain before declaring a crash.
        window = _CRASH_GRACE if any(procs[pid].exitcode == 0
                                     for pid in crashed) \
            else _CRASH_GRACE_ABNORMAL
        grace = time.monotonic() + window
        while any(outcomes[pid] is None for pid in crashed):
            for pid in crashed:
                link = links.get(pid)
                if link is not None:
                    _drain_link(link, handle)
            if time.monotonic() >= grace:
                break
            time.sleep(0.005)
        lost = [pid for pid in crashed if outcomes[pid] is None]
        if lost:
            proc = procs[lost[0]]
            proc.join(timeout=1.0)
            detail = describe_workers(_worker_statuses(
                nprocs, outcomes, procs, hbtable, hb_when, time.monotonic()))
            raise WorkerCrashError(lost[0], proc.exitcode, os_pid=proc.pid,
                                   detail=detail)
    return outcomes


# ---------------------------------------------------------------------------
# The backends
# ---------------------------------------------------------------------------


class TcpMesh:
    """A persistent local TCP mesh: ``p`` rank processes alive across runs.

    The socket analogue of :class:`~repro.backends.processes.BspPool`:
    rendezvous + full-mesh connect cost tens of milliseconds, so a
    harness sweep keeps the ranks and ships ``(program, args)`` per run
    by pickle (module-level callables only).  Runs may use any
    ``nprocs <= capacity``; idle ranks sit out.

    Failure policy differs from ``BspPool``: a byte stream cannot be
    fenced — an aborted boundary may leave a half-flushed frame that
    desynchronizes the receiver's decoder forever — so **any** failed
    run (error, crash, deadlock) marks the mesh dirty and the next
    ``run()`` rebuilds ranks and sockets from scratch.
    """

    def __init__(self, nprocs: int, *, host: str = "127.0.0.1",
                 join_timeout: float = 120.0):
        Backend.check_nprocs(nprocs)
        try:
            self._ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise BspConfigError(
                "the tcp backend requires a fork-capable platform") from exc
        self._capacity = nprocs
        self._host = host
        self._join_timeout = join_timeout
        self._run_id = 0
        self._closed = False
        self._dirty = False
        # Supervision counters surfaced by health(), mirroring BspPool:
        # every dirty-rebuild re-forks the whole rank set (streams cannot
        # be partially healed), and there is no restart budget.
        self._generation = 0
        self._restarts = 0
        self._last_fault: str | None = None
        self._links: dict[int, _Link] = {}
        self._procs: list[Any] = []
        self._build()

    # -- lifecycle ----------------------------------------------------------

    def _build(self) -> None:
        token = _next_token()
        coord_listener = bind_listener(self._host)
        parent_listener = bind_listener(self._host)
        coord_addr = coord_listener.getsockname()
        parent_addr = parent_listener.getsockname()
        self._procs = [
            self._ctx.Process(
                target=_pool_rank,
                args=(rank, self._capacity, coord_addr, parent_addr,
                      coord_listener, token),
                name=f"bsp-tcp-pool-{rank}",
                daemon=True,
            )
            for rank in range(self._capacity)
        ]
        for proc in self._procs:
            proc.start()
        coord_listener.close()  # rank 0 inherited it; parent's copy is done
        self._links = {}
        deadline = time.monotonic() + 30.0
        parent_listener.settimeout(0.2)
        try:
            while len(self._links) < self._capacity:
                if time.monotonic() > deadline:
                    raise SynchronizationError(
                        "tcp mesh build timed out waiting for rank "
                        "control connections")
                dead = [r for r, p in enumerate(self._procs)
                        if not p.is_alive()]
                if dead:
                    proc = self._procs[dead[0]]
                    proc.join(timeout=1.0)
                    now = time.monotonic()
                    detail = describe_workers(_worker_statuses(
                        self._capacity, [None] * self._capacity,
                        self._procs, None, [now] * self._capacity, now))
                    raise WorkerCrashError(dead[0], proc.exitcode,
                                           os_pid=proc.pid, detail=detail)
                try:
                    sock, _ = parent_listener.accept()
                except socket.timeout:
                    continue
                link = _Link(sock)
                hello_deadline = time.monotonic() + 5.0
                while link.rank is None and not link.eof \
                        and time.monotonic() < hello_deadline:
                    _drain_link(link, self._note_hello)
                    if link.rank is None:
                        time.sleep(0.002)
                if link.rank is None or not 0 <= link.rank < self._capacity:
                    link.close()
                    continue
                self._links[link.rank] = link
        finally:
            parent_listener.close()
        self._dirty = False

    @staticmethod
    def _note_hello(link: _Link, frame: Frame) -> None:
        if frame.tag == wire.TAG_HELLO:
            link.rank = wire.frame_object(frame)

    def _teardown(self, *, graceful: bool) -> None:
        if graceful:
            for link in self._links.values():
                try:
                    wire.send_chunks(link.sock, wire.encode_frame(
                        wire.TAG_CLOSE, 0, 0, -1))
                except OSError:
                    pass
        _join_escalating(self._procs, grace=5.0 if graceful else 0.5)
        for link in self._links.values():
            link.close()
        self._links = {}

    def close(self) -> None:
        """Shut the ranks down; the mesh is unusable afterwards."""
        if not self._closed:
            self._closed = True
            self._teardown(graceful=True)

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "TcpMesh":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def capacity(self) -> int:
        """Maximum ``nprocs`` a run on this mesh may use."""
        return self._capacity

    def health(self) -> PoolHealth:
        """Supervision snapshot (``BspPool.health`` parity).

        ``restarts_left`` is ``-1``: a mesh has no restart budget — every
        failed run is followed by a full rebuild at the next ``run()``.
        """
        alive = 0 if self._closed else \
            sum(1 for proc in self._procs if proc.is_alive())
        return PoolHealth(
            generation=self._generation,
            restarts=self._restarts,
            restarts_left=-1,
            last_fault=self._last_fault,
            alive=alive,
            capacity=self._capacity,
        )

    # -- running ------------------------------------------------------------

    def run(self, program: Program, nprocs: int | None = None,
            args: Sequence[Any] = (),
            kwargs: dict[str, Any] | None = None, *,
            sync: str = "strict") -> BackendRun:
        if self._closed:
            raise BspConfigError("TcpMesh is closed")
        nprocs = self._capacity if nprocs is None else nprocs
        Backend.check_nprocs(nprocs)
        check_sync(sync)
        if nprocs > self._capacity:
            raise BspConfigError(
                f"run of {nprocs} processors on a mesh of {self._capacity}")
        try:
            blob = pickle.dumps((program, args, kwargs or {}))
        except Exception as exc:
            raise BspUsageError(
                "a persistent tcp mesh ships the program by pickle; use a "
                "module-level function (not a lambda/closure) or a fresh "
                "TcpBackend(), whose fork inherits the program") from exc
        if self._dirty:
            self._teardown(graceful=False)
            self._build()
            self._generation += 1
            self._restarts += self._capacity
        self._run_id += 1
        run_id = self._run_id
        t0 = time.perf_counter()
        payload = (run_id, nprocs, blob, sync)
        for rank in range(nprocs):
            self._send_ctrl(self._links[rank], wire.encode_object_frame(
                wire.TAG_RUN, run_id, 0, -1, payload))
        try:
            outcomes = _collect_tcp(nprocs, run_id, self._procs[:nprocs],
                                    self._links, self._join_timeout)
        except (WorkerCrashError, SynchronizationError) as exc:
            self._dirty = True
            self._last_fault = f"{type(exc).__name__}: {exc}"
            raise
        except KeyboardInterrupt:
            # An interactive abort must not strand rank processes behind
            # wedged sockets: escalate terminate→kill and close the mesh.
            # Checkpoint shards already published by the interrupted run
            # stay on disk, so a checkpointing run remains resumable.
            self._closed = True
            self._last_fault = "KeyboardInterrupt"
            self._teardown(graceful=False)
            raise
        wall = time.perf_counter() - t0
        if any(o is None or o[0] != "ok" for o in outcomes):
            self._dirty = True  # streams may hold half-flushed frames
            _raise_run_failure(outcomes)
        results = [o[1] for o in outcomes]  # type: ignore[index]
        ledgers = [o[2] for o in outcomes]  # type: ignore[index]
        return BackendRun(results=results, ledgers=ledgers, wall_seconds=wall)

    @staticmethod
    def _send_ctrl(link: _Link, chunks: Sequence[Any]) -> None:
        # The supervisor side keeps sockets non-blocking for collection;
        # control sends (a pickled program can be large) need blocking
        # semantics for the moment of the write.
        link.sock.setblocking(True)
        try:
            wire.send_chunks(link.sock, chunks)
        finally:
            link.sock.setblocking(False)


class TcpBackend(Backend):
    """One process per virtual processor over a real TCP mesh (B.3)."""

    name = "tcp"

    def __init__(self, *, join_timeout: float = 120.0,
                 host: str = "127.0.0.1", mesh: TcpMesh | None = None):
        self._join_timeout = join_timeout
        self._host = host
        self._mesh = mesh
        self._owns_mesh = False
        try:
            self._ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise BspConfigError(
                "the tcp backend requires a fork-capable platform") from exc

    @classmethod
    def pool(cls, nprocs: int, *, host: str = "127.0.0.1",
             join_timeout: float = 120.0) -> "TcpBackend":
        """A backend bound to its own persistent :class:`TcpMesh`.

        Usable as a context manager::

            with TcpBackend.pool(4) as backend:
                for config in sweep:
                    backend.run(program, 4, args=config)

        Ranks rendezvous and mesh once; every ``run()`` reuses them.
        Programs are shipped by pickle (module-level callables only).
        """
        backend = cls(join_timeout=join_timeout, host=host,
                      mesh=TcpMesh(nprocs, host=host,
                                   join_timeout=join_timeout))
        backend._owns_mesh = True
        return backend

    def __enter__(self) -> "TcpBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        """Release the owned mesh, if any (no-op for one-shot backends)."""
        if self._owns_mesh and self._mesh is not None:
            self._mesh.close()

    def health(self) -> PoolHealth | None:
        """The bound mesh's supervision snapshot; ``None`` when one-shot."""
        return None if self._mesh is None else self._mesh.health()

    def run(
        self,
        program: Program,
        nprocs: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
        *,
        sync: str = "strict",
    ) -> BackendRun:
        self.check_nprocs(nprocs)
        check_sync(sync)
        kwargs = kwargs or {}
        if self._mesh is not None:
            return self._mesh.run(program, nprocs, args=args, kwargs=kwargs,
                                  sync=sync)
        ctx = self._ctx
        token = _next_token()
        # Pre-bind the rendezvous listener in the parent: rank 0 inherits
        # the bound socket, so rank 1's first dial cannot race the bind.
        coord_listener = bind_listener(self._host)
        parent_listener = bind_listener(self._host)
        coord_addr = coord_listener.getsockname()
        parent_addr = parent_listener.getsockname()
        parent_listener.setblocking(False)
        procs = [
            ctx.Process(
                target=_oneshot_rank,
                args=(rank, nprocs, coord_addr, parent_addr, coord_listener,
                      token, program, args, kwargs, sync),
                name=f"bsp-tcp-{rank}",
                daemon=True,
            )
            for rank in range(nprocs)
        ]
        t0 = time.perf_counter()
        for proc in procs:
            proc.start()
        coord_listener.close()
        links: dict[int, _Link] = {}
        anon: list[_Link] = []
        try:
            outcomes = _collect_tcp(nprocs, 0, procs, links,
                                    self._join_timeout,
                                    listener=parent_listener, anon=anon)
        finally:
            # Near-instant after a clean run (ranks already exited); after
            # a failure the grace only delays SIGTERM to stuck ranks.
            _join_escalating(procs, grace=2.0)
            parent_listener.close()
            for link in list(links.values()) + anon:
                link.close()
        wall = time.perf_counter() - t0
        _raise_run_failure(outcomes)
        results = [o[1] for o in outcomes]  # type: ignore[index]
        ledgers = [o[2] for o in outcomes]  # type: ignore[index]
        return BackendRun(results=results, ledgers=ledgers, wall_seconds=wall)


class TcpSpmdBackend(Backend):
    """One *already-launched* rank of a (possibly multi-host) mesh.

    Every participating invocation — one per host, started by
    ``python -m repro.harness launch-tcp --rank r --coordinator h:p`` —
    constructs this backend with its own rank and the shared coordinator
    address, then calls ``bsp_run`` with the *same* program and
    arguments.  Each rank executes its share over the mesh; outcomes are
    all-gathered at the end, so every rank returns the complete
    :class:`BackendRun` (rank 0's invocation typically reports).

    Supervision here is in-band only (there is no common parent): a
    vanished peer surfaces via EOF/``SO_KEEPALIVE`` as an aborted run,
    not as an attributed :class:`WorkerCrashError`.  A failed run marks
    the mesh broken — relaunch the ranks rather than reusing it.
    """

    name = "tcp-spmd"

    def __init__(self, rank: int, nprocs: int,
                 coordinator: tuple[str, int], *, token: int = 0,
                 bind_host: str | None = None, timeout: float = 60.0):
        Backend.check_nprocs(nprocs)
        if not 0 <= rank < nprocs:
            raise BspConfigError(f"rank {rank} out of range({nprocs})")
        self._rank = rank
        self._nprocs = nprocs
        self._timeout = timeout
        self._socks = rendezvous_mesh(rank, nprocs, coordinator,
                                      token=token, bind_host=bind_host,
                                      timeout=timeout)
        self._decoders = {p: wire.FrameDecoder() for p in self._socks}
        self._run_id = 0
        self._dirty = False

    @property
    def rank(self) -> int:
        return self._rank

    def run(
        self,
        program: Program,
        nprocs: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
        *,
        sync: str = "strict",
    ) -> BackendRun:
        if nprocs != self._nprocs:
            raise BspConfigError(
                f"this mesh has {self._nprocs} ranks; cannot run "
                f"nprocs={nprocs}")
        check_sync(sync)
        if self._dirty:
            raise BspConfigError(
                "mesh streams may be corrupt after a failed run; relaunch "
                "the ranks")
        self._run_id += 1
        run_id = self._run_id
        channel = _MeshChannel(self._rank, nprocs, dict(self._socks),
                               run_id, None, decoders=self._decoders,
                               sync=sync)
        t0 = time.perf_counter()
        try:
            outcome = _run_program(channel, self._rank, nprocs, run_id,
                                   program, args, kwargs or {})
            channel.broadcast_result(outcome)
            try:
                gathered = channel.gather_results(nprocs, self._timeout)
            except (_Abort, _PeerLost) as exc:
                self._dirty = True
                raise SynchronizationError(
                    f"a peer vanished while gathering outcomes: {exc!r}"
                ) from None
        finally:
            channel.shutdown(close=False)
        wall = time.perf_counter() - t0
        gathered[self._rank] = outcome
        outcomes: list[tuple | None] = [None] * nprocs
        for r, oc in gathered.items():
            if 0 <= r < nprocs:
                outcomes[r] = (oc[0], oc[3], oc[4])
        if any(o is None or o[0] != "ok" for o in outcomes):
            self._dirty = True
            _raise_run_failure(outcomes)
        results = [o[1] for o in outcomes]  # type: ignore[index]
        ledgers = [o[2] for o in outcomes]  # type: ignore[index]
        return BackendRun(results=results, ledgers=ledgers, wall_seconds=wall)

    def close(self) -> None:
        for sock in self._socks.values():
            try:
                sock.close()
            except OSError:
                pass
