"""TCP socket backend — the paper's PC-LAN platform (Appendix B.3).

One OS process per virtual processor, connected in a full TCP mesh, so
the same Green BSP programs that run on the shared-memory and process
backends run across *separate machines*.  Communication still happens
only at superstep boundaries: each rank buckets its outgoing packets per
destination during the superstep and, at the boundary, ships **one
combined frame per peer** using the exact pickle-5 out-of-band layout of
:mod:`~repro.backends.frames` — so ``seq``/``h`` accounting (and hence
every ledger) is bit-identical to the other backends.

``bspSynch`` is a two-phase barrier over the mesh:

1. *counts exchange* — in :func:`~repro.backends.exchange.peer_order`
   (B.3's pairing discipline), every rank sends each peer a tiny
   ``TAG_COUNTS`` frame announcing how many data frames follow for this
   superstep (0 or 1, since buckets are combined), then the data frame
   itself.  A rank has "arrived" once every live peer's announced frames
   are in hand.
2. *release* — it then broadcasts ``TAG_RELEASE`` and may pass the
   barrier only after receiving every live peer's release.  This bounds
   run-ahead to one superstep (early frames are stashed by step), and
   gives DROP_FRAME fault injection its honest semantics: a dropped
   frame stalls phase 1 forever, which supervision reports as a
   :class:`~repro.core.errors.DeadlockError`.

That is the **strict** (default) mode.  ``run(..., sync="relaxed")``
drops both control rounds: completion is piggybacked on the data frames
themselves (the wire header's ``more`` bit), every live link carries
exactly one frame per boundary (empty buckets become an empty final
frame), and per-link TCP FIFO bounds run-ahead to one superstep.
``sync="elide"`` additionally uses a declared
:class:`~repro.bsplib.CommPattern` to skip non-neighbour links
entirely.  See :class:`_MeshChannel`.  All modes deliver bit-identical
results and ledgers; checkpoint cuts fence through the strict barrier
in every mode.

All sockets are non-blocking and serviced by one
:mod:`selectors`-based event loop per rank, so serialization, sends, and
receives overlap — the loop *is* Appendix B.3's "receivers actively
empty the pipe" discipline, which is what makes two peers pushing large
boundary frames at each other deadlock-free.

Supervision mirrors the process backend (whose helpers it reuses): every
rank keeps a control connection to its supervisor carrying heartbeat
frames per boundary and the final outcome; the supervisor multiplexes
those sockets with each rank's ``Process.sentinel``, so a SIGKILLed rank
surfaces as :class:`~repro.core.errors.WorkerCrashError` within
milliseconds and flat heartbeats at the deadline become a
:class:`~repro.core.errors.DeadlockError`.  Mesh sockets carry
``SO_KEEPALIVE`` so a vanished *machine* (no FIN, no RST) eventually
dies too.  Peer-death propagates in-band: EOF from a peer that never
sent its departure sentinel aborts the survivor's exchange.

The transport is *survivable* (DESIGN "Failure-mode matrix").  Every
mesh frame carries a sequenced, CRC-protected envelope; each link keeps
a retransmit journal of unacked frames, so a CRC-damaged frame is
NACKed and resent surgically, while structural stream damage, a dropped
connection, or an injected RST resets just that link: the pair's higher
rank re-dials the lower rank's still-bound listener (session epoch =
launch token folded with the mesh generation) and replays the journal
from the peer's receive cursor.  Ledgers and results stay bit-identical
through all of it.  A *dead rank* is healed one level up: the mesh
supervisor aborts the run on the survivors, forks a replacement, and
re-rendezvouses everyone at the next generation (``TAG_REMESH``), so a
checkpointed run resumes on the healed mesh without tearing down the
surviving processes.  ``integrity=False`` switches all of it off for
overhead measurement.

Three execution modes:

* **one-shot** (plain ``TcpBackend()``): ``run()`` forks ``p`` fresh
  ranks on localhost; programs need not be picklable (fork inherits
  them).  The parent pre-binds the rendezvous listener so rank 0 inherits
  it — no port race.
* **persistent** (``TcpBackend.pool(p)`` / :class:`TcpMesh`): ranks and
  mesh stay up across runs; programs are shipped by pickle, so they must
  be module-level callables.  Unlike :class:`~repro.backends.processes.
  BspPool` there is no fence protocol: an aborted boundary can leave a
  half-flushed frame in a socket stream, so a failed run marks the mesh
  dirty and the next run rebuilds it — except a worker *crash*, which
  ``TcpMesh`` heals in place by re-forking only the dead ranks.
* **SPMD** (:class:`TcpSpmdBackend`): one already-launched rank per
  machine (``python -m repro.harness launch-tcp --rank r ...``); every
  invocation runs the same program and all-gathers outcomes at the end.
  After a failed run, ``remesh()`` re-admits the surviving ranks (and a
  relaunched replacement) at the next generation.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import pickle
import selectors
import socket
import struct
import threading
import time
import traceback
from collections import deque
from typing import Any, Sequence

from .. import faults
from ..core.api import Bsp
from ..core.errors import (
    BspConfigError,
    BspUsageError,
    PacketError,
    RemeshError,
    SynchronizationError,
    WorkerCrashError,
)
from ..core.packets import Packet, PacketRuns
from .base import (
    Backend,
    BackendRun,
    Program,
    check_pattern_sends,
    check_sync,
    describe_workers,
)
from .exchange import peer_order
from .frames import TAG_DEAD, TAG_LEFT, TAG_PKT, Frame
from .processes import (
    _Abort,
    _CRASH_GRACE,
    _CRASH_GRACE_ABNORMAL,
    _join_escalating,
    _raise_run_failure,
    _timeout_failure,
    _worker_statuses,
    PoolHealth,
)
from . import tcp_wire as wire
from .tcp_launch import (
    MeshFabric,
    bind_listener,
    connect_retry,
    relink_accept,
    relink_dial,
    rendezvous_fabric,
)

_TOKEN_COUNTER = itertools.count(1)

#: NACK-driven resends of one sequence number before the channel gives
#: up on surgical repair and resets the whole link (journal replay).
_MAX_RETRANSMITS = 4

#: Selector data sentinels for the two non-peer waitables a channel may
#: multiplex: the fabric's own listener (inbound relink dials) and the
#: control link (supervisor aborts during a run).
_LISTENER = "listener"
_CTRL = "ctrl"


def _next_token() -> int:
    """A launch token no stale mesh on this host will guess."""
    return (os.getpid() << 20) ^ next(_TOKEN_COUNTER)


class _PeerLost(BaseException):
    """A mesh peer's stream ended without a departure sentinel."""

    def __init__(self, peer: int):
        super().__init__(f"peer {peer} connection lost mid-run")
        self.peer = peer


class _LinkState:
    """Durable per-link transport state, outliving any one connection.

    Sequence numbers, the retransmit journal, and the receive cursor are
    properties of the *link* (the rank pair), not of the socket: a
    reconnected socket resumes exactly where the dead one stopped, and
    in pool mode the numbering continues across runs on the same mesh.

    ``journal`` maps ``seq -> encoded chunks`` for every sent frame the
    peer has not yet cumulatively acked; ``volatile`` marks journal
    entries whose payload memoryviews alias live program arrays (strict
    mode sends) — those are force-trimmed at barrier exit, where the
    peer's release proves receipt, so they are never replayed with
    mutated bytes.  ``stash`` is the receive-side reorder buffer that
    makes a NACK resend of one frame sufficient.
    """

    __slots__ = ("dec", "tx_seq", "rx_next", "peer_ack", "journal",
                 "volatile", "attempts", "stash", "retransmits",
                 "reconnects", "dups", "corrupts")

    def __init__(self) -> None:
        self.dec = wire.FrameDecoder()
        self.tx_seq = 0          # next sequence number to assign
        self.rx_next = 0         # next sequence number expected inbound
        self.peer_ack = 0        # highest cumulative ack seen from peer
        self.journal: dict[int, list] = {}
        self.volatile: set[int] = set()
        self.attempts: dict[int, int] = {}
        self.stash: dict[int, Frame] = {}
        self.retransmits = 0
        self.reconnects = 0
        self.dups = 0
        self.corrupts = 0


# ---------------------------------------------------------------------------
# Rank side: the mesh channel (event loop + two-phase barrier)
# ---------------------------------------------------------------------------


class _MeshChannel:
    """Superstep-boundary exchange over a socket mesh (one rank's view).

    ``sync`` selects the boundary protocol.  **strict** (default): the
    two-phase counts→release barrier described in the module docstring.
    **relaxed**: no TAG_COUNTS round and no TAG_RELEASE broadcast — each
    rank sends exactly one TAG_PKT frame per live link (empty buckets
    become an empty final frame) with the header's ``more`` bit cleared,
    and passes the barrier as soon as its own inbound final frames for
    the step are all in and its outbound queues drained.  Per-link TCP
    FIFO bounds run-ahead to one superstep (a peer cannot start step
    ``s+1`` before our step-``s`` final reached it).  **elide**: like
    relaxed, but with a declared :class:`~repro.bsplib.CommPattern` the
    rank sends finals only along ``sends_to`` links and awaits only
    ``receives_from`` links — non-neighbours exchange nothing at all.
    """

    def __init__(self, rank: int, nprocs: int,
                 socks: dict[int, socket.socket], run_id: int,
                 ctrl: "_CtrlLink | None", *,
                 links: dict[int, _LinkState] | None = None,
                 sync: str = "strict",
                 fabric: MeshFabric | None = None,
                 integrity: bool = True,
                 heartbeat_interval: float = 0.25,
                 reconnect_timeout: float = 5.0,
                 watch_ctrl: bool = False):
        self._rank = rank
        self._nprocs = nprocs
        self._socks = dict(socks)
        self._run_id = run_id
        self._ctrl = ctrl
        self._sync = sync
        self._fabric = fabric
        self._integrity = integrity
        self._reconnect_timeout = reconnect_timeout
        self._pattern = None
        #: One-shot downgrade to the strict protocol (checkpoint cuts).
        self._fence_strict = False
        #: Heartbeat piggybacking state (relaxed/elide): inbound data
        #: frames since the last control beat, and when that beat was.
        self._data_beats = 0
        self._last_beat = time.monotonic()
        self._hb_interval = heartbeat_interval
        self._hb_sent = (0, 0)
        self._peers = peer_order(nprocs, rank)
        self._sel = selectors.DefaultSelector()
        self._link = links if links is not None else {
            peer: _LinkState() for peer in self._socks}
        self._out: dict[int, deque] = {p: deque() for p in self._socks}
        self._mask: dict[int, int] = {}
        self._departed: set[int] = set()
        self._eof: set[int] = set()
        #: Peers whose reconnect we are passively awaiting (they dial
        #: us, per the pair rule) -> monotonic deadline.
        self._waiting: dict[int, float] = {}
        self._gathering = False
        #: Per-step stashes; TCP per-link ordering bounds them to one
        #: step of run-ahead, but the dicts handle the general case.
        self._counts: dict[int, dict[int, int]] = {}
        self._data: dict[int, dict[int, list[Packet]]] = {}
        self._release: dict[int, set[int]] = {}
        #: Relaxed-sync completion: peers whose final (``more == 0``)
        #: frame for a step has arrived.  Strict-mode data frames also
        #: land here (they carry ``more == 0`` too); both paths pop it.
        self._final: dict[int, set[int]] = {}
        self._results: dict[int, Any] = {}
        for peer, sock in self._socks.items():
            sock.setblocking(False)
            self._sel.register(sock, selectors.EVENT_READ, peer)
            self._mask[peer] = selectors.EVENT_READ
        self._listening = False
        if fabric is not None and integrity and fabric.listener is not None:
            fabric.listener.setblocking(False)
            self._sel.register(fabric.listener, selectors.EVENT_READ,
                               _LISTENER)
            self._listening = True
        self._ctrl_watched = False
        if watch_ctrl and ctrl is not None:
            # Watch the control socket inside the mesh event loop so a
            # supervisor TAG_ABORT interrupts a rank stalled mid-barrier
            # (its peers are dead; no in-band frame is coming).
            ctrl._sock.setblocking(False)
            ctrl.watched = True
            self._sel.register(ctrl._sock, selectors.EVENT_READ, _CTRL)
            self._ctrl_watched = True
        if ctrl is not None:
            ctrl.beat(-1)  # marks "the run actually started here"

    # -- plumbing ------------------------------------------------------------

    def _enqueue(self, peer: int, chunks: Sequence[Any]) -> None:
        q = self._out.get(peer)
        if q is None:  # peer connection already closed
            return
        for chunk in chunks:
            mv = memoryview(chunk)
            if mv.format != "B" or mv.ndim != 1:
                mv = mv.cast("B")
            if mv.nbytes:
                q.append(mv)
        self._update_mask(peer)

    def _post(self, peer: int, chunks: Sequence[Any], *,
              volatile: bool = False, copy: bool = False,
              eager: bool = False, corrupt: bool = False,
              dup: bool = False) -> None:
        """Sequence, journal, and transmit one encoded frame to ``peer``.

        With integrity on, the frame gets the link's next sequence number
        (plus a piggybacked cumulative ack) via :func:`wire.reenvelope`
        and a journal entry retained until the peer acks past it.
        ``copy=True`` snapshots the payload bytes into the journal —
        required whenever the chunks alias live program arrays *and* the
        barrier does not prove delivery before they may mutate (relaxed
        run-ahead); strict-mode boundary frames use ``volatile=True``
        instead, which marks the entry for force-trim at barrier exit.
        ``corrupt``/``dup`` are fault-injection knobs: the journal always
        keeps the clean single copy, so recovery repairs the damage.
        """
        link = self._link.get(peer)
        if self._integrity and link is not None:
            seq = link.tx_seq
            link.tx_seq += 1
            out = wire.reenvelope(chunks, seq, link.rx_next)
            link.journal[seq] = [
                c if isinstance(c, bytes) else bytes(c) for c in out
            ] if copy else list(out)
            if volatile:
                link.volatile.add(seq)
            if corrupt:
                trailer = bytes(out[-1])
                out = list(out)
                out[-1] = bytes((trailer[0] ^ 0xFF,)) + trailer[1:]
        else:
            out = list(chunks)
        if eager and not dup:
            self._send_now(peer, out)
        else:
            self._enqueue(peer, out)
            if dup:
                self._enqueue(peer, out)

    def _send_now(self, peer: int, chunks: Sequence[Any]) -> None:
        """Send eagerly on the (almost always writable) socket.

        The relaxed boundary sends one small frame per link; pushing it
        straight into the kernel skips the queue's two selector
        re-registrations and one write-ready select round per link per
        step.  On backpressure the unsent tail falls back to the queued
        path, so ordering and the drain invariant are untouched.
        """
        q = self._out.get(peer)
        sock = self._socks.get(peer)
        if q is None or sock is None:
            return
        if q:  # earlier bytes still queued: keep the link FIFO
            self._enqueue(peer, chunks)
            return
        try:
            for i, chunk in enumerate(chunks):
                mv = memoryview(chunk)
                if mv.format != "B" or mv.ndim != 1:
                    mv = mv.cast("B")
                off = 0
                while off < mv.nbytes:
                    try:
                        off += sock.send(mv[off:] if off else mv)
                    except (BlockingIOError, InterruptedError):
                        self._enqueue(
                            peer, [mv[off:]] + list(chunks[i + 1:]))
                        return
        except OSError:
            # The frame (if sequenced) is journaled: abandon this send
            # and let reconnect-replay deliver it.
            self._link_down(peer)

    def _update_mask(self, peer: int) -> None:
        sock = self._socks.get(peer)
        if sock is None:
            return
        want = 0 if peer in self._eof else selectors.EVENT_READ
        if self._out.get(peer):
            want |= selectors.EVENT_WRITE
        cur = self._mask.get(peer, 0)
        if want == cur:
            return
        if cur and want:
            self._sel.modify(sock, want, peer)
        elif want:
            self._sel.register(sock, want, peer)
        else:
            self._sel.unregister(sock)
        self._mask[peer] = want

    def _drop_sock(self, peer: int) -> None:
        """Discard ``peer``'s socket and queue, keeping the link state."""
        sock = self._socks.pop(peer, None)
        if sock is not None:
            if self._mask.get(peer):
                try:
                    self._sel.unregister(sock)
                except (KeyError, ValueError):
                    pass
            try:
                sock.close()
            except OSError:
                pass
        self._mask[peer] = 0
        self._out.pop(peer, None)

    def _close_peer(self, peer: int) -> None:
        self._eof.add(peer)
        self._waiting.pop(peer, None)
        self._drop_sock(peer)

    def _can_heal(self, peer: int) -> bool:
        return self._fabric is not None and self._integrity

    def _link_down(self, peer: int) -> None:
        """A peer's connection died: heal it or abort the run.

        With a fabric (and integrity on), the link is re-established
        under the rendezvous pair rule — the higher rank of the pair
        re-dials the lower's still-bound listener; the lower waits for
        the dial (serviced by ``_pump`` via the listener registration),
        with a deadline.  Everything unacked replays from the journal.
        """
        if peer in self._departed or peer in self._eof:
            self._close_peer(peer)
            return
        if not self._can_heal(peer):
            self._close_peer(peer)
            raise _PeerLost(peer)
        self._drop_sock(peer)
        fabric = self._fabric
        link = self._link[peer]
        if fabric.dials(peer):
            # Dial in short slices, draining the watched control socket
            # between them: when the peer is dead (not merely dropped)
            # the supervisor's abort must be able to interrupt this
            # wait, or every surviving dialer stalls out the full
            # reconnect window before the heal can begin.
            deadline = time.monotonic() + self._reconnect_timeout
            while True:
                if self._ctrl_watched:
                    self._read_ctrl()  # raises _Abort on supervisor abort
                now = time.monotonic()
                if now >= deadline:
                    self._close_peer(peer)
                    raise _PeerLost(peer)
                try:
                    sock, peer_rx = relink_dial(
                        fabric, peer, link.rx_next,
                        min(deadline, now + 0.25))
                    break
                except (SynchronizationError, OSError):
                    continue
            self._resume_link(peer, sock, peer_rx)
        else:
            self._waiting[peer] = time.monotonic() + self._reconnect_timeout

    def _resume_link(self, peer: int, sock: socket.socket,
                     peer_rx: int) -> None:
        """Splice a fresh connection into the link, replaying the journal."""
        link = self._link[peer]
        if any(s not in link.journal for s in range(peer_rx, link.tx_seq)):
            # A frame the peer never received was already trimmed (it was
            # volatile and its barrier completed — impossible unless the
            # peer lies) — the link cannot be made whole.
            try:
                sock.close()
            except OSError:
                pass
            self._close_peer(peer)
            raise _PeerLost(peer)
        sock.setblocking(False)
        self._waiting.pop(peer, None)
        self._eof.discard(peer)
        self._socks[peer] = sock
        if self._fabric is not None:
            self._fabric.socks[peer] = sock
        self._out[peer] = deque()
        link.dec = wire.FrameDecoder()  # mid-frame debris died with the sock
        link.attempts.clear()
        link.reconnects += 1
        self._sel.register(sock, selectors.EVENT_READ, peer)
        self._mask[peer] = selectors.EVENT_READ
        for s in range(peer_rx, link.tx_seq):
            self._enqueue(peer, wire.reenvelope(link.journal[s], s,
                                                link.rx_next))

    def _accept_relinks(self) -> None:
        """Service inbound reconnect dials on the fabric listener."""
        fabric = self._fabric
        while True:
            try:
                sock, _ = fabric.listener.accept()
            except (BlockingIOError, InterruptedError, OSError):
                return
            got = relink_accept(fabric, sock,
                                lambda p: self._link[p].rx_next)
            if got is None:
                continue
            peer, peer_rx = got
            if not (0 <= peer < self._nprocs and peer != self._rank
                    and peer in self._link) or peer in self._departed:
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            if peer in self._socks:  # stale half-open socket superseded
                self._drop_sock(peer)
            self._resume_link(peer, sock, peer_rx)

    def _read_ctrl(self) -> None:
        """Drain the watched control socket; supervisor aborts raise."""
        ctrl = self._ctrl
        try:
            data = ctrl._sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if not data:
            try:
                self._sel.unregister(ctrl._sock)
            except (KeyError, ValueError):
                pass
            self._ctrl_watched = False
            return
        abort = False
        for frame in ctrl._dec.feed(data):
            if frame.tag == wire.TAG_ABORT:
                if frame.run_id == self._run_id and not self._gathering:
                    abort = True
                continue  # stale abort of an earlier run: drop
            # Not ours (TAG_REMESH, TAG_RUN...): leave it for the rank
            # loop's blocking recv, which drains _ready first.
            ctrl._dec._ready.append(frame)
        if abort:
            raise _Abort()

    def _inject_reset(self, peer: int) -> None:
        """Fault injection: abort the TCP connection (RST, not FIN)."""
        sock = self._socks.get(peer)
        if sock is not None:
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))
            except OSError:
                pass
        self._link_down(peer)

    def _pump(self, timeout: float = 0.05) -> None:
        if self._waiting:
            now = time.monotonic()
            for peer, deadline in list(self._waiting.items()):
                if now > deadline:
                    self._close_peer(peer)
                    raise _PeerLost(peer)
        if not any(self._mask.values()) and not self._listening \
                and not self._ctrl_watched:
            return
        for key, events in self._sel.select(timeout):
            peer = key.data
            if peer == _LISTENER:
                self._accept_relinks()
                continue
            if peer == _CTRL:
                self._read_ctrl()
                continue
            if events & selectors.EVENT_WRITE:
                self._flush(peer)
            if events & selectors.EVENT_READ:
                self._read(peer)

    def _flush(self, peer: int) -> None:
        q = self._out.get(peer)
        sock = self._socks.get(peer)
        if q is None or sock is None:
            return
        try:
            while q:
                sent = sock.send(q[0])
                if sent < len(q[0]):
                    q[0] = q[0][sent:]
                    break
                q.popleft()
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._link_down(peer)
            return
        self._update_mask(peer)

    def _read(self, peer: int) -> None:
        sock = self._socks.get(peer)
        if sock is None:
            return
        try:
            data = sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if not data:
            self._link_down(peer)
            return
        link = self._link.get(peer)
        if link is None:
            return
        try:
            frames = link.dec.feed(data)
        except PacketError:
            # Structural stream damage: the framing itself cannot be
            # trusted, so surgical NACK repair is impossible — reset the
            # connection and replay the journal.
            link.corrupts += 1
            if self._can_heal(peer) and peer not in self._departed:
                self._link_down(peer)
                return
            raise
        for frame in frames:
            self._ingest(peer, frame)

    def _ingest(self, peer: int, frame: Frame) -> None:
        """Link-level filter: NACK/dup/reorder handling before dispatch."""
        link = self._link.get(peer)
        if frame.tag == wire.TAG_CORRUPT:
            # CRC mismatch, framing intact: ask for exactly that frame.
            if link is not None:
                link.corrupts += 1
            if frame.seq < 0 or not self._integrity:
                self._link_down(peer)  # unsequenced: cannot NACK
                return
            self._enqueue(peer, wire.encode_frame(
                wire.TAG_NACK, self._run_id, frame.seq, self._rank,
                crc=self._integrity))
            return
        if frame.tag == wire.TAG_NACK:
            self._retransmit(peer, frame.step)
            return
        if link is not None and frame.seq >= 0:
            if frame.ack > link.peer_ack:
                for s in range(link.peer_ack, frame.ack):
                    link.journal.pop(s, None)
                    link.attempts.pop(s, None)
                    link.volatile.discard(s)
                link.peer_ack = frame.ack
            if frame.seq < link.rx_next:
                link.dups += 1  # retransmit overlap or injected duplicate
                return
            if frame.seq > link.rx_next:
                link.stash[frame.seq] = frame  # reorder (post-NACK) gap
                return
            link.rx_next += 1
            self._handle(frame)
            while link.rx_next in link.stash:
                nxt = link.stash.pop(link.rx_next)
                link.rx_next += 1
                self._handle(nxt)
            return
        self._handle(frame)

    def _retransmit(self, peer: int, seq: int) -> None:
        """Resend journal entry ``seq`` in answer to a peer NACK."""
        link = self._link.get(peer)
        if link is None:
            return
        n = link.attempts.get(seq, 0) + 1
        link.attempts[seq] = n
        entry = link.journal.get(seq)
        if entry is None or n > _MAX_RETRANSMITS:
            # Either the damage outlived the retry budget or the entry is
            # gone (trimmed volatile): escalate to a full link reset.
            self._link_down(peer)
            return
        link.retransmits += 1
        self._enqueue(peer, wire.reenvelope(entry, seq, link.rx_next))

    def _handle(self, frame: Frame) -> None:
        tag = frame.tag
        if tag == TAG_LEFT:
            if frame.run_id == self._run_id:
                self._departed.add(frame.src)
            return
        if tag == TAG_DEAD:
            if frame.run_id == self._run_id and not self._gathering:
                raise _Abort()
            return
        if frame.run_id != self._run_id:
            return  # debris from an earlier, failed run on this mesh
        if tag == TAG_PKT:
            self._data_beats += 1
            self._data.setdefault(frame.step, {})[frame.src] = \
                frame.packets(self._rank)
            if frame.more == 0:
                self._final.setdefault(frame.step, set()).add(frame.src)
        elif tag == wire.TAG_COUNTS:
            self._counts.setdefault(frame.step, {})[frame.src] = \
                pickle.loads(frame.meta)
        elif tag == wire.TAG_RELEASE:
            self._release.setdefault(frame.step, set()).add(frame.src)
        elif tag == wire.TAG_RESULT:
            self._results[frame.src] = wire.frame_object(frame)

    # -- the ExchangeChannel contract ---------------------------------------

    def declare_pattern(self, pattern) -> None:
        """Declare the static communication pattern of this rank.

        In ``elide`` mode the pattern prunes the boundary to its true
        edges; in every mode a declared pattern (with ``validate=True``)
        turns out-of-pattern sends into a
        :class:`~repro.core.errors.BspUsageError` at the next boundary.
        """
        self._pattern = pattern

    def fence_next_sync(self) -> None:
        """Force the *next* boundary through the strict two-phase
        barrier (checkpoint cuts need a full fence in every mode)."""
        self._fence_strict = True

    def _beat(self, step: int) -> None:
        """Heartbeat, piggybacked on data traffic in relaxed/elide.

        Inbound data frames prove the fabric is moving, so a busy rank
        may skip the control-socket beat — but never for longer than the
        configured ``heartbeat_interval`` (default 0.25s), which keeps
        the supervisor's flat-heartbeat deadlock triage valid (its stall
        window is >= 1s, so keep the interval well under that).  A
        deadlocked rank stops reaching boundaries, stops beating either
        way, and still goes flat.

        Beats also piggyback this rank's cumulative (retransmits,
        reconnects) counters whenever they changed, so the supervisor's
        ``health()`` sees link-level repair activity live.
        """
        if self._ctrl is None:
            return
        if self._sync != "strict":
            now = time.monotonic()
            busy = self._data_beats > 0
            self._data_beats = 0
            if busy and now - self._last_beat < self._hb_interval:
                return
            self._last_beat = now
        totals = (sum(l.retransmits for l in self._link.values()),
                  sum(l.reconnects for l in self._link.values()))
        meta = None
        if totals != self._hb_sent:
            self._hb_sent = totals
            meta = pickle.dumps(totals)
        self._ctrl.beat(step, meta)

    def exchange(self, pid: int, step: int,
                 outbox: list[Packet]) -> PacketRuns:
        self._beat(step)
        # Fault-injection hook — one attribute load + None test when off.
        plan = faults._ACTIVE
        if plan is not None:
            plan.at_boundary(self._rank, step, self._nprocs, outbox)
            if plan.has_network_faults():
                for peer in plan.reset_peers(
                        self._rank, step,
                        [q for q in self._peers if q in self._socks]):
                    self._inject_reset(peer)
        buckets: dict[int, list[Packet]] = {}
        for pkt in outbox:
            buckets.setdefault(pkt.dst, []).append(pkt)
        if self._pattern is not None:
            check_pattern_sends(self._rank, step, buckets, self._pattern)
        strict = self._sync == "strict" or self._fence_strict
        self._fence_strict = False
        if not strict:
            return self._exchange_relaxed(step, buckets)
        run_id, rank = self._run_id, self._rank

        # Phase 1 sends, in the total-exchange pairing order (B.3).
        for peer in self._peers:
            if peer in self._departed:
                continue
            corrupt = dup = False
            if plan is not None:
                if plan.drops_frame(rank, step, peer):
                    continue  # lost message: the peer stalls in phase 1
                delay = plan.slow_link(rank, step, peer)
                if delay:
                    time.sleep(delay)
                corrupt = plan.corrupts_frame(rank, step, peer)
                dup = plan.duplicates_frame(rank, step, peer)
            bucket = buckets.get(peer)
            # Encode the data frame *before* enqueueing anything for this
            # peer: a pickling failure must not leave a counts frame
            # announcing data that will never arrive.
            data_chunks = wire.encode_packet_frame(
                run_id, step, rank, bucket,
                crc=self._integrity) if bucket else None
            self._post(peer, wire.encode_frame(
                wire.TAG_COUNTS, run_id, step, rank,
                pickle.dumps(1 if bucket else 0), crc=self._integrity),
                volatile=True, corrupt=corrupt and data_chunks is None,
                dup=dup)
            if plan is not None:
                plan.count_frame(rank)
            if data_chunks is not None:
                self._post(peer, data_chunks, volatile=True,
                           corrupt=corrupt, dup=dup)
                if plan is not None:
                    plan.count_frame(rank)

        # Event loop: flush our frames while receiving theirs.
        sent_release = False
        while True:
            counts = self._counts.get(step, {})
            data = self._data.get(step, {})
            live = [q for q in self._peers if q not in self._departed]
            if not sent_release and all(
                    q in counts and (counts[q] == 0 or q in data)
                    for q in live):
                for peer in live:
                    self._post(peer, wire.encode_frame(
                        wire.TAG_RELEASE, run_id, step, rank,
                        crc=self._integrity))
                    if plan is not None:
                        plan.count_frame(rank)
                sent_release = True
            if sent_release:
                rel = self._release.get(step, ())
                if all(q in rel or q in self._departed
                       for q in self._peers) \
                        and not any(self._out.values()):
                    break
            self._pump()
        if self._integrity:
            # A peer's release proves it received every phase-1 frame we
            # sent it, so the volatile journal entries (whose payload
            # memoryviews alias live program arrays about to mutate) can
            # never be NACKed or replayed — trim them now.
            for q in self._release.get(step, ()):
                link = self._link.get(q)
                if link is None:
                    continue
                for s in link.volatile:
                    link.journal.pop(s, None)
                    link.attempts.pop(s, None)
                link.volatile.clear()
        self._counts.pop(step, None)
        self._release.pop(step, None)
        self._final.pop(step, None)
        got = self._data.pop(step, {})
        own = buckets.get(rank)
        if own is not None:
            got[rank] = own
        # One run per source, each seq-sorted: canonical order once
        # concatenated by src.
        return PacketRuns(got.items())

    def _exchange_relaxed(self, step: int,
                          buckets: dict[int, list[Packet]]) -> PacketRuns:
        """One-phase boundary: finals piggybacked on the data frames.

        Exactly one TAG_PKT frame per out-link (an empty bucket becomes
        an empty final frame) with ``more == 0``; the barrier passes as
        soon as every awaited peer's final for this step is in hand and
        our outbound queues are drained (payload memoryviews reference
        live program arrays, so returning earlier would let the program
        mutate bytes still queued on a socket).  Run-ahead is bounded to
        one superstep by per-link TCP FIFO: a peer cannot pass step
        ``s`` before our step-``s`` final, which we only send after
        passing step ``s-1``.
        """
        run_id, rank = self._run_id, self._rank
        plan = faults._ACTIVE
        pattern = self._pattern
        if self._sync == "elide" and pattern is not None:
            out_targets = [q for q in self._peers if q in pattern.sends_to]
            expect = set(pattern.receives_from)
        else:
            out_targets = list(self._peers)
            expect = set(self._peers)
        empty_final = None  # identical for every empty link: encode once
        for peer in out_targets:
            if peer in self._departed:
                continue
            corrupt = dup = False
            if plan is not None:
                if plan.drops_frame(rank, step, peer):
                    continue  # lost message: the peer stalls on our final
                delay = plan.slow_link(rank, step, peer)
                if delay:
                    time.sleep(delay)
                corrupt = plan.corrupts_frame(rank, step, peer)
                dup = plan.duplicates_frame(rank, step, peer)
            bucket = buckets.get(peer)
            if bucket:
                chunks = wire.encode_packet_frame(run_id, step, rank,
                                                  bucket,
                                                  crc=self._integrity)
            else:
                if empty_final is None:
                    empty_final = wire.encode_packet_frame(
                        run_id, step, rank, (), crc=self._integrity)
                chunks = empty_final
            # copy=True: relaxed run-ahead means the program may mutate
            # the payload arrays before any ack arrives, so the journal
            # snapshots the bytes (reenvelope inside _post re-addresses
            # the shared empty final per peer).
            self._post(peer, chunks, copy=True, eager=True,
                       corrupt=corrupt, dup=dup)
            if plan is not None:
                plan.count_frame(rank)
        while True:
            final = self._final.get(step, ())
            if all(q in final or q in self._departed for q in expect) \
                    and not any(self._out.values()):
                break
            self._pump()
        self._final.pop(step, None)
        got = self._data.pop(step, {})
        own = buckets.get(rank)
        if own is not None:
            got[rank] = own
        # Empty finals decoded to empty runs; PacketRuns drops them, so
        # the merged inbox (and every ledger) matches strict mode.
        return PacketRuns(got.items())

    def depart(self) -> None:
        # Note: a peer being in ``_departed`` does NOT mean it stopped
        # reading — in SPMD mode it still pumps this link through the
        # result all-gather, and must see our LEFT before our EOF.  Only
        # an already-dead link is skipped.
        plan = faults._ACTIVE
        for peer in self._peers:
            if peer in self._eof:
                continue
            if plan is not None and plan.drops_depart(self._rank, peer):
                continue
            self._post(peer, wire.encode_frame(
                TAG_LEFT, self._run_id, 0, self._rank,
                crc=self._integrity))
        self._drain(timeout=30.0)

    def die(self) -> None:
        for peer in self._peers:
            if peer in self._eof:
                continue
            self._post(peer, wire.encode_frame(
                TAG_DEAD, self._run_id, 0, self._rank,
                crc=self._integrity))
        self._drain(timeout=5.0)

    def _drain(self, timeout: float) -> None:
        """Best-effort flush of every outbound queue."""
        deadline = time.monotonic() + timeout
        while any(self._out.values()) and time.monotonic() < deadline:
            try:
                self._pump()
            except _Abort:
                break  # the run is over either way
            except _PeerLost:
                # That link's queue died with it (_close_peer popped it);
                # the other peers still need their frames — a departing
                # rank that stops flushing LEFTs here turns one lost link
                # into a cascade of peers seeing EOF with no LEFT.
                continue

    # -- SPMD result all-gather ---------------------------------------------

    def broadcast_result(self, outcome: tuple) -> None:
        chunks = wire.encode_object_frame(
            wire.TAG_RESULT, self._run_id, 0, self._rank, outcome,
            crc=self._integrity)
        for peer in self._peers:
            if peer not in self._eof:
                # copy: the shared encode is re-sequenced per peer and
                # may be replayed after the gather already began.
                self._post(peer, chunks, copy=True)
        self._drain(timeout=30.0)

    def gather_results(self, nprocs: int, timeout: float) -> dict[int, Any]:
        self._gathering = True  # a peer's TAG_DEAD precedes its outcome
        deadline = time.monotonic() + timeout
        want = [q for q in self._peers if q < nprocs]
        while not all(q in self._results for q in want):
            if time.monotonic() > deadline:
                missing = [q for q in want if q not in self._results]
                raise SynchronizationError(
                    f"timed out gathering outcomes from ranks {missing}")
            self._pump(0.1)
        return dict(self._results)

    def shutdown(self, *, close: bool = True) -> None:
        # Final counter flush: relaxed-mode beats are throttled while data
        # traffic proves liveness, so a short run can finish with repair
        # counters the supervisor never saw.  One unconditional beat here
        # closes that gap (strict mode already beat at every boundary).
        if self._ctrl is not None:
            totals = (sum(l.retransmits for l in self._link.values()),
                      sum(l.reconnects for l in self._link.values()))
            if totals != self._hb_sent:
                self._hb_sent = totals
                self._ctrl.beat(-1, pickle.dumps(totals))
        for peer, mask in list(self._mask.items()):
            if mask and peer in self._socks:
                try:
                    self._sel.unregister(self._socks[peer])
                except (KeyError, ValueError):
                    pass
        self._mask.clear()
        if self._listening and self._fabric is not None \
                and self._fabric.listener is not None:
            try:
                self._sel.unregister(self._fabric.listener)
            except (KeyError, ValueError):
                pass
            self._listening = False
        if self._ctrl_watched and self._ctrl is not None:
            try:
                self._sel.unregister(self._ctrl._sock)
            except (KeyError, ValueError):
                pass
            self._ctrl._sock.setblocking(True)
            self._ctrl.watched = False
            self._ctrl_watched = False
        self._sel.close()
        if close:
            for sock in self._socks.values():
                # Consume anything still unread (a peer's crossing LEFT,
                # typically): closing with pending inbound makes the
                # kernel send RST instead of FIN, and the RST discards
                # our own final frames still buffered at the peer.
                try:
                    sock.setblocking(False)
                    while sock.recv(1 << 16):
                        pass
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass


# ---------------------------------------------------------------------------
# Rank side: control link + rank mains
# ---------------------------------------------------------------------------


class _CtrlLink:
    """A rank's blocking control connection to its supervisor."""

    def __init__(self, sock: socket.socket, rank: int):
        self._sock = sock
        self._rank = rank
        self._dec = wire.FrameDecoder()
        #: True while a mesh channel has this socket registered
        #: non-blocking in its selector (abort watching); sends then
        #: toggle blocking mode around the write.
        self.watched = False

    def _send(self, chunks: Sequence[Any]) -> None:
        if self.watched:
            self._sock.setblocking(True)
            try:
                wire.send_chunks(self._sock, chunks)
            finally:
                self._sock.setblocking(False)
        else:
            wire.send_chunks(self._sock, chunks)

    def hello(self) -> None:
        self._send(wire.encode_object_frame(
            wire.TAG_HELLO, 0, 0, self._rank, self._rank))

    def beat(self, step: int, meta: bytes | None = None) -> None:
        try:
            self._send(wire.encode_frame(
                wire.TAG_HB, 0, step, self._rank, meta))
        except OSError:  # supervisor gone; the run is ending anyway
            pass

    def result(self, outcome: tuple) -> None:
        # The stream guarantees this frame precedes our EOF, so the
        # supervisor's "EOF before result" test is exactly "crashed".
        self._send(wire.encode_object_frame(
            wire.TAG_RESULT, outcome[1], 0, self._rank, outcome))

    def recv(self) -> Frame | None:
        return wire.recv_frame(self._sock, self._dec)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def _run_program(channel: _MeshChannel, rank: int, nprocs: int, run_id: int,
                 program: Program, args: Sequence[Any],
                 kwargs: dict[str, Any]) -> tuple:
    """Run one program instance; returns the rank's outcome tuple."""
    bsp = Bsp(rank, nprocs, channel)
    try:
        result = program(bsp, *args, **kwargs)
        ledger = bsp._finish()
        channel.depart()
        return ("ok", run_id, rank, result, ledger)
    except (_Abort, _PeerLost):
        return ("aborted", run_id, rank, None, None)
    except BaseException:  # noqa: BLE001 - reported to the supervisor
        try:
            channel.die()
        except BaseException:  # pragma: no cover - mesh already gone
            pass
        return ("error", run_id, rank, traceback.format_exc(), None)


def _connect_ctrl(parent_addr: tuple[str, int], rank: int) -> _CtrlLink:
    # Retried with backoff+jitter: a freshly forked rank can dial before
    # the supervisor's accept loop is servicing the listener backlog.
    sock = connect_retry(parent_addr, time.monotonic() + 30.0,
                         what="supervisor control listener")
    ctrl = _CtrlLink(sock, rank)
    ctrl.hello()
    return ctrl


def _oneshot_rank(rank: int, nprocs: int, coord_addr: tuple[str, int],
                  parent_addr: tuple[str, int],
                  coord_listener: socket.socket | None, token: int,
                  program: Program, args: Sequence[Any],
                  kwargs: dict[str, Any], sync: str = "strict",
                  heartbeat_interval: float = 0.25,
                  integrity: bool = True,
                  reconnect_timeout: float = 5.0) -> None:
    """Forked rank main for a one-shot run (program inherited via fork)."""
    if rank != 0 and coord_listener is not None:
        coord_listener.close()  # inherited fd; only rank 0 may own it
    ctrl = _connect_ctrl(parent_addr, rank)
    fabric = rendezvous_fabric(
        rank, nprocs, coord_addr, token=token,
        coordinator_listener=coord_listener if rank == 0 else None)
    # No fabric is handed to the channel: a one-shot run has no
    # supervisor abort path, so waiting out a reconnect window on a
    # *dead* peer would only delay the teardown — frame integrity
    # (CRC + NACK retransmit) stays on, link loss aborts as before.
    channel = _MeshChannel(rank, nprocs, fabric.socks, 0, ctrl, sync=sync,
                           integrity=integrity,
                           heartbeat_interval=heartbeat_interval,
                           reconnect_timeout=reconnect_timeout)
    try:
        outcome = _run_program(channel, rank, nprocs, 0, program, args,
                               kwargs)
    finally:
        channel.shutdown()
    ctrl.result(outcome)
    fabric.close()
    ctrl.close()


def _pool_rank(rank: int, capacity: int, coord_addr: tuple[str, int],
               parent_addr: tuple[str, int],
               coord_listener: socket.socket | None, token: int,
               heartbeat_interval: float = 0.25, integrity: bool = True,
               reconnect_timeout: float = 5.0,
               generation: int = 0) -> None:
    """Persistent rank loop: execute runs shipped over the control link."""
    if rank != 0 and coord_listener is not None:
        coord_listener.close()
    ctrl = _connect_ctrl(parent_addr, rank)
    fabric = rendezvous_fabric(
        rank, capacity, coord_addr, token=token, generation=generation,
        coordinator_listener=coord_listener if rank == 0 else None)
    # Link state (decoder, sequence numbers, journal) persists across
    # runs: numbering is a property of the connection, and leftover
    # frames of a failed run are dropped by run_id.
    links = {peer: _LinkState() for peer in fabric.socks}
    if generation > 0:
        # A replacement rank forked mid-heal: report that the remesh
        # epoch reached us so the supervisor can finish the heal.
        ctrl.result(("remeshed", generation, rank, None, None))
    while True:
        frame = ctrl.recv()
        if frame is None or frame.tag == wire.TAG_CLOSE:
            break
        if frame.tag == wire.TAG_REMESH:
            gen, coord = wire.frame_object(frame)
            keep = None
            try:
                if rank == 0:
                    # Keep our well-known listener: survivors re-dial it.
                    keep, fabric.listener = fabric.listener, None
                fabric.close()
                fabric = rendezvous_fabric(
                    rank, capacity, tuple(coord), token=token,
                    generation=gen, coordinator_listener=keep)
            except BaseException:  # noqa: BLE001 - reported upward
                if keep is not None:
                    try:
                        keep.close()
                    except OSError:
                        pass
                ctrl.result(("error", gen, rank, traceback.format_exc(),
                             None))
                break
            links = {peer: _LinkState() for peer in fabric.socks}
            ctrl.result(("remeshed", gen, rank, None, None))
            continue
        if frame.tag != wire.TAG_RUN:
            continue  # e.g. a stale TAG_ABORT that raced our outcome
        run_id, nprocs, blob, sync = wire.frame_object(frame)
        try:
            program, args, kwargs = pickle.loads(blob)
        except BaseException:  # noqa: BLE001 - reported to the supervisor
            ctrl.result(("error", run_id, rank, traceback.format_exc(),
                         None))
            continue
        sub = {q: fabric.socks[q] for q in range(nprocs)
               if q != rank and q in fabric.socks}
        channel = _MeshChannel(rank, nprocs, sub, run_id, ctrl,
                               links=links, sync=sync,
                               fabric=fabric if integrity else None,
                               integrity=integrity,
                               heartbeat_interval=heartbeat_interval,
                               reconnect_timeout=reconnect_timeout,
                               watch_ctrl=True)
        outcome = _run_program(channel, rank, nprocs, run_id, program, args,
                               kwargs)
        channel.shutdown(close=False)
        ctrl.result(outcome)
    fabric.close()
    ctrl.close()


# ---------------------------------------------------------------------------
# Supervisor side: control-plane links and supervised collection
# ---------------------------------------------------------------------------


class _Link:
    """Supervisor's view of one rank's control connection."""

    __slots__ = ("sock", "dec", "eof", "rank")

    def __init__(self, sock: socket.socket):
        sock.setblocking(False)
        self.sock = sock
        self.dec = wire.FrameDecoder()
        self.eof = False
        self.rank: int | None = None  # known once TAG_HELLO arrives

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class _HbTable:
    """Adapter giving ``_timeout_failure`` its ``heartbeat(pid)`` probe."""

    def __init__(self, counts: list[int]):
        self._counts = counts

    def heartbeat(self, pid: int) -> int:
        return self._counts[pid]


def _drain_link(link: _Link, handle) -> None:
    """Read everything currently available on a supervisor-side link."""
    while not link.eof:
        try:
            data = link.sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if not data:
            link.eof = True
            return
        for frame in link.dec.feed(data):
            handle(link, frame)


def _collect_tcp(nprocs: int, run_id: int, procs: Sequence[Any],
                 links: dict[int, _Link], timeout: float, *,
                 listener: socket.socket | None = None,
                 anon: list[_Link] | None = None,
                 stats: dict[int, tuple] | None = None
                 ) -> list[tuple | None]:
    """Supervised gather of one outcome per rank over the control plane.

    Mirrors ``processes._collect_outcomes``: multiplexes every control
    socket, the hello listener (one-shot mode, where ranks are still
    dialing in) and each missing rank's ``Process.sentinel`` through
    :func:`multiprocessing.connection.wait`.  A control-socket EOF plus a
    dead process and no buffered result is a :class:`WorkerCrashError`
    within the crash-grace window; the expired deadline goes through the
    shared :func:`~repro.backends.processes._timeout_failure` triage
    (crash / deadlock / merely slow).
    """
    start = time.monotonic()
    deadline = start + timeout
    outcomes: list[tuple | None] = [None] * nprocs
    got = 0
    hb_counts = [0] * nprocs
    hb_when = [start] * nprocs
    hbtable = _HbTable(hb_counts)
    anon = anon if anon is not None else []

    def handle(link: _Link, frame: Frame) -> None:
        nonlocal got
        if frame.tag == wire.TAG_HELLO:
            link.rank = wire.frame_object(frame)
            links[link.rank] = link
            if link in anon:
                anon.remove(link)
            return
        rank = link.rank
        if rank is None or rank >= nprocs:
            return  # idle mesh rank of a smaller run
        if frame.tag == wire.TAG_HB:
            hb_counts[rank] += 1
            hb_when[rank] = time.monotonic()
            if frame.meta is not None and stats is not None:
                try:
                    stats[rank] = pickle.loads(frame.meta)
                except Exception:
                    pass  # malformed piggyback: the beat still counts
        elif frame.tag == wire.TAG_RESULT:
            outcome = wire.frame_object(frame)
            tag, rid = outcome[0], outcome[1]
            if rid != run_id or tag == "remeshed":
                return  # stray reply from an earlier run / late heal ack
            if outcomes[rank] is None:
                got += 1
            outcomes[rank] = (tag, outcome[3], outcome[4])

    while got < nprocs:
        now = time.monotonic()
        remaining = deadline - now
        if remaining <= 0:
            raise _timeout_failure(nprocs, outcomes, procs, hbtable,
                                   hb_when, timeout)
        missing = [pid for pid in range(nprocs) if outcomes[pid] is None]
        waitables: list[Any] = []
        if listener is not None:
            waitables.append(listener)
        for link in list(links.values()) + list(anon):
            if link.eof:
                continue
            if link.rank is not None and (link.rank >= nprocs
                                          or outcomes[link.rank] is not None):
                continue
            waitables.append(link.sock)
        waitables += [procs[pid].sentinel for pid in missing]
        mp_connection.wait(waitables, timeout=min(remaining, 0.25))
        if listener is not None:
            while True:
                try:
                    sock, _ = listener.accept()
                except (BlockingIOError, socket.timeout, OSError):
                    break
                anon.append(_Link(sock))
        for link in list(anon) + list(links.values()):
            _drain_link(link, handle)
        crashed = [pid for pid in missing
                   if outcomes[pid] is None and not procs[pid].is_alive()]
        if not crashed:
            continue
        for pid in crashed:
            procs[pid].join(timeout=1.0)  # reap, so exitcode is final
        # The victim's result may still be in its socket buffer (an exit
        # right after reporting): TCP keeps buffered bytes readable after
        # death, so one short grace drain before declaring a crash.
        window = _CRASH_GRACE if any(procs[pid].exitcode == 0
                                     for pid in crashed) \
            else _CRASH_GRACE_ABNORMAL
        grace = time.monotonic() + window
        while any(outcomes[pid] is None for pid in crashed):
            for pid in crashed:
                link = links.get(pid)
                if link is not None:
                    _drain_link(link, handle)
            if time.monotonic() >= grace:
                break
            time.sleep(0.005)
        lost = [pid for pid in crashed if outcomes[pid] is None]
        if lost:
            proc = procs[lost[0]]
            proc.join(timeout=1.0)
            detail = describe_workers(_worker_statuses(
                nprocs, outcomes, procs, hbtable, hb_when, time.monotonic()))
            raise WorkerCrashError(lost[0], proc.exitcode, os_pid=proc.pid,
                                   detail=detail)
    return outcomes


# ---------------------------------------------------------------------------
# The backends
# ---------------------------------------------------------------------------


class TcpMesh:
    """A persistent local TCP mesh: ``p`` rank processes alive across runs.

    The socket analogue of :class:`~repro.backends.processes.BspPool`:
    rendezvous + full-mesh connect cost tens of milliseconds, so a
    harness sweep keeps the ranks and ships ``(program, args)`` per run
    by pickle (module-level callables only).  Runs may use any
    ``nprocs <= capacity``; idle ranks sit out.

    Failure policy differs from ``BspPool``: a byte stream cannot be
    fenced — an aborted boundary may leave a half-flushed frame that
    desynchronizes the receiver's decoder forever — so a failed run
    (error, deadlock) marks the mesh dirty and the next ``run()``
    rebuilds ranks and sockets from scratch.  A worker *crash* is
    instead healed in place when ``heal_in_place`` is on: only the dead
    ranks are re-forked and every rank re-rendezvouses at the next mesh
    generation, which is what lets a checkpointed ``bsp_run(...,
    retries=...)`` resume on the same mesh within milliseconds instead
    of rebuilding the world.
    """

    def __init__(self, nprocs: int, *, host: str = "127.0.0.1",
                 join_timeout: float = 120.0, heal_in_place: bool = True,
                 max_heals: int = 8, heartbeat_interval: float = 0.25,
                 integrity: bool = True, reconnect_timeout: float = 5.0):
        Backend.check_nprocs(nprocs)
        try:
            self._ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise BspConfigError(
                "the tcp backend requires a fork-capable platform") from exc
        self._capacity = nprocs
        self._host = host
        self._join_timeout = join_timeout
        self._heal_in_place = heal_in_place
        self._max_heals = max_heals
        self._heartbeat_interval = heartbeat_interval
        self._integrity = integrity
        self._reconnect_timeout = reconnect_timeout
        self._run_id = 0
        self._closed = False
        self._dirty = False
        # Supervision counters surfaced by health(), mirroring BspPool.
        # A WorkerCrashError first tries an in-place heal ("re-fork"):
        # only the dead ranks are re-forked and the mesh re-rendezvouses
        # at a new generation; any other failed run (or a failed heal)
        # still re-forks the whole rank set at the next run ("rebuild").
        self._generation = 0
        self._restarts = 0
        self._heals = 0
        self._heal_kinds: list[str] = []
        self._last_fault: str | None = None
        #: Per-rank (retransmits, reconnects) piggybacked on heartbeats,
        #: plus the folded totals of ranks that no longer exist.
        self._stats: dict[int, tuple] = {}
        self._stats_base = (0, 0)
        # One run at a time per mesh (BspPool.run parity): the barrier
        # and stream-dirtying discipline assume a single in-flight run.
        self._run_lock = threading.Lock()
        self._token = 0
        self._coord_addr: tuple[str, int] | None = None
        self._parent_addr: tuple[str, int] | None = None
        self._parent_listener: socket.socket | None = None
        self._links: dict[int, _Link] = {}
        self._procs: list[Any] = []
        self._build()

    # -- lifecycle ----------------------------------------------------------

    def _build(self) -> None:
        self._token = _next_token()
        coord_listener = bind_listener(self._host)
        # The parent listener stays bound for the life of the mesh:
        # replacement ranks forked by a heal dial it to register.
        self._parent_listener = bind_listener(self._host)
        self._coord_addr = coord_listener.getsockname()
        self._parent_addr = self._parent_listener.getsockname()
        self._procs = [
            self._ctx.Process(
                target=_pool_rank,
                args=(rank, self._capacity, self._coord_addr,
                      self._parent_addr, coord_listener, self._token,
                      self._heartbeat_interval, self._integrity,
                      self._reconnect_timeout, 0),
                name=f"bsp-tcp-pool-{rank}",
                daemon=True,
            )
            for rank in range(self._capacity)
        ]
        for proc in self._procs:
            proc.start()
        coord_listener.close()  # rank 0 inherited it; parent's copy is done
        self._links = {}
        deadline = time.monotonic() + 30.0
        self._parent_listener.settimeout(0.2)
        try:
            while len(self._links) < self._capacity:
                if time.monotonic() > deadline:
                    raise SynchronizationError(
                        "tcp mesh build timed out waiting for rank "
                        "control connections")
                dead = [r for r, p in enumerate(self._procs)
                        if not p.is_alive()]
                if dead:
                    proc = self._procs[dead[0]]
                    proc.join(timeout=1.0)
                    now = time.monotonic()
                    detail = describe_workers(_worker_statuses(
                        self._capacity, [None] * self._capacity,
                        self._procs, None, [now] * self._capacity, now))
                    raise WorkerCrashError(dead[0], proc.exitcode,
                                           os_pid=proc.pid, detail=detail)
                try:
                    sock, _ = self._parent_listener.accept()
                except socket.timeout:
                    continue
                link = _Link(sock)
                hello_deadline = time.monotonic() + 5.0
                while link.rank is None and not link.eof \
                        and time.monotonic() < hello_deadline:
                    _drain_link(link, self._note_hello)
                    if link.rank is None:
                        time.sleep(0.002)
                if link.rank is None or not 0 <= link.rank < self._capacity:
                    link.close()
                    continue
                self._links[link.rank] = link
        except BaseException:
            self._parent_listener.close()
            self._parent_listener = None
            raise
        self._dirty = False

    @staticmethod
    def _note_hello(link: _Link, frame: Frame) -> None:
        if frame.tag == wire.TAG_HELLO:
            link.rank = wire.frame_object(frame)

    def _teardown(self, *, graceful: bool) -> None:
        if graceful:
            for link in self._links.values():
                try:
                    wire.send_chunks(link.sock, wire.encode_frame(
                        wire.TAG_CLOSE, 0, 0, -1))
                except OSError:
                    pass
        _join_escalating(self._procs, grace=5.0 if graceful else 0.5)
        for link in self._links.values():
            link.close()
        self._links = {}
        if self._parent_listener is not None:
            try:
                self._parent_listener.close()
            except OSError:
                pass
            self._parent_listener = None

    def _fold_stats(self, ranks: Sequence[int] | None = None) -> None:
        """Fold (a subset of) per-rank link counters into the base.

        Called before a rank process is replaced or the mesh is rebuilt,
        so ``health()`` totals survive the process that produced them.
        """
        base_rt, base_rc = self._stats_base
        for rank in list(self._stats) if ranks is None else ranks:
            rt, rc = self._stats.pop(rank, (0, 0))
            base_rt += rt
            base_rc += rc
        self._stats_base = (base_rt, base_rc)

    def close(self) -> None:
        """Shut the ranks down; the mesh is unusable afterwards."""
        if not self._closed:
            self._closed = True
            self._teardown(graceful=True)

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "TcpMesh":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def capacity(self) -> int:
        """Maximum ``nprocs`` a run on this mesh may use."""
        return self._capacity

    def health(self) -> PoolHealth:
        """Supervision snapshot (``BspPool.health`` parity).

        ``restarts_left`` is ``-1``: a mesh has no restart budget — a
        crash is healed in place when possible, and every other failed
        run is followed by a full rebuild at the next ``run()``.
        ``retransmits``/``reconnects`` aggregate the link-repair
        counters every rank piggybacks on its heartbeats.
        """
        alive = 0 if self._closed else \
            sum(1 for proc in self._procs if proc.is_alive())
        base_rt, base_rc = self._stats_base
        return PoolHealth(
            generation=self._generation,
            restarts=self._restarts,
            restarts_left=-1,
            last_fault=self._last_fault,
            alive=alive,
            capacity=self._capacity,
            heal_kinds=tuple(self._heal_kinds),
            retransmits=base_rt + sum(v[0] for v in self._stats.values()),
            reconnects=base_rc + sum(v[1] for v in self._stats.values()),
        )

    # -- running ------------------------------------------------------------

    def run(self, program: Program, nprocs: int | None = None,
            args: Sequence[Any] = (),
            kwargs: dict[str, Any] | None = None, *,
            sync: str = "strict") -> BackendRun:
        if self._closed:
            raise BspConfigError("TcpMesh is closed")
        nprocs = self._capacity if nprocs is None else nprocs
        Backend.check_nprocs(nprocs)
        check_sync(sync)
        if nprocs > self._capacity:
            raise BspConfigError(
                f"run of {nprocs} processors on a mesh of {self._capacity}")
        try:
            blob = pickle.dumps((program, args, kwargs or {}))
        except Exception as exc:
            raise BspUsageError(
                "a persistent tcp mesh ships the program by pickle; use a "
                "module-level function (not a lambda/closure) or a fresh "
                "TcpBackend(), whose fork inherits the program") from exc
        if not self._run_lock.acquire(blocking=False):
            raise BspUsageError(
                "TcpMesh.run() called while another run is in flight on "
                "this mesh; a mesh executes one job at a time — lease one "
                "mesh per concurrent job (repro.service keeps a warm "
                "fleet for exactly this) or create another TcpMesh")
        try:
            return self._run_locked(nprocs, blob, sync)
        finally:
            self._run_lock.release()

    def _run_locked(self, nprocs: int, blob: bytes, sync: str) -> BackendRun:
        if self._dirty:
            self._fold_stats()
            self._teardown(graceful=False)
            self._build()
            self._generation += 1
            self._restarts += self._capacity
            self._heal_kinds.append("rebuild")
        self._run_id += 1
        run_id = self._run_id
        t0 = time.perf_counter()
        payload = (run_id, nprocs, blob, sync)
        for rank in range(nprocs):
            self._send_ctrl(self._links[rank], wire.encode_object_frame(
                wire.TAG_RUN, run_id, 0, -1, payload))
        try:
            outcomes = _collect_tcp(nprocs, run_id, self._procs[:nprocs],
                                    self._links, self._join_timeout,
                                    stats=self._stats)
        except WorkerCrashError as exc:
            self._last_fault = f"{type(exc).__name__}: {exc}"
            healed = False
            if self._heal_in_place and self._heals < self._max_heals:
                try:
                    healed = self._heal(run_id)
                except Exception:  # pragma: no cover - heal is best-effort
                    healed = False
            if not healed:
                self._dirty = True
            raise
        except SynchronizationError as exc:
            self._dirty = True
            self._last_fault = f"{type(exc).__name__}: {exc}"
            raise
        except KeyboardInterrupt:
            # An interactive abort must not strand rank processes behind
            # wedged sockets: escalate terminate→kill and close the mesh.
            # Checkpoint shards already published by the interrupted run
            # stay on disk, so a checkpointing run remains resumable.
            self._closed = True
            self._last_fault = "KeyboardInterrupt"
            self._teardown(graceful=False)
            raise
        wall = time.perf_counter() - t0
        if any(o is None or o[0] != "ok" for o in outcomes):
            self._dirty = True  # streams may hold half-flushed frames
            _raise_run_failure(outcomes)
        results = [o[1] for o in outcomes]  # type: ignore[index]
        ledgers = [o[2] for o in outcomes]  # type: ignore[index]
        return BackendRun(results=results, ledgers=ledgers, wall_seconds=wall)

    # -- in-run rank replacement --------------------------------------------

    def _heal(self, run_id: int) -> bool:
        """Replace dead ranks in place; survivors re-rendezvous.

        The sequence: abort the wedged run on every survivor (their
        channels watch the control socket, so a rank stalled mid-barrier
        on a dead peer wakes promptly), fork replacements for the dead
        ranks at the next mesh generation, ship ``TAG_REMESH`` with the
        new epoch to the survivors, and wait for every rank — survivor
        and replacement — to ack the new generation.  Returns ``True``
        when the mesh is whole again; any failure leaves the mesh dirty
        for the usual full rebuild.
        """
        dead = [r for r, p in enumerate(self._procs) if not p.is_alive()]
        if not dead or len(dead) >= self._capacity:
            return False
        gen = self._generation + 1
        self._fold_stats(dead)
        abort = wire.encode_frame(wire.TAG_ABORT, run_id, 0, -1)
        for rank in list(self._links):
            if rank in dead:
                self._links.pop(rank).close()
                continue
            try:
                self._send_ctrl(self._links[rank], abort)
            except OSError:
                return False
        for rank in dead:
            self._procs[rank].join(timeout=1.0)  # reap the corpse
        # If rank 0 died, its well-known coordinator listener died with
        # it: bind a fresh one for the replacement to inherit.
        coord_listener = None
        if 0 in dead:
            coord_listener = bind_listener(self._host)
            self._coord_addr = coord_listener.getsockname()
        try:
            for rank in dead:
                proc = self._ctx.Process(
                    target=_pool_rank,
                    args=(rank, self._capacity, self._coord_addr,
                          self._parent_addr, coord_listener, self._token,
                          self._heartbeat_interval, self._integrity,
                          self._reconnect_timeout, gen),
                    name=f"bsp-tcp-pool-{rank}",
                    daemon=True,
                )
                proc.start()
                self._procs[rank] = proc
        finally:
            if coord_listener is not None:
                coord_listener.close()  # the replacement inherited it
        remesh = wire.encode_object_frame(
            wire.TAG_REMESH, gen, 0, -1, (gen, tuple(self._coord_addr)))
        for rank, link in self._links.items():
            try:
                self._send_ctrl(link, remesh)
            except OSError:
                return False
        if not self._await_remesh(gen):
            return False
        self._generation = gen
        self._restarts += len(dead)
        self._heals += 1
        self._heal_kinds.append("re-fork")
        self._dirty = False
        return True

    def _await_remesh(self, gen: int) -> bool:
        """Collect one ``remeshed`` ack per rank for generation ``gen``,
        registering the replacement ranks' fresh control connections."""
        acked: set[int] = set()
        failed = False
        anon: list[_Link] = []
        listener = self._parent_listener
        if listener is None:  # pragma: no cover - build failed earlier
            return False
        listener.settimeout(0.0)
        deadline = time.monotonic() + 30.0

        def handle(link: _Link, frame: Frame) -> None:
            nonlocal failed
            if frame.tag == wire.TAG_HELLO:
                link.rank = wire.frame_object(frame)
                self._links[link.rank] = link
                if link in anon:
                    anon.remove(link)
            elif frame.tag == wire.TAG_RESULT:
                outcome = wire.frame_object(frame)
                if outcome[0] == "remeshed" and outcome[1] == gen \
                        and link.rank is not None:
                    acked.add(link.rank)
                elif outcome[0] == "error" and outcome[1] == gen:
                    failed = True

        # One selector over the listener and every control link: acks
        # arrive the moment they are readable, with no fixed accept
        # timeout padding each loop round (MTTR is the product here).
        sel = selectors.DefaultSelector()
        try:
            sel.register(listener, selectors.EVENT_READ)
            registered = set()
            while len(acked) < self._capacity:
                if failed or time.monotonic() > deadline:
                    return False
                if any(not p.is_alive() for p in self._procs):
                    return False
                for link in list(anon) + list(self._links.values()):
                    if id(link) not in registered and not link.eof:
                        try:
                            sel.register(link.sock, selectors.EVENT_READ)
                        except (KeyError, ValueError, OSError):
                            pass
                        registered.add(id(link))
                ready = {key.fileobj for key, _ in sel.select(timeout=0.05)}
                if listener in ready:
                    try:
                        sock, _ = listener.accept()
                    except (BlockingIOError, socket.timeout, OSError):
                        pass
                    else:
                        anon.append(_Link(sock))
                for link in list(anon) + list(self._links.values()):
                    _drain_link(link, handle)
                    if link.eof and link.rank is not None \
                            and link.rank not in acked:
                        return False
                    if link.eof:
                        try:
                            sel.unregister(link.sock)
                        except (KeyError, ValueError):
                            pass
                anon = [link for link in anon if not link.eof]
            return True
        finally:
            sel.close()

    @staticmethod
    def _send_ctrl(link: _Link, chunks: Sequence[Any]) -> None:
        # The supervisor side keeps sockets non-blocking for collection;
        # control sends (a pickled program can be large) need blocking
        # semantics for the moment of the write.
        link.sock.setblocking(True)
        try:
            wire.send_chunks(link.sock, chunks)
        finally:
            link.sock.setblocking(False)


class TcpBackend(Backend):
    """One process per virtual processor over a real TCP mesh (B.3)."""

    name = "tcp"

    def __init__(self, *, join_timeout: float = 120.0,
                 host: str = "127.0.0.1", mesh: TcpMesh | None = None,
                 heartbeat_interval: float = 0.25, integrity: bool = True,
                 reconnect_timeout: float = 5.0):
        self._join_timeout = join_timeout
        self._host = host
        self._mesh = mesh
        self._owns_mesh = False
        self._heartbeat_interval = heartbeat_interval
        self._integrity = integrity
        self._reconnect_timeout = reconnect_timeout
        try:
            self._ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise BspConfigError(
                "the tcp backend requires a fork-capable platform") from exc

    @classmethod
    def pool(cls, nprocs: int, *, host: str = "127.0.0.1",
             join_timeout: float = 120.0, heal_in_place: bool = True,
             max_heals: int = 8, heartbeat_interval: float = 0.25,
             integrity: bool = True,
             reconnect_timeout: float = 5.0) -> "TcpBackend":
        """A backend bound to its own persistent :class:`TcpMesh`.

        Usable as a context manager::

            with TcpBackend.pool(4) as backend:
                for config in sweep:
                    backend.run(program, 4, args=config)

        Ranks rendezvous and mesh once; every ``run()`` reuses them.
        Programs are shipped by pickle (module-level callables only).
        """
        backend = cls(join_timeout=join_timeout, host=host,
                      heartbeat_interval=heartbeat_interval,
                      integrity=integrity,
                      reconnect_timeout=reconnect_timeout,
                      mesh=TcpMesh(nprocs, host=host,
                                   join_timeout=join_timeout,
                                   heal_in_place=heal_in_place,
                                   max_heals=max_heals,
                                   heartbeat_interval=heartbeat_interval,
                                   integrity=integrity,
                                   reconnect_timeout=reconnect_timeout))
        backend._owns_mesh = True
        return backend

    def __enter__(self) -> "TcpBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        """Release the owned mesh, if any (no-op for one-shot backends)."""
        if self._owns_mesh and self._mesh is not None:
            self._mesh.close()

    def health(self) -> PoolHealth | None:
        """The bound mesh's supervision snapshot; ``None`` when one-shot."""
        return None if self._mesh is None else self._mesh.health()

    def run(
        self,
        program: Program,
        nprocs: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
        *,
        sync: str = "strict",
    ) -> BackendRun:
        self.check_nprocs(nprocs)
        check_sync(sync)
        kwargs = kwargs or {}
        if self._mesh is not None:
            return self._mesh.run(program, nprocs, args=args, kwargs=kwargs,
                                  sync=sync)
        ctx = self._ctx
        token = _next_token()
        # Pre-bind the rendezvous listener in the parent: rank 0 inherits
        # the bound socket, so rank 1's first dial cannot race the bind.
        coord_listener = bind_listener(self._host)
        parent_listener = bind_listener(self._host)
        coord_addr = coord_listener.getsockname()
        parent_addr = parent_listener.getsockname()
        parent_listener.setblocking(False)
        procs = [
            ctx.Process(
                target=_oneshot_rank,
                args=(rank, nprocs, coord_addr, parent_addr, coord_listener,
                      token, program, args, kwargs, sync,
                      self._heartbeat_interval, self._integrity,
                      self._reconnect_timeout),
                name=f"bsp-tcp-{rank}",
                daemon=True,
            )
            for rank in range(nprocs)
        ]
        t0 = time.perf_counter()
        for proc in procs:
            proc.start()
        coord_listener.close()
        links: dict[int, _Link] = {}
        anon: list[_Link] = []
        try:
            outcomes = _collect_tcp(nprocs, 0, procs, links,
                                    self._join_timeout,
                                    listener=parent_listener, anon=anon)
        finally:
            # Near-instant after a clean run (ranks already exited); after
            # a failure the grace only delays SIGTERM to stuck ranks.
            _join_escalating(procs, grace=2.0)
            parent_listener.close()
            for link in list(links.values()) + anon:
                link.close()
        wall = time.perf_counter() - t0
        _raise_run_failure(outcomes)
        results = [o[1] for o in outcomes]  # type: ignore[index]
        ledgers = [o[2] for o in outcomes]  # type: ignore[index]
        return BackendRun(results=results, ledgers=ledgers, wall_seconds=wall)


class TcpSpmdBackend(Backend):
    """One *already-launched* rank of a (possibly multi-host) mesh.

    Every participating invocation — one per host, started by
    ``python -m repro.harness launch-tcp --rank r --coordinator h:p`` —
    constructs this backend with its own rank and the shared coordinator
    address, then calls ``bsp_run`` with the *same* program and
    arguments.  Each rank executes its share over the mesh; outcomes are
    all-gathered at the end, so every rank returns the complete
    :class:`BackendRun` (rank 0's invocation typically reports).

    Supervision here is in-band only (there is no common parent): a
    vanished peer surfaces via EOF/``SO_KEEPALIVE`` as an aborted run,
    not as an attributed :class:`WorkerCrashError`.  A failed run marks
    the mesh broken — relaunch the ranks rather than reusing it.
    """

    name = "tcp-spmd"

    def __init__(self, rank: int, nprocs: int,
                 coordinator: tuple[str, int], *, token: int = 0,
                 bind_host: str | None = None, timeout: float = 60.0,
                 generation: int = 0, integrity: bool = True,
                 reconnect_timeout: float = 5.0):
        Backend.check_nprocs(nprocs)
        if not 0 <= rank < nprocs:
            raise BspConfigError(f"rank {rank} out of range({nprocs})")
        self._rank = rank
        self._nprocs = nprocs
        self._timeout = timeout
        self._integrity = integrity
        self._reconnect_timeout = reconnect_timeout
        self._fabric = rendezvous_fabric(
            rank, nprocs, coordinator, token=token,
            generation=generation, bind_host=bind_host, timeout=timeout)
        self._links = {p: _LinkState() for p in self._fabric.socks}
        self._run_id = 0
        self._dirty = False
        self._last_fault: str | None = None
        self._heal_kinds: list[str] = []

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def generation(self) -> int:
        return self._fabric.generation

    def remesh(self) -> int:
        """Re-admit this rank to the mesh at the next generation.

        Called by *every* participating rank after a failed run (the
        harness ``launch-tcp --max-heals`` retry loop does this): each
        rank tears its links down and re-rendezvouses under
        ``fold_token(token, generation + 1)``, so survivors and a
        relaunched replacement rank meet in a fresh epoch while stale
        sockets from the old one are refused.  Returns the new
        generation; failure raises :class:`RemeshError` (relaunch all
        ranks then).
        """
        fabric = self._fabric
        gen = fabric.generation + 1
        keep = None
        if self._rank == 0:
            # The well-known coordinator listener must survive the epoch.
            keep, fabric.listener = fabric.listener, None
        fabric.close()
        try:
            self._fabric = rendezvous_fabric(
                self._rank, self._nprocs, fabric.coordinator,
                token=fabric.token, generation=gen,
                bind_host=fabric.bind_host, coordinator_listener=keep,
                timeout=self._timeout)
        except BaseException as exc:
            if keep is not None:
                try:
                    keep.close()
                except OSError:
                    pass
            raise RemeshError(
                f"rank {self._rank}: remesh to generation {gen} failed: "
                f"{exc}") from exc
        self._links = {p: _LinkState() for p in self._fabric.socks}
        self._dirty = False
        self._heal_kinds.append("re-admit")
        return gen

    def health(self) -> PoolHealth:
        """In-band supervision snapshot (no parent: alive == nprocs)."""
        return PoolHealth(
            generation=self._fabric.generation,
            restarts=0,
            restarts_left=-1,
            last_fault=self._last_fault,
            alive=self._nprocs,
            capacity=self._nprocs,
            heal_kinds=tuple(self._heal_kinds),
            retransmits=sum(l.retransmits for l in self._links.values()),
            reconnects=sum(l.reconnects for l in self._links.values()),
        )

    def run(
        self,
        program: Program,
        nprocs: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
        *,
        sync: str = "strict",
    ) -> BackendRun:
        if nprocs != self._nprocs:
            raise BspConfigError(
                f"this mesh has {self._nprocs} ranks; cannot run "
                f"nprocs={nprocs}")
        check_sync(sync)
        if self._dirty:
            raise BspConfigError(
                "mesh streams may be corrupt after a failed run; call "
                "remesh() on every rank (or relaunch them)")
        self._run_id += 1
        run_id = self._run_id
        channel = _MeshChannel(
            self._rank, nprocs, dict(self._fabric.socks), run_id, None,
            links=self._links, sync=sync,
            fabric=self._fabric if self._integrity else None,
            integrity=self._integrity,
            reconnect_timeout=self._reconnect_timeout)
        t0 = time.perf_counter()
        try:
            outcome = _run_program(channel, self._rank, nprocs, run_id,
                                   program, args, kwargs or {})
            channel.broadcast_result(outcome)
            try:
                gathered = channel.gather_results(nprocs, self._timeout)
            except (_Abort, _PeerLost) as exc:
                self._dirty = True
                self._last_fault = f"{type(exc).__name__}: {exc}"
                raise SynchronizationError(
                    f"a peer vanished while gathering outcomes: {exc!r}"
                ) from None
        finally:
            channel.shutdown(close=False)
        wall = time.perf_counter() - t0
        gathered[self._rank] = outcome
        outcomes: list[tuple | None] = [None] * nprocs
        for r, oc in gathered.items():
            if 0 <= r < nprocs:
                outcomes[r] = (oc[0], oc[3], oc[4])
        if any(o is None or o[0] != "ok" for o in outcomes):
            self._dirty = True
            self._last_fault = "run failure (see raised error)"
            _raise_run_failure(outcomes)
        results = [o[1] for o in outcomes]  # type: ignore[index]
        ledgers = [o[2] for o in outcomes]  # type: ignore[index]
        return BackendRun(results=results, ledgers=ledgers, wall_seconds=wall)

    def close(self) -> None:
        self._fabric.close()
