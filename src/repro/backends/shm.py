"""Pooled named shared-memory segments: the zero-copy data plane.

The slab ring of :mod:`repro.backends.frames` moves every payload with
two memcpys (sender into the ring, receiver out of it).  For large
buffers — above :func:`zerocopy_threshold`, default 64 KiB — this module
removes the receive-side copy entirely: the sender places the bytes
directly into a named ``multiprocessing.shared_memory`` segment drawn
from its :class:`SegmentPool`, the frame carries only ``(segment name,
offset, length, lease id)``, and the receiver maps the segment once
(:class:`SegmentMap`) and reconstructs the payload *over* the shared
pages — the NumPy array a program gets from ``bsp.get_pkt()`` is backed
by the very bytes the sender wrote.  One memcpy end to end.

Lease lifecycle
---------------
A *lease* is one sender-side region handed to one receiver:

1. ``SegmentPool.lease(dst, nbytes)`` — bump-allocates a region in a
   per-destination segment (creating segments on demand, each with a
   deterministic fabric-unique name) and returns ``(lease id, name,
   offset, writable view)``.  Lease ids are monotonic for the pool's
   whole lifetime, so a release that arrives late — or twice — can never
   free somebody else's region.
2. The receiver's :class:`LeaseTable` keeps, per lease, a dedicated
   ``np.frombuffer`` exporter over exactly the leased region.  Payloads
   reconstructed by ``pickle.loads(meta, buffers=[region])`` hold a
   reference to that exporter for as long as the program holds the
   payload, so ``sys.getrefcount(region)`` is the lease's liveness
   probe: 2 (table entry + probe argument) means every consumer dropped
   the payload.
3. ``LeaseTable.collect_free()`` runs at each superstep boundary; the
   freed ids ride back to the segment owner piggybacked on the next
   boundary frame (or a dedicated release frame when no data frame is
   owed), and ``SegmentPool.release`` drops the segment's outstanding
   count — a segment rewinds to offset 0 only once *all* its leases are
   back, so no live view is ever overwritten.
4. Pool ``reset()`` (a fence after a failed run) bumps the pool's
   *generation* and forgets all leases: frames of the dead run still in
   flight carry the old generation, which the receiver's table flags as
   stale — a loud :class:`~repro.core.errors.PacketError`, never a
   silent alias.

Segments are never unlinked by workers (a mapped view may outlive the
run); the parent sweeps them by name — creation counts live in a
fork-shared counter — on pool teardown, rebuild, and partial heal, so a
SIGKILLed worker cannot leak ``/dev/shm`` entries.

CPython 3.11's ``resource_tracker`` registers every POSIX segment on
*both* create and attach and would unlink (and warn about) segments
behind our back; every handle here is unregistered immediately and the
sweep owns the unlink.
"""

from __future__ import annotations

import os
import sys
import threading
from multiprocessing import shared_memory

import numpy as np

#: Default capacity of one pooled segment; larger leases get a dedicated
#: right-sized segment.
DEFAULT_SEGMENT_BYTES = 16 << 20

#: Default smallest payload buffer routed through a segment lease.
DEFAULT_THRESHOLD = 64 << 10

#: Region alignment inside a segment (one cache line).
_ALIGN = 64

#: Prefix of every segment name this library creates (leak scans key on it).
NAME_PREFIX = "repro-zc"


def zerocopy_enabled() -> bool:
    """The ``REPRO_ZEROCOPY`` escape hatch (default on)."""
    return os.environ.get("REPRO_ZEROCOPY", "on").strip().lower() not in (
        "off", "0", "no", "false")


def zerocopy_threshold() -> int:
    """Smallest buffer (bytes) that takes the segment-lease path."""
    try:
        return int(os.environ.get("REPRO_ZEROCOPY_THRESHOLD", ""))
    except ValueError:
        return DEFAULT_THRESHOLD


def fabric_token() -> str:
    """A name component unique to one transport fabric."""
    return f"{os.getpid():x}-{os.urandom(3).hex()}"


def segment_name(token: str, src: int, k: int) -> str:
    """Deterministic name of the ``k``-th segment created by ``src``.

    Deterministic so the parent can sweep every segment a (possibly
    SIGKILLed) worker ever created knowing only the fork-shared creation
    count."""
    return f"{NAME_PREFIX}-{token}-{src}-{k}"


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


def _untrack(seg: shared_memory.SharedMemory) -> None:
    """Undo resource_tracker's unconditional create/attach registration."""
    try:  # pragma: no branch
        from multiprocessing import resource_tracker
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - non-POSIX / tracker absent
        pass


try:
    import _posixshmem

    def unlink_segment(name: str) -> bool:
        """Unlink ``name`` if it exists; ``True`` when something was removed.

        Unlinking is always safe while mappings are live (POSIX keeps the
        pages until the last munmap); only the name disappears."""
        try:
            _posixshmem.shm_unlink("/" + name)
        except (FileNotFoundError, OSError):
            return False
        return True
except ImportError:  # pragma: no cover - exotic platforms
    def unlink_segment(name: str) -> bool:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return False
        _untrack(seg)
        try:
            seg.unlink()
        finally:
            seg.close()
        return True


def sweep_segments(token: str, counts: dict[int, int]) -> int:
    """Unlink every segment named by ``(token, src, k < counts[src])``.

    The parent-side orphan sweep: run on pool teardown/rebuild (all
    srcs) and partial heal (dead srcs only).  Missing names — already
    swept, or never created because the counter raced a death — are
    skipped.  Returns how many segments were actually removed."""
    removed = 0
    for src, count in counts.items():
        for k in range(count):
            if unlink_segment(segment_name(token, src, k)):
                removed += 1
    return removed


def scan_orphans() -> list[str]:
    """Names of library-created segments currently present in /dev/shm."""
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - no tmpfs mount
        return []
    return sorted(e for e in entries if e.startswith(NAME_PREFIX + "-"))


class _Segment:
    """One named segment owned by a :class:`SegmentPool`."""

    __slots__ = ("name", "shm", "buf", "capacity", "used", "outstanding")

    def __init__(self, name: str, seg: shared_memory.SharedMemory):
        self.name = name
        self.shm = seg
        self.buf = seg.buf
        self.capacity = seg.size
        #: Bump-allocation high-water mark; rewinds to 0 only when
        #: ``outstanding`` returns to 0, so no live lease is overwritten.
        self.used = 0
        self.outstanding = 0


class SegmentPool:
    """Sender-side pool of named segments, one sub-pool per destination.

    Thread-safe: the channel's sender thread leases while the main
    thread applies releases collected from inbound frames.
    """

    def __init__(self, token: str, src: int, counter=None, *,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        self._token = token
        self._src = src
        #: Fork-shared "Q"-cast memoryview (or None): slot ``src`` holds
        #: how many segments this pool ever created, which is all the
        #: parent needs to sweep them by name.  Read at construction so a
        #: re-forked replacement worker continues the numbering instead
        #: of colliding with names the parent may already have swept.
        self._counter = counter
        self._segment_bytes = segment_bytes
        self._created = int(counter[src]) if counter is not None else 0
        self._next_lease = 1
        self._generation = 0
        self._pools: dict[int, list[_Segment]] = {}
        self._leases: dict[int, _Segment] = {}
        self._lock = threading.Lock()

    @property
    def generation(self) -> int:
        """Bumped by every :meth:`reset`; stamped into outgoing frames."""
        return self._generation

    @property
    def outstanding(self) -> int:
        """Leases handed out and not yet released."""
        return len(self._leases)

    @property
    def segments(self) -> int:
        """Segments currently owned by this pool."""
        return sum(len(segs) for segs in self._pools.values())

    def _new_segment(self, nbytes: int) -> _Segment:
        capacity = max(self._segment_bytes, _aligned(nbytes))
        name = segment_name(self._token, self._src, self._created)
        seg = shared_memory.SharedMemory(name=name, create=True,
                                         size=capacity)
        _untrack(seg)
        self._created += 1
        if self._counter is not None:
            self._counter[self._src] = self._created
        return _Segment(name, seg)

    def lease(self, dst: int, nbytes: int) -> tuple[int, str, int, memoryview]:
        """Reserve ``nbytes`` for ``dst``: (lease id, name, offset, view)."""
        with self._lock:
            segs = self._pools.setdefault(dst, [])
            seg = next((s for s in segs
                        if s.capacity - s.used >= nbytes), None)
            if seg is None:
                seg = self._new_segment(nbytes)
                segs.append(seg)
            offset = seg.used
            seg.used = _aligned(offset + nbytes)
            seg.outstanding += 1
            lease_id = self._next_lease
            self._next_lease += 1
            self._leases[lease_id] = seg
            return lease_id, seg.name, offset, seg.buf[offset:offset + nbytes]

    def alias(self, lease_id: int) -> int | None:
        """A fresh lease over an existing lease's region (broadcast dedup).

        The same payload sent to several destinations is copied into its
        segment once; every further destination gets its own lease id —
        and so its own release — over the same bytes.  The segment's
        outstanding count rises per alias, so it rewinds only after
        *every* receiver has let go.  ``None`` when ``lease_id`` is no
        longer live (released, or wiped by a reset): the caller must
        place a fresh copy.
        """
        with self._lock:
            seg = self._leases.get(lease_id)
            if seg is None:
                return None
            seg.outstanding += 1
            alias_id = self._next_lease
            self._next_lease += 1
            self._leases[alias_id] = seg
            return alias_id

    def release(self, lease_ids) -> None:
        """Return leases; unknown ids (stale generation, duplicate
        release) are ignored — ids are never reused, so ignoring is
        always safe."""
        with self._lock:
            for lease_id in lease_ids:
                seg = self._leases.pop(lease_id, None)
                if seg is None:
                    continue
                seg.outstanding -= 1
                if seg.outstanding == 0:
                    seg.used = 0

    def leak(self) -> None:
        """Create a segment nothing will ever release (LEAK_SEGMENT
        fault): only the parent's name sweep can reclaim it."""
        with self._lock:
            seg = self._new_segment(self._segment_bytes)
            seg.outstanding += 1
            self._pools.setdefault(-1, []).append(seg)

    def reset(self) -> None:
        """Forget every lease and rewind every segment (fence after a
        failed run).  The generation bump makes any still-in-flight
        frame of the dead run detectably stale at the receiver."""
        with self._lock:
            self._generation += 1
            self._leases.clear()
            for segs in self._pools.values():
                for seg in segs:
                    seg.outstanding = 0
                    seg.used = 0

    def close(self) -> None:
        """Drop this process's mappings (unlinking is the parent sweep's
        job).  Live payload exports keep their segment mapped — close
        failures on exported buffers are expected and harmless."""
        with self._lock:
            for segs in self._pools.values():
                for seg in segs:
                    try:
                        seg.shm.close()
                    except BufferError:  # pragma: no cover - views alive
                        pass
            self._pools.clear()
            self._leases.clear()


class SegmentMap:
    """Receiver-side attach cache: one mapping per segment name, kept for
    the process lifetime (payload views may outlive everything else, and
    ``SharedMemory.close`` refuses while exports are live anyway)."""

    def __init__(self) -> None:
        self._segs: dict[str, shared_memory.SharedMemory] = {}

    def region(self, name: str, offset: int, nbytes: int) -> np.ndarray:
        """A per-lease writable uint8 exporter over one leased region.

        A *fresh ndarray per lease* on purpose: payloads reconstructed
        over it hold a reference to exactly this object, which is what
        makes ``sys.getrefcount`` a per-lease liveness probe (a shared
        exporter would conflate every lease in the segment)."""
        seg = self._segs.get(name)
        if seg is None:
            seg = shared_memory.SharedMemory(name=name)
            _untrack(seg)
            self._segs[name] = seg
        return np.frombuffer(seg.buf, dtype=np.uint8, count=nbytes,
                             offset=offset)

    def close(self) -> None:
        for seg in self._segs.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - views alive
                pass
        self._segs.clear()


class LeaseTable:
    """Receiver-side ledger of live inbound leases.

    One entry per lease: ``(src, region exporter)``.  The exporter's
    refcount is the probe — 2 means only the table and the probe itself
    hold it, i.e. every reconstructed payload is gone.
    """

    def __init__(self) -> None:
        self._entries: dict[int, tuple[int, np.ndarray]] = {}
        #: Highest pool generation seen per src; a frame below it leased
        #: from a pool that has since been reset — stale.
        self._gen: dict[int, int] = {}

    def register(self, src: int, lease_id: int, generation: int,
                 region: np.ndarray) -> bool:
        """File one inbound lease; ``True`` means the frame is stale (its
        generation predates a reset of ``src``'s pool)."""
        seen = self._gen.get(src, 0)
        if generation < seen:
            return True
        self._gen[src] = generation
        self._entries[lease_id] = (src, region)
        return False

    def collect_free(self) -> dict[int, list[int]]:
        """Reap leases with no live consumer, grouped by owning src.

        ``getrefcount(region) <= 2``: the entry tuple plus the probe
        argument.  ``<=`` so interpreters that report more (immortal or
        deferred counts) merely delay reaping, never reap a live lease.
        The probe indexes the entry tuple instead of unpacking it — a
        named loop variable would itself hold a third reference and no
        lease would ever test free.
        """
        freed: dict[int, list[int]] = {}
        dead = [lease_id for lease_id, entry in self._entries.items()
                if sys.getrefcount(entry[1]) <= 2]
        for lease_id in dead:
            src, _ = self._entries.pop(lease_id)
            freed.setdefault(src, []).append(lease_id)
        return freed

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (fence: the runs that leased them are dead)."""
        self._entries.clear()
