"""Process backend — the MPI/TCP library versions (Appendices B.2, B.3).

One OS process per virtual processor, so compute genuinely runs in
parallel (no GIL).  As in the paper's MPI version, communication happens
*only at superstep boundaries*: during a superstep each processor merely
buckets its outgoing packets per destination; at the boundary it pushes one
message per peer (possibly empty — the all-to-all itself is the implicit
synchronization, exactly as in B.2) and blocks until it has received the
boundary message of every live peer.  Sends are issued in the
:func:`~repro.backends.exchange.peer_order` of the precomputed
total-exchange pairing schedule, the TCP version's deadlock-avoidance
discipline (B.3); with OS pipes it is not required for safety but keeps
the traffic pattern faithful.

Like the thread backend's vanishing barrier, a processor that finishes
sends a departure sentinel so peers stop waiting for it; mismatched
superstep counts then surface as a stats-merge error rather than a hang.

Requires a ``fork``-capable platform (Linux); with fork, programs and
arguments need not be picklable, but packet *payloads* must be, since they
cross process boundaries.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import traceback
from collections import defaultdict
from typing import Any, Sequence

from ..core.api import Bsp
from ..core.errors import BspConfigError, SynchronizationError, VirtualProcessorError
from ..core.packets import Packet
from .base import Backend, BackendRun, Program
from .exchange import peer_order

#: Inter-process message tags.
_PKT, _LEFT, _DEAD = "pkt", "left", "dead"


class _Abort(BaseException):
    """Unwinds a worker after a peer reported failure."""


class _ProcChannel:
    """Superstep-boundary exchange over per-processor queues."""

    def __init__(self, pid: int, nprocs: int, queues: list[Any]):
        self._pid = pid
        self._nprocs = nprocs
        self._queues = queues
        self._peers = peer_order(nprocs, pid)
        self._departed: set[int] = set()
        #: Early arrivals from peers already one superstep ahead.
        self._stash: dict[int, dict[int, list[Packet]]] = {}

    def exchange(self, pid: int, step: int, outbox: list[Packet]) -> list[Packet]:
        buckets: dict[int, list[Packet]] = defaultdict(list)
        for pkt in outbox:
            buckets[pkt.dst].append(pkt)

        # Pipe writes block once the OS buffer fills, so two peers pushing
        # large boundary messages at each other would deadlock — the exact
        # hazard Appendix B.3 describes ("receivers [must] actively empty
        # the pipe").  We play the receiver role on this thread while a
        # helper thread performs the blocking sends in schedule order.
        push_error: list[BaseException] = []

        def push() -> None:
            try:
                for peer in self._peers:
                    self._queues[peer].put(
                        (_PKT, step, self._pid, buckets.get(peer, []))
                    )
            except BaseException as exc:  # e.g. an unpicklable payload
                push_error.append(exc)
                # Fail fast: wake every peer (and ourselves) so nobody
                # blocks on a message that will never arrive.
                for peer in self._peers:
                    self._queues[peer].put((_DEAD, self._pid))
                self._queues[self._pid].put((_DEAD, self._pid))

        # Daemonic: if we abort because a peer died, our own sends may be
        # stuck on a pipe nobody will ever drain; the thread must not keep
        # the process alive then.
        sender = threading.Thread(
            target=push, name=f"bsp-send-{self._pid}", daemon=True
        )
        sender.start()
        inbox: list[Packet] = list(buckets.get(self._pid, ()))

        got: set[int] = set()
        stashed = self._stash.pop(step, {})
        for src, pkts in stashed.items():
            inbox.extend(pkts)
            got.add(src)
        while True:
            waiting = set(self._peers) - self._departed - got
            if not waiting:
                break
            msg = self._queues[self._pid].get()
            tag = msg[0]
            if tag == _PKT:
                _, msg_step, src, pkts = msg
                if msg_step == step:
                    inbox.extend(pkts)
                    got.add(src)
                else:
                    self._stash.setdefault(msg_step, {})[src] = pkts
            elif tag == _LEFT:
                self._departed.add(msg[1])
            elif tag == _DEAD:
                if msg[1] == self._pid:
                    sender.join()
                    raise push_error[0]  # our own send failed: surface it
                raise _Abort()
        sender.join()
        if push_error:
            raise push_error[0]
        return inbox

    def depart(self) -> None:
        for peer in self._peers:
            self._queues[peer].put((_LEFT, self._pid))

    def die(self) -> None:
        for peer in self._peers:
            self._queues[peer].put((_DEAD, self._pid))


def _worker(
    pid: int,
    nprocs: int,
    program: Program,
    args: Sequence[Any],
    kwargs: dict[str, Any],
    queues: list[Any],
    result_q: Any,
) -> None:
    channel = _ProcChannel(pid, nprocs, queues)
    bsp = Bsp(pid, nprocs, channel)
    try:
        result = program(bsp, *args, **kwargs)
        ledger = bsp._finish()
        channel.depart()
        result_q.put(("ok", pid, result, ledger))
    except _Abort:
        result_q.put(("aborted", pid, None, None))
    except BaseException:  # noqa: BLE001 - reported to the parent
        channel.die()
        result_q.put(("error", pid, traceback.format_exc(), None))
    finally:
        # mp.Queue.put is asynchronous (feeder thread); exiting before it
        # flushes can silently drop the result and leave the parent to
        # its timeout.  close() + join_thread() forces the flush.
        result_q.close()
        result_q.join_thread()


class ProcessBackend(Backend):
    """One process per virtual processor; boundary all-to-all exchange."""

    name = "processes"

    def __init__(self, *, join_timeout: float = 120.0):
        self._join_timeout = join_timeout
        try:
            self._ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise BspConfigError(
                "the process backend requires a fork-capable platform"
            ) from exc

    def run(
        self,
        program: Program,
        nprocs: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> BackendRun:
        self.check_nprocs(nprocs)
        kwargs = kwargs or {}
        ctx = self._ctx
        queues = [ctx.SimpleQueue() for _ in range(nprocs)]
        result_q = ctx.Queue()
        procs = [
            ctx.Process(
                target=_worker,
                args=(pid, nprocs, program, args, kwargs, queues, result_q),
                name=f"bsp-{pid}",
                daemon=True,
            )
            for pid in range(nprocs)
        ]
        t0 = time.perf_counter()
        for proc in procs:
            proc.start()

        outcomes: list[tuple[str, Any, Any] | None] = [None] * nprocs
        try:
            for _ in range(nprocs):
                try:
                    tag, pid, a, b = result_q.get(timeout=self._join_timeout)
                except Exception as exc:
                    raise SynchronizationError(
                        f"timed out after {self._join_timeout}s waiting for "
                        "worker results (deadlocked BSP program?)"
                    ) from exc
                outcomes[pid] = (tag, a, b)
        finally:
            for proc in procs:
                proc.join(timeout=5.0)
            for proc in procs:
                if proc.is_alive():  # pragma: no cover - only on deadlock
                    proc.terminate()
                    proc.join()
        wall = time.perf_counter() - t0

        for pid, outcome in enumerate(outcomes):
            if outcome is not None and outcome[0] == "error":
                raise VirtualProcessorError(pid, outcome[1])
        missing = [pid for pid, o in enumerate(outcomes) if o is None or o[0] != "ok"]
        if missing:
            raise SynchronizationError(
                f"workers {missing} did not complete (aborted or lost)"
            )
        results = [outcome[1] for outcome in outcomes]  # type: ignore[index]
        ledgers = [outcome[2] for outcome in outcomes]  # type: ignore[index]
        return BackendRun(results=results, ledgers=ledgers, wall_seconds=wall)
