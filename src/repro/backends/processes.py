"""Process backend — the MPI/TCP library versions (Appendices B.2, B.3).

One OS process per virtual processor, so compute genuinely runs in
parallel (no GIL).  As in the paper's MPI version, communication happens
*only at superstep boundaries*: during a superstep each processor merely
buckets its outgoing packets per destination; at the boundary it pushes one
**combined frame** per peer (possibly empty — the all-to-all itself is the
implicit synchronization, exactly as in B.2) and blocks until it has
received the boundary frame of every live peer.  Frames are the batched
zero-copy representation of :mod:`~repro.backends.frames`: per-bucket
``seq``/``h`` metadata plus protocol-5 out-of-band payload buffers moved
through a fork-shared slab ring, so a bucket of NumPy halos crosses the
boundary with two memcpys instead of a pickle stream per packet.  Sends
are issued in the :func:`~repro.backends.exchange.peer_order` of the
precomputed total-exchange pairing schedule, the TCP version's
deadlock-avoidance discipline (B.3).

Like the thread backend's vanishing barrier, a processor that finishes
sends a departure sentinel so peers stop waiting for it; mismatched
superstep counts then surface as a stats-merge error rather than a hang.

Two execution modes share all of the above:

* **one-shot** (plain ``ProcessBackend()``): ``run()`` forks ``p`` fresh
  workers; with fork, programs and arguments need not be picklable, but
  packet *payloads* must be, since they cross process boundaries.
* **pooled** (``ProcessBackend.pool(p)`` or ``ProcessBackend(pool=...)``):
  a persistent :class:`BspPool` keeps the ``p`` forked workers and the
  whole transport fabric alive across runs and ships ``(program, args)``
  per run — amortizing fork+pipe+slab setup across a harness sweep's many
  configurations.  Pooled programs *are* pickled, so they must be
  module-level callables.  A failed run does not poison the pool: after a
  :class:`VirtualProcessorError` the workers drain in-flight frames behind
  a fence barrier and the next run starts clean; only a deadlock timeout
  forces a full worker rebuild.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as queue_mod
import threading
import time
import traceback
from typing import Any, Sequence

from ..core.api import Bsp
from ..core.errors import (
    BspConfigError,
    BspUsageError,
    SynchronizationError,
    VirtualProcessorError,
)
from ..core.packets import Packet, PacketRuns
from .base import Backend, BackendRun, Program
from .exchange import peer_order
from .frames import (
    DEFAULT_SLAB_BYTES,
    TAG_DEAD,
    TAG_FENCE,
    TAG_LEFT,
    TAG_PKT,
    FrameTransport,
)

#: How much of each slab a persistent pool commits up-front (the rest of
#: the ring faults in lazily as frames actually use it), bounding the
#: pool's baseline resident footprint at nprocs x this, not
#: nprocs x slab_bytes.
_POOL_PREFAULT_BYTES = 4 << 20


class _Abort(BaseException):
    """Unwinds a worker after a peer reported failure."""


class _FrameChannel:
    """Superstep-boundary exchange over the shared frame transport."""

    def __init__(self, pid: int, nprocs: int, transport: FrameTransport,
                 run_id: int):
        self._pid = pid
        self._nprocs = nprocs
        self._transport = transport
        self._run_id = run_id
        self._peers = peer_order(nprocs, pid)
        self._departed: set[int] = set()
        #: Early arrivals from peers already one superstep ahead.
        self._stash: dict[int, dict[int, list[Packet]]] = {}
        # Persistent sender thread, fed one request per superstep (thread
        # start-up per sync is measurable on small machines).  Daemonic: if
        # we abort because a peer died, an in-flight send may be stuck on a
        # frame nobody will ever drain; the thread must not keep the
        # process alive then.
        self._cv = threading.Condition()
        self._req: tuple[int, dict[int, list[Packet]]] | None = None
        self._stop = False
        self._push_error: list[BaseException] = []
        self._sender: threading.Thread | None = None

    # -- sender thread -------------------------------------------------------

    def _sender_loop(self) -> None:
        transport, run_id = self._transport, self._run_id
        while True:
            with self._cv:
                while self._req is None and not self._stop:
                    self._cv.wait()
                if self._req is None:
                    return
                step, buckets = self._req
            try:
                for peer in self._peers:
                    transport.send_packets(
                        peer, run_id, step, self._pid, buckets.get(peer, ()))
            except BaseException as exc:  # e.g. an unpicklable payload
                self._push_error.append(exc)
                # Fail fast: wake every peer (and ourselves) so nobody
                # blocks on a frame that will never arrive.
                try:
                    for peer in self._peers:
                        transport.send_control(peer, TAG_DEAD, run_id,
                                               self._pid)
                    transport.send_control(self._pid, TAG_DEAD, run_id,
                                           self._pid)
                except BaseException:  # pragma: no cover - transport gone
                    pass
            with self._cv:
                self._req = None
                self._cv.notify_all()

    def _send_async(self, step: int,
                    buckets: dict[int, list[Packet]]) -> None:
        if self._sender is None:
            self._sender = threading.Thread(
                target=self._sender_loop, name=f"bsp-send-{self._pid}",
                daemon=True)
            self._sender.start()
        with self._cv:
            self._req = (step, buckets)
            self._cv.notify_all()

    def _send_wait(self) -> None:
        with self._cv:
            while self._req is not None:
                self._cv.wait()

    def close(self) -> None:
        """Ask the sender thread to exit once its current send completes."""
        with self._cv:
            self._stop = True
            self._cv.notify_all()

    # -- exchange ------------------------------------------------------------

    def exchange(self, pid: int, step: int, outbox: list[Packet]) -> PacketRuns:
        buckets: dict[int, list[Packet]] = {}
        for pkt in outbox:
            buckets.setdefault(pkt.dst, []).append(pkt)

        # Pipe writes and slab allocations block once full, so two peers
        # pushing large boundary frames at each other would deadlock — the
        # exact hazard Appendix B.3 describes ("receivers [must] actively
        # empty the pipe").  We play the receiver role on this thread while
        # the sender thread performs the blocking sends in schedule order.
        transport = self._transport
        run_id = self._run_id
        self._send_async(step, buckets)

        got: dict[int, list[Packet]] = {}
        own = buckets.get(self._pid)
        if own is not None:
            got[self._pid] = own
        got.update(self._stash.pop(step, {}))
        while True:
            waiting = set(self._peers) - self._departed - set(got)
            if not waiting:
                break
            frame = transport.recv(self._pid)
            if frame.run_id != run_id:
                continue  # stale frame from an earlier run on this pool
            if frame.tag == TAG_PKT:
                pkts = frame.packets(self._pid)
                if frame.step == step:
                    got[frame.src] = pkts
                else:
                    self._stash.setdefault(frame.step, {})[frame.src] = pkts
            elif frame.tag == TAG_LEFT:
                self._departed.add(frame.src)
            elif frame.tag == TAG_DEAD:
                if frame.src == self._pid:
                    self._send_wait()
                    raise self._push_error[0]  # our own send failed
                raise _Abort()
        self._send_wait()
        if self._push_error:
            raise self._push_error[0]
        # One frame per source, each a seq-sorted run: the inbox is
        # already in canonical order once concatenated by src.
        return PacketRuns(got.items())

    def depart(self) -> None:
        for peer in self._peers:
            self._transport.send_control(peer, TAG_LEFT, self._run_id, self._pid)

    def die(self) -> None:
        for peer in self._peers:
            self._transport.send_control(peer, TAG_DEAD, self._run_id, self._pid)


def _execute(pid: int, nprocs: int, run_id: int, transport: FrameTransport,
             program: Program, args: Sequence[Any],
             kwargs: dict[str, Any]) -> tuple[str, int, int, Any, Any]:
    """Run one program instance; returns the worker's outcome tuple."""
    channel = _FrameChannel(pid, nprocs, transport, run_id)
    bsp = Bsp(pid, nprocs, channel)
    try:
        result = program(bsp, *args, **kwargs)
        ledger = bsp._finish()
        channel.depart()
        return ("ok", run_id, pid, result, ledger)
    except _Abort:
        return ("aborted", run_id, pid, None, None)
    except BaseException:  # noqa: BLE001 - reported to the parent
        channel.die()
        return ("error", run_id, pid, traceback.format_exc(), None)
    finally:
        channel.close()


def _oneshot_worker(pid: int, nprocs: int, program: Program,
                    args: Sequence[Any], kwargs: dict[str, Any],
                    transport: FrameTransport, result_q: Any) -> None:
    result_q.put(_execute(pid, nprocs, 0, transport, program, args, kwargs))
    # mp.Queue.put is asynchronous (feeder thread); exiting before it
    # flushes can silently drop the result and leave the parent to its
    # timeout.  close() + join_thread() forces the flush.
    result_q.close()
    result_q.join_thread()


def _do_fence(pid: int, nprocs: int, fence_id: int,
              transport: FrameTransport) -> None:
    """Drain every in-flight frame behind a one-shot fence barrier.

    Each participant keeps reading its inbound pipe — discarding stale
    frames and freeing their slab regions — until it has seen the fence
    frame of every peer, while pushing its own fence frame to each of
    them.  Universal draining unblocks any sender thread left mid-frame
    by the failed run, so the transport is empty and lock-free when the
    fence completes.
    """
    peers = [q for q in range(nprocs) if q != pid]
    pending = set(peers)

    def drain() -> None:
        while pending:
            frame = transport.recv(pid)
            if frame.tag == TAG_FENCE and frame.step == fence_id:
                pending.discard(frame.src)
            # Anything else is debris from the failed run: recv() already
            # freed its slab space; drop it.

    drainer = threading.Thread(target=drain, name=f"bsp-fence-{pid}",
                               daemon=True)
    drainer.start()
    for peer in peers:
        transport.send_control(peer, TAG_FENCE, fence_id, pid, step=fence_id)
    drainer.join()


def _pool_worker(pid: int, transport: FrameTransport, ctrl_q: Any,
                 result_q: Any) -> None:
    """Persistent worker loop: execute runs shipped over the control queue."""
    while True:
        msg = ctrl_q.get()
        kind = msg[0]
        if kind == "close":
            return
        if kind == "fence":
            _, fence_id, nprocs = msg
            _do_fence(pid, nprocs, fence_id, transport)
            result_q.put(("fenced", fence_id, pid, None, None))
        elif kind == "run":
            _, run_id, nprocs, blob = msg
            try:
                program, args, kwargs = pickle.loads(blob)
            except BaseException:  # noqa: BLE001 - reported to the parent
                result_q.put(("error", run_id, pid, traceback.format_exc(),
                              None))
                continue
            result_q.put(_execute(pid, nprocs, run_id, transport, program,
                                  args, kwargs))


def _collect_outcomes(result_q: Any, nprocs: int, run_id: int,
                      timeout: float) -> list[tuple[str, Any, Any] | None]:
    """Gather one outcome per pid against a single wall-clock deadline.

    The deadline covers the whole collection: ``p`` stragglers share one
    budget instead of accumulating ``p`` per-worker timeouts.
    """
    deadline = time.monotonic() + timeout
    outcomes: list[tuple[str, Any, Any] | None] = [None] * nprocs
    got = 0
    while got < nprocs:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise SynchronizationError(
                f"timed out after {timeout}s waiting for worker results "
                "(deadlocked BSP program?)")
        try:
            tag, rid, pid, a, b = result_q.get(timeout=remaining)
        except queue_mod.Empty:
            continue
        if rid != run_id or tag == "fenced":
            continue  # stray reply from an earlier, already-failed run
        if outcomes[pid] is None:
            got += 1
        outcomes[pid] = (tag, a, b)
    return outcomes


def _raise_run_failure(outcomes: list[tuple[str, Any, Any] | None]) -> None:
    """Translate non-ok outcomes into the backend's exceptions."""
    for pid, outcome in enumerate(outcomes):
        if outcome is not None and outcome[0] == "error":
            raise VirtualProcessorError(pid, outcome[1])
    missing = [pid for pid, o in enumerate(outcomes) if o is None or o[0] != "ok"]
    if missing:
        raise SynchronizationError(
            f"workers {missing} did not complete (aborted or lost)")


class BspPool:
    """A persistent set of ``p`` forked BSP workers plus their transport.

    Forking processes and building the pipe/slab fabric costs tens of
    milliseconds; a harness sweep executes dozens of configurations, so
    the pool keeps both alive and dispatches ``(program, args)`` per run.
    Runs may use any ``nprocs <= capacity``.  Each run gets fresh
    :class:`~repro.core.stats.VPLedger` accounting (a new ``Bsp`` context
    per worker), and a failed run is followed by a fence that drains the
    transport, so the pool survives :class:`VirtualProcessorError` without
    a rebuild; only an unresponsive worker (deadlock timeout) triggers
    re-forking.

    Memory footprint: each worker owns a ``slab_bytes`` (default 64 MiB)
    shared ring, so the worst case is ``nprocs x slab_bytes`` of shared
    anonymous memory — but only :data:`_POOL_PREFAULT_BYTES` per slab is
    committed up-front; the rest stays untouched (zero resident pages)
    until frames of that size actually flow.  Tune ``slab_bytes`` down
    for memory-constrained hosts or up for very large halos (frames over
    ``slab_bytes // 2`` automatically take the slower pipe path).
    """

    def __init__(self, nprocs: int, *, join_timeout: float = 120.0,
                 slab_bytes: int = DEFAULT_SLAB_BYTES):
        Backend.check_nprocs(nprocs)
        try:
            self._ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise BspConfigError(
                "the process backend requires a fork-capable platform"
            ) from exc
        self._capacity = nprocs
        self._join_timeout = join_timeout
        self._slab_bytes = slab_bytes
        self._run_id = 0
        self._closed = False
        self._build()

    # -- lifecycle ----------------------------------------------------------

    def _build(self) -> None:
        ctx = self._ctx
        self._transport = FrameTransport(
            self._capacity, ctx, slab_bytes=self._slab_bytes,
            spin_timeout=self._join_timeout)
        # Fault the first slab pages in once, here in the parent, so the
        # pool's first small exchanges are as fast as its hundredth.  Only
        # a prefix: committing every page would pin nprocs x slab_bytes of
        # resident memory for the pool's lifetime whether or not any frame
        # ever needs it; the remainder faults lazily on first use.
        self._transport.prefault(_POOL_PREFAULT_BYTES)
        self._ctrl = [ctx.SimpleQueue() for _ in range(self._capacity)]
        self._result = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_pool_worker,
                args=(pid, self._transport, self._ctrl[pid], self._result),
                name=f"bsp-pool-{pid}",
                daemon=True,
            )
            for pid in range(self._capacity)
        ]
        for proc in self._procs:
            proc.start()

    def _teardown(self, *, graceful: bool) -> None:
        if graceful:
            for ctrl in self._ctrl:
                try:
                    ctrl.put(("close",))
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for proc in self._procs:
            proc.join(timeout=5.0 if graceful else 0.5)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join()
        self._transport.close()
        self._result.close()
        for ctrl in self._ctrl:
            ctrl.close()

    def _rebuild(self) -> None:
        self._teardown(graceful=False)
        self._build()

    def close(self) -> None:
        """Shut the workers down; the pool is unusable afterwards."""
        if not self._closed:
            self._closed = True
            self._teardown(graceful=True)

    def __enter__(self) -> "BspPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @property
    def capacity(self) -> int:
        """Maximum ``nprocs`` a run on this pool may use."""
        return self._capacity

    # -- running ------------------------------------------------------------

    def run(self, program: Program, nprocs: int | None = None,
            args: Sequence[Any] = (),
            kwargs: dict[str, Any] | None = None) -> BackendRun:
        if self._closed:
            raise BspConfigError("BspPool is closed")
        nprocs = self._capacity if nprocs is None else nprocs
        Backend.check_nprocs(nprocs)
        if nprocs > self._capacity:
            raise BspConfigError(
                f"run of {nprocs} processors on a pool of {self._capacity}")
        try:
            blob = pickle.dumps((program, args, kwargs or {}))
        except Exception as exc:
            raise BspUsageError(
                "a persistent pool ships the program by pickle; use a "
                "module-level function (not a lambda/closure) or a fresh "
                "ProcessBackend(), whose fork inherits the program"
            ) from exc
        self._run_id += 1
        run_id = self._run_id
        t0 = time.perf_counter()
        for pid in range(nprocs):
            self._ctrl[pid].put(("run", run_id, nprocs, blob))
        try:
            outcomes = _collect_outcomes(self._result, nprocs, run_id,
                                         self._join_timeout)
        except SynchronizationError:
            # Workers are unresponsive (deadlocked program or a hard
            # crash): the only safe reset is a re-fork.
            self._rebuild()
            raise
        wall = time.perf_counter() - t0
        if any(o is None or o[0] != "ok" for o in outcomes):
            self._fence(nprocs)
            _raise_run_failure(outcomes)
        results = [outcome[1] for outcome in outcomes]  # type: ignore[index]
        ledgers = [outcome[2] for outcome in outcomes]  # type: ignore[index]
        return BackendRun(results=results, ledgers=ledgers, wall_seconds=wall)

    def _fence(self, nprocs: int) -> None:
        """Drain transport debris left by a failed run."""
        if nprocs <= 1:
            return
        self._run_id += 1
        fence_id = self._run_id
        for pid in range(nprocs):
            self._ctrl[pid].put(("fence", fence_id, nprocs))
        deadline = time.monotonic() + min(self._join_timeout, 30.0)
        pending = set(range(nprocs))
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._rebuild()  # a worker is wedged beyond fencing
                return
            try:
                tag, fid, pid, _, _ = self._result.get(timeout=remaining)
            except queue_mod.Empty:
                continue
            if tag == "fenced" and fid == fence_id:
                pending.discard(pid)


class ProcessBackend(Backend):
    """One process per virtual processor; boundary all-to-all frame exchange."""

    name = "processes"

    def __init__(self, *, join_timeout: float = 120.0,
                 pool: BspPool | None = None,
                 slab_bytes: int = DEFAULT_SLAB_BYTES):
        self._join_timeout = join_timeout
        self._pool = pool
        self._owns_pool = False
        self._slab_bytes = slab_bytes
        try:
            self._ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise BspConfigError(
                "the process backend requires a fork-capable platform"
            ) from exc

    @classmethod
    def pool(cls, nprocs: int, *, join_timeout: float = 120.0,
             slab_bytes: int = DEFAULT_SLAB_BYTES) -> "ProcessBackend":
        """A backend bound to its own persistent :class:`BspPool`.

        Usable as a context manager::

            with ProcessBackend.pool(8) as backend:
                for config in sweep:
                    backend.run(program, 8, args=config)

        The pool's workers are forked once and reused by every ``run()``;
        exiting the ``with`` block shuts them down.

        Each worker owns a ``slab_bytes`` (default 64 MiB) shared ring,
        so worst-case shared memory is ``nprocs x slab_bytes`` — resident
        only as frames actually use it (a few MiB per slab is committed
        up-front).  Pass a smaller ``slab_bytes`` on memory-constrained
        hosts; frames over ``slab_bytes // 2`` fall back to the pipe path.
        """
        backend = cls(
            join_timeout=join_timeout,
            pool=BspPool(nprocs, join_timeout=join_timeout,
                         slab_bytes=slab_bytes),
            slab_bytes=slab_bytes,
        )
        backend._owns_pool = True
        return backend

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        """Release the owned pool, if any (no-op for one-shot backends)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()

    def run(
        self,
        program: Program,
        nprocs: int,
        args: Sequence[Any] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> BackendRun:
        self.check_nprocs(nprocs)
        kwargs = kwargs or {}
        if self._pool is not None:
            return self._pool.run(program, nprocs, args=args, kwargs=kwargs)
        ctx = self._ctx
        transport = FrameTransport(nprocs, ctx, slab_bytes=self._slab_bytes,
                                   spin_timeout=self._join_timeout)
        result_q = ctx.Queue()
        procs = [
            ctx.Process(
                target=_oneshot_worker,
                args=(pid, nprocs, program, args, kwargs, transport, result_q),
                name=f"bsp-{pid}",
                daemon=True,
            )
            for pid in range(nprocs)
        ]
        t0 = time.perf_counter()
        for proc in procs:
            proc.start()
        try:
            outcomes = _collect_outcomes(result_q, nprocs, 0,
                                         self._join_timeout)
        finally:
            for proc in procs:
                proc.join(timeout=5.0)
            for proc in procs:
                if proc.is_alive():  # pragma: no cover - only on deadlock
                    proc.terminate()
                    proc.join()
            transport.close()
        wall = time.perf_counter() - t0
        _raise_run_failure(outcomes)
        results = [outcome[1] for outcome in outcomes]  # type: ignore[index]
        ledgers = [outcome[2] for outcome in outcomes]  # type: ignore[index]
        return BackendRun(results=results, ledgers=ledgers, wall_seconds=wall)
